//! On-line monitoring: watch calls complete *live*, without waiting for
//! quiescence — the paper's future-work direction, implemented in
//! `causeway_analyzer::online`.
//!
//! A monitor thread drains each process's probe buffers every few
//! milliseconds and feeds them to the incremental analyzer, which emits a
//! latency alert the moment a slow invocation closes. While it runs, the
//! self-observability layer (`causeway_core::metrics`) tracks the
//! monitoring pipeline itself: the monitor prints a snapshot — ingest
//! rate, open causal chains, consumption lag — every few drain intervals,
//! and the full Prometheus exposition at the end.
//!
//! The run is also exported as a Chrome trace
//! (`online_monitor.trace.json` in the temp directory): drop it on
//! <https://ui.perfetto.dev> to see the causal chains as spans.
//!
//! ```text
//! cargo run --example online_monitor
//! ```

use causeway::analyzer::chrome_trace;
use causeway::analyzer::online::{OnlineAnalyzer, OnlineEvent};
use causeway::collector::db::MonitoringDb;
use causeway::core::metrics::MetricsRegistry;
use causeway::core::monitor::ProbeMode;
use causeway::workloads::{Pps, PpsConfig, PpsDeployment};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SLOW_CALL_US: u64 = 400;

fn main() {
    let config = PpsConfig {
        deployment: PpsDeployment::FourProcess,
        probe_mode: ProbeMode::Latency,
        work_scale: 0.5,
        ..PpsConfig::default()
    };
    let pps = Pps::build(&config);

    let done = Arc::new(AtomicBool::new(false));
    let done_monitor = Arc::clone(&done);
    // The live monitor: drain scattered buffers, ingest, alert.
    let stores: Vec<_> = (0..4u16)
        .map(|p| {
            pps.system
                .orb(causeway::core::ids::ProcessId(p))
                .monitor()
                .store()
                .clone()
        })
        .collect();
    let vocab = pps.system.vocab().snapshot();
    let monitor = std::thread::spawn(move || {
        let registry = MetricsRegistry::global();
        let mut analyzer = OnlineAnalyzer::new();
        let mut alerts = 0usize;
        let mut completed = 0usize;
        let mut kept = Vec::new();
        let mut last_snapshot = Instant::now();
        let mut last_records = 0u64;
        loop {
            let finished = done_monitor.load(Ordering::Relaxed);
            for store in &stores {
                for record in store.drain() {
                    kept.push(record.clone());
                    analyzer.ingest(record, &mut |event| match event {
                        OnlineEvent::CallCompleted { func, latency_ns, depth, .. } => {
                            completed += 1;
                            if let Some(ns) = latency_ns {
                                if ns / 1_000 >= SLOW_CALL_US {
                                    alerts += 1;
                                    println!(
                                        "SLOW {:>6.0}µs {}{}",
                                        ns as f64 / 1e3,
                                        "  ".repeat(depth),
                                        vocab.qualified_function(&func)
                                    );
                                }
                            }
                        }
                        OnlineEvent::Abnormality { message, .. } => {
                            println!("ABNORMAL: {message}");
                        }
                        OnlineEvent::ChainIdle { .. } => {}
                    });
                }
            }
            // Per-record ingest skips the O(chains) gauge refresh; the
            // monitor loop is the batch boundary, so refresh here.
            analyzer.publish_metrics();

            // One snapshot line per drain interval that moved records.
            let records = registry
                .counter_value("causeway_online_records_total")
                .unwrap_or(0);
            if records > last_records {
                let rate =
                    (records - last_records) as f64 / last_snapshot.elapsed().as_secs_f64();
                let open = registry
                    .gauge_value("causeway_online_open_chains")
                    .unwrap_or(0);
                let lag: usize = stores.iter().map(|s| s.len()).sum();
                println!(
                    "[metrics] {rate:>7.0} records/s | {open:>3} open chains | \
                     {lag:>4} records lagging in buffers"
                );
                last_records = records;
                last_snapshot = Instant::now();
            }

            if finished {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut tail = Vec::new();
        analyzer.finish(&mut |e| tail.push(e));
        (completed, alerts, tail.len(), kept)
    });

    println!("running 8 print jobs with a live monitor (alert threshold {SLOW_CALL_US}µs)…\n");
    pps.run_jobs(8);
    // The job driver is now idle: seal its open log chunks so the
    // monitor's final drain pass sees the tail of the run.
    pps.system.flush_local_logs();
    done.store(true, Ordering::Relaxed);
    let (completed, alerts, leftovers, records) = monitor.join().expect("monitor thread");

    // The streamed records plus the harvest's vocabulary/deployment make a
    // complete run log — export it for Perfetto.
    let mut run = pps.system.harvest();
    run.records.extend(records);
    let trace_path = std::env::temp_dir().join("online_monitor.trace.json");
    std::fs::write(&trace_path, chrome_trace::export(&MonitoringDb::from_run(run)))
        .expect("write chrome trace");
    pps.system.shutdown();

    println!(
        "\nlive monitor observed {completed} completed calls, raised {alerts} slow-call \
         alerts, {leftovers} end-of-run anomalies."
    );
    println!(
        "chrome trace written to {} — open it in https://ui.perfetto.dev\n",
        trace_path.display()
    );

    // What the monitoring pipeline spent on itself, in Prometheus text
    // exposition (histogram buckets elided for readability).
    println!("== self-observability (prometheus exposition, buckets elided) ==");
    for line in MetricsRegistry::global().render_prometheus().lines() {
        if !line.contains("_bucket") {
            println!("{line}");
        }
    }
    assert!(completed > 0);
}
