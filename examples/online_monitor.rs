//! On-line monitoring: watch calls complete *live*, without waiting for
//! quiescence — the paper's future-work direction, implemented in
//! `causeway_analyzer::online`.
//!
//! A monitor thread drains each process's probe buffers every few
//! milliseconds and feeds them to the incremental analyzer, which emits a
//! latency alert the moment a slow invocation closes.
//!
//! ```text
//! cargo run --example online_monitor
//! ```

use causeway::analyzer::online::{OnlineAnalyzer, OnlineEvent};
use causeway::core::monitor::ProbeMode;
use causeway::workloads::{Pps, PpsConfig, PpsDeployment};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SLOW_CALL_US: u64 = 400;

fn main() {
    let config = PpsConfig {
        deployment: PpsDeployment::FourProcess,
        probe_mode: ProbeMode::Latency,
        work_scale: 0.5,
        ..PpsConfig::default()
    };
    let pps = Pps::build(&config);

    let done = Arc::new(AtomicBool::new(false));
    let done_monitor = Arc::clone(&done);
    // The live monitor: drain scattered buffers, ingest, alert.
    let stores: Vec<_> = (0..4u16)
        .map(|p| {
            pps.system
                .orb(causeway::core::ids::ProcessId(p))
                .monitor()
                .store()
                .clone()
        })
        .collect();
    let vocab = pps.system.vocab().snapshot();
    let monitor = std::thread::spawn(move || {
        let mut analyzer = OnlineAnalyzer::new();
        let mut alerts = 0usize;
        let mut completed = 0usize;
        loop {
            let finished = done_monitor.load(Ordering::Relaxed);
            for store in &stores {
                for record in store.drain() {
                    analyzer.ingest(record, &mut |event| match event {
                        OnlineEvent::CallCompleted { func, latency_ns, depth, .. } => {
                            completed += 1;
                            if let Some(ns) = latency_ns {
                                if ns / 1_000 >= SLOW_CALL_US {
                                    alerts += 1;
                                    println!(
                                        "SLOW {:>6.0}µs {}{}",
                                        ns as f64 / 1e3,
                                        "  ".repeat(depth),
                                        vocab.qualified_function(&func)
                                    );
                                }
                            }
                        }
                        OnlineEvent::Abnormality { message, .. } => {
                            println!("ABNORMAL: {message}");
                        }
                        OnlineEvent::ChainIdle { .. } => {}
                    });
                }
            }
            if finished {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut tail = Vec::new();
        analyzer.finish(&mut |e| tail.push(e));
        (completed, alerts, tail.len())
    });

    println!("running 8 print jobs with a live monitor (alert threshold {SLOW_CALL_US}µs)…\n");
    pps.run_jobs(8);
    // The job driver is now idle: seal its open log chunks so the
    // monitor's final drain pass sees the tail of the run.
    pps.system.flush_local_logs();
    done.store(true, Ordering::Relaxed);
    let (completed, alerts, leftovers) = monitor.join().expect("monitor thread");
    pps.system.shutdown();

    println!(
        "\nlive monitor observed {completed} completed calls, raised {alerts} slow-call \
         alerts, {leftovers} end-of-run anomalies."
    );
    assert!(completed > 0);
}
