//! Live monitoring service: windowed streaming characterization with
//! abnormality alerting and an embedded HTTP status/scrape endpoint — the
//! paper's future-work direction, implemented in
//! `causeway_analyzer::live` on top of the incremental analyzer.
//!
//! A monitor thread drains each process's probe buffers every few
//! milliseconds into a [`LiveMonitor`], which maintains tumbling/sliding
//! windows of per-operation latency percentiles, call rate and abnormality
//! rate, and evaluates declarative alert rules (threshold + duration +
//! hysteresis) once per window. With `--listen` the monitor also serves:
//!
//! * `GET /metrics` — Prometheus exposition (process-global registry)
//! * `GET /healthz` — 200 while no alert fires, 503 otherwise
//! * `GET /chains` — open causal chains, JSON
//! * `GET /latency?iface=..&method=..` — windowed percentiles, JSON
//!   (without `iface`, the list of known series)
//! * `GET /flamegraph[?window=k]` — folded stacks (`a;b;c N`,
//!   inferno-compatible), cumulative or scoped to one retained window
//! * `GET /flamegraph/diff?a=..&b=..` — folded-stack delta between two
//!   retained windows, largest regression first
//! * `GET /history` — retained-window ring summary + burn-rule states, JSON
//! * `GET /dscg[?chain=UUID&format=dot]` — recently completed chains,
//!   rendered as ascii call trees or Graphviz
//! * `GET /trace` — Chrome trace of the last window
//! * `GET /alerts` — the bounded alert-transition log, JSON; firing
//!   transitions carry the breach-window exemplar uuids
//! * `GET /exemplars[?series=..|?id=UUID]` — tail-biased exemplar store:
//!   index of retained slow/abnormal/sampled chains per series, or one
//!   exemplar's DSCG ascii/dot render + Chrome-trace slice view
//! * `GET /incidents[?id=N]` — incident forensics: index, or one
//!   incident's add-only hypothesis graph (timeline + tombstones +
//!   query-time surviving set)
//! * `POST /incidents/eliminate` — operator tombstones
//!   (`{"incident":N,"hypothesis":M,"reason":"..."}`)
//! * `GET /probes` — adaptive probe control plane: per-interface effective
//!   modes, who holds them, and the transition log
//! * `POST /probes` — operator probe override with TTL
//!   (`{"iface":"Pps::Stage","mode":"both","ttl_ms":60000}`)
//!
//! The live monitor shares the system's probe policy: alert/burn rules with
//! an `escalate=MODE` suffix escalate the targeted interface's probes while
//! they fire (de-escalating on resolve), and `--probe IFACE=MODE` seeds
//! overrides at startup.
//!
//! Durable mode: `--segment PATH` streams every drained chunk into a
//! crash-safe binary segment (`causeway_collector::segment`) as it is
//! ingested, sealing it on clean shutdown — `causeway_analyze PATH` reads
//! it back, and `--lossy` recovers the clean prefix after a crash.
//! `--spill PATH` keeps evicted history windows on disk so
//! `/flamegraph?window=k` and `/history?from=..&to=..` work past the ring.
//!
//! ```text
//! cargo run --example online_monitor                 # finite 8-job run
//! cargo run --example online_monitor -- \
//!     --listen 127.0.0.1:9464 --window 2 --duration 10 \
//!     --alert 'p95>400us;resolve=200us' \
//!     --history 128 --burn 'burn=p95>400us;slo=99.9;fast=3;slow=24' \
//!     --segment /tmp/online_monitor.cwseg --spill /tmp/online_monitor.cwhist
//! ```

use causeway::analyzer::chrome_trace;
use causeway::analyzer::live::{serve, LiveConfig, LiveMonitor};
use causeway::collector::db::MonitoringDb;
use causeway::collector::segment::SegmentWriter;
use causeway::core::metrics::MetricsRegistry;
use causeway::core::ids::InterfaceId;
use causeway::core::monitor::{ProbeDirective, ProbeMode};
use causeway::core::record::ProbeRecord;
use causeway::workloads::{Pps, PpsConfig, PpsDeployment};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    listen: Option<String>,
    window: Duration,
    shards: Option<usize>,
    alerts: Vec<String>,
    burns: Vec<String>,
    history: Option<usize>,
    segment: Option<PathBuf>,
    spill: Option<PathBuf>,
    duration: Duration,
    jobs: usize,
    incidents: bool,
    incident_top: Option<usize>,
    incident_floor: Option<f64>,
    probes: Vec<(String, ProbeMode)>,
    exemplars: Option<usize>,
    exemplar_spill: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: None,
        window: Duration::from_secs(2),
        shards: None,
        alerts: Vec::new(),
        burns: Vec::new(),
        history: None,
        segment: None,
        spill: None,
        duration: Duration::from_secs(10),
        jobs: 8,
        incidents: true,
        incident_top: None,
        incident_floor: None,
        probes: Vec::new(),
        exemplars: None,
        exemplar_spill: None,
    };
    let mut argv = std::env::args().skip(1);
    let need = |argv: &mut dyn Iterator<Item = String>, flag: &str| {
        argv.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--listen" => args.listen = Some(need(&mut argv, "--listen")),
            "--window" => {
                let secs: f64 = need(&mut argv, "--window").parse().unwrap_or_else(|_| {
                    eprintln!("--window takes seconds");
                    std::process::exit(2);
                });
                args.window = Duration::from_secs_f64(secs.max(0.001));
            }
            "--shards" => {
                let shards: usize = need(&mut argv, "--shards").parse().unwrap_or_else(|_| {
                    eprintln!("--shards takes an ingestion shard count");
                    std::process::exit(2);
                });
                args.shards = Some(shards.max(1));
            }
            "--alert" => args.alerts.push(need(&mut argv, "--alert")),
            "--burn" => args.burns.push(need(&mut argv, "--burn")),
            "--history" => {
                let windows: usize =
                    need(&mut argv, "--history").parse().unwrap_or_else(|_| {
                        eprintln!("--history takes a retained window count");
                        std::process::exit(2);
                    });
                args.history = Some(windows.max(1));
            }
            "--segment" => {
                args.segment = Some(PathBuf::from(need(&mut argv, "--segment")));
            }
            "--spill" => {
                args.spill = Some(PathBuf::from(need(&mut argv, "--spill")));
            }
            "--duration" => {
                let secs: f64 = need(&mut argv, "--duration").parse().unwrap_or_else(|_| {
                    eprintln!("--duration takes seconds");
                    std::process::exit(2);
                });
                args.duration = Duration::from_secs_f64(secs.max(0.1));
            }
            "--jobs" => {
                args.jobs = need(&mut argv, "--jobs").parse().unwrap_or_else(|_| {
                    eprintln!("--jobs takes a count");
                    std::process::exit(2);
                });
            }
            "--no-incidents" => args.incidents = false,
            "--incident-top" => {
                let top: usize =
                    need(&mut argv, "--incident-top").parse().unwrap_or_else(|_| {
                        eprintln!("--incident-top takes a hypothesis count");
                        std::process::exit(2);
                    });
                args.incident_top = Some(top.max(1));
            }
            "--incident-floor" => {
                let floor: f64 =
                    need(&mut argv, "--incident-floor").parse().unwrap_or_else(|_| {
                        eprintln!("--incident-floor takes a share in [0,1)");
                        std::process::exit(2);
                    });
                args.incident_floor = Some(floor.clamp(0.0, 0.99));
            }
            "--exemplars" => {
                let k: usize = need(&mut argv, "--exemplars").parse().unwrap_or_else(|_| {
                    eprintln!("--exemplars takes a per-series tail depth (0 disables)");
                    std::process::exit(2);
                });
                args.exemplars = Some(k);
            }
            "--exemplar-spill" => {
                args.exemplar_spill = Some(PathBuf::from(need(&mut argv, "--exemplar-spill")));
            }
            "--probe" => {
                let spec = need(&mut argv, "--probe");
                let Some((iface, mode)) = spec.split_once('=') else {
                    eprintln!("--probe takes IFACE=MODE (e.g. 'Pps::Stage=both')");
                    std::process::exit(2);
                };
                let mode: ProbeMode = mode.parse().unwrap_or_else(|e| {
                    eprintln!("--probe: {e}");
                    std::process::exit(2);
                });
                args.probes.push((iface.to_owned(), mode));
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; flags: --listen ADDR --window SECS \
                     --shards N --alert RULE --burn RULE --history WINDOWS \
                     --segment PATH --spill PATH --duration SECS --jobs N \
                     --no-incidents --incident-top N --incident-floor SHARE \
                     --probe IFACE=MODE --exemplars K --exemplar-spill PATH"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let config = PpsConfig {
        deployment: PpsDeployment::FourProcess,
        probe_mode: ProbeMode::Latency,
        work_scale: 0.5,
        ..PpsConfig::default()
    };
    let pps = Pps::build(&config);

    let stores: Vec<_> = (0..4u16)
        .map(|p| {
            pps.system
                .orb(causeway::core::ids::ProcessId(p))
                .monitor()
                .store()
                .clone()
        })
        .collect();

    let mut config = LiveConfig { window: args.window, ..LiveConfig::default() };
    if let Some(shards) = args.shards {
        config.shards = shards;
    }
    if let Some(windows) = args.history {
        config.history_windows = windows;
    }
    config.history_spill = args.spill.clone();
    config.incidents.enabled = args.incidents;
    if let Some(top) = args.incident_top {
        config.incidents.top_regressions = top;
        config.incidents.top_stacks = top;
    }
    if let Some(floor) = args.incident_floor {
        config.incidents.stack_share_floor = floor;
    }
    // Tail-biased exemplar capture: `--exemplars 0` disables it entirely,
    // any other K deepens the per-series tail ring; `--exemplar-spill`
    // keeps the retained exemplars on disk across restarts.
    if let Some(k) = args.exemplars {
        if k == 0 {
            config.exemplars.enabled = false;
        } else {
            config.exemplars.per_series = k;
        }
    }
    config.exemplars.spill = args.exemplar_spill.clone();

    // The adaptive control plane shares the running system's probe policy:
    // a firing `escalate=` rule or a `POST /probes` override hot-swaps the
    // stamping mode of exactly the targeted interface while jobs run.
    config.adaptive.policy = Some(pps.system.probe_policy().clone());
    let vocab = pps.system.vocab().snapshot();
    for (name, mode) in &args.probes {
        let Some(i) = vocab.interfaces.iter().position(|e| &e.name == name) else {
            eprintln!(
                "--probe: unknown interface {name:?}; known: {:?}",
                vocab.interfaces.iter().map(|e| e.name.as_str()).collect::<Vec<_>>()
            );
            std::process::exit(2);
        };
        pps.system
            .probe_policy()
            .apply(ProbeDirective { interface: InterfaceId(i as u32), mode: *mode });
        println!("probe override: {name} starts at mode {mode}");
    }

    // Durable mode: every drained chunk is appended to a crash-safe binary
    // segment before it is handed to the in-memory monitor, so a crash
    // loses at most the records still buffered in per-thread chunks.
    let segment_writer = args.segment.as_ref().map(|path| {
        SegmentWriter::create(
            path,
            &pps.system.vocab().snapshot(),
            pps.system.deployment(),
            None, // open-ended run: the seal will carry the final count
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot create segment {}: {e}", path.display());
            std::process::exit(1);
        })
    });
    let live = LiveMonitor::new(
        config,
        pps.system.vocab().snapshot(),
        pps.system.deployment().clone(),
    );
    let mut rules = if args.alerts.is_empty() {
        vec!["p95>400us;resolve=200us".to_owned()]
    } else {
        args.alerts.clone()
    };
    rules.extend(args.burns.iter().cloned());
    for rule in &rules {
        if let Err(e) = live.add_rule_spec(rule) {
            eprintln!("bad alert/burn rule: {e}");
            std::process::exit(2);
        }
    }
    let live = Arc::new(live);

    let server = args.listen.as_ref().map(|addr| {
        let server = serve(Arc::clone(&live), addr).unwrap_or_else(|e| {
            eprintln!("cannot listen on {addr}: {e}");
            std::process::exit(1);
        });
        println!(
            "serving /metrics /healthz /chains /latency /flamegraph \
             /flamegraph/diff /history /dscg /trace /alerts /exemplars \
             /incidents /probes on http://{}",
            server.local_addr()
        );
        server
    });

    // The monitor thread: drain scattered buffers into the windowed
    // characterization, narrate alert transitions as they happen.
    let done = Arc::new(AtomicBool::new(false));
    let done_monitor = Arc::clone(&done);
    let live_monitor = Arc::clone(&live);
    let monitor_stores = stores.clone();
    let monitor = std::thread::spawn(move || {
        let mut writer = segment_writer;
        let mut segment_error: Option<String> = None;
        let mut streamed: Vec<ProbeRecord> = Vec::new();
        let mut narrated = 0usize;
        loop {
            let finished = done_monitor.load(Ordering::Relaxed);
            let mut batch = Vec::new();
            for store in &monitor_stores {
                match writer.as_mut() {
                    // Durable path: chunks hit the segment file before the
                    // in-memory monitor sees their records. An append
                    // failure (disk full, EIO) must not kill monitoring:
                    // the records still reach the in-memory monitor, and
                    // the writer is dropped below so the run degrades to
                    // in-memory mode instead of panicking mid-run.
                    Some(writer) => {
                        for chunk in store.drain_chunks() {
                            if segment_error.is_none() {
                                if let Err(e) = writer.append_chunk(&chunk) {
                                    segment_error = Some(e.to_string());
                                }
                            }
                            batch.extend(chunk.records);
                        }
                    }
                    None => batch.extend(store.drain()),
                }
            }
            if segment_error.is_some() {
                if let Some(abandoned) = writer.take() {
                    eprintln!(
                        "WARNING: segment append failed ({}); abandoning the durable \
                         segment after {} record(s) and continuing in-memory",
                        segment_error.as_deref().unwrap_or(""),
                        abandoned.records_written()
                    );
                }
            }
            streamed.extend(batch.iter().cloned());
            if batch.is_empty() {
                live_monitor.tick(); // idle windows must still rotate
            } else {
                live_monitor.ingest_batch(batch);
            }
            let log = live_monitor.alert_log();
            for event in log.iter().skip(narrated) {
                println!(
                    "[alert] {} {} (value {:.0}, threshold {:.0}, window {})",
                    if event.fired { "FIRING " } else { "resolved" },
                    event.alert,
                    event.value,
                    event.threshold,
                    event.window_index,
                );
            }
            narrated = log.len();
            if finished {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        (streamed, writer, segment_error)
    });

    let stop = Arc::new(AtomicBool::new(false));
    let jobs = if server.is_some() {
        println!(
            "driving print jobs for {:.1}s with {:.1}s windows; rules: {rules:?}\n",
            args.duration.as_secs_f64(),
            args.window.as_secs_f64()
        );
        let stop_timer = Arc::clone(&stop);
        let duration = args.duration;
        let timer = std::thread::spawn(move || {
            std::thread::sleep(duration);
            stop_timer.store(true, Ordering::Relaxed);
        });
        let jobs = pps.drive(&stop, Duration::from_millis(20));
        timer.join().expect("timer thread");
        jobs
    } else {
        println!(
            "running {} print jobs with a live monitor; rules: {rules:?}\n",
            args.jobs
        );
        pps.run_jobs(args.jobs);
        args.jobs
    };

    // The job driver is idle: seal its open log chunks so the monitor's
    // final drain pass sees the tail of the run.
    pps.system.flush_local_logs();
    done.store(true, Ordering::Relaxed);
    let (streamed, segment_writer, segment_error) = monitor.join().expect("monitor thread");

    // Anything still buffered was stranded in unsealed per-thread chunks (a
    // thread never reached an idle point) — surface it the same way the
    // off-line analyzer does, via RunLog::missing_records.
    let ingested = streamed.len() as u64;
    let mut run = pps.system.harvest();
    run.expected_records = run.expected_records.map(|left| left + ingested);
    let mut records = streamed;
    records.extend(std::mem::take(&mut run.records));
    run.records = records;
    if let Some(missing) = run.missing_records() {
        eprintln!(
            "WARNING: {missing} records stranded in unsealed chunks at shutdown \
             ({} expected, {} drained); a producer thread never reached an idle point",
            run.expected_records.unwrap_or(0),
            run.len()
        );
    }

    // Seal the durable segment: the seal frame records how many records
    // made it to disk and how many the run expected, so recovery reports
    // the same shortfall causeway_analyze prints here. A failed append or
    // seal leaves an unsealed prefix behind — report the lost durability
    // instead of panicking; `--lossy` recovery still reads the prefix.
    if let Some(writer) = segment_writer {
        let written = writer.records_written();
        let path = args.segment.as_ref().expect("writer implies --segment");
        match writer.finish(run.expected_records) {
            Ok(()) => println!(
                "segment sealed: {written} record(s) in {} — analyze with \
                 `causeway_analyze {}`",
                path.display(),
                path.display()
            ),
            Err(e) => eprintln!(
                "WARNING: cannot seal segment {} ({e}); {written} record(s) remain \
                 recoverable with `causeway_analyze --lossy`",
                path.display()
            ),
        }
    } else if let Some(error) = segment_error {
        let path = args.segment.as_ref().expect("error implies --segment");
        eprintln!(
            "WARNING: durable mode was abandoned mid-run ({error}); {} holds only an \
             unsealed prefix — recover it with `causeway_analyze --lossy {}`",
            path.display(),
            path.display()
        );
    }

    let trace_path = std::env::temp_dir().join("online_monitor.trace.json");
    std::fs::write(&trace_path, chrome_trace::export(&MonitoringDb::from_run(run)))
        .expect("write chrome trace");

    println!(
        "\nlive monitor observed {} completed calls over {jobs} jobs, {} \
         abnormalities, {} alert transitions.",
        live.total_completed(),
        live.total_abnormalities(),
        live.alert_log().len()
    );
    let window = live.sliding();
    for (key, agg) in &window.series {
        println!(
            "  {:>30}.{}: {} calls, p50 {}ns p95 {}ns p99 {}ns",
            live.vocab().interface_name(key.0),
            live.vocab().method_name(key.0, key.1),
            agg.calls,
            agg.hist.quantile_ns(0.50),
            agg.hist.quantile_ns(0.95),
            agg.hist.quantile_ns(0.99),
        );
    }
    {
        // `incidents()` holds the monitor's control lock; keep the guard
        // scoped so later monitor calls cannot self-deadlock.
        let incidents = live.incidents();
        for incident in incidents.iter() {
            let surviving = incident.surviving().len();
            let total = incident.hypotheses().len();
            println!(
                "  incident #{} [{}] alert {:?}: {surviving}/{total} hypotheses \
                 surviving, {} tombstone(s)",
                incident.id,
                if incident.is_open() { "open" } else { "resolved" },
                incident.alert,
                incident.tombstones().len(),
            );
        }
    }
    assert!(live.total_completed() > 0);
    if let Some(server) = server {
        println!("served {} HTTP requests", server.requests_served());
        server.shutdown();
    }
    pps.system.shutdown();

    println!(
        "chrome trace written to {} — open it in https://ui.perfetto.dev\n",
        trace_path.display()
    );
    println!("== self-observability (prometheus exposition, buckets elided) ==");
    for line in MetricsRegistry::global().render_prometheus().lines() {
        if !line.contains("_bucket") {
            println!("{line}");
        }
    }
}
