//! A CORBA/COM hybrid: one causal chain crossing both runtimes through the
//! bi-directional bridge — §2.3 of the paper.
//!
//! ```text
//! cargo run --example hybrid_bridge
//! ```

use causeway::analyzer::dscg::Dscg;
use causeway::analyzer::render::{AsciiOptions, ascii_tree};
use causeway::bridge::{ComToOrbBridge, OrbToComBridge};
use causeway::collector::db::MonitoringDb;
use causeway::com::{ApartmentKind, ComConfig, ComDomain, FnComServant};
use causeway::core::runlog::RunLog;
use causeway::core::value::Value;
use causeway::orb::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const IDL: &str = "interface Task { string perform(in string label); };";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // CORBA side: driver + one server process.
    let mut builder = System::builder();
    let node = builder.node("hybrid-box", "HPUX");
    let p_client = builder.process("driver", node, ThreadingPolicy::ThreadPerRequest);
    let p_orb = builder.process("corba-side", node, ThreadingPolicy::ThreadPerRequest);
    let p_com = builder.process("com-side", node, ThreadingPolicy::ThreadPerRequest);
    let system = builder.build();
    system.load_idl(IDL)?;

    // COM side: shares the vocabulary (so interface ids agree) and claims
    // the deployment slot of `p_com`.
    let domain = ComDomain::builder(p_com, node)
        .vocab(system.vocab().clone())
        .config(ComConfig::default())
        .build();
    domain.load_idl(IDL)?;
    let apt = domain.create_apartment(ApartmentKind::Sta);

    // Innermost CORBA servant.
    let back = system.register_servant(
        p_orb,
        "Task",
        "Back",
        "back#0",
        Arc::new(FnServant::new(|_, _, args| {
            Ok(Value::Str(format!("corba-back({})", args[0].as_str().unwrap_or(""))))
        })),
    )?;

    // COM object that calls back into CORBA via the bridge.
    let com_to_orb = ComToOrbBridge::new(system.client(p_com), back, system.vocab().clone());
    let bridge_back =
        domain.register_object(apt, "Task", "BridgeBack", "bridge-back#0", Arc::new(com_to_orb))?;

    let bridge_back_ref = bridge_back;
    let middle = domain.register_object(
        apt,
        "Task",
        "Middle",
        "com-middle#0",
        Arc::new(FnComServant::new(move |ctx, _, args| {
            let inner = ctx
                .client()
                .invoke(&bridge_back_ref, "perform", args)
                .map_err(|e| ("Downstream".to_owned(), e.to_string()))?;
            Ok(Value::Str(format!("com-middle({})", inner.as_str().unwrap_or(""))))
        })),
    )?;

    // CORBA servant fronting the COM object.
    let orb_to_com = OrbToComBridge::new(domain.client(), middle, system.vocab().clone());
    let front =
        system.register_servant(p_orb, "Task", "Front", "corba-front#0", Arc::new(orb_to_com))?;

    system.start();
    let client = system.client(p_client);
    client.begin_root();
    let out = client.invoke(&front, "perform", vec![Value::from("job-1")])?;
    println!("result: {}", out.as_str().unwrap_or("?"));

    system.quiesce(Duration::from_secs(5))?;
    domain.quiesce(Duration::from_secs(5)).map_err(|n| format!("{n} calls stuck"))?;
    system.shutdown();
    domain.shutdown();

    // Merge both runtimes' scattered logs into one run and reconstruct.
    let mut run = system.harvest();
    run.merge(RunLog::new(
        domain.drain_records(),
        run.vocab.clone(),
        run.deployment.clone(),
    ));
    let db = MonitoringDb::from_run(run);
    let dscg = Dscg::build(&db);

    println!("\nthe single causal chain across CORBA → COM → CORBA:");
    print!(
        "{}",
        ascii_tree(
            &dscg,
            db.vocab(),
            AsciiOptions { show_site: true, ..Default::default() }
        )
    );
    assert_eq!(dscg.trees.len(), 1, "one chain end to end");
    assert!(dscg.abnormalities.is_empty());
    println!("\ncausality propagated seamlessly across the bridge, twice.");
    Ok(())
}
