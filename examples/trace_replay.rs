//! Trace-driven test harness generation: capture a run, derive a replayable
//! harness from its call graph, replay it on a fresh system, and diff —
//! the paper's "automate or semi-automate test harness generation" future
//! work, closed end-to-end.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use causeway::analyzer::dscg::Dscg;
use causeway::collector::db::MonitoringDb;
use causeway::core::monitor::ProbeMode;
use causeway::workloads::replay::{self, DeriveOptions};
use causeway::workloads::{Pps, PpsConfig, PpsDeployment};

fn main() {
    // 1. Capture: a production-like PPS run.
    println!("capturing a 5-job PPS run…");
    let config = PpsConfig {
        deployment: PpsDeployment::FourProcess,
        probe_mode: ProbeMode::Latency,
        work_scale: 0.2,
        ..PpsConfig::default()
    };
    let pps = Pps::build(&config);
    pps.run_jobs(5);
    let db = MonitoringDb::from_run(pps.finish());
    let original = Dscg::build(&db);
    println!(
        "  captured {} invocations in {} chains",
        original.total_nodes(),
        original.trees.len()
    );

    // 2. Derive: a harness reproducing structure AND timing.
    let spec = replay::derive(&db, DeriveOptions { work_scale: 1.0 });
    println!(
        "  derived harness: {} calls across {} processes",
        spec.total_calls(),
        spec.processes
    );

    // 3. Replay on a fresh system.
    println!("replaying…");
    let replay_run = replay::execute(&spec, ProbeMode::Latency);
    let replay_db = MonitoringDb::from_run(replay_run);
    let replayed = Dscg::build(&replay_db);

    // 4. Diff.
    println!("\noriginal  : {} chains, {} nodes", original.trees.len(), original.total_nodes());
    println!("replayed  : {} chains, {} nodes", replayed.trees.len(), replayed.total_nodes());
    assert_eq!(original.trees.len(), replayed.trees.len());
    assert_eq!(original.total_nodes(), replayed.total_nodes());
    assert!(replayed.abnormalities.is_empty());

    let mean = |dscg: &Dscg| {
        let analysis = causeway::analyzer::latency::LatencyAnalysis::compute(dscg);
        analysis
            .per_method
            .values()
            .map(|s| s.mean_ns * s.count as f64)
            .sum::<f64>()
            / analysis.per_method.values().map(|s| s.count as f64).sum::<f64>()
    };
    println!(
        "mean invocation latency — original {:.1} µs, replay {:.1} µs",
        mean(&original) / 1e3,
        mean(&replayed) / 1e3
    );
    println!("\nthe captured trace is now a regression harness.");
}
