//! The Printing Pipeline Simulator across three platforms, with full
//! latency and CPU characterization — the paper's flagship CORBA example.
//!
//! ```text
//! cargo run --release --example printing_pipeline
//! ```

use causeway::analyzer::ccsg::Ccsg;
use causeway::analyzer::cpu::CpuAnalysis;
use causeway::analyzer::dscg::Dscg;
use causeway::analyzer::latency::LatencyAnalysis;
use causeway::analyzer::render::{AsciiOptions, ascii_tree, ccsg_xml};
use causeway::collector::db::MonitoringDb;
use causeway::core::monitor::ProbeMode;
use causeway::workloads::{Pps, PpsConfig, PpsDeployment};

fn main() {
    // --- Latency pass (latency and CPU probes run separately, as in the
    // paper, to keep interference down). ---
    let config = PpsConfig {
        deployment: PpsDeployment::MultiNode,
        probe_mode: ProbeMode::Latency,
        work_scale: 0.3,
        pages_per_job: 3,
        ..PpsConfig::default()
    };
    println!("running 10 print jobs across HPUX / WindowsNT / VxWorks…");
    let pps = Pps::build(&config);
    pps.run_jobs(10);
    let db = MonitoringDb::from_run(pps.finish());

    let dscg = Dscg::build(&db);
    assert!(dscg.abnormalities.is_empty());
    println!(
        "\none print job's call tree ({} invocations per job):",
        dscg.trees[0].size()
    );
    let first_job = Dscg::from_trees(dscg.trees[..1].to_vec());
    print!(
        "{}",
        ascii_tree(
            &first_job,
            db.vocab(),
            AsciiOptions { show_latency: true, show_site: true, max_nodes_per_tree: 0 }
        )
    );

    let latency = LatencyAnalysis::compute(&dscg);
    println!("\nslowest stages (mean end-to-end latency):");
    let mut rows: Vec<_> = latency
        .per_method
        .iter()
        .map(|((iface, method), stats)| {
            (
                db.vocab().method_name(*iface, *method).to_string(),
                stats.mean_ns,
                stats.count,
            )
        })
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, mean, count) in rows.iter().take(5) {
        println!("  {name:<12} {:.1} µs (n={count})", mean / 1_000.0);
    }

    // --- CPU pass on the same deployment. ---
    let config = PpsConfig {
        deployment: PpsDeployment::MultiNode,
        probe_mode: ProbeMode::Cpu,
        work_scale: 0.3,
        pages_per_job: 3,
        ..PpsConfig::default()
    };
    println!("\nre-running with CPU probes…");
    let pps = Pps::build(&config);
    pps.run_jobs(10);
    let db = MonitoringDb::from_run(pps.finish());
    let dscg = Dscg::build(&db);
    let cpu = CpuAnalysis::compute(&dscg, db.deployment());

    println!("system-wide CPU by processor type:");
    for (cpu_type, ns) in cpu.system_total.iter() {
        println!(
            "  {:<10} {:.1} ms",
            db.vocab().cpu_type_name(cpu_type),
            ns as f64 / 1e6
        );
    }

    let ccsg = Ccsg::build(&dscg, db.deployment());
    println!("\nCPU Consumption Summarization Graph (Figure-6 XML, excerpt):");
    for line in ccsg_xml(&ccsg, db.vocab()).lines().take(18) {
        println!("{line}");
    }
    println!("…");
}
