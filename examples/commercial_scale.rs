//! The synthetic commercial-scale system at reduced size: generate a
//! 176-component topology, run ~20,000 monitored calls on 32 threads, and
//! characterize the result — the workflow of the paper's §4 case study.
//!
//! ```text
//! cargo run --release --example commercial_scale
//! ```

use causeway::analyzer::dscg::Dscg;
use causeway::analyzer::render::{AsciiOptions, ascii_tree};
use causeway::collector::db::MonitoringDb;
use causeway::collector::jsonl;
use causeway::workloads::{CommercialConfig, CommercialSystem};
use std::time::Instant;

fn main() {
    let config = CommercialConfig {
        target_calls: 20_000,
        ..CommercialConfig::default()
    };
    println!(
        "generating a {}-component / {}-interface / {}-method system…",
        config.components, config.interfaces, config.methods
    );
    let commercial = CommercialSystem::build(&config);
    println!(
        "planned workload: {} calls across {} entry points",
        commercial.planned_calls,
        commercial.entry_points.len()
    );

    let t = Instant::now();
    let roots = commercial.run();
    println!("ran {roots} root transactions in {:.2?}", t.elapsed());

    let run = commercial.finish();

    // Persist the raw monitoring data the way the paper's collector feeds
    // its relational database, then read it back.
    let text = jsonl::write_run(&run);
    println!("serialized run log: {:.1} MB", text.len() as f64 / 1e6);
    let restored = jsonl::read_run(&text).expect("round trip");

    let db = MonitoringDb::from_run(restored);
    let stats = db.scale_stats();
    println!(
        "\nscale: {} calls, {} methods, {} interfaces, {} components, {} threads, {} processes",
        stats.calls,
        stats.unique_methods,
        stats.unique_interfaces,
        stats.unique_components,
        stats.threads,
        stats.processes
    );

    let t = Instant::now();
    let dscg = Dscg::build(&db);
    println!(
        "DSCG: {} nodes in {} trees, computed in {:.2?} (paper's 195k-call run: 28 min)",
        dscg.total_nodes(),
        dscg.trees.len(),
        t.elapsed()
    );
    assert!(dscg.abnormalities.is_empty());

    // Show the deepest tree, like navigating to a hot spot in the viewer.
    let deepest = dscg
        .trees
        .iter()
        .max_by_key(|t| t.roots.iter().map(|r| r.depth()).max().unwrap_or(0))
        .expect("non-empty");
    println!("\ndeepest call tree:");
    let excerpt = Dscg::from_trees(vec![deepest.clone()]);
    print!(
        "{}",
        ascii_tree(
            &excerpt,
            db.vocab(),
            AsciiOptions { show_site: true, max_nodes_per_tree: 25, ..Default::default() }
        )
    );
}
