//! A J2EE-style shop on the EJB container runtime: pooled session beans,
//! container interceptors, JNDI lookups — fully traced end to end.
//!
//! ```text
//! cargo run --example ejb_shop
//! ```

use causeway::analyzer::dscg::Dscg;
use causeway::analyzer::render::{AsciiOptions, ascii_tree};
use causeway::collector::db::MonitoringDb;
use causeway::core::ids::{NodeId, ProcessId};
use causeway::core::value::Value;
use causeway::ejb::{
    BeanCtx, Container, ContainerInterceptor, FnBean, InvocationInfo,
};
use std::sync::Arc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

const IDL: &str = r#"
    module Shop {
        interface Ops {
            long add_item(in long sku);
            long reserve(in long sku);
            long charge(in long amount);
            long place_order(in long sku);
        };
    };
"#;

/// A metrics interceptor: counts every business invocation in the container.
struct CallCounter(AtomicUsize);
impl ContainerInterceptor for CallCounter {
    fn before(&self, _: &InvocationInfo) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
    fn after(&self, _: &InvocationInfo, _: bool) {}
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two containers: web tier and service tier.
    let web = Container::builder(ProcessId(0), NodeId(0)).build();
    web.load_idl(IDL)?;
    let services = Container::builder(ProcessId(1), NodeId(0)).join(&web).build();

    let counter = Arc::new(CallCounter(AtomicUsize::new(0)));
    services.add_interceptor(counter.clone());

    // Service tier beans.
    services.deploy(
        "java:global/Inventory",
        "Shop::Ops",
        Some(4),
        Arc::new(|| {
            Box::new(FnBean::new(100i64, |stock, _ctx, midx, args| {
                let sku = args.first().and_then(Value::as_i64).unwrap_or(0);
                match midx.0 {
                    1 => {
                        // reserve
                        if *stock == 0 {
                            return Err(("OutOfStock".into(), format!("sku {sku}")));
                        }
                        *stock -= 1;
                        Ok(Value::I64(*stock))
                    }
                    _ => Ok(Value::I64(sku)),
                }
            }))
        }),
    )?;
    services.deploy(
        "java:global/Payment",
        "Shop::Ops",
        Some(2),
        Arc::new(|| {
            Box::new(FnBean::new(0i64, |charged, _ctx, midx, args| {
                let amount = args.first().and_then(Value::as_i64).unwrap_or(0);
                if midx.0 == 2 {
                    *charged += amount;
                    Ok(Value::I64(*charged))
                } else {
                    Ok(Value::Void)
                }
            }))
        }),
    )?;

    // Web tier: the Cart orchestrates the service tier.
    web.deploy(
        "java:global/Cart",
        "Shop::Ops",
        None,
        Arc::new(|| {
            Box::new(FnBean::new((), |_, ctx: &BeanCtx, midx, args| {
                if midx.0 == 3 {
                    // place_order: reserve stock, then charge.
                    let sku = args.first().and_then(Value::as_i64).unwrap_or(0);
                    ctx.client()
                        .call("java:global/Inventory", "reserve", vec![Value::I64(sku)])
                        .map_err(|e| ("OrderFailed".to_owned(), e.to_string()))?;
                    let charged = ctx
                        .client()
                        .call("java:global/Payment", "charge", vec![Value::I64(sku * 10)])
                        .map_err(|e| ("PaymentFailed".to_owned(), e.to_string()))?;
                    Ok(charged)
                } else {
                    Ok(Value::Void)
                }
            }))
        }),
    )?;

    // Place a few orders.
    let client = web.client();
    for sku in [7i64, 12, 31] {
        client.begin_root();
        let charged = client.call("java:global/Cart", "place_order", vec![Value::I64(sku)])?;
        println!("order sku={sku}: total charged so far = {}", charged.as_i64().unwrap_or(0));
    }

    web.quiesce(Duration::from_secs(5)).map_err(|n| format!("{n} stuck"))?;
    web.shutdown();
    services.shutdown();

    println!(
        "\ncontainer interceptor observed {} service-tier invocations",
        counter.0.load(Ordering::SeqCst)
    );

    // Merge both containers' logs and reconstruct.
    let mut run = web.harvest_standalone("appserver", "JvmHost");
    run.merge(causeway::core::runlog::RunLog::new(
        services.drain_records(),
        run.vocab.clone(),
        run.deployment.clone(),
    ));
    let db = MonitoringDb::from_run(run);
    let dscg = Dscg::build(&db);
    assert!(dscg.abnormalities.is_empty());
    println!("\ntraced call graph:");
    print!(
        "{}",
        ascii_tree(&dscg, db.vocab(), AsciiOptions { show_latency: true, ..Default::default() })
    );
    Ok(())
}
