//! Quickstart: monitor a tiny two-process application and print its
//! reconstructed call graph with latencies.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use causeway::analyzer::dscg::Dscg;
use causeway::analyzer::latency::LatencyAnalysis;
use causeway::analyzer::render::{AsciiOptions, ascii_tree};
use causeway::collector::db::MonitoringDb;
use causeway::core::value::Value;
use causeway::orb::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const IDL: &str = r#"
    module Demo {
        interface Greeter {
            string greet(in string name);
            string decorate(in string text);
        };
    };
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the deployment: two processes on one node.
    let mut builder = System::builder();
    let node = builder.node("laptop", "Linux");
    let frontend = builder.process("frontend", node, ThreadingPolicy::ThreadPerRequest);
    let backend = builder.process("backend", node, ThreadingPolicy::ThreadPool(2));
    let system = builder.build();

    // 2. Compile the IDL (instrumented stubs/skeletons by default).
    system.load_idl(IDL)?;

    // 3. Register servants. The decorator lives in the backend.
    let decorator = system.register_servant(
        backend,
        "Demo::Greeter",
        "Decorator",
        "decorator#0",
        Arc::new(FnServant::new(|_ctx, _m, args| {
            let text = args[0].as_str().unwrap_or("");
            Ok(Value::Str(format!("✨ {text} ✨")))
        })),
    )?;

    // The greeter lives in the frontend and calls the decorator — a real
    // cross-process child invocation whose causality the FTL carries.
    let decorator_ref = decorator;
    let greeter = system.register_servant(
        frontend,
        "Demo::Greeter",
        "Greeter",
        "greeter#0",
        Arc::new(FnServant::new(move |ctx, _m, args| {
            let name = args[0].as_str().unwrap_or("world");
            let decorated = ctx
                .client()
                .invoke(&decorator_ref, "decorate", vec![Value::from(format!("hello {name}"))])
                .map_err(|e| AppError::new("Downstream", e.to_string()))?;
            Ok(decorated)
        })),
    )?;

    // 4. Run.
    system.start();
    let client = system.client(frontend);
    for name in ["ada", "grace", "barbara"] {
        client.begin_root(); // each greeting is its own causal chain
        let reply = client.invoke(&greeter, "greet", vec![Value::from(name)])?;
        println!("reply: {}", reply.as_str().unwrap_or("?"));
    }

    // 5. Quiesce, collect, analyze.
    system.quiesce(Duration::from_secs(5))?;
    system.shutdown();
    let db = MonitoringDb::from_run(system.harvest());
    let dscg = Dscg::build(&db);

    println!("\nDynamic System Call Graph:");
    print!(
        "{}",
        ascii_tree(
            &dscg,
            db.vocab(),
            AsciiOptions { show_latency: true, show_site: true, max_nodes_per_tree: 0 }
        )
    );

    let latency = LatencyAnalysis::compute(&dscg);
    println!("\nper-method latency:");
    for ((iface, method), stats) in &latency.per_method {
        println!(
            "  {}.{}: n={} mean={:.1}µs p95={:.1}µs",
            db.vocab().interface_name(*iface),
            db.vocab().method_name(*iface, *method),
            stats.count,
            stats.mean_ns / 1_000.0,
            stats.p95_ns as f64 / 1_000.0,
        );
    }
    Ok(())
}
