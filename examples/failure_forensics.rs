//! Failure forensics: what the monitoring data looks like when things go
//! wrong — application exceptions, timeouts, and logs lost in a crash.
//!
//! ```text
//! cargo run --example failure_forensics
//! ```

use causeway::analyzer::dscg::Dscg;
use causeway::analyzer::render::{AsciiOptions, ascii_tree};
use causeway::collector::db::MonitoringDb;
use causeway::collector::jsonl;
use causeway::core::monitor::ProbeMode;
use causeway::core::value::Value;
use causeway::orb::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const IDL: &str = r#"
    interface Job {
        void run(in long id) raises (Jam);
        void slow(in long id);
    };
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut builder = System::builder();
    builder.probe_mode(ProbeMode::Latency);
    builder.reply_timeout(Duration::from_millis(150));
    let node = builder.node("n", "Linux");
    let cp = builder.process("client", node, ThreadingPolicy::ThreadPerRequest);
    let sp = builder.process("server", node, ThreadingPolicy::ThreadPerRequest);
    let system = builder.build();
    system.load_idl(IDL)?;

    let servant = system.register_servant(
        sp,
        "Job",
        "Worker",
        "worker#0",
        Arc::new(FnServant::new(|_, m, args| {
            let id = args[0].as_i64().unwrap_or(0);
            match m.0 {
                0 if id == 2 => Err(AppError::new("Jam", "paper jam on job 2")),
                0 => Ok(Value::Void),
                _ => {
                    std::thread::sleep(Duration::from_millis(400)); // beyond the timeout
                    Ok(Value::Void)
                }
            }
        })),
    )?;
    system.start();

    let client = system.client(cp);
    // Job 1 succeeds.
    client.begin_root();
    client.invoke(&servant, "run", vec![Value::I64(1)])?;
    // Job 2 raises an application exception — the chain stays intact.
    client.begin_root();
    let err = client.invoke(&servant, "run", vec![Value::I64(2)]).unwrap_err();
    println!("job 2: {err}");
    // Job 3 times out — the skeleton events will be missing client-side.
    client.begin_root();
    let err = client.invoke(&servant, "slow", vec![Value::I64(3)]).unwrap_err();
    println!("job 3: {err}");

    system.quiesce(Duration::from_secs(5))?;
    system.shutdown();
    let run = system.harvest();

    // Simulate a crash that truncated the persisted log mid-record.
    let mut text = jsonl::write_run(&run);
    let cut = text.len() - 40;
    text.truncate(cut);
    let (restored, skipped) = jsonl::read_run_lossy(&text)?;
    println!("\ncrash-truncated log: recovered {} records, skipped {skipped}", restored.len());

    let db = MonitoringDb::from_run(restored);
    let dscg = Dscg::build(&db);
    println!("\nreconstruction with failures:");
    print!(
        "{}",
        ascii_tree(&dscg, db.vocab(), AsciiOptions { show_latency: true, ..Default::default() })
    );
    println!(
        "\nthe analyzer flagged {} abnormalities — exactly where the failures were.",
        dscg.abnormalities.len()
    );
    Ok(())
}
