//! # Causeway
//!
//! Global causality capture and characterization for component-based
//! distributed systems — a from-scratch Rust reproduction of Jun Li,
//! *"Monitoring and Characterization of Component-Based Systems with Global
//! Causality Capture"*, ICDCS 2003.
//!
//! This facade crate re-exports the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `causeway-core` | FTL, probes, TSS, clocks, records |
//! | [`idl`] | `causeway-idl` | the instrumenting IDL compiler |
//! | [`orb`] | `causeway-orb` | the CORBA-like runtime |
//! | [`com`] | `causeway-com` | the COM-like runtime (apartments) |
//! | [`ejb`] | `causeway-ejb` | the J2EE-like container runtime |
//! | [`bridge`] | `causeway-bridge` | the CORBA↔COM bridge |
//! | [`collector`] | `causeway-collector` | log gathering + relational db |
//! | [`analyzer`] | `causeway-analyzer` | DSCG, latency, CPU, CCSG |
//! | [`baselines`] | `causeway-baselines` | GPROF / Trace-Object / OVATION analogs |
//! | [`workloads`] | `causeway-workloads` | PPS + synthetic commercial system |
//!
//! See the repository README for a quickstart, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-versus-measured record.
//!
//! # Example
//!
//! ```
//! use causeway::orb::prelude::*;
//! use causeway::core::value::Value;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut builder = System::builder();
//! let node = builder.node("laptop", "Linux");
//! let p = builder.process("app", node, ThreadingPolicy::ThreadPerRequest);
//! let system = builder.build();
//! system.load_idl("interface Hello { string greet(in string name); };")?;
//! let hello = system.register_servant(
//!     p, "Hello", "HelloComponent", "hello#0",
//!     Arc::new(FnServant::new(|_ctx, _m, args| {
//!         Ok(Value::Str(format!("hi {}", args[0].as_str().unwrap_or("?"))))
//!     })),
//! )?;
//! system.start();
//! let out = system.client(p).invoke(&hello, "greet", vec![Value::from("ada")])?;
//! assert_eq!(out.as_str(), Some("hi ada"));
//! system.shutdown();
//! # Ok(())
//! # }
//! ```

pub use causeway_analyzer as analyzer;
pub use causeway_baselines as baselines;
pub use causeway_bridge as bridge;
pub use causeway_collector as collector;
pub use causeway_com as com;
pub use causeway_core as core;
pub use causeway_ejb as ejb;
pub use causeway_idl as idl;
pub use causeway_orb as orb;
pub use causeway_workloads as workloads;
