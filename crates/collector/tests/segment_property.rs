//! Property tests for the durable segment format: round-trips are
//! bit-identical, and truncation at *every* byte offset either recovers a
//! clean record prefix with an exact reported shortfall or fails cleanly —
//! never panics, never returns garbage records.

use causeway_collector::segment::{
    next_frame, read_run_log, recover_run_log, write_run_log, write_run_log_with_frame,
    SEGMENT_MAGIC,
};
use causeway_core::deploy::Deployment;
use causeway_core::event::{CallKind, TraceEvent};
use causeway_core::ids::*;
use causeway_core::names::{ComponentId, InterfaceEntry, ObjectEntry, VocabSnapshot};
use causeway_core::record::{CallSite, FunctionKey, ProbeRecord};
use causeway_core::runlog::RunLog;
use causeway_core::uuid::Uuid;
use proptest::prelude::*;

/// Splitmix64: cheap, well-mixed per-index randomness for record fields.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn synth_record(seed: u64, i: u64) -> ProbeRecord {
    let r = mix(seed, i);
    let opt = |bit: u32| (r >> bit) & 1 == 1;
    ProbeRecord {
        uuid: Uuid(((mix(seed, i ^ 0xAAAA) as u128) << 64) | r as u128),
        seq: i,
        event: TraceEvent::ALL[(r % 4) as usize],
        kind: match (r >> 2) % 4 {
            0 => CallKind::Sync,
            1 => CallKind::Oneway,
            2 => CallKind::Collocated,
            _ => CallKind::CustomMarshal,
        },
        site: CallSite {
            node: NodeId((r >> 4) as u16),
            process: ProcessId((r >> 20) as u16),
            thread: LogicalThreadId((r >> 36) as u32 & 0xFFFF),
        },
        func: FunctionKey::new(
            InterfaceId((r >> 8) as u32 & 0xFF),
            MethodIndex((r >> 16) as u16 & 0x7),
            ObjectId(mix(seed, i ^ 0x5555)),
        ),
        wall_start: opt(52).then_some(r & 0xFFFF_FFFF),
        wall_end: opt(53).then_some((r & 0xFFFF_FFFF) + 17),
        cpu_start: opt(54).then_some(r >> 13),
        cpu_end: opt(55).then_some((r >> 13) + 3),
        oneway_child: opt(56).then(|| Uuid(mix(seed, i ^ 0x1234) as u128)),
        oneway_parent: opt(57).then(|| (Uuid(mix(seed, i ^ 0x4321) as u128), r % 97)),
    }
}

fn synth_run(seed: u64, records: usize, declare_expected: bool) -> RunLog {
    let mut vocab = VocabSnapshot::default();
    vocab.interfaces.push(InterfaceEntry {
        name: format!("Iface::Gen{seed}"),
        methods: vec!["a".into(), "b".into(), "c".into()],
    });
    vocab.components.push("GenComponent".into());
    vocab.cpu_types.push("HPUX".into());
    vocab.cpu_types.push("WindowsNT".into());
    vocab.objects.push((
        ObjectId(seed),
        ObjectEntry {
            label: format!("gen#{seed}"),
            interface: InterfaceId(0),
            component: ComponentId(0),
            process: ProcessId(0),
        },
    ));
    let mut deployment = Deployment::new();
    let n0 = deployment.add_node("hp1", CpuTypeId(0));
    let n1 = deployment.add_node("nt1", CpuTypeId(1));
    deployment.add_process("client", n0);
    deployment.add_process("server", n1);
    let mut run = RunLog::new(
        (0..records as u64).map(|i| synth_record(seed, i)).collect(),
        vocab,
        deployment,
    );
    run.expected_records = declare_expected.then_some(records as u64);
    run
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn round_trips_bit_identically(
        seed in 0u64..u64::MAX,
        records in 0usize..200,
        frame in 1usize..40,
    ) {
        let run = synth_run(seed, records, seed % 2 == 0);
        let bytes = write_run_log_with_frame(&run, frame);
        let restored = read_run_log(&bytes).expect("clean segment reads strictly");
        prop_assert_eq!(&restored, &run);
        // Canonical form: re-serializing at the same framing is identical.
        prop_assert_eq!(write_run_log_with_frame(&restored, frame), bytes);
        // Framing is a storage choice, not a semantic one.
        prop_assert_eq!(read_run_log(&write_run_log(&run)).expect("default framing"), run);
    }

    #[test]
    fn random_cuts_recover_a_prefix_or_fail_cleanly(
        seed in 0u64..u64::MAX,
        records in 1usize..120,
        frame in 1usize..20,
        cut_sel in 0u64..u64::MAX,
    ) {
        let run = synth_run(seed, records, true);
        let bytes = write_run_log_with_frame(&run, frame);
        let cut = (cut_sel % bytes.len() as u64) as usize;
        check_cut(&run, &bytes, cut);
    }
}

/// The contract for one truncation point: recovery never panics; before
/// the end of the header frame it fails cleanly; after it, it returns an
/// exact chunk-aligned prefix and an exact reported shortfall.
fn check_cut(run: &RunLog, bytes: &[u8], cut: usize) {
    let header_end = next_frame(bytes, SEGMENT_MAGIC.len())
        .expect("intact segment has a header frame")
        .end;
    let truncated = &bytes[..cut];
    match recover_run_log(truncated) {
        Err(_) => {
            assert!(
                cut < header_end,
                "cut at {cut} (header ends at {header_end}) must recover, not fail"
            );
        }
        Ok(recovery) => {
            assert!(
                cut >= header_end,
                "cut at {cut} inside the header (ends {header_end}) must fail, not recover"
            );
            let got = recovery.run.records.len();
            assert!(got <= run.records.len());
            assert_eq!(
                recovery.run.records,
                run.records[..got],
                "cut at {cut}: recovered records must be a clean prefix"
            );
            assert_eq!(recovery.run.vocab, run.vocab, "cut at {cut}");
            assert_eq!(recovery.run.deployment, run.deployment, "cut at {cut}");
            let total = run.records.len() as u64;
            assert_eq!(recovery.run.expected_records, Some(total), "cut at {cut}");
            let expected_missing = total - got as u64;
            let reported = recovery.run.missing_records().unwrap_or(0);
            assert_eq!(
                reported, expected_missing,
                "cut at {cut}: shortfall must be exact"
            );
            if cut == bytes.len() {
                assert!(recovery.is_clean(), "full file recovers clean");
            } else {
                assert!(!recovery.sealed, "a cut file cannot still be sealed");
            }
        }
    }
}

/// The exhaustive acceptance case: truncate one segment at *every* byte
/// offset, 0 through the full length inclusive.
#[test]
fn truncation_at_every_byte_offset_recovers_prefix_or_reports_shortfall() {
    let run = synth_run(0xC0FFEE, 61, true);
    let bytes = write_run_log_with_frame(&run, 7);
    for cut in 0..=bytes.len() {
        check_cut(&run, &bytes, cut);
    }
}

/// Without a declared expectation the shortfall is unknowable — recovery
/// must still produce clean prefixes and must not invent a number.
#[test]
fn truncation_without_declared_expectation_stays_silent() {
    let run = synth_run(42, 30, false);
    let bytes = write_run_log_with_frame(&run, 7);
    let header_end = next_frame(&bytes, SEGMENT_MAGIC.len()).unwrap().end;
    for cut in (header_end..bytes.len()).step_by(11) {
        let recovery = recover_run_log(&bytes[..cut]).expect("recovers past header");
        let got = recovery.run.records.len();
        assert_eq!(recovery.run.records, run.records[..got]);
        assert_eq!(recovery.run.expected_records, None);
        assert_eq!(recovery.run.missing_records(), None);
    }
    // The seal carries the expectation of a *clean* close even when the
    // header had none.
    let full = recover_run_log(&bytes).unwrap();
    assert!(full.is_clean());
    assert_eq!(full.run, run);
}

/// Byte corruption (not just truncation) anywhere past the header either
/// truncates to a clean prefix or — when it hits redundant bytes like a
/// length word's high zeros — leaves the decoded run untouched.
#[test]
fn flipped_bits_never_yield_garbage_records() {
    let run = synth_run(7, 40, true);
    let bytes = write_run_log_with_frame(&run, 7);
    let header_end = next_frame(&bytes, SEGMENT_MAGIC.len()).unwrap().end;
    for target in (header_end..bytes.len()).step_by(13) {
        let mut mutated = bytes.clone();
        mutated[target] ^= 0x80;
        match recover_run_log(&mutated) {
            Ok(recovery) => {
                let got = recovery.run.records.len();
                assert_eq!(
                    recovery.run.records,
                    run.records[..got],
                    "flip at {target}: records must stay a clean prefix"
                );
            }
            Err(_) => {
                // Acceptable only if the flip destroyed framing so badly
                // that nothing past the header was scannable — still not
                // a panic and not garbage.
            }
        }
    }
}
