//! Basic query processing over the relational store.
//!
//! The paper contrasts its analyzer with tools that offer only "basic query
//! processing to present raw monitoring data (reminiscent of printf)"; this
//! module provides that baseline layer too — filtered scans and group-bys —
//! because the characterization tools sit on top of it and users need it
//! for ad-hoc inspection.

use crate::db::MonitoringDb;
use causeway_core::event::{CallKind, TraceEvent};
use causeway_core::ids::{InterfaceId, MethodIndex, ObjectId, ProcessId};
use causeway_core::record::ProbeRecord;
use causeway_core::uuid::Uuid;
use std::collections::BTreeMap;

/// A filtered scan over the record table (builder-style).
#[derive(Debug, Clone)]
pub struct Query<'a> {
    db: &'a MonitoringDb,
    process: Option<ProcessId>,
    interface: Option<InterfaceId>,
    method: Option<MethodIndex>,
    object: Option<ObjectId>,
    event: Option<TraceEvent>,
    kind: Option<CallKind>,
    chain: Option<Uuid>,
    wall_between: Option<(u64, u64)>,
}

impl MonitoringDb {
    /// Starts a query over this database.
    pub fn query(&self) -> Query<'_> {
        Query {
            db: self,
            process: None,
            interface: None,
            method: None,
            object: None,
            event: None,
            kind: None,
            chain: None,
            wall_between: None,
        }
    }
}

impl<'a> Query<'a> {
    /// Restricts to records from one process.
    pub fn process(mut self, process: ProcessId) -> Self {
        self.process = Some(process);
        self
    }

    /// Restricts to one interface.
    pub fn interface(mut self, interface: InterfaceId) -> Self {
        self.interface = Some(interface);
        self
    }

    /// Restricts to one method.
    pub fn method(mut self, method: MethodIndex) -> Self {
        self.method = Some(method);
        self
    }

    /// Restricts to one object.
    pub fn object(mut self, object: ObjectId) -> Self {
        self.object = Some(object);
        self
    }

    /// Restricts to one tracing event.
    pub fn event(mut self, event: TraceEvent) -> Self {
        self.event = Some(event);
        self
    }

    /// Restricts to one invocation kind.
    pub fn kind(mut self, kind: CallKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Restricts to one causal chain.
    pub fn chain(mut self, chain: Uuid) -> Self {
        self.chain = Some(chain);
        self
    }

    /// Restricts to records whose probe-start wall stamp lies in
    /// `[from, to)` (records without stamps never match).
    pub fn wall_between(mut self, from: u64, to: u64) -> Self {
        self.wall_between = Some((from, to));
        self
    }

    fn matches(&self, r: &ProbeRecord) -> bool {
        if let Some(p) = self.process {
            if r.site.process != p {
                return false;
            }
        }
        if let Some(i) = self.interface {
            if r.func.interface != i {
                return false;
            }
        }
        if let Some(m) = self.method {
            if r.func.method != m {
                return false;
            }
        }
        if let Some(o) = self.object {
            if r.func.object != o {
                return false;
            }
        }
        if let Some(e) = self.event {
            if r.event != e {
                return false;
            }
        }
        if let Some(k) = self.kind {
            if r.kind != k {
                return false;
            }
        }
        if let Some(c) = self.chain {
            if r.uuid != c {
                return false;
            }
        }
        if let Some((from, to)) = self.wall_between {
            match r.wall_start {
                Some(t) if t >= from && t < to => {}
                _ => return false,
            }
        }
        true
    }

    /// Materializes the matching records.
    pub fn records(&self) -> Vec<&'a ProbeRecord> {
        self.db.records().iter().filter(|r| self.matches(r)).collect()
    }

    /// Number of matching records.
    pub fn count(&self) -> usize {
        self.db.records().iter().filter(|r| self.matches(r)).count()
    }

    /// Matching records grouped and counted by process.
    pub fn count_by_process(&self) -> BTreeMap<ProcessId, usize> {
        let mut out = BTreeMap::new();
        for r in self.db.records().iter().filter(|r| self.matches(r)) {
            *out.entry(r.site.process).or_insert(0) += 1;
        }
        out
    }

    /// Matching records grouped and counted by (interface, method).
    pub fn count_by_method(&self) -> BTreeMap<(InterfaceId, MethodIndex), usize> {
        let mut out = BTreeMap::new();
        for r in self.db.records().iter().filter(|r| self.matches(r)) {
            *out.entry(r.func.method_key()).or_insert(0) += 1;
        }
        out
    }

    /// Matching records grouped and counted by chain.
    pub fn count_by_chain(&self) -> BTreeMap<Uuid, usize> {
        let mut out = BTreeMap::new();
        for r in self.db.records().iter().filter(|r| self.matches(r)) {
            *out.entry(r.uuid).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causeway_core::deploy::Deployment;
    use causeway_core::ids::*;
    use causeway_core::names::VocabSnapshot;
    use causeway_core::record::{CallSite, FunctionKey};
    use causeway_core::runlog::RunLog;

    fn rec(uuid: u128, process: u16, event: TraceEvent, method: u16, t: Option<u64>) -> ProbeRecord {
        ProbeRecord {
            uuid: Uuid(uuid),
            seq: 1,
            event,
            kind: CallKind::Sync,
            site: CallSite {
                node: NodeId(0),
                process: ProcessId(process),
                thread: LogicalThreadId(0),
            },
            func: FunctionKey::new(InterfaceId(0), MethodIndex(method), ObjectId(0)),
            wall_start: t,
            wall_end: t,
            cpu_start: None,
            cpu_end: None,
            oneway_child: None,
            oneway_parent: None,
        }
    }

    fn sample_db() -> MonitoringDb {
        MonitoringDb::from_run(RunLog::new(
            vec![
                rec(1, 0, TraceEvent::StubStart, 0, Some(10)),
                rec(1, 1, TraceEvent::SkelStart, 0, Some(20)),
                rec(2, 0, TraceEvent::StubStart, 1, Some(30)),
                rec(2, 0, TraceEvent::StubEnd, 1, None),
            ],
            VocabSnapshot::default(),
            Deployment::new(),
        ))
    }

    #[test]
    fn filters_compose() {
        let db = sample_db();
        assert_eq!(db.query().count(), 4);
        assert_eq!(db.query().process(ProcessId(0)).count(), 3);
        assert_eq!(
            db.query().process(ProcessId(0)).event(TraceEvent::StubStart).count(),
            2
        );
        assert_eq!(db.query().chain(Uuid(2)).count(), 2);
        assert_eq!(db.query().method(MethodIndex(1)).count(), 2);
        assert_eq!(db.query().kind(CallKind::Oneway).count(), 0);
    }

    #[test]
    fn time_range_excludes_unstamped() {
        let db = sample_db();
        assert_eq!(db.query().wall_between(0, 25).count(), 2);
        assert_eq!(db.query().wall_between(30, 31).count(), 1);
        assert_eq!(db.query().wall_between(0, u64::MAX).count(), 3, "unstamped excluded");
    }

    #[test]
    fn group_bys() {
        let db = sample_db();
        let by_process = db.query().count_by_process();
        assert_eq!(by_process[&ProcessId(0)], 3);
        assert_eq!(by_process[&ProcessId(1)], 1);
        let by_method = db.query().count_by_method();
        assert_eq!(by_method[&(InterfaceId(0), MethodIndex(0))], 2);
        let by_chain = db.query().count_by_chain();
        assert_eq!(by_chain[&Uuid(1)], 2);
        assert_eq!(by_chain[&Uuid(2)], 2);
    }

    #[test]
    fn records_materialize_in_table_order() {
        let db = sample_db();
        let records = db.query().process(ProcessId(0)).records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].uuid, Uuid(1));
        assert_eq!(records[2].event, TraceEvent::StubEnd);
    }
}
