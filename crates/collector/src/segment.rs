//! Durable, crash-safe log segments — the binary storage spine.
//!
//! A segment is an append-only file of length-prefixed, CRC-checksummed
//! *frames*. The first frame is a header carrying the run's dimension
//! tables (vocabulary, deployment) and the pre-declared
//! `expected_records` count; every following frame carries one sealed
//! sink [`Chunk`] in the fixed-width record encoding of
//! [`causeway_core::wire`]; a final *seal* frame records the totals of a
//! clean shutdown. A process can therefore stream its chunks to disk as
//! producers seal them, and a crash loses at most the chunks that were
//! never appended — Magpie logs events durably for exactly this reason,
//! and Chukwa-style collectors use the same append-segment shape.
//!
//! ## Frame layout
//!
//! ```text
//! file  := magic frame*
//! magic := "CWSEG01\n"                      (8 bytes)
//! frame := len:u32le crc:u32le payload      (crc = CRC-32/IEEE of payload)
//! payload[0] — frame kind:
//!   0 HEADER  version:u16  expected:opt-u64  vocab  deployment
//!   1 CHUNK   thread:u32   count:u32  count × 121-byte records
//!   2 SEAL    records:u64  expected:opt-u64
//! ```
//!
//! ## Recovery rules
//!
//! [`recover_run_log`] trusts the longest clean prefix: it verifies each
//! frame's checksum in order and **truncates at the first torn or
//! bad-checksum frame** — everything after it is discarded, even frames
//! that would verify, because an interior tear means the writer's
//! append-only discipline was violated. The header frame is the one
//! non-negotiable part: a segment whose header cannot be verified has no
//! dimension tables and recovery fails outright. The recovered
//! [`RunLog`] carries the header's (or seal's) `expected_records`, so
//! the shortfall of a crashed run surfaces through
//! [`RunLog::missing_records`] exactly like a stranded-chunk harvest.
//!
//! Checksum verification and record decoding are sharded across
//! [`pool`] workers frame-by-frame, so binary ingest of a large segment
//! parallelizes the same way JSONL line parsing does — without serde
//! and without per-line scanning, since the fixed record width makes
//! every split point pure arithmetic.

use bytes::BufMut;
use causeway_core::deploy::{Deployment, NodeInfo, ProcessInfo};
use causeway_core::ids::{CpuTypeId, InterfaceId, LogicalThreadId, NodeId, ObjectId, ProcessId};
use causeway_core::names::{ComponentId, InterfaceEntry, ObjectEntry, VocabSnapshot};
use causeway_core::pool;
use causeway_core::record::ProbeRecord;
use causeway_core::runlog::RunLog;
use causeway_core::sink::Chunk;
use causeway_core::wire::{self, RECORD_WIRE_LEN};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// The 8-byte file magic opening every segment.
pub const SEGMENT_MAGIC: &[u8; 8] = b"CWSEG01\n";

const KIND_HEADER: u8 = 0;
const KIND_CHUNK: u8 = 1;
const KIND_SEAL: u8 = 2;

const HEADER_VERSION: u16 = 1;

/// Sanity bound on one frame's payload. The reader rejects larger length
/// words as corruption, so the writer must never produce one: frames over
/// this size would be written successfully and then dropped (along with
/// everything after them) as a torn tail on recovery.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Most records one chunk frame can carry without its payload exceeding
/// [`MAX_FRAME_BYTES`] (9 bytes of chunk framing precede the records).
pub const MAX_CHUNK_RECORDS: usize = (MAX_FRAME_BYTES - 9) / RECORD_WIRE_LEN;
const _: () = assert!(9 + MAX_CHUNK_RECORDS * RECORD_WIRE_LEN <= MAX_FRAME_BYTES);

/// Records per chunk frame when serializing a flat [`RunLog`] (the live
/// writer instead frames whatever the sink sealed).
pub const DEFAULT_FRAME_RECORDS: usize = 4096;

/// Errors produced by the segment reader and writer.
#[derive(Debug)]
#[non_exhaustive]
pub enum SegmentError {
    /// An I/O operation failed.
    Io(io::Error),
    /// The bytes are not a recoverable segment (bad magic, unverifiable
    /// header, or — in strict mode — any torn frame or trailing garbage).
    Corrupt(String),
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Io(e) => write!(f, "segment i/o failed: {e}"),
            SegmentError::Corrupt(msg) => write!(f, "corrupt segment: {msg}"),
        }
    }
}

impl std::error::Error for SegmentError {}

impl From<io::Error> for SegmentError {
    fn from(e: io::Error) -> SegmentError {
        SegmentError::Io(e)
    }
}

fn corrupt(message: impl Into<String>) -> SegmentError {
    SegmentError::Corrupt(message.into())
}

// ---------------------------------------------------------------------------
// Frame primitives (shared with the analyzer's history spill).
// ---------------------------------------------------------------------------

/// Appends one `[len][crc][payload]` frame to `buf`.
///
/// # Panics
///
/// Panics when `payload` exceeds [`MAX_FRAME_BYTES`] — such a frame could
/// never be read back (use [`write_frame`] for a fallible check).
pub fn put_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_FRAME_BYTES,
        "frame payload of {} bytes exceeds MAX_FRAME_BYTES and would be unreadable",
        payload.len()
    );
    buf.put_u32_le(payload.len() as u32);
    buf.put_u32_le(wire::crc32(payload));
    buf.put_slice(payload);
}

/// Writes one frame to an output stream.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidInput`] when `payload` exceeds
/// [`MAX_FRAME_BYTES`] — the reader treats oversized frames as torn, so
/// writing one would silently discard it (and everything after it) on
/// recovery. Otherwise propagates the underlying I/O error.
pub fn write_frame(out: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame payload of {} bytes exceeds the {MAX_FRAME_BYTES}-byte frame bound",
                payload.len()
            ),
        ));
    }
    out.write_all(&(payload.len() as u32).to_le_bytes())?;
    out.write_all(&wire::crc32(payload).to_le_bytes())?;
    out.write_all(payload)
}

/// One frame lifted out of a byte stream by [`next_frame`].
#[derive(Debug, Clone, Copy)]
pub struct RawFrame<'a> {
    /// The checksummed payload (first byte is the frame kind).
    pub payload: &'a [u8],
    /// Offset of the first byte past this frame.
    pub end: usize,
    /// The stored checksum — compare against `wire::crc32(payload)`;
    /// deferred so bulk verification can run on pool workers.
    pub crc: u32,
}

/// Lifts the frame starting at `offset` out of `bytes` without verifying
/// its checksum. Returns `None` at clean end-of-input **and** on a torn
/// frame (not enough bytes for the declared length) — recovery treats
/// both as "the log ends here".
pub fn next_frame(bytes: &[u8], offset: usize) -> Option<RawFrame<'_>> {
    let rest = bytes.get(offset..)?;
    if rest.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_BYTES || rest.len() < 8 + len {
        return None;
    }
    let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
    Some(RawFrame { payload: &rest[8..8 + len], end: offset + 8 + len, crc })
}

// ---------------------------------------------------------------------------
// Payload codecs.
// ---------------------------------------------------------------------------

/// Bounded little-endian reader over a frame payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SegmentError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| corrupt("frame payload truncated"))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SegmentError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SegmentError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, SegmentError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, SegmentError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Result<String, SegmentError> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME_BYTES {
            return Err(corrupt("string length exceeds sanity bound"));
        }
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| corrupt("invalid utf-8 in header string"))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, SegmentError> {
        let present = self.u8()?;
        let value = self.u64()?;
        match present {
            0 => Ok(None),
            1 => Ok(Some(value)),
            other => Err(corrupt(format!("bad option flag {other}"))),
        }
    }

    fn done(&self) -> Result<(), SegmentError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(corrupt(format!("{} trailing payload bytes", self.bytes.len() - self.pos)))
        }
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    buf.put_u8(v.is_some() as u8);
    buf.put_u64_le(v.unwrap_or(0));
}

fn encode_header(
    vocab: &VocabSnapshot,
    deployment: &Deployment,
    expected_records: Option<u64>,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1024);
    buf.put_u8(KIND_HEADER);
    buf.put_u16_le(HEADER_VERSION);
    put_opt_u64(&mut buf, expected_records);
    buf.put_u32_le(vocab.interfaces.len() as u32);
    for iface in &vocab.interfaces {
        put_str(&mut buf, &iface.name);
        buf.put_u32_le(iface.methods.len() as u32);
        for method in &iface.methods {
            put_str(&mut buf, method);
        }
    }
    buf.put_u32_le(vocab.components.len() as u32);
    for c in &vocab.components {
        put_str(&mut buf, c);
    }
    buf.put_u32_le(vocab.cpu_types.len() as u32);
    for c in &vocab.cpu_types {
        put_str(&mut buf, c);
    }
    buf.put_u32_le(vocab.objects.len() as u32);
    for (id, entry) in &vocab.objects {
        buf.put_u64_le(id.0);
        put_str(&mut buf, &entry.label);
        buf.put_u32_le(entry.interface.0);
        buf.put_u32_le(entry.component.0);
        buf.put_u16_le(entry.process.0);
    }
    buf.put_u32_le(deployment.nodes.len() as u32);
    for node in &deployment.nodes {
        put_str(&mut buf, &node.name);
        buf.put_u16_le(node.cpu_type.0);
    }
    buf.put_u32_le(deployment.processes.len() as u32);
    for process in &deployment.processes {
        put_str(&mut buf, &process.name);
        buf.put_u16_le(process.node.0);
    }
    buf
}

struct Header {
    vocab: VocabSnapshot,
    deployment: Deployment,
    expected_records: Option<u64>,
}

fn decode_header(payload: &[u8]) -> Result<Header, SegmentError> {
    let mut r = Reader::new(payload);
    if r.u8()? != KIND_HEADER {
        return Err(corrupt("first frame is not a header"));
    }
    let version = r.u16()?;
    if version != HEADER_VERSION {
        return Err(corrupt(format!("unsupported segment version {version}")));
    }
    let expected_records = r.opt_u64()?;
    let mut vocab = VocabSnapshot::default();
    let bounded = |n: u32| -> Result<usize, SegmentError> {
        let n = n as usize;
        if n > MAX_FRAME_BYTES { Err(corrupt("count exceeds sanity bound")) } else { Ok(n) }
    };
    for _ in 0..bounded(r.u32()?)? {
        let name = r.str()?;
        let mut methods = Vec::new();
        for _ in 0..bounded(r.u32()?)? {
            methods.push(r.str()?);
        }
        vocab.interfaces.push(InterfaceEntry { name, methods });
    }
    for _ in 0..bounded(r.u32()?)? {
        vocab.components.push(r.str()?);
    }
    for _ in 0..bounded(r.u32()?)? {
        vocab.cpu_types.push(r.str()?);
    }
    for _ in 0..bounded(r.u32()?)? {
        let id = ObjectId(r.u64()?);
        let label = r.str()?;
        let interface = InterfaceId(r.u32()?);
        let component = ComponentId(r.u32()?);
        let process = ProcessId(r.u16()?);
        vocab.objects.push((id, ObjectEntry { label, interface, component, process }));
    }
    let mut deployment = Deployment::new();
    for _ in 0..bounded(r.u32()?)? {
        let name = r.str()?;
        let cpu_type = CpuTypeId(r.u16()?);
        deployment.nodes.push(NodeInfo { name, cpu_type });
    }
    for _ in 0..bounded(r.u32()?)? {
        let name = r.str()?;
        let node = NodeId(r.u16()?);
        deployment.processes.push(ProcessInfo { name, node });
    }
    r.done()?;
    Ok(Header { vocab, deployment, expected_records })
}

fn encode_chunk(thread: LogicalThreadId, records: &[ProbeRecord]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(9 + records.len() * RECORD_WIRE_LEN);
    buf.put_u8(KIND_CHUNK);
    buf.put_u32_le(thread.0);
    buf.put_u32_le(records.len() as u32);
    for record in records {
        wire::encode_record(record, &mut buf);
    }
    buf
}

fn decode_chunk(payload: &[u8]) -> Result<Chunk, SegmentError> {
    let mut r = Reader::new(payload);
    if r.u8()? != KIND_CHUNK {
        return Err(corrupt("not a chunk frame"));
    }
    let thread = LogicalThreadId(r.u32()?);
    let count = r.u32()? as usize;
    let body = r.take(
        count
            .checked_mul(RECORD_WIRE_LEN)
            .ok_or_else(|| corrupt("chunk record count overflows"))?,
    )?;
    r.done()?;
    let records = wire::decode_records(body)
        .map_err(|e| corrupt(format!("chunk record decode failed: {e}")))?;
    Ok(Chunk { thread, records })
}

fn encode_seal(records: u64, expected_records: Option<u64>) -> Vec<u8> {
    let mut buf = Vec::with_capacity(18);
    buf.put_u8(KIND_SEAL);
    buf.put_u64_le(records);
    put_opt_u64(&mut buf, expected_records);
    buf
}

fn decode_seal(payload: &[u8]) -> Result<(u64, Option<u64>), SegmentError> {
    let mut r = Reader::new(payload);
    if r.u8()? != KIND_SEAL {
        return Err(corrupt("not a seal frame"));
    }
    let records = r.u64()?;
    let expected = r.opt_u64()?;
    r.done()?;
    Ok((records, expected))
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

/// Streams a run's sealed chunks to an append-only segment file.
///
/// The header frame is written (and flushed) on creation, so even a
/// process killed immediately afterwards leaves a recoverable — if empty
/// — segment behind. Every appended chunk frame is flushed through the
/// OS before `append_chunk` returns: a crash loses only chunks the sink
/// had not yet sealed, never bytes buffered inside this writer.
///
/// # Example
///
/// ```
/// use causeway_collector::segment::{self, SegmentWriter};
/// use causeway_core::{deploy::Deployment, names::VocabSnapshot, sink::Chunk};
/// use causeway_core::ids::LogicalThreadId;
///
/// let path = std::env::temp_dir().join("segment_doc_example.cwseg");
/// let mut writer =
///     SegmentWriter::create(&path, &VocabSnapshot::default(), &Deployment::new(), Some(0))
///         .unwrap();
/// writer.append_chunk(&Chunk { thread: LogicalThreadId(0), records: vec![] }).unwrap();
/// writer.finish(Some(0)).unwrap();
/// let recovery = segment::recover_run_log(&std::fs::read(&path).unwrap()).unwrap();
/// assert!(recovery.sealed);
/// # std::fs::remove_file(&path).ok();
/// ```
#[derive(Debug)]
pub struct SegmentWriter {
    out: BufWriter<File>,
    records_written: u64,
    sealed: bool,
}

impl SegmentWriter {
    /// Creates (truncating) a segment file and writes its header frame.
    ///
    /// `expected_records` is the pre-declared record count, when the
    /// workload knows it up front — it is what lets recovery of a crashed
    /// run report an exact shortfall. Pass `None` for open-ended runs and
    /// declare the final expectation at [`SegmentWriter::finish`].
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn create(
        path: impl AsRef<Path>,
        vocab: &VocabSnapshot,
        deployment: &Deployment,
        expected_records: Option<u64>,
    ) -> io::Result<SegmentWriter> {
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        out.write_all(SEGMENT_MAGIC)?;
        write_frame(&mut out, &encode_header(vocab, deployment, expected_records))?;
        out.flush()?;
        Ok(SegmentWriter { out, records_written: 0, sealed: false })
    }

    /// Appends one sealed sink chunk as a checksummed frame and flushes.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn append_chunk(&mut self, chunk: &Chunk) -> io::Result<()> {
        self.append_records(chunk.thread, &chunk.records)
    }

    /// Appends an explicit record batch as chunk frames and flushes. A
    /// batch larger than [`MAX_CHUNK_RECORDS`] is split across several
    /// frames, so no frame ever exceeds the [`MAX_FRAME_BYTES`] bound the
    /// reader enforces.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn append_records(
        &mut self,
        thread: LogicalThreadId,
        records: &[ProbeRecord],
    ) -> io::Result<()> {
        self.append_records_capped(thread, records, MAX_CHUNK_RECORDS)
    }

    fn append_records_capped(
        &mut self,
        thread: LogicalThreadId,
        records: &[ProbeRecord],
        records_per_frame: usize,
    ) -> io::Result<()> {
        if records.is_empty() {
            write_frame(&mut self.out, &encode_chunk(thread, records))?;
        } else {
            for batch in records.chunks(records_per_frame.max(1)) {
                write_frame(&mut self.out, &encode_chunk(thread, batch))?;
            }
        }
        self.out.flush()?;
        self.records_written += records.len() as u64;
        Ok(())
    }

    /// Records appended so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Writes the seal frame and syncs the file to stable storage.
    ///
    /// `expected_records` supersedes the header's declaration (an
    /// open-ended run learns its expectation only at shutdown).
    ///
    /// # Errors
    ///
    /// Propagates write and sync errors.
    pub fn finish(mut self, expected_records: Option<u64>) -> io::Result<()> {
        write_frame(&mut self.out, &encode_seal(self.records_written, expected_records))?;
        self.out.flush()?;
        self.sealed = true;
        self.out.get_ref().sync_all()
    }
}

/// Serializes a whole run log to segment bytes with the default framing.
pub fn write_run_log(run: &RunLog) -> Vec<u8> {
    write_run_log_with_frame(run, DEFAULT_FRAME_RECORDS)
}

/// Serializes a run log, packing `records_per_frame` records into each
/// chunk frame (smaller frames recover at finer granularity and shard
/// wider; the tests use tiny frames to exercise many boundaries). The
/// count is clamped to `1..=`[`MAX_CHUNK_RECORDS`] so every frame stays
/// within the reader's [`MAX_FRAME_BYTES`] bound.
pub fn write_run_log_with_frame(run: &RunLog, records_per_frame: usize) -> Vec<u8> {
    let records_per_frame = records_per_frame.clamp(1, MAX_CHUNK_RECORDS);
    let mut buf = Vec::with_capacity(
        16 + run.records.len() * (RECORD_WIRE_LEN + 2) + 1024,
    );
    buf.put_slice(SEGMENT_MAGIC);
    put_frame(&mut buf, &encode_header(&run.vocab, &run.deployment, run.expected_records));
    for batch in run.records.chunks(records_per_frame) {
        let thread = batch.first().map(|r| r.site.thread).unwrap_or(LogicalThreadId(0));
        put_frame(&mut buf, &encode_chunk(thread, batch));
    }
    put_frame(&mut buf, &encode_seal(run.records.len() as u64, run.expected_records));
    buf
}

// ---------------------------------------------------------------------------
// Recovery.
// ---------------------------------------------------------------------------

/// The outcome of [`recover_run_log`].
#[derive(Debug)]
pub struct Recovery {
    /// The recovered run: the longest clean frame prefix, with
    /// `expected_records` restored from the header (or seal) so
    /// [`RunLog::missing_records`] reports the crash's shortfall.
    pub run: RunLog,
    /// `true` when a valid seal frame closed the segment — a clean
    /// shutdown, not a crash.
    pub sealed: bool,
    /// Chunk frames recovered.
    pub chunk_frames: usize,
    /// Bytes discarded after the last verifiable frame (0 for a clean
    /// file).
    pub truncated_bytes: u64,
}

impl Recovery {
    /// `true` when the segment was complete: sealed, nothing discarded.
    pub fn is_clean(&self) -> bool {
        self.sealed && self.truncated_bytes == 0
    }
}

/// Body of one verified non-header frame.
enum FrameBody {
    Chunk(Chunk),
    Seal { records: u64, expected: Option<u64> },
}

fn verify_frame(frame: &RawFrame<'_>) -> Result<FrameBody, SegmentError> {
    if wire::crc32(frame.payload) != frame.crc {
        return Err(corrupt("frame checksum mismatch"));
    }
    match frame.payload.first() {
        Some(&KIND_CHUNK) => decode_chunk(frame.payload).map(FrameBody::Chunk),
        Some(&KIND_SEAL) => {
            decode_seal(frame.payload).map(|(records, expected)| FrameBody::Seal { records, expected })
        }
        Some(&KIND_HEADER) => Err(corrupt("header frame repeated mid-segment")),
        Some(&kind) => Err(corrupt(format!("unknown frame kind {kind}"))),
        None => Err(corrupt("empty frame")),
    }
}

/// Recovers a run log from segment bytes, truncating at the first torn
/// or bad-checksum frame, on [`pool::configured_threads`] workers.
///
/// # Errors
///
/// Returns [`SegmentError::Corrupt`] only when the magic or the header
/// frame itself cannot be verified — past the header, damage truncates
/// instead of failing.
pub fn recover_run_log(bytes: &[u8]) -> Result<Recovery, SegmentError> {
    recover_run_log_with_threads(bytes, pool::configured_threads())
}

/// Like [`recover_run_log`] with an explicit worker count. Results are
/// identical at any thread count.
///
/// # Errors
///
/// Returns [`SegmentError::Corrupt`] when the magic or header frame is
/// unverifiable.
pub fn recover_run_log_with_threads(
    bytes: &[u8],
    threads: usize,
) -> Result<Recovery, SegmentError> {
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err(corrupt("missing segment magic"));
    }
    let header_frame = next_frame(bytes, SEGMENT_MAGIC.len())
        .ok_or_else(|| corrupt("header frame torn"))?;
    if wire::crc32(header_frame.payload) != header_frame.crc {
        return Err(corrupt("header frame checksum mismatch"));
    }
    let header = decode_header(header_frame.payload)?;

    // Serial scan: frame boundaries only (length hops — no checksums yet).
    let mut frames: Vec<RawFrame<'_>> = Vec::new();
    let mut cursor = header_frame.end;
    while let Some(frame) = next_frame(bytes, cursor) {
        cursor = frame.end;
        frames.push(frame);
    }

    // Parallel verify + decode; the fold below truncates at the first
    // frame that fails, exactly as a serial scan would.
    let verified = pool::par_map(&frames, threads, verify_frame);

    let mut run = RunLog::new(Vec::new(), header.vocab, header.deployment);
    run.expected_records = header.expected_records;
    let mut sealed = false;
    let mut chunk_frames = 0usize;
    let mut good_end = header_frame.end;
    for (frame, body) in frames.iter().zip(verified) {
        match body {
            // A chunk after the seal means the writer was violated; the
            // seal stays authoritative and the rest is discarded.
            Ok(FrameBody::Chunk(chunk)) if !sealed => {
                run.push_chunk(chunk);
                chunk_frames += 1;
                good_end = frame.end;
            }
            Ok(FrameBody::Seal { records, expected }) if !sealed => {
                if records != run.records.len() as u64 {
                    // The seal disagrees with what precedes it: trust the
                    // verified chunks, drop the seal.
                    break;
                }
                sealed = true;
                run.expected_records = expected;
                good_end = frame.end;
            }
            _ => break,
        }
    }
    Ok(Recovery {
        run,
        sealed,
        chunk_frames,
        truncated_bytes: (bytes.len() - good_end) as u64,
    })
}

/// Strictly reads a *complete* segment: sealed, checksums verified,
/// nothing truncated, on [`pool::configured_threads`] workers.
///
/// # Errors
///
/// Returns [`SegmentError::Corrupt`] for anything [`recover_run_log`]
/// would have had to repair.
pub fn read_run_log(bytes: &[u8]) -> Result<RunLog, SegmentError> {
    read_run_log_with_threads(bytes, pool::configured_threads())
}

/// Like [`read_run_log`] with an explicit worker count.
///
/// # Errors
///
/// Returns [`SegmentError::Corrupt`] on any damage or incompleteness.
pub fn read_run_log_with_threads(bytes: &[u8], threads: usize) -> Result<RunLog, SegmentError> {
    let recovery = recover_run_log_with_threads(bytes, threads)?;
    if !recovery.sealed {
        return Err(corrupt("segment is not sealed (crashed writer?)"));
    }
    if recovery.truncated_bytes != 0 {
        return Err(corrupt(format!(
            "{} bytes of damaged or trailing frames",
            recovery.truncated_bytes
        )));
    }
    Ok(recovery.run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use causeway_core::event::{CallKind, TraceEvent};
    use causeway_core::ids::MethodIndex;
    use causeway_core::record::{CallSite, FunctionKey};
    use causeway_core::uuid::Uuid;

    fn rec(seq: u64) -> ProbeRecord {
        ProbeRecord {
            uuid: Uuid(seq as u128 + 7),
            seq,
            event: TraceEvent::ALL[(seq % 4) as usize],
            kind: CallKind::Sync,
            site: CallSite {
                node: NodeId(0),
                process: ProcessId((seq % 3) as u16),
                thread: LogicalThreadId((seq % 5) as u32),
            },
            func: FunctionKey::new(InterfaceId(1), MethodIndex(0), ObjectId(seq)),
            wall_start: Some(seq * 10),
            wall_end: Some(seq * 10 + 5),
            cpu_start: None,
            cpu_end: None,
            oneway_child: None,
            oneway_parent: None,
        }
    }

    fn sample_run(records: usize) -> RunLog {
        let mut vocab = VocabSnapshot::default();
        vocab.interfaces.push(InterfaceEntry {
            name: "Pipe::Stage".into(),
            methods: vec!["run".into(), "notify".into()],
        });
        vocab.components.push("StageComponent".into());
        vocab.cpu_types.push("HPUX".into());
        vocab.objects.push((
            ObjectId(0),
            ObjectEntry {
                label: "stage#0".into(),
                interface: InterfaceId(0),
                component: ComponentId(0),
                process: ProcessId(1),
            },
        ));
        let mut deployment = Deployment::new();
        let n = deployment.add_node("hp1", CpuTypeId(0));
        deployment.add_process("client", n);
        deployment.add_process("server", n);
        let mut run =
            RunLog::new((0..records as u64).map(rec).collect(), vocab, deployment);
        run.expected_records = Some(records as u64);
        run
    }

    #[test]
    fn round_trips_bit_identically() {
        let run = sample_run(100);
        let bytes = write_run_log(&run);
        let restored = read_run_log(&bytes).unwrap();
        assert_eq!(restored, run);
        // And re-serialization is byte-identical: the format is canonical.
        assert_eq!(write_run_log(&restored), bytes);
    }

    #[test]
    fn empty_run_round_trips() {
        let run = sample_run(0);
        let recovery = recover_run_log(&write_run_log(&run)).unwrap();
        assert!(recovery.is_clean());
        assert_eq!(recovery.run, run);
    }

    #[test]
    fn recovery_truncates_at_a_flipped_bit() {
        let run = sample_run(64);
        let mut bytes = write_run_log_with_frame(&run, 16);
        // Flip one record byte inside the third chunk frame.
        let target = bytes.len() - 200;
        bytes[target] ^= 0x40;
        let recovery = recover_run_log(&bytes).unwrap();
        assert!(!recovery.is_clean());
        assert!(recovery.chunk_frames < 4);
        assert_eq!(
            recovery.run.records,
            run.records[..recovery.run.records.len()],
            "recovered records are a clean prefix"
        );
        assert_eq!(
            recovery.run.missing_records(),
            Some(64 - recovery.run.records.len() as u64),
            "shortfall is exact"
        );
        assert!(read_run_log(&bytes).is_err(), "strict mode refuses damage");
    }

    #[test]
    fn unsealed_segment_recovers_but_fails_strict_read() {
        let run = sample_run(32);
        let full = write_run_log_with_frame(&run, 8);
        // Drop the seal frame (1 + 8 + 9 payload + 8 framing = 26 bytes).
        let seal_len = 8 + 18;
        let bytes = &full[..full.len() - seal_len];
        let recovery = recover_run_log(bytes).unwrap();
        assert!(!recovery.sealed);
        assert_eq!(recovery.run.records, run.records);
        assert_eq!(recovery.run.expected_records, Some(32), "header expectation survives");
        assert!(read_run_log(bytes).is_err());
    }

    #[test]
    fn bad_magic_and_torn_header_fail_outright() {
        assert!(recover_run_log(b"").is_err());
        assert!(recover_run_log(b"NOTSEG!\n rest").is_err());
        let bytes = write_run_log(&sample_run(4));
        // Cut inside the header frame.
        assert!(recover_run_log(&bytes[..SEGMENT_MAGIC.len() + 6]).is_err());
        // Corrupt the header payload.
        let mut broken = bytes.clone();
        broken[SEGMENT_MAGIC.len() + 12] ^= 0xFF;
        assert!(recover_run_log(&broken).is_err());
    }

    #[test]
    fn frames_after_the_seal_are_discarded() {
        let run = sample_run(8);
        let mut bytes = write_run_log_with_frame(&run, 8);
        put_frame(&mut bytes, &encode_chunk(LogicalThreadId(9), &[rec(99)]));
        let recovery = recover_run_log(&bytes).unwrap();
        assert!(recovery.sealed);
        assert_eq!(recovery.run.records, run.records);
        assert!(recovery.truncated_bytes > 0);
        assert!(read_run_log(&bytes).is_err());
    }

    #[test]
    fn recovery_is_thread_count_invariant() {
        let run = sample_run(200);
        let mut bytes = write_run_log_with_frame(&run, 16);
        let target = bytes.len() - 500;
        bytes[target] ^= 1;
        let serial = recover_run_log_with_threads(&bytes, 1).unwrap();
        for threads in [2, 4, 7] {
            let parallel = recover_run_log_with_threads(&bytes, threads).unwrap();
            assert_eq!(parallel.run, serial.run);
            assert_eq!(parallel.truncated_bytes, serial.truncated_bytes);
            assert_eq!(parallel.chunk_frames, serial.chunk_frames);
        }
    }

    #[test]
    fn write_frame_refuses_payloads_the_reader_would_drop() {
        let payload = vec![0u8; MAX_FRAME_BYTES + 1];
        let err = write_frame(&mut Vec::new(), &payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // At the bound itself the frame is still writable and readable.
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload[..MAX_FRAME_BYTES]).unwrap();
        assert!(next_frame(&buf, 0).is_some());
    }

    #[test]
    fn oversized_batches_split_into_multiple_recoverable_frames() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("segment_split_test_{}.cwseg", std::process::id()));
        let run = sample_run(10);
        {
            let mut writer =
                SegmentWriter::create(&path, &run.vocab, &run.deployment, Some(10)).unwrap();
            // A tiny per-frame cap stands in for MAX_CHUNK_RECORDS: one
            // append call, several frames, nothing dropped.
            writer
                .append_records_capped(run.records[0].site.thread, &run.records, 3)
                .unwrap();
            assert_eq!(writer.records_written(), 10);
            writer.finish(Some(10)).unwrap();
        }
        let recovery = recover_run_log(&std::fs::read(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(recovery.is_clean());
        assert_eq!(recovery.chunk_frames, 4, "10 records at 3 per frame");
        assert_eq!(recovery.run.records, run.records);
    }

    #[test]
    fn writer_streams_chunks_and_survives_a_missing_seal() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("segment_writer_test_{}.cwseg", std::process::id()));
        let run = sample_run(40);
        {
            let mut writer =
                SegmentWriter::create(&path, &run.vocab, &run.deployment, Some(40)).unwrap();
            for batch in run.records.chunks(16) {
                writer
                    .append_records(batch[0].site.thread, batch)
                    .unwrap();
            }
            assert_eq!(writer.records_written(), 40);
            // No finish(): simulate a crash before the seal.
        }
        let recovery = recover_run_log(&std::fs::read(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(!recovery.sealed);
        assert_eq!(recovery.run.records, run.records);
        assert_eq!(recovery.run.expected_records, Some(40));
        assert_eq!(recovery.run.missing_records(), None, "nothing was lost");
    }
}
