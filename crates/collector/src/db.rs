//! The relational monitoring database.

use causeway_core::deploy::Deployment;
use causeway_core::event::TraceEvent;
use causeway_core::names::VocabSnapshot;
use causeway_core::pool;
use causeway_core::record::ProbeRecord;
use causeway_core::runlog::RunLog;
use causeway_core::uuid::Uuid;
use std::collections::{HashMap, HashSet};

/// Scale statistics of a run — the shape numbers the paper reports for its
/// commercial system ("about 195,000 calls, with a total of 801 unique
/// methods in 155 unique interfaces from 176 unique components … 32
/// threads … 4 processes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScaleStats {
    /// Total probe records.
    pub total_records: usize,
    /// Number of invocations (stub-start events).
    pub calls: usize,
    /// Distinct (interface, method) pairs invoked.
    pub unique_methods: usize,
    /// Distinct interfaces invoked.
    pub unique_interfaces: usize,
    /// Distinct components owning invoked objects.
    pub unique_components: usize,
    /// Distinct objects invoked.
    pub unique_objects: usize,
    /// Distinct causal chains (Function UUIDs).
    pub unique_chains: usize,
    /// Distinct (process, logical thread) pairs that recorded probes.
    pub threads: usize,
    /// Distinct processes that recorded probes.
    pub processes: usize,
}

/// The synthesized relational store over one run's records.
#[derive(Debug, Clone)]
pub struct MonitoringDb {
    run: RunLog,
    /// Record indexes per chain, sorted by ascending event number (the
    /// paper's "second query").
    by_uuid: HashMap<Uuid, Vec<usize>>,
    /// Chains in first-appearance order, for deterministic iteration.
    uuid_order: Vec<Uuid>,
}

impl MonitoringDb {
    /// Synthesizes the database from a harvested run, sorting per-chain
    /// indexes on [`pool::configured_threads`] workers.
    pub fn from_run(run: RunLog) -> MonitoringDb {
        MonitoringDb::from_run_with_threads(run, pool::configured_threads())
    }

    /// Like [`MonitoringDb::from_run`] with an explicit worker count. The
    /// per-chain sorts are independent, so the result is identical at any
    /// thread count.
    pub fn from_run_with_threads(run: RunLog, threads: usize) -> MonitoringDb {
        let mut by_uuid: HashMap<Uuid, Vec<usize>> = HashMap::new();
        let mut uuid_order = Vec::new();
        for (idx, record) in run.records.iter().enumerate() {
            let entry = by_uuid.entry(record.uuid).or_insert_with(|| {
                uuid_order.push(record.uuid);
                Vec::new()
            });
            entry.push(idx);
        }
        let records = &run.records;
        let mut chains: Vec<&mut Vec<usize>> = by_uuid.values_mut().collect();
        pool::par_for_each_mut(&mut chains, threads, |indexes| {
            // Ascending event number; ties (which only occur in corrupted
            // logs) break by probe order then record index for determinism.
            indexes.sort_by_key(|&i| (records[i].seq, records[i].event.probe_number(), i));
        });
        drop(chains);
        MonitoringDb { run, by_uuid, uuid_order }
    }

    /// The full record table.
    pub fn records(&self) -> &[ProbeRecord] {
        &self.run.records
    }

    /// The name dimension tables.
    pub fn vocab(&self) -> &VocabSnapshot {
        &self.run.vocab
    }

    /// The deployment dimension table.
    pub fn deployment(&self) -> &Deployment {
        &self.run.deployment
    }

    /// The underlying run (for re-export).
    pub fn run(&self) -> &RunLog {
        &self.run
    }

    /// The set of unique Function UUIDs ever created, in first-appearance
    /// order — the analyzer's first query.
    pub fn unique_uuids(&self) -> &[Uuid] {
        &self.uuid_order
    }

    /// The events of one chain sorted by ascending event number — the
    /// analyzer's second query.
    pub fn events_for(&self, uuid: Uuid) -> Vec<&ProbeRecord> {
        self.by_uuid
            .get(&uuid)
            .map(|indexes| indexes.iter().map(|&i| &self.run.records[i]).collect())
            .unwrap_or_default()
    }

    /// Scale statistics over the whole run.
    pub fn scale_stats(&self) -> ScaleStats {
        let mut methods = HashSet::new();
        let mut interfaces = HashSet::new();
        let mut components = HashSet::new();
        let mut objects = HashSet::new();
        let mut threads = HashSet::new();
        let mut processes = HashSet::new();
        let mut calls = 0usize;
        for r in &self.run.records {
            if r.event == TraceEvent::StubStart {
                calls += 1;
            }
            methods.insert(r.func.method_key());
            interfaces.insert(r.func.interface);
            objects.insert(r.func.object);
            if let Some(obj) = self.run.vocab.object(r.func.object) {
                components.insert(obj.component);
            }
            threads.insert((r.site.process, r.site.thread));
            processes.insert(r.site.process);
        }
        ScaleStats {
            total_records: self.run.records.len(),
            calls,
            unique_methods: methods.len(),
            unique_interfaces: interfaces.len(),
            unique_components: components.len(),
            unique_objects: objects.len(),
            unique_chains: self.uuid_order.len(),
            threads: threads.len(),
            processes: processes.len(),
        }
    }
}

/// Incremental database builder fed by sealed log chunks.
///
/// A collector can accumulate records chunk-by-chunk as producers seal
/// them — pulling from [`causeway_core::sink::LogStore::try_recv_chunk`]
/// while the run is still executing — and synthesize the database once,
/// at the end. The post-hoc [`MonitoringDb::from_run`] path remains for
/// harvested [`RunLog`]s.
#[derive(Debug, Default)]
pub struct DbBuilder {
    records: Vec<ProbeRecord>,
}

impl DbBuilder {
    /// An empty builder.
    pub fn new() -> DbBuilder {
        DbBuilder::default()
    }

    /// Appends one sealed chunk's records.
    pub fn ingest_chunk(&mut self, chunk: causeway_core::sink::Chunk) {
        self.records.extend(chunk.records);
    }

    /// Appends loose records (e.g. merged from another domain's drain).
    pub fn ingest_records(&mut self, records: impl IntoIterator<Item = ProbeRecord>) {
        self.records.extend(records);
    }

    /// Records accumulated so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Synthesizes the database with the run's dimension tables.
    pub fn finish(self, vocab: VocabSnapshot, deployment: Deployment) -> MonitoringDb {
        MonitoringDb::from_run(RunLog::new(self.records, vocab, deployment))
    }

    /// Like [`DbBuilder::finish`] with an explicit worker count for the
    /// per-chain index sorts.
    pub fn finish_with_threads(
        self,
        vocab: VocabSnapshot,
        deployment: Deployment,
        threads: usize,
    ) -> MonitoringDb {
        MonitoringDb::from_run_with_threads(RunLog::new(self.records, vocab, deployment), threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causeway_core::event::CallKind;
    use causeway_core::ids::*;
    use causeway_core::record::{CallSite, FunctionKey};

    fn rec(uuid: u128, seq: u64, event: TraceEvent) -> ProbeRecord {
        ProbeRecord {
            uuid: Uuid(uuid),
            seq,
            event,
            kind: CallKind::Sync,
            site: CallSite {
                node: NodeId(0),
                process: ProcessId(0),
                thread: LogicalThreadId(0),
            },
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(0)),
            wall_start: None,
            wall_end: None,
            cpu_start: None,
            cpu_end: None,
            oneway_child: None,
            oneway_parent: None,
        }
    }

    fn db_from(records: Vec<ProbeRecord>) -> MonitoringDb {
        MonitoringDb::from_run(RunLog::new(records, VocabSnapshot::default(), Deployment::new()))
    }

    #[test]
    fn events_are_sorted_by_seq_per_uuid() {
        // Insert out of order, as scattered multi-thread logs would be.
        let db = db_from(vec![
            rec(1, 3, TraceEvent::SkelEnd),
            rec(2, 1, TraceEvent::StubStart),
            rec(1, 1, TraceEvent::StubStart),
            rec(1, 4, TraceEvent::StubEnd),
            rec(1, 2, TraceEvent::SkelStart),
            rec(2, 2, TraceEvent::StubEnd),
        ]);
        assert_eq!(db.unique_uuids(), &[Uuid(1), Uuid(2)]);
        let events: Vec<u64> = db.events_for(Uuid(1)).iter().map(|r| r.seq).collect();
        assert_eq!(events, vec![1, 2, 3, 4]);
        let events: Vec<u64> = db.events_for(Uuid(2)).iter().map(|r| r.seq).collect();
        assert_eq!(events, vec![1, 2]);
        assert!(db.events_for(Uuid(99)).is_empty());
    }

    #[test]
    fn duplicate_seq_ties_break_by_probe_order() {
        let db = db_from(vec![
            rec(1, 1, TraceEvent::SkelStart),
            rec(1, 1, TraceEvent::StubStart),
        ]);
        let events: Vec<TraceEvent> = db.events_for(Uuid(1)).iter().map(|r| r.event).collect();
        assert_eq!(events, vec![TraceEvent::StubStart, TraceEvent::SkelStart]);
    }

    #[test]
    fn scale_stats_count_distinct_dimensions() {
        let mut records = vec![
            rec(1, 1, TraceEvent::StubStart),
            rec(1, 2, TraceEvent::SkelStart),
            rec(1, 3, TraceEvent::SkelEnd),
            rec(1, 4, TraceEvent::StubEnd),
            rec(2, 1, TraceEvent::StubStart),
        ];
        records[4].func = FunctionKey::new(InterfaceId(1), MethodIndex(3), ObjectId(9));
        records[4].site.process = ProcessId(2);
        let db = db_from(records);
        let stats = db.scale_stats();
        assert_eq!(stats.total_records, 5);
        assert_eq!(stats.calls, 2);
        assert_eq!(stats.unique_methods, 2);
        assert_eq!(stats.unique_interfaces, 2);
        assert_eq!(stats.unique_objects, 2);
        assert_eq!(stats.unique_chains, 2);
        assert_eq!(stats.processes, 2);
        assert_eq!(stats.threads, 2);
    }

    #[test]
    fn empty_db_is_well_behaved() {
        let db = db_from(vec![]);
        assert!(db.unique_uuids().is_empty());
        assert_eq!(db.scale_stats(), ScaleStats::default());
    }

    #[test]
    fn parallel_synthesis_matches_serial() {
        let records = vec![
            rec(1, 3, TraceEvent::SkelEnd),
            rec(2, 1, TraceEvent::StubStart),
            rec(1, 1, TraceEvent::StubStart),
            rec(3, 1, TraceEvent::StubStart),
            rec(1, 4, TraceEvent::StubEnd),
            rec(1, 2, TraceEvent::SkelStart),
            rec(2, 2, TraceEvent::StubEnd),
            rec(3, 2, TraceEvent::StubEnd),
        ];
        let run = RunLog::new(records, VocabSnapshot::default(), Deployment::new());
        let serial = MonitoringDb::from_run_with_threads(run.clone(), 1);
        for threads in [2, 4, 7] {
            let parallel = MonitoringDb::from_run_with_threads(run.clone(), threads);
            assert_eq!(serial.unique_uuids(), parallel.unique_uuids());
            for &uuid in serial.unique_uuids() {
                assert_eq!(serial.events_for(uuid), parallel.events_for(uuid));
            }
        }
    }

    #[test]
    fn builder_over_chunks_matches_post_hoc_synthesis() {
        use causeway_core::sink::Chunk;
        let records = vec![
            rec(1, 1, TraceEvent::StubStart),
            rec(1, 2, TraceEvent::SkelStart),
            rec(1, 3, TraceEvent::SkelEnd),
            rec(1, 4, TraceEvent::StubEnd),
            rec(2, 1, TraceEvent::StubStart),
        ];
        let mut builder = DbBuilder::new();
        assert!(builder.is_empty());
        // Stream the same records as two thread-chunks plus a loose tail.
        builder.ingest_chunk(Chunk {
            thread: LogicalThreadId(0),
            records: records[..2].to_vec(),
        });
        builder.ingest_chunk(Chunk {
            thread: LogicalThreadId(1),
            records: records[2..4].to_vec(),
        });
        builder.ingest_records(records[4..].iter().cloned());
        assert_eq!(builder.len(), 5);
        let streamed = builder.finish(VocabSnapshot::default(), Deployment::new());
        let posthoc = db_from(records);
        assert_eq!(streamed.scale_stats(), posthoc.scale_stats());
        assert_eq!(streamed.unique_uuids(), posthoc.unique_uuids());
        let streamed_events: Vec<u64> =
            streamed.events_for(Uuid(1)).iter().map(|r| r.seq).collect();
        assert_eq!(streamed_events, vec![1, 2, 3, 4]);
    }
}
