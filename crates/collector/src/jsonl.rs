//! Line-oriented persistence for run logs.
//!
//! Format: the first line is a header object carrying the vocabulary and
//! deployment dimension tables; every following line is one probe record.
//! The format is append-friendly (a crashed process's partial log is still
//! readable up to the crash point) and diff-friendly.

use crate::json::{Json, JsonError, parse};
use causeway_core::deploy::{Deployment, NodeInfo, ProcessInfo};
use causeway_core::pool;
use causeway_core::event::{CallKind, TraceEvent};
use causeway_core::ids::*;
use causeway_core::names::{InterfaceEntry, ObjectEntry, VocabSnapshot};
use causeway_core::record::{CallSite, FunctionKey, ProbeRecord};
use causeway_core::runlog::RunLog;
use causeway_core::uuid::Uuid;
use std::fmt::Write as _;

/// Errors produced while reading the JSONL format.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReadError {
    /// A line failed to parse as JSON.
    Json {
        /// 1-based line number.
        line: usize,
        /// The parse failure.
        source: JsonError,
    },
    /// A line parsed but was missing or mistyping a field.
    Schema {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The input had no header line.
    MissingHeader,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Json { line, source } => write!(f, "line {line}: {source}"),
            ReadError::Schema { line, message } => write!(f, "line {line}: {message}"),
            ReadError::MissingHeader => f.write_str("missing header line"),
        }
    }
}

impl std::error::Error for ReadError {}

/// Serializes a run log to the JSONL text format.
pub fn write_run(run: &RunLog) -> String {
    let mut out = String::new();
    writeln!(out, "{}", header_json(run)).expect("write to string");
    for record in &run.records {
        writeln!(out, "{}", record_json(record)).expect("write to string");
    }
    out
}

/// Deserializes a run log from the JSONL text format, parsing record lines
/// in parallel batches on [`pool::configured_threads`] workers.
///
/// # Errors
///
/// Returns [`ReadError`] on malformed lines. Use [`read_run_lossy`] to skip
/// corrupted record lines instead.
pub fn read_run(text: &str) -> Result<RunLog, ReadError> {
    read_run_with_threads(text, pool::configured_threads())
}

/// Like [`read_run`] with an explicit worker count. Batches are merged back
/// in input order, so the result — including which error strict mode reports
/// first — is identical at any thread count.
///
/// # Errors
///
/// Returns [`ReadError`] on malformed lines.
pub fn read_run_with_threads(text: &str, threads: usize) -> Result<RunLog, ReadError> {
    read_run_impl(text, false, threads).map(|(run, _)| run)
}

/// Like [`read_run`] but skips unparseable *record* lines, returning the run
/// and the number of lines skipped — the forgiving mode for logs from
/// crashed processes.
///
/// # Errors
///
/// Still fails when the header is missing or malformed.
pub fn read_run_lossy(text: &str) -> Result<(RunLog, usize), ReadError> {
    read_run_lossy_with_threads(text, pool::configured_threads())
}

/// Like [`read_run_lossy`] with an explicit worker count.
///
/// # Errors
///
/// Still fails when the header is missing or malformed.
pub fn read_run_lossy_with_threads(
    text: &str,
    threads: usize,
) -> Result<(RunLog, usize), ReadError> {
    read_run_impl(text, true, threads)
}

/// Record lines handed to each parse worker at a time. Large enough to
/// amortize scheduling, small enough to load-balance a skewed tail.
const PARSE_BATCH_LINES: usize = 2048;

fn read_run_impl(text: &str, lossy: bool, threads: usize) -> Result<(RunLog, usize), ReadError> {
    let mut lines = text.lines().enumerate();
    let (_, header_line) = lines
        .find(|(_, l)| !l.trim().is_empty())
        .ok_or(ReadError::MissingHeader)?;
    let header = parse(header_line).map_err(|source| ReadError::Json { line: 1, source })?;
    let vocab = vocab_from_json(header.get("vocab"), 1)?;
    let deployment = deployment_from_json(header.get("deployment"), 1)?;
    let expected_records = header.get("expected_records").and_then(Json::as_u64);

    let record_lines: Vec<(usize, &str)> = lines.filter(|(_, l)| !l.trim().is_empty()).collect();
    let batches: Vec<&[(usize, &str)]> = record_lines.chunks(PARSE_BATCH_LINES).collect();
    // Each batch parses independently; a strict-mode batch stops at its
    // first bad line. Merging in batch order below makes the first error
    // reported (and the record order) identical to a serial scan.
    let parsed_batches = pool::par_map(&batches, threads, |batch| {
        let mut records = Vec::with_capacity(batch.len());
        let mut skipped = 0usize;
        for &(idx, line) in *batch {
            let lineno = idx + 1;
            let parsed = match parse(line) {
                Ok(v) => v,
                Err(_) if lossy => {
                    skipped += 1;
                    continue;
                }
                Err(source) => return (records, skipped, Some(ReadError::Json { line: lineno, source })),
            };
            match record_from_json(&parsed, lineno) {
                Ok(record) => records.push(record),
                Err(_) if lossy => skipped += 1,
                Err(e) => return (records, skipped, Some(e)),
            }
        }
        (records, skipped, None)
    });

    let mut records = Vec::with_capacity(record_lines.len());
    let mut skipped = 0usize;
    for (batch_records, batch_skipped, error) in parsed_batches {
        records.extend(batch_records);
        skipped += batch_skipped;
        if let Some(e) = error {
            return Err(e);
        }
    }
    let mut run = RunLog::new(records, vocab, deployment);
    run.expected_records = expected_records;
    Ok((run, skipped))
}

fn u128_json(v: u128) -> Json {
    Json::Str(format!("{v:032x}"))
}

fn u64_json(v: u64) -> Json {
    if v < (1 << 53) {
        Json::Num(v as f64)
    } else {
        Json::Str(v.to_string())
    }
}

fn opt_u64_json(v: Option<u64>) -> Json {
    match v {
        Some(v) => u64_json(v),
        None => Json::Null,
    }
}

fn header_json(run: &RunLog) -> Json {
    let vocab = &run.vocab;
    Json::obj([
        ("format", Json::Str("causeway-runlog-v1".into())),
        ("expected_records", opt_u64_json(run.expected_records)),
        (
            "vocab",
            Json::obj([
                (
                    "interfaces",
                    Json::Arr(
                        vocab
                            .interfaces
                            .iter()
                            .map(|e| {
                                Json::obj([
                                    ("name", Json::Str(e.name.clone())),
                                    (
                                        "methods",
                                        Json::Arr(
                                            e.methods
                                                .iter()
                                                .map(|m| Json::Str(m.clone()))
                                                .collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "components",
                    Json::Arr(vocab.components.iter().map(|c| Json::Str(c.clone())).collect()),
                ),
                (
                    "cpu_types",
                    Json::Arr(vocab.cpu_types.iter().map(|c| Json::Str(c.clone())).collect()),
                ),
                (
                    "objects",
                    Json::Arr(
                        vocab
                            .objects
                            .iter()
                            .map(|(id, e)| {
                                Json::obj([
                                    ("id", u64_json(id.0)),
                                    ("label", Json::Str(e.label.clone())),
                                    ("interface", Json::Num(e.interface.0 as f64)),
                                    ("component", Json::Num(e.component.0 as f64)),
                                    ("process", Json::Num(e.process.0 as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "deployment",
            Json::obj([
                (
                    "nodes",
                    Json::Arr(
                        run.deployment
                            .nodes
                            .iter()
                            .map(|n| {
                                Json::obj([
                                    ("name", Json::Str(n.name.clone())),
                                    ("cpu_type", Json::Num(n.cpu_type.0 as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "processes",
                    Json::Arr(
                        run.deployment
                            .processes
                            .iter()
                            .map(|p| {
                                Json::obj([
                                    ("name", Json::Str(p.name.clone())),
                                    ("node", Json::Num(p.node.0 as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

fn record_json(r: &ProbeRecord) -> Json {
    let mut pairs = vec![
        ("uuid", u128_json(r.uuid.0)),
        ("seq", u64_json(r.seq)),
        ("event", Json::Str(r.event.to_string())),
        ("kind", Json::Str(r.kind.to_string())),
        ("node", Json::Num(r.site.node.0 as f64)),
        ("process", Json::Num(r.site.process.0 as f64)),
        ("thread", Json::Num(r.site.thread.0 as f64)),
        ("interface", Json::Num(r.func.interface.0 as f64)),
        ("method", Json::Num(r.func.method.0 as f64)),
        ("object", u64_json(r.func.object.0)),
        ("ws", opt_u64_json(r.wall_start)),
        ("we", opt_u64_json(r.wall_end)),
        ("cs", opt_u64_json(r.cpu_start)),
        ("ce", opt_u64_json(r.cpu_end)),
    ];
    if let Some(child) = r.oneway_child {
        pairs.push(("ow_child", u128_json(child.0)));
    }
    if let Some((parent, seq)) = r.oneway_parent {
        pairs.push(("ow_parent", u128_json(parent.0)));
        pairs.push(("ow_parent_seq", u64_json(seq)));
    }
    Json::obj(pairs)
}

fn schema_err(line: usize, message: impl Into<String>) -> ReadError {
    ReadError::Schema { line, message: message.into() }
}

fn get_u64(v: &Json, key: &str, line: usize) -> Result<u64, ReadError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| schema_err(line, format!("missing numeric field `{key}`")))
}

/// Like [`get_u64`] but rejects values that do not fit a `u32` — corrupt
/// input must fail loudly, not wrap into a valid-looking id.
fn get_u32(v: &Json, key: &str, line: usize) -> Result<u32, ReadError> {
    let raw = get_u64(v, key, line)?;
    u32::try_from(raw)
        .map_err(|_| schema_err(line, format!("field `{key}` value {raw} out of range for u32")))
}

/// Like [`get_u64`] but rejects values that do not fit a `u16`.
fn get_u16(v: &Json, key: &str, line: usize) -> Result<u16, ReadError> {
    let raw = get_u64(v, key, line)?;
    u16::try_from(raw)
        .map_err(|_| schema_err(line, format!("field `{key}` value {raw} out of range for u16")))
}

fn get_opt_u64(v: &Json, key: &str) -> Option<u64> {
    v.get(key).and_then(Json::as_u64)
}

fn get_str<'a>(v: &'a Json, key: &str, line: usize) -> Result<&'a str, ReadError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| schema_err(line, format!("missing string field `{key}`")))
}

fn parse_u128(text: &str, line: usize) -> Result<u128, ReadError> {
    u128::from_str_radix(text, 16).map_err(|_| schema_err(line, "bad uuid hex"))
}

fn record_from_json(v: &Json, line: usize) -> Result<ProbeRecord, ReadError> {
    let event = match get_str(v, "event", line)? {
        "stub_start" => TraceEvent::StubStart,
        "skel_start" => TraceEvent::SkelStart,
        "skel_end" => TraceEvent::SkelEnd,
        "stub_end" => TraceEvent::StubEnd,
        other => return Err(schema_err(line, format!("unknown event `{other}`"))),
    };
    let kind = match get_str(v, "kind", line)? {
        "sync" => CallKind::Sync,
        "oneway" => CallKind::Oneway,
        "collocated" => CallKind::Collocated,
        "custom_marshal" => CallKind::CustomMarshal,
        other => return Err(schema_err(line, format!("unknown kind `{other}`"))),
    };
    let oneway_child = match v.get("ow_child").and_then(Json::as_str) {
        Some(hex) => Some(Uuid(parse_u128(hex, line)?)),
        None => None,
    };
    let oneway_parent = match v.get("ow_parent").and_then(Json::as_str) {
        Some(hex) => Some((
            Uuid(parse_u128(hex, line)?),
            get_u64(v, "ow_parent_seq", line)?,
        )),
        None => None,
    };
    Ok(ProbeRecord {
        uuid: Uuid(parse_u128(get_str(v, "uuid", line)?, line)?),
        seq: get_u64(v, "seq", line)?,
        event,
        kind,
        site: CallSite {
            node: NodeId(get_u16(v, "node", line)?),
            process: ProcessId(get_u16(v, "process", line)?),
            thread: LogicalThreadId(get_u32(v, "thread", line)?),
        },
        func: FunctionKey::new(
            InterfaceId(get_u32(v, "interface", line)?),
            MethodIndex(get_u16(v, "method", line)?),
            ObjectId(get_u64(v, "object", line)?),
        ),
        wall_start: get_opt_u64(v, "ws"),
        wall_end: get_opt_u64(v, "we"),
        cpu_start: get_opt_u64(v, "cs"),
        cpu_end: get_opt_u64(v, "ce"),
        oneway_child,
        oneway_parent,
    })
}

fn vocab_from_json(v: Option<&Json>, line: usize) -> Result<VocabSnapshot, ReadError> {
    let v = v.ok_or_else(|| schema_err(line, "header missing `vocab`"))?;
    let mut vocab = VocabSnapshot::default();
    for iface in v.get("interfaces").and_then(Json::as_arr).unwrap_or(&[]) {
        vocab.interfaces.push(InterfaceEntry {
            name: get_str(iface, "name", line)?.to_owned(),
            methods: iface
                .get("methods")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .filter_map(|m| m.as_str().map(str::to_owned))
                .collect(),
        });
    }
    for c in v.get("components").and_then(Json::as_arr).unwrap_or(&[]) {
        vocab.components.push(c.as_str().unwrap_or_default().to_owned());
    }
    for c in v.get("cpu_types").and_then(Json::as_arr).unwrap_or(&[]) {
        vocab.cpu_types.push(c.as_str().unwrap_or_default().to_owned());
    }
    for obj in v.get("objects").and_then(Json::as_arr).unwrap_or(&[]) {
        vocab.objects.push((
            ObjectId(get_u64(obj, "id", line)?),
            ObjectEntry {
                label: get_str(obj, "label", line)?.to_owned(),
                interface: InterfaceId(get_u32(obj, "interface", line)?),
                component: causeway_core::names::ComponentId(get_u32(obj, "component", line)?),
                process: ProcessId(get_u16(obj, "process", line)?),
            },
        ));
    }
    Ok(vocab)
}

fn deployment_from_json(v: Option<&Json>, line: usize) -> Result<Deployment, ReadError> {
    let v = v.ok_or_else(|| schema_err(line, "header missing `deployment`"))?;
    let mut deployment = Deployment::new();
    for node in v.get("nodes").and_then(Json::as_arr).unwrap_or(&[]) {
        deployment.nodes.push(NodeInfo {
            name: get_str(node, "name", line)?.to_owned(),
            cpu_type: CpuTypeId(get_u16(node, "cpu_type", line)?),
        });
    }
    for proc in v.get("processes").and_then(Json::as_arr).unwrap_or(&[]) {
        deployment.processes.push(ProcessInfo {
            name: get_str(proc, "name", line)?.to_owned(),
            node: NodeId(get_u16(proc, "node", line)?),
        });
    }
    Ok(deployment)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> RunLog {
        let mut vocab = VocabSnapshot::default();
        vocab.interfaces.push(InterfaceEntry {
            name: "Pipe::Stage".into(),
            methods: vec!["run".into(), "notify".into()],
        });
        vocab.components.push("StageComponent".into());
        vocab.cpu_types.push("HPUX".into());
        vocab.objects.push((
            ObjectId(0),
            ObjectEntry {
                label: "stage#0".into(),
                interface: InterfaceId(0),
                component: causeway_core::names::ComponentId(0),
                process: ProcessId(1),
            },
        ));
        let mut deployment = Deployment::new();
        let n = deployment.add_node("hp1", CpuTypeId(0));
        deployment.add_process("client", n);
        deployment.add_process("server", n);

        let records = vec![
            ProbeRecord {
                uuid: Uuid(0xdead_beef),
                seq: 1,
                event: TraceEvent::StubStart,
                kind: CallKind::Oneway,
                site: CallSite {
                    node: NodeId(0),
                    process: ProcessId(0),
                    thread: LogicalThreadId(0),
                },
                func: FunctionKey::new(InterfaceId(0), MethodIndex(1), ObjectId(0)),
                wall_start: Some(100),
                wall_end: Some(150),
                cpu_start: None,
                cpu_end: None,
                oneway_child: Some(Uuid(0xfeed)),
                oneway_parent: None,
            },
            ProbeRecord {
                uuid: Uuid(0xfeed),
                seq: 1,
                event: TraceEvent::SkelStart,
                kind: CallKind::Oneway,
                site: CallSite {
                    node: NodeId(0),
                    process: ProcessId(1),
                    thread: LogicalThreadId(0),
                },
                func: FunctionKey::new(InterfaceId(0), MethodIndex(1), ObjectId(0)),
                wall_start: Some(u64::MAX - 5), // exercise the string fallback
                wall_end: Some(u64::MAX),
                cpu_start: None,
                cpu_end: None,
                oneway_child: None,
                oneway_parent: Some((Uuid(0xdead_beef), 1)),
            },
        ];
        RunLog::new(records, vocab, deployment)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let run = sample_run();
        let text = write_run(&run);
        let restored = read_run(&text).unwrap();
        assert_eq!(restored, run);
    }

    #[test]
    fn expected_records_round_trips_through_the_header() {
        let mut run = sample_run();
        run.expected_records = Some(5);
        let restored = read_run(&write_run(&run)).unwrap();
        assert_eq!(restored.expected_records, Some(5));
        assert_eq!(restored, run);
        // Logs written before the field existed read back as "unknown".
        assert_eq!(read_run(&write_run(&sample_run())).unwrap().expected_records, None);
    }

    #[test]
    fn empty_run_round_trips() {
        let run = RunLog::default();
        let restored = read_run(&write_run(&run)).unwrap();
        assert_eq!(restored, run);
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(matches!(read_run(""), Err(ReadError::MissingHeader)));
    }

    #[test]
    fn corrupt_record_line_fails_strict_mode() {
        let run = sample_run();
        let mut text = write_run(&run);
        text.push_str("{not json\n");
        assert!(read_run(&text).is_err());
    }

    #[test]
    fn lossy_mode_skips_corruption() {
        let run = sample_run();
        let mut text = write_run(&run);
        text.push_str("{not json\n");
        text.push_str("{\"uuid\": \"00\"}\n"); // schema-bad line
        let (restored, skipped) = read_run_lossy(&text).unwrap();
        assert_eq!(restored.records, run.records);
        assert_eq!(skipped, 2);
    }

    #[test]
    fn truncated_file_reads_up_to_truncation() {
        let run = sample_run();
        let text = write_run(&run);
        // Cut the file mid-way through the final line.
        let cut = text.len() - 10;
        let (restored, skipped) = read_run_lossy(&text[..cut]).unwrap();
        assert_eq!(restored.records.len(), run.records.len() - 1);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn parallel_read_matches_serial() {
        let run = sample_run();
        let text = write_run(&run);
        let serial = read_run_with_threads(&text, 1).unwrap();
        for threads in [2, 4, 7] {
            assert_eq!(read_run_with_threads(&text, threads).unwrap(), serial);
        }

        // Strict mode reports the same (first) error at any thread count.
        let mut corrupt = text.clone();
        corrupt.push_str("{not json\n");
        corrupt.push_str("{\"uuid\": \"00\"}\n");
        let serial_err = read_run_with_threads(&corrupt, 1).unwrap_err().to_string();
        for threads in [2, 4] {
            let parallel_err = read_run_with_threads(&corrupt, threads).unwrap_err().to_string();
            assert_eq!(parallel_err, serial_err);
        }

        // Lossy mode skips the same lines at any thread count.
        let (serial_run, serial_skipped) = read_run_lossy_with_threads(&corrupt, 1).unwrap();
        for threads in [2, 4] {
            let (run, skipped) = read_run_lossy_with_threads(&corrupt, threads).unwrap();
            assert_eq!(run, serial_run);
            assert_eq!(skipped, serial_skipped);
        }
    }

    #[test]
    fn blank_lines_are_ignored() {
        let run = sample_run();
        let text = write_run(&run).replace('\n', "\n\n");
        assert_eq!(read_run(&text).unwrap(), run);
    }

    #[test]
    fn out_of_range_ids_are_schema_errors_not_wraps() {
        // 4294967297 == 2^32 + 1: the old `as u32` cast silently wrapped it
        // to InterfaceId(1). It must be a range error instead.
        let run = sample_run();
        let mut text = write_run(&run);
        text.push_str(
            "{\"uuid\":\"01\",\"seq\":1,\"event\":\"stub_start\",\"kind\":\"sync\",\
             \"node\":0,\"process\":0,\"thread\":0,\"interface\":4294967297,\
             \"method\":0,\"object\":0}\n",
        );
        let err = read_run(&text).unwrap_err().to_string();
        assert!(
            err.contains("out of range") && err.contains("interface"),
            "expected a range error naming the field, got: {err}"
        );
        // Lossy mode skips the corrupt record rather than inventing an id.
        let (restored, skipped) = read_run_lossy(&text).unwrap();
        assert_eq!(restored.records, run.records);
        assert_eq!(skipped, 1);

        // Narrow u16 fields are range-checked the same way.
        let mut text16 = write_run(&run);
        text16.push_str(
            "{\"uuid\":\"01\",\"seq\":1,\"event\":\"stub_start\",\"kind\":\"sync\",\
             \"node\":65536,\"process\":0,\"thread\":0,\"interface\":0,\
             \"method\":0,\"object\":0}\n",
        );
        let err16 = read_run(&text16).unwrap_err().to_string();
        assert!(err16.contains("out of range") && err16.contains("node"), "{err16}");
    }
}
