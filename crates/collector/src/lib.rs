//! # causeway-collector
//!
//! Log collection and synthesis — the paper's §3 front half: "when the
//! application ceases to exist or reaches a quiescent state, the scattered
//! logs are collected and eventually synthesized into a relational
//! database."
//!
//! * [`db::MonitoringDb`] — the relational store: the full record table plus
//!   the two queries the analyzer performs ("identify the set of unique
//!   Function UUIDs ever created" and "sort the events associated with the
//!   invocations sharing the UUID by ascending order"), along with dimension
//!   lookups (names, deployment) and scale statistics.
//! * [`jsonl`] — a line-oriented persistence format so runs can be written
//!   to disk and analyzed off-line, as the paper's stand-alone analyzer
//!   does.
//! * [`segment`] — the durable binary storage spine: append-only segment
//!   files of checksummed frames with crash-safe recovery, carrying the
//!   fixed-width record encoding of `causeway_core::wire`.
//!
//! # Example
//!
//! ```
//! use causeway_core::runlog::RunLog;
//! use causeway_collector::db::MonitoringDb;
//!
//! let db = MonitoringDb::from_run(RunLog::default());
//! assert_eq!(db.scale_stats().total_records, 0);
//! ```

#![warn(missing_docs)]

pub mod db;
pub mod json;
pub mod jsonl;
pub mod query;
pub mod segment;

pub use db::{MonitoringDb, ScaleStats};
pub use query::Query;
