//! A minimal JSON reader/writer.
//!
//! The allowed dependency set has no `serde_json`; the persistence needs of
//! this crate are flat records and two small dimension tables, so a compact
//! hand-rolled JSON module keeps the repository dependency-free (see
//! `DESIGN.md` §6).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; integers up to 2^53 round-trip exactly,
    /// which covers every id and nanosecond stamp this crate persists —
    /// u64 values beyond that are written as strings by the callers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Member access on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as `u64` when it is a number or a numeric string.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice when it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_str(c.encode_utf8(&mut [0; 4]))?,
        }
    }
    f.write_str("\"")
}

/// A JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value from `input` (trailing whitespace allowed, nothing
/// else).
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError { offset, message: message.into() }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected `:`"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(err(*pos, format!("unexpected byte {c:#x}"))),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected `{lit}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad utf-8"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, format!("invalid number `{text}`")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| err(*pos, "bad \\u escape"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "bad utf-8 in string"))?;
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (src, val) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Num(42.0)),
            ("-3.5", Json::Num(-3.5)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(parse(src).unwrap(), val);
            assert_eq!(parse(&val.to_string()).unwrap(), val);
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = Json::obj([
            ("a", Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("b", Json::obj([("nested", Json::Bool(true))])),
        ]);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let tricky = "quote\" slash\\ newline\n tab\t unicode λ control\u{1}";
        let v = Json::Str(tricky.into());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn large_integers_round_trip_exactly() {
        let v = Json::Num(9_007_199_254_740_992.0_f64); // 2^53
        let parsed = parse(&v.to_string()).unwrap();
        assert_eq!(parsed.as_u64(), Some(9_007_199_254_740_992));
    }

    #[test]
    fn u64_via_string_fallback() {
        let v = Json::Str(u64::MAX.to_string());
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["", "{", "[1,", "\"open", "tru", "{\"a\" 1}", "1 2", "{'a':1}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors() {
        let v = parse("{\"k\": [1, \"s\", true]}").unwrap();
        let arr = v.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_str(), Some("s"));
        assert_eq!(arr[2].as_bool(), Some(true));
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
    }
}
