//! # causeway-baselines
//!
//! The comparison points of the paper's §5 related work, implemented so the
//! benchmarks can demonstrate each one's documented limitation against the
//! same monitoring data:
//!
//! * [`gprof`] — a GPROF-style profiler: caller/callee arcs of depth 1,
//!   **within one thread only** ("GPROF merely reports the callee-caller
//!   propagation of CPU utilization within the same thread context").
//!   Cross-thread/process calls degrade to `<spontaneous>` roots.
//! * [`trace_object`] — the Universal Delegator's **Trace Object**: a log
//!   that *concatenates* an entry per call as the chain advances, so its
//!   wire size grows linearly with chain length ("unavoidably introduces
//!   the barrier for the call chains that exceed tens of thousands calls"),
//!   and which cannot distinguish sibling from nested call patterns ("the
//!   proposed TO is not sufficient to determine the hierarchical call
//!   graph").
//! * [`ovation`] — an OVATION-style interceptor: four timing anchors per
//!   invocation with runtime entities but **no global causality**, so
//!   relating one invocation to another is ambiguous as soon as the system
//!   is concurrent ("the tool cannot determine how this particular
//!   invocation is related to the rest of method invocations").
//!
//! Each module consumes an ordinary [`causeway_collector::db::MonitoringDb`]
//! and *discards* exactly the fields its technique never had (the Function
//! UUID and/or the event number), making the comparisons apples-to-apples.

#![warn(missing_docs)]

pub mod gprof;
pub mod ovation;
pub mod trace_object;

pub use gprof::{FlatProfile, GprofArc};
pub use ovation::OvationAnalysis;
pub use trace_object::{TraceObject, TraceObjectEntry};
