//! A GPROF-style profiler over the same probe data.
//!
//! GPROF sees only what happens inside one thread: a flat profile plus
//! caller/callee arcs of depth 1. To model it faithfully, this module walks
//! each thread's records in chronological order, maintaining a per-thread
//! call stack, and deliberately ignores the Function UUID and event number
//! (which gprof never had). A server-side up-call arrives with no local
//! caller — gprof renders such arcs as `<spontaneous>` — so every
//! cross-thread/cross-process relationship is lost, which is exactly the
//! limitation the paper's comparison hinges on.

use causeway_collector::db::MonitoringDb;
use causeway_core::event::TraceEvent;
use causeway_core::ids::{LogicalThreadId, ProcessId};
use causeway_core::record::FunctionKey;
use std::collections::{BTreeMap, HashMap};

/// A depth-1 caller/callee arc. `caller == None` is an arc with no visible
/// caller: the program root on a driver thread, or — the interesting case —
/// an up-call that crossed a thread/process boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GprofArc {
    /// The caller, when visible in the same thread.
    pub caller: Option<FunctionKey>,
    /// The callee.
    pub callee: FunctionKey,
}

/// The profile gprof would produce.
#[derive(Debug, Clone, Default)]
pub struct FlatProfile {
    /// Arc → invocation count.
    pub arcs: BTreeMap<GprofArc, usize>,
    /// Per-function call counts.
    pub calls: BTreeMap<FunctionKey, usize>,
    /// Up-calls that arrived on a thread with no local caller — the
    /// relationships gprof lost to thread/process boundaries.
    pub cross_boundary_arcs: usize,
}

impl FlatProfile {
    /// Builds the profile from the monitoring database, seeing only what a
    /// per-thread profiler can see.
    pub fn build(db: &MonitoringDb) -> FlatProfile {
        // Partition records per (process, thread), preserving drain order
        // (chronological within a thread).
        let mut per_thread: HashMap<(ProcessId, LogicalThreadId), Vec<usize>> = HashMap::new();
        for (idx, record) in db.records().iter().enumerate() {
            per_thread
                .entry((record.site.process, record.site.thread))
                .or_default()
                .push(idx);
        }

        let mut profile = FlatProfile::default();
        let mut keys: Vec<_> = per_thread.keys().copied().collect();
        keys.sort();
        for key in keys {
            let mut stack: Vec<FunctionKey> = Vec::new();
            // Set between a local stub-start and the event that follows it,
            // so a collocated skeleton is recognized as a *local* call
            // rather than an arriving up-call.
            let mut pending_call: Option<FunctionKey> = None;
            for &idx in &per_thread[&key] {
                let record = &db.records()[idx];
                match record.event {
                    TraceEvent::StubStart => {
                        let arc = GprofArc {
                            caller: stack.last().copied(),
                            callee: record.func,
                        };
                        *profile.arcs.entry(arc).or_insert(0) += 1;
                        *profile.calls.entry(record.func).or_insert(0) += 1;
                        pending_call = Some(record.func);
                    }
                    TraceEvent::SkelStart => {
                        if pending_call != Some(record.func) {
                            // An up-call from outside this thread: the true
                            // caller is invisible to gprof.
                            let arc = GprofArc { caller: None, callee: record.func };
                            *profile.arcs.entry(arc).or_insert(0) += 1;
                            *profile.calls.entry(record.func).or_insert(0) += 1;
                            profile.cross_boundary_arcs += 1;
                        }
                        stack.push(record.func);
                        pending_call = None;
                    }
                    TraceEvent::SkelEnd => {
                        if stack.last() == Some(&record.func) {
                            stack.pop();
                        }
                        pending_call = None;
                    }
                    TraceEvent::StubEnd => {
                        pending_call = None;
                    }
                }
            }
        }
        profile
    }

    /// Total arcs recorded.
    pub fn total_arcs(&self) -> usize {
        self.arcs.values().sum()
    }

    /// Fraction of call relationships whose caller gprof lost by crossing a
    /// thread/process boundary (0.0 for single-threaded collocated
    /// programs, large for distributed ones).
    pub fn blindness(&self) -> f64 {
        let total = self.total_arcs();
        if total == 0 {
            return 0.0;
        }
        self.cross_boundary_arcs as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causeway_core::deploy::Deployment;
    use causeway_core::event::CallKind;
    use causeway_core::ids::*;
    use causeway_core::names::VocabSnapshot;
    use causeway_core::record::{CallSite, ProbeRecord};
    use causeway_core::runlog::RunLog;
    use causeway_core::uuid::Uuid;

    fn rec(process: u16, thread: u32, event: TraceEvent, object: u64) -> ProbeRecord {
        ProbeRecord {
            uuid: Uuid(1),
            seq: 0,
            event,
            kind: CallKind::Sync,
            site: CallSite {
                node: NodeId(0),
                process: ProcessId(process),
                thread: LogicalThreadId(thread),
            },
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(object)),
            wall_start: None,
            wall_end: None,
            cpu_start: None,
            cpu_end: None,
            oneway_child: None,
            oneway_parent: None,
        }
    }

    fn func(object: u64) -> FunctionKey {
        FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(object))
    }

    fn db(records: Vec<ProbeRecord>) -> MonitoringDb {
        MonitoringDb::from_run(RunLog::new(records, VocabSnapshot::default(), Deployment::new()))
    }

    #[test]
    fn same_thread_nesting_is_fully_visible() {
        // Collocated F calls collocated G on one thread.
        let records = vec![
            rec(0, 0, TraceEvent::StubStart, 1),
            rec(0, 0, TraceEvent::SkelStart, 1),
            rec(0, 0, TraceEvent::StubStart, 2),
            rec(0, 0, TraceEvent::SkelStart, 2),
            rec(0, 0, TraceEvent::SkelEnd, 2),
            rec(0, 0, TraceEvent::StubEnd, 2),
            rec(0, 0, TraceEvent::SkelEnd, 1),
            rec(0, 0, TraceEvent::StubEnd, 1),
        ];
        let profile = FlatProfile::build(&db(records));
        assert_eq!(
            profile.arcs.get(&GprofArc { caller: Some(func(1)), callee: func(2) }),
            Some(&1)
        );
        assert_eq!(
            profile.arcs.get(&GprofArc { caller: None, callee: func(1) }),
            Some(&1),
            "the root call has no caller (that is `main`, not blindness)"
        );
        assert_eq!(profile.cross_boundary_arcs, 0);
        assert_eq!(profile.blindness(), 0.0);
        assert_eq!(profile.total_arcs(), 2);
    }

    #[test]
    fn cross_process_caller_is_lost() {
        // Client thread (p0) calls F whose skeleton runs in p1.
        let records = vec![
            rec(0, 0, TraceEvent::StubStart, 1),
            rec(1, 0, TraceEvent::SkelStart, 1),
            rec(1, 0, TraceEvent::SkelEnd, 1),
            rec(0, 0, TraceEvent::StubEnd, 1),
        ];
        let profile = FlatProfile::build(&db(records));
        assert_eq!(profile.cross_boundary_arcs, 1);
        assert!(profile.blindness() > 0.0);
    }

    #[test]
    fn nested_remote_relationship_is_invisible() {
        // F (server thread p1) calls G (server thread p2): the true F -> G
        // arc exists in the DSCG but gprof only sees F's stub call locally
        // and G arriving spontaneously elsewhere.
        let records = vec![
            rec(0, 0, TraceEvent::StubStart, 1),
            rec(1, 0, TraceEvent::SkelStart, 1),
            rec(1, 0, TraceEvent::StubStart, 2),
            rec(2, 0, TraceEvent::SkelStart, 2),
            rec(2, 0, TraceEvent::SkelEnd, 2),
            rec(1, 0, TraceEvent::StubEnd, 2),
            rec(1, 0, TraceEvent::SkelEnd, 1),
            rec(0, 0, TraceEvent::StubEnd, 1),
        ];
        let profile = FlatProfile::build(&db(records));
        // The local stub arc F -> G *is* visible on p1's thread…
        assert_eq!(
            profile.arcs.get(&GprofArc { caller: Some(func(1)), callee: func(2) }),
            Some(&1)
        );
        // …but both skeletons arrived spontaneously.
        assert_eq!(profile.cross_boundary_arcs, 2);
    }

    #[test]
    fn empty_profile_is_not_blind() {
        let profile = FlatProfile::build(&db(vec![]));
        assert_eq!(profile.blindness(), 0.0);
        assert_eq!(profile.total_arcs(), 0);
    }
}
