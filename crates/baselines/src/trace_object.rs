//! The Universal Delegator's Trace Object (Brown, MSJ 1999).
//!
//! The Trace Object "logs call information verbosely" and "concatenates log
//! info during call progression" — every invocation appends an entry, and
//! the whole accumulated object migrates with the call. Two consequences
//! the paper calls out, both reproduced here:
//!
//! 1. the wire payload grows linearly in chain length (vs. the FTL's
//!    constant 24 bytes) — see [`TraceObject::wire_size`] and the
//!    `ftl_vs_trace_object` bench;
//! 2. the entry list alone cannot determine the *hierarchical* call graph:
//!    a cascading pattern (`F(); G();`) and a nesting pattern (`F{ G() }`)
//!    concatenate the *same* entries — see
//!    [`TraceObject::from_call_tree`] and the ambiguity tests.

use bytes::{BufMut, Bytes, BytesMut};
use causeway_analyzer::dscg::CallNode;
use causeway_core::record::FunctionKey;

/// One concatenated entry: the verbose call information the Universal
/// Delegator logged (function identity plus a free-form detail string).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceObjectEntry {
    /// The invoked function.
    pub func: FunctionKey,
    /// Verbose call detail (arguments rendered, timestamps, …).
    pub detail: String,
}

/// The migrating, concatenating trace object.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceObject {
    /// Entries in call order.
    pub entries: Vec<TraceObjectEntry>,
}

impl TraceObject {
    /// An empty trace object.
    pub fn new() -> TraceObject {
        TraceObject::default()
    }

    /// Appends an entry — what the interceptor does on every call.
    pub fn record(&mut self, func: FunctionKey, detail: impl Into<String>) {
        self.entries.push(TraceObjectEntry { func, detail: detail.into() });
    }

    /// The call-order entry list a call tree would produce: one entry per
    /// invocation, appended as the call progresses (pre-order). Both the
    /// sibling and the nested arrangement of the same functions produce the
    /// same list — the information loss at the heart of the paper's
    /// critique.
    pub fn from_call_tree(roots: &[CallNode]) -> TraceObject {
        let mut to = TraceObject::new();
        fn walk(node: &CallNode, to: &mut TraceObject) {
            to.record(node.func, "call");
            for child in &node.children {
                walk(child, to);
            }
        }
        for root in roots {
            walk(root, &mut to);
        }
        to
    }

    /// Marshals the whole object — the payload that would ride with the
    /// *next* call of the chain.
    pub fn to_wire(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32_le(self.entries.len() as u32);
        for entry in &self.entries {
            buf.put_u32_le(entry.func.interface.0);
            buf.put_u16_le(entry.func.method.0);
            buf.put_u64_le(entry.func.object.0);
            let detail = entry.detail.as_bytes();
            buf.put_u32_le(detail.len() as u32);
            buf.put_slice(detail);
        }
        buf.freeze()
    }

    /// Current marshalled size in bytes.
    pub fn wire_size(&self) -> usize {
        4 + self
            .entries
            .iter()
            .map(|e| 4 + 2 + 8 + 4 + e.detail.len())
            .sum::<usize>()
    }

    /// Simulates a chain of `depth` nested calls, each appending one entry
    /// with `detail_len` bytes of verbose detail, returning the trace
    /// object as it arrives at the deepest callee.
    pub fn simulate_chain(depth: usize, detail_len: usize) -> TraceObject {
        let mut to = TraceObject::new();
        let detail = "x".repeat(detail_len);
        for i in 0..depth {
            to.record(
                FunctionKey::new(
                    causeway_core::ids::InterfaceId(0),
                    causeway_core::ids::MethodIndex((i % 8) as u16),
                    causeway_core::ids::ObjectId(i as u64),
                ),
                detail.clone(),
            );
        }
        to
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causeway_core::event::CallKind;
    use causeway_core::ftl::FTL_WIRE_LEN;
    use causeway_core::ids::{InterfaceId, MethodIndex, ObjectId};

    fn leaf(object: u64) -> CallNode {
        CallNode {
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(object)),
            kind: CallKind::Sync,
            stub_start: None,
            skel_start: None,
            skel_end: None,
            stub_end: None,
            children: vec![],
            complete: true,
        }
    }

    #[test]
    fn wire_size_grows_linearly_with_chain_length() {
        let shallow = TraceObject::simulate_chain(10, 16);
        let deep = TraceObject::simulate_chain(10_000, 16);
        assert_eq!(shallow.wire_size(), shallow.to_wire().len());
        assert_eq!(deep.wire_size(), deep.to_wire().len());
        let ratio = deep.wire_size() as f64 / shallow.wire_size() as f64;
        assert!(ratio > 900.0, "1000x deeper should be ~1000x bigger, was {ratio}");
        // The FTL stays constant no matter the depth.
        assert_eq!(FTL_WIRE_LEN, 24);
        assert!(deep.wire_size() > 10_000 * FTL_WIRE_LEN);
    }

    #[test]
    fn sibling_and_nested_patterns_are_indistinguishable() {
        // Table 1's two patterns over the same functions F and G.
        let siblings = vec![leaf(1), leaf(2)];
        let mut nested_parent = leaf(1);
        nested_parent.children.push(leaf(2));
        let nested = vec![nested_parent];

        let to_siblings = TraceObject::from_call_tree(&siblings);
        let to_nested = TraceObject::from_call_tree(&nested);
        assert_eq!(
            to_siblings, to_nested,
            "the trace object cannot tell cascading from nesting"
        );
    }

    #[test]
    fn record_appends_in_order() {
        let mut to = TraceObject::new();
        to.record(leaf(1).func, "a");
        to.record(leaf(2).func, "b");
        assert_eq!(to.entries.len(), 2);
        assert_eq!(to.entries[0].detail, "a");
        assert_eq!(to.entries[1].func.object, ObjectId(2));
    }
}
