//! An OVATION-style interceptor view of the monitoring data.
//!
//! OVATION's interceptor "provides four different timing anchors: client
//! pre-invoke and post-invoke, servant pre-invoke and post-invoke", renders
//! calls on a time axis with their runtime entities, but "does not provide
//! global causality capture. As a result, for each method invocation …
//! the tool cannot determine how this particular invocation is related to
//! the rest of method invocations."
//!
//! To quantify that, [`OvationAnalysis::evaluate`] gives OVATION its best
//! shot: for every server-side invocation it applies the strongest
//! causality-free heuristic available — *innermost temporal containment*
//! (the smallest client-side window that covers the servant window is
//! presumed to be the caller) — and scores it against the ground truth the
//! Function UUIDs provide. Sequential workloads attribute perfectly; as
//! soon as similar invocations overlap in time, attribution goes ambiguous
//! or silently wrong, while the UUID-based DSCG stays exact by
//! construction.

use causeway_analyzer::dscg::Dscg;
use causeway_collector::db::MonitoringDb;
use causeway_core::ids::{LogicalThreadId, ProcessId};

/// A client-side window as OVATION sees it: anchors plus the entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ClientWindow {
    /// Identity for scoring only (not available to the heuristic).
    node_id: usize,
    pre: u64,
    post: u64,
    entity: (ProcessId, LogicalThreadId),
}

/// Outcome of scoring the containment heuristic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OvationAnalysis {
    /// Server-side invocations evaluated.
    pub total: usize,
    /// The innermost containing window was unique and was the true caller.
    pub correct: usize,
    /// Multiple windows tied for innermost — the tool cannot decide.
    pub ambiguous: usize,
    /// A unique innermost window existed but was the *wrong* caller —
    /// silent misattribution, the worst failure mode.
    pub wrong: usize,
    /// No containing window at all (e.g. anchors lost).
    pub unattributed: usize,
}

impl OvationAnalysis {
    /// Scores the containment heuristic over a latency-mode run.
    pub fn evaluate(db: &MonitoringDb) -> OvationAnalysis {
        let dscg = Dscg::build(db);

        // Gather every client window with its node identity (pre-order).
        let mut windows: Vec<ClientWindow> = Vec::new();
        let mut node_id = 0usize;
        dscg.walk(&mut |node, _| {
            if let (Some(start), Some(end)) = (&node.stub_start, &node.stub_end) {
                if let (Some(pre), Some(post)) = (start.wall_start, end.wall_end) {
                    windows.push(ClientWindow {
                        node_id,
                        pre,
                        post,
                        entity: (start.site.process, start.site.thread),
                    });
                }
            }
            node_id += 1;
        });

        // Evaluate each server-side window.
        let mut analysis = OvationAnalysis::default();
        let mut node_id = 0usize;
        dscg.walk(&mut |node, _| {
            let my_id = node_id;
            node_id += 1;
            let (Some(skel_start), Some(skel_end)) = (&node.skel_start, &node.skel_end) else {
                return;
            };
            let (Some(s_start), Some(s_end)) = (skel_start.wall_start, skel_end.wall_end) else {
                return;
            };
            // Collocated executions share the caller's entity; OVATION pairs
            // those locally without trouble, so evaluate only the calls that
            // actually crossed entities.
            let servant_entity = (skel_start.site.process, skel_start.site.thread);
            let has_remote_stub = node
                .stub_start
                .as_ref()
                .map(|r| (r.site.process, r.site.thread) != servant_entity)
                .unwrap_or(false);
            if !has_remote_stub {
                return;
            }
            analysis.total += 1;

            let mut best: Option<(u64, usize, usize)> = None; // (span, count, node_id)
            for w in &windows {
                if w.entity == servant_entity || w.pre > s_start || w.post < s_end {
                    continue;
                }
                let span = w.post - w.pre;
                match &mut best {
                    None => best = Some((span, 1, w.node_id)),
                    Some((best_span, count, best_id)) => {
                        if span < *best_span {
                            *best_span = span;
                            *count = 1;
                            *best_id = w.node_id;
                        } else if span == *best_span {
                            *count += 1;
                        }
                    }
                }
            }
            match best {
                None => analysis.unattributed += 1,
                Some((_, count, _)) if count > 1 => analysis.ambiguous += 1,
                Some((_, _, best_id)) if best_id == my_id => analysis.correct += 1,
                Some(_) => analysis.wrong += 1,
            }
        });
        analysis
    }

    /// Fraction of evaluated invocations OVATION failed to attribute
    /// correctly (ambiguous + wrong + unattributed).
    pub fn failure_rate(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.total - self.correct) as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causeway_core::deploy::Deployment;
    use causeway_core::event::{CallKind, TraceEvent};
    use causeway_core::ids::*;
    use causeway_core::names::VocabSnapshot;
    use causeway_core::record::{CallSite, FunctionKey, ProbeRecord};
    use causeway_core::runlog::RunLog;
    use causeway_core::uuid::Uuid;

    fn rec(
        uuid: u128,
        seq: u64,
        process: u16,
        thread: u32,
        event: TraceEvent,
        object: u64,
        t: u64,
    ) -> ProbeRecord {
        ProbeRecord {
            uuid: Uuid(uuid),
            seq,
            event,
            kind: CallKind::Sync,
            site: CallSite {
                node: NodeId(0),
                process: ProcessId(process),
                thread: LogicalThreadId(thread),
            },
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(object)),
            wall_start: Some(t),
            wall_end: Some(t),
            cpu_start: None,
            cpu_end: None,
            oneway_child: None,
            oneway_parent: None,
        }
    }

    fn db(records: Vec<ProbeRecord>) -> MonitoringDb {
        MonitoringDb::from_run(RunLog::new(records, VocabSnapshot::default(), Deployment::new()))
    }

    /// One remote call: client p0/t0 → servant p1/t0, times 10..40.
    fn sequential_call(uuid: u128, base: u64, thread: u32) -> Vec<ProbeRecord> {
        vec![
            rec(uuid, 1, 0, thread, TraceEvent::StubStart, 5, base),
            rec(uuid, 2, 1, thread, TraceEvent::SkelStart, 5, base + 10),
            rec(uuid, 3, 1, thread, TraceEvent::SkelEnd, 5, base + 20),
            rec(uuid, 4, 0, thread, TraceEvent::StubEnd, 5, base + 30),
        ]
    }

    #[test]
    fn sequential_workload_attributes_correctly() {
        let mut records = sequential_call(1, 0, 0);
        records.extend(sequential_call(2, 100, 0));
        let analysis = OvationAnalysis::evaluate(&db(records));
        assert_eq!(analysis.total, 2);
        assert_eq!(analysis.correct, 2);
        assert_eq!(analysis.failure_rate(), 0.0);
    }

    #[test]
    fn overlapping_identical_calls_confuse_the_heuristic() {
        // Two clients on different threads, perfectly symmetric overlapping
        // windows around both servant executions.
        let records = vec![
            rec(1, 1, 0, 0, TraceEvent::StubStart, 5, 10),
            rec(2, 1, 0, 1, TraceEvent::StubStart, 5, 10),
            rec(1, 2, 1, 0, TraceEvent::SkelStart, 5, 20),
            rec(1, 3, 1, 0, TraceEvent::SkelEnd, 5, 25),
            rec(2, 2, 1, 1, TraceEvent::SkelStart, 5, 21),
            rec(2, 3, 1, 1, TraceEvent::SkelEnd, 5, 26),
            rec(2, 4, 0, 1, TraceEvent::StubEnd, 5, 50),
            rec(1, 4, 0, 0, TraceEvent::StubEnd, 5, 50),
        ];
        let analysis = OvationAnalysis::evaluate(&db(records));
        assert_eq!(analysis.total, 2);
        assert_eq!(analysis.correct, 0);
        assert_eq!(analysis.ambiguous, 2, "symmetric windows tie");
        assert_eq!(analysis.failure_rate(), 1.0);
    }

    #[test]
    fn asymmetric_overlap_misattributes_silently() {
        // Client A's window is tighter around B's servant execution than
        // B's own window — the innermost heuristic confidently picks the
        // wrong caller.
        let records = vec![
            // Chain 2: wide client window [5, 60], servant on (p1, t1).
            rec(2, 1, 0, 1, TraceEvent::StubStart, 5, 5),
            rec(2, 2, 1, 1, TraceEvent::SkelStart, 5, 20),
            rec(2, 3, 1, 1, TraceEvent::SkelEnd, 5, 25),
            rec(2, 4, 0, 1, TraceEvent::StubEnd, 5, 60),
            // Chain 1: tight client window [18, 30], servant on (p2, t0).
            rec(1, 1, 0, 0, TraceEvent::StubStart, 5, 18),
            rec(1, 2, 2, 0, TraceEvent::SkelStart, 5, 19),
            rec(1, 3, 2, 0, TraceEvent::SkelEnd, 5, 29),
            rec(1, 4, 0, 0, TraceEvent::StubEnd, 5, 30),
        ];
        let analysis = OvationAnalysis::evaluate(&db(records));
        // Chain 2's servant window [20,25] is contained by chain 1's client
        // window [18,30] (span 12) and by its true window [5,60] (span 55);
        // innermost picks chain 1 — confidently wrong. Chain 1's own servant
        // window [19,29] resolves correctly to its own tight window.
        assert_eq!(analysis.total, 2);
        assert_eq!(analysis.correct, 1);
        assert_eq!(analysis.wrong, 1);
    }

    #[test]
    fn empty_data_is_trivially_fine() {
        let analysis = OvationAnalysis::evaluate(&db(vec![]));
        assert_eq!(analysis.failure_rate(), 0.0);
        assert_eq!(analysis.total, 0);
    }
}
