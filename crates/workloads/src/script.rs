//! Scripted servants: declarative component behaviors.
//!
//! Every workload in this crate builds its components out of
//! [`ScriptedServant`]s — a servant whose methods each execute a fixed list
//! of [`Action`]s. Targets of child calls are *wired* after registration
//! (components are registered before the objects they call may exist), and
//! a [`ManualProbe`] can be attached around any call site to reproduce the
//! paper's manual-measurement methodology.

use causeway_core::clock::VirtualCpuClock;
use causeway_core::ids::MethodIndex;
use causeway_core::manual::ManualProbe;
use causeway_core::value::Value;
use causeway_orb::servant::{MethodResult, Servant, ServerCtx};
use causeway_orb::{AppError, ObjRef};
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Duration;

/// One step of a method's behavior.
#[derive(Debug, Clone)]
pub enum Action {
    /// Credit `cpu_us` microseconds of CPU to the executing thread (models
    /// pure computation without slowing the run down).
    Compute {
        /// Microseconds of CPU to credit.
        cpu_us: u64,
    },
    /// Sleep `wall_us` of wall time and credit `cpu_us` of CPU (models work
    /// with both latency and CPU cost).
    Work {
        /// Microseconds of wall time to spend.
        wall_us: u64,
        /// Microseconds of CPU to credit.
        cpu_us: u64,
    },
    /// Synchronously invoke a wired target.
    Call {
        /// Index into the servant's wired-target table.
        target: usize,
        /// Method name on the target's interface.
        method: &'static str,
        /// Manual-measurement bracket around this call site, when attached.
        manual: Option<Arc<ManualProbe>>,
    },
    /// Fire a one-way invocation at a wired target.
    CallOneway {
        /// Index into the servant's wired-target table.
        target: usize,
        /// Method name on the target's interface.
        method: &'static str,
    },
    /// Raise an application exception, aborting the remaining actions.
    Raise {
        /// Exception name.
        exception: &'static str,
        /// Detail message.
        message: &'static str,
    },
}

/// The behavior of one method: its action list.
#[derive(Debug, Clone, Default)]
pub struct MethodScript {
    /// Steps executed in order.
    pub actions: Vec<Action>,
}

impl MethodScript {
    /// A script from actions.
    pub fn new(actions: Vec<Action>) -> MethodScript {
        MethodScript { actions }
    }
}

/// A servant whose methods run fixed scripts.
#[derive(Debug)]
pub struct ScriptedServant {
    methods: Vec<MethodScript>,
    targets: RwLock<Vec<Option<ObjRef>>>,
    /// Manual probe around the whole method body, per method index (the
    /// paper's "one probe for one target function").
    body_probes: RwLock<Vec<Option<Arc<ManualProbe>>>>,
}

impl ScriptedServant {
    /// Creates a servant with one script per method (index order must match
    /// the interface's method declaration order).
    pub fn new(methods: Vec<MethodScript>) -> Arc<ScriptedServant> {
        let body_probes = RwLock::new(vec![None; methods.len()]);
        Arc::new(ScriptedServant {
            methods,
            targets: RwLock::new(Vec::new()),
            body_probes,
        })
    }

    /// Wires the call-target table slot `index` to `target`. Slots may be
    /// wired in any order; unwired slots fail at call time.
    pub fn wire(&self, index: usize, target: ObjRef) {
        let mut targets = self.targets.write();
        if targets.len() <= index {
            targets.resize(index + 1, None);
        }
        targets[index] = Some(target);
    }

    /// Attaches a manual probe around the body of method `method`.
    pub fn set_body_probe(&self, method: usize, probe: Arc<ManualProbe>) {
        let mut probes = self.body_probes.write();
        if probes.len() <= method {
            probes.resize(method + 1, None);
        }
        probes[method] = Some(probe);
    }

    fn run_action(&self, ctx: &ServerCtx, action: &Action) -> Result<(), AppError> {
        match action {
            Action::Compute { cpu_us } => {
                VirtualCpuClock::credit_current_thread(cpu_us * 1_000);
                Ok(())
            }
            Action::Work { wall_us, cpu_us } => {
                std::thread::sleep(Duration::from_micros(*wall_us));
                VirtualCpuClock::credit_current_thread(cpu_us * 1_000);
                Ok(())
            }
            Action::Call { target, method, manual } => {
                let target = self.target(*target)?;
                let invoke = || {
                    ctx.client()
                        .invoke(&target, method, vec![Value::I64(0)])
                        .map_err(|e| AppError::new("Downstream", e.to_string()))
                };
                match manual {
                    Some(probe) => probe.measure(invoke).map(drop),
                    None => invoke().map(drop),
                }
            }
            Action::CallOneway { target, method } => {
                let target = self.target(*target)?;
                ctx.client()
                    .invoke_oneway(&target, method, vec![Value::I64(0)])
                    .map_err(|e| AppError::new("Downstream", e.to_string()))
            }
            Action::Raise { exception, message } => Err(AppError::new(*exception, *message)),
        }
    }

    fn target(&self, index: usize) -> Result<ObjRef, AppError> {
        self.targets
            .read()
            .get(index)
            .copied()
            .flatten()
            .ok_or_else(|| AppError::new("Unwired", format!("target slot {index}")))
    }
}

impl Servant for ScriptedServant {
    fn dispatch(&self, ctx: &ServerCtx, method: MethodIndex, _args: Vec<Value>) -> MethodResult {
        let script = self
            .methods
            .get(method.0 as usize)
            .ok_or_else(|| AppError::new("BadMethod", format!("{method}")))?;
        let body_probe = self
            .body_probes
            .read()
            .get(method.0 as usize)
            .cloned()
            .flatten();
        let run = || -> MethodResult {
            for action in &script.actions {
                self.run_action(ctx, action)?;
            }
            Ok(Value::I64(script.actions.len() as i64))
        };
        match body_probe {
            Some(probe) => probe.measure(run),
            None => run(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causeway_core::monitor::ProbeMode;
    use causeway_orb::prelude::*;
    use std::time::Duration;

    const IDL: &str = r#"
        interface Node {
            long go(in long x);
            oneway void fire(in long x);
        };
    "#;

    #[test]
    fn scripted_pipeline_runs_and_raises() {
        let mut builder = System::builder();
        builder.probe_mode(ProbeMode::Cpu);
        let node = builder.node("n", "X");
        let p = builder.process("app", node, ThreadingPolicy::ThreadPerRequest);
        let system = builder.build();
        system.load_idl(IDL).unwrap();

        let leaf = ScriptedServant::new(vec![
            MethodScript::new(vec![Action::Compute { cpu_us: 50 }]),
            MethodScript::new(vec![]),
        ]);
        let leaf_ref = system
            .register_servant(p, "Node", "Leaf", "leaf#0", leaf.clone())
            .unwrap();

        let root = ScriptedServant::new(vec![
            MethodScript::new(vec![
                Action::Compute { cpu_us: 10 },
                Action::Call { target: 0, method: "go", manual: None },
                Action::CallOneway { target: 0, method: "fire" },
            ]),
            MethodScript::new(vec![]),
        ]);
        root.wire(0, leaf_ref);
        let root_ref = system
            .register_servant(p, "Node", "Root", "root#0", root.clone())
            .unwrap();

        let failing = ScriptedServant::new(vec![
            MethodScript::new(vec![Action::Raise { exception: "Jam", message: "paper jam" }]),
            MethodScript::new(vec![]),
        ]);
        let failing_ref = system
            .register_servant(p, "Node", "Failing", "fail#0", failing)
            .unwrap();

        system.start();
        let client = system.client(p);
        client.begin_root();
        let out = client.invoke(&root_ref, "go", vec![Value::I64(1)]).unwrap();
        assert_eq!(out.as_i64(), Some(3), "three actions ran");

        let err = client.invoke(&failing_ref, "go", vec![Value::I64(1)]).unwrap_err();
        assert!(matches!(err, OrbError::Application(app) if app.exception == "Jam"));

        system.quiesce(Duration::from_secs(5)).unwrap();
        system.shutdown();
        let records = system.harvest().records;
        assert!(!records.is_empty());
    }

    #[test]
    fn unwired_target_raises() {
        let mut builder = System::builder();
        let node = builder.node("n", "X");
        let p = builder.process("app", node, ThreadingPolicy::ThreadPerRequest);
        let system = builder.build();
        system.load_idl(IDL).unwrap();
        let servant = ScriptedServant::new(vec![
            MethodScript::new(vec![Action::Call { target: 3, method: "go", manual: None }]),
            MethodScript::new(vec![]),
        ]);
        let obj = system.register_servant(p, "Node", "C", "c#0", servant).unwrap();
        system.start();
        let err = system
            .client(p)
            .invoke(&obj, "go", vec![Value::I64(0)])
            .unwrap_err();
        assert!(matches!(err, OrbError::Application(app) if app.exception == "Unwired"));
        system.shutdown();
    }

    #[test]
    fn manual_probes_collect_samples() {
        let mut builder = System::builder();
        builder.instrumented(false); // manual runs use plain stubs
        let node = builder.node("n", "X");
        let p = builder.process("app", node, ThreadingPolicy::ThreadPerRequest);
        let system = builder.build();
        system.load_idl(IDL).unwrap();

        let leaf = ScriptedServant::new(vec![
            MethodScript::new(vec![Action::Work { wall_us: 500, cpu_us: 100 }]),
            MethodScript::new(vec![]),
        ]);
        let leaf_ref = system.register_servant(p, "Node", "L", "l#0", leaf).unwrap();

        let probe = Arc::new(ManualProbe::new(
            Arc::new(causeway_core::clock::SystemClock::new()),
            Arc::new(causeway_core::clock::VirtualCpuClock::new()),
        ));
        let root = ScriptedServant::new(vec![
            MethodScript::new(vec![Action::Call {
                target: 0,
                method: "go",
                manual: Some(probe.clone()),
            }]),
            MethodScript::new(vec![]),
        ]);
        root.wire(0, leaf_ref);
        let root_ref = system.register_servant(p, "Node", "R", "r#0", root).unwrap();
        system.start();
        let client = system.client(p);
        for _ in 0..3 {
            client.invoke(&root_ref, "go", vec![Value::I64(0)]).unwrap();
        }
        system.shutdown();
        let samples = probe.samples();
        assert_eq!(samples.len(), 3);
        assert!(samples.iter().all(|s| s.wall_ns >= 500_000));
    }
}
