//! Open-loop load generation: fixed arrival schedules, free of
//! coordinated omission.
//!
//! A closed-loop driver (issue a call, wait for the reply, issue the next)
//! measures a server that is never behind: every stall pauses the load,
//! so the latency a slow window inflicts on the requests that *would have
//! arrived* during it is silently omitted. An open-loop driver fixes the
//! arrival times up front — [`Arrivals::schedule`] — and charges every
//! request's latency from its **scheduled** arrival, whether or not a
//! worker was free to issue it on time. Queueing delay during a stall
//! therefore lands in the percentiles instead of disappearing.
//!
//! The schedules pair with the engines' bounded dispatch queues: a
//! [`Arrivals::ThunderingHerd`] against a small queue capacity must show
//! up as explicit shed load (`causeway_engine_shed_total`), never as an
//! unbounded queue or a deadlock.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// An open-loop arrival pattern, rendered to concrete offsets by
/// [`Arrivals::schedule`].
#[derive(Debug, Clone)]
pub enum Arrivals {
    /// Evenly spaced arrivals at a fixed rate.
    Steady {
        /// Arrivals per second.
        rate_per_sec: f64,
        /// Total arrivals.
        count: usize,
    },
    /// A baseline rate with periodic bursts: within each `period`, the
    /// first `duty` fraction arrives at `burst_rate_per_sec`, the rest at
    /// `base_rate_per_sec`.
    Burst {
        /// Arrivals per second outside bursts.
        base_rate_per_sec: f64,
        /// Arrivals per second inside bursts.
        burst_rate_per_sec: f64,
        /// Length of one base+burst cycle.
        period: Duration,
        /// Fraction of each period spent bursting, clamped to `0.0..=1.0`.
        duty: f64,
        /// Total arrivals.
        count: usize,
    },
    /// `herds` groups of `herd_size` simultaneous arrivals, `gap` apart —
    /// the synchronized-client stampede (cache expiry, retry storm).
    ThunderingHerd {
        /// Number of stampedes.
        herds: usize,
        /// Simultaneous arrivals per stampede.
        herd_size: usize,
        /// Quiet time between stampedes.
        gap: Duration,
    },
}

impl Arrivals {
    /// Renders the pattern into sorted arrival offsets from the run start.
    /// The schedule is computed before any load is issued, so a slow
    /// server cannot push arrivals later (the open-loop property).
    pub fn schedule(&self) -> Vec<Duration> {
        match *self {
            Arrivals::Steady { rate_per_sec, count } => {
                let interval = interval_of(rate_per_sec);
                (0..count).map(|i| interval * i as u32).collect()
            }
            Arrivals::Burst {
                base_rate_per_sec,
                burst_rate_per_sec,
                period,
                duty,
                count,
            } => {
                let duty = duty.clamp(0.0, 1.0);
                let period_s = period.as_secs_f64().max(1e-9);
                let mut offsets = Vec::with_capacity(count);
                let mut t = 0.0f64;
                for _ in 0..count {
                    offsets.push(Duration::from_secs_f64(t));
                    let phase = (t / period_s).fract();
                    let rate = if phase < duty { burst_rate_per_sec } else { base_rate_per_sec };
                    t += interval_of(rate).as_secs_f64();
                }
                offsets
            }
            Arrivals::ThunderingHerd { herds, herd_size, gap } => {
                let mut offsets = Vec::with_capacity(herds * herd_size);
                for herd in 0..herds {
                    let at = gap * herd as u32;
                    offsets.extend(std::iter::repeat_n(at, herd_size));
                }
                offsets
            }
        }
    }
}

/// Seconds-per-arrival for a rate, clamped away from zero and infinity.
fn interval_of(rate_per_sec: f64) -> Duration {
    let rate = rate_per_sec.clamp(1e-3, 1e9);
    Duration::from_secs_f64(1.0 / rate)
}

/// What one open-loop run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Arrivals in the schedule (every one was issued).
    pub offered: usize,
    /// Operations that returned `Ok`.
    pub ok: usize,
    /// Operations that returned `Err` — under a bounded engine queue,
    /// typically shed load.
    pub errors: usize,
    /// Per-arrival latency from **scheduled** arrival to completion,
    /// nanoseconds, sorted ascending. Includes the wait for a free worker,
    /// so queueing under overload is charged, not omitted.
    pub latencies_ns: Vec<u64>,
    /// Wall time from run start to the last completion.
    pub elapsed: Duration,
}

impl LoadReport {
    /// The `q`-quantile (0.0..=1.0) of schedule-relative latency, using
    /// the nearest-rank rule. `None` on an empty report.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.latencies_ns.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.latencies_ns.len() as f64).ceil() as usize)
            .clamp(1, self.latencies_ns.len());
        Some(self.latencies_ns[rank - 1])
    }

    /// Completions (ok + errors) per second of elapsed wall time.
    pub fn throughput_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64().max(1e-9);
        (self.ok + self.errors) as f64 / secs
    }
}

/// Issues `schedule` through `op` from `workers` threads, open-loop.
///
/// Workers pull the next arrival index from a shared cursor. Each arrival
/// waits until its scheduled time if the worker is early, and is issued
/// immediately (already late) otherwise; either way its latency is charged
/// from the scheduled time. `op` receives the arrival index and reports
/// success or failure (a shed or refused call is a failure — it still
/// counts as offered load).
pub fn run_open_loop<F>(workers: usize, schedule: &[Duration], op: F) -> LoadReport
where
    F: Fn(usize) -> Result<(), String> + Sync,
{
    let workers = workers.max(1);
    let next = AtomicUsize::new(0);
    let results: Mutex<(usize, usize, Vec<u64>)> = Mutex::new((0, 0, Vec::new()));
    let epoch = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut ok = 0usize;
                let mut errors = 0usize;
                let mut latencies = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&offset) = schedule.get(i) else { break };
                    let scheduled = epoch + offset;
                    let now = Instant::now();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    }
                    match op(i) {
                        Ok(()) => ok += 1,
                        Err(_) => errors += 1,
                    }
                    // From the *schedule*, not from issue: the wait for
                    // this worker is part of the request's latency.
                    latencies.push(scheduled.elapsed().as_nanos() as u64);
                }
                let mut merged = results.lock().unwrap_or_else(|e| e.into_inner());
                merged.0 += ok;
                merged.1 += errors;
                merged.2.extend(latencies);
            });
        }
    });
    let elapsed = epoch.elapsed();
    let (ok, errors, mut latencies_ns) = results.into_inner().unwrap_or_else(|e| e.into_inner());
    latencies_ns.sort_unstable();
    LoadReport { offered: schedule.len(), ok, errors, latencies_ns, elapsed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_schedule_is_evenly_spaced() {
        let schedule = Arrivals::Steady { rate_per_sec: 1000.0, count: 5 }.schedule();
        assert_eq!(schedule.len(), 5);
        assert_eq!(schedule[0], Duration::ZERO);
        for pair in schedule.windows(2) {
            assert_eq!(pair[1] - pair[0], Duration::from_millis(1));
        }
    }

    #[test]
    fn thundering_herd_schedules_simultaneous_arrivals() {
        let schedule = Arrivals::ThunderingHerd {
            herds: 3,
            herd_size: 4,
            gap: Duration::from_millis(10),
        }
        .schedule();
        assert_eq!(schedule.len(), 12);
        for herd in 0..3u32 {
            let at = Duration::from_millis(10) * herd;
            assert!(schedule.iter().filter(|&&o| o == at).count() == 4);
        }
    }

    #[test]
    fn burst_schedule_is_denser_inside_the_burst() {
        let schedule = Arrivals::Burst {
            base_rate_per_sec: 100.0,
            burst_rate_per_sec: 10_000.0,
            period: Duration::from_millis(100),
            duty: 0.5,
            count: 200,
        }
        .schedule();
        assert_eq!(schedule.len(), 200);
        assert!(schedule.windows(2).all(|p| p[0] <= p[1]), "monotone offsets");
        // The first half-period bursts at 100x the base rate: far more
        // than half the arrivals land inside it.
        let in_burst = schedule
            .iter()
            .filter(|o| (o.as_secs_f64() / 0.1).fract() < 0.5)
            .count();
        assert!(in_burst > 150, "{in_burst} of 200 arrivals in burst windows");
    }

    #[test]
    fn latency_is_charged_from_the_schedule_not_from_issue() {
        // Two arrivals at t=0, one worker, a 20 ms operation: the second
        // arrival is issued ~20 ms late and its latency must say so.
        let schedule = vec![Duration::ZERO, Duration::ZERO];
        let report = run_open_loop(1, &schedule, |_| {
            std::thread::sleep(Duration::from_millis(20));
            Ok(())
        });
        assert_eq!(report.offered, 2);
        assert_eq!(report.ok, 2);
        assert_eq!(report.errors, 0);
        let worst = *report.latencies_ns.last().expect("two samples");
        assert!(
            worst >= 35_000_000,
            "queue wait omitted from open-loop latency: worst {worst} ns"
        );
        assert!(report.quantile_ns(1.0) == Some(worst));
    }

    #[test]
    fn failures_count_as_offered_load() {
        let schedule = Arrivals::Steady { rate_per_sec: 1e6, count: 10 }.schedule();
        let report =
            run_open_loop(4, &schedule, |i| if i % 2 == 0 { Ok(()) } else { Err("shed".into()) });
        assert_eq!(report.offered, 10);
        assert_eq!(report.ok, 5);
        assert_eq!(report.errors, 5);
        assert_eq!(report.latencies_ns.len(), 10);
    }
}
