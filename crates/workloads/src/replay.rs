//! Test-harness generation from observed behavior — the paper's final
//! future-work item: "to automate or semi-automate test harness generation
//! for multithreaded and distributed systems testing".
//!
//! [`derive`] turns a reconstructed DSCG back into an executable workload
//! specification: the same call trees, the same process placement, the same
//! invocation kinds, and (optionally) the same per-invocation self latency
//! as timed `Work` actions. [`execute`] then replays that specification on
//! a fresh system — so a trace captured in production becomes a regression
//! harness: replay it, reconstruct it, and diff the graphs.

use crate::script::{Action, MethodScript, ScriptedServant};
use causeway_analyzer::dscg::{CallNode, Dscg, Visit, walk_pre_post};
use causeway_analyzer::hotspot::self_latency;
use causeway_collector::db::MonitoringDb;
use causeway_core::ids::ProcessId;
use causeway_core::monitor::ProbeMode;
use causeway_core::runlog::RunLog;
use causeway_core::value::Value;
use causeway_orb::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

/// One invocation in the derived harness.
///
/// `Clone`, `PartialEq` and `Drop` are hand-written iteratively: a harness
/// derived from a paper-scale chain is as deep as the chain itself, and the
/// derived / compiler-generated versions recurse once per level.
#[derive(Debug)]
pub struct ReplayNode {
    /// Label carried over from the original object (for diffing).
    pub label: String,
    /// Index into the harness's process list.
    pub process: usize,
    /// `true` replays as a one-way call.
    pub oneway: bool,
    /// Self latency to reproduce as busy wall time, µs (0 = none).
    pub work_us: u64,
    /// Child invocations in call order.
    pub children: Vec<ReplayNode>,
}

impl ReplayNode {
    /// Total invocations in this subtree.
    pub fn size(&self) -> usize {
        let mut count = 0;
        let mut stack = vec![self];
        while let Some(node) = stack.pop() {
            count += 1;
            stack.extend(node.children.iter());
        }
        count
    }
}

impl Clone for ReplayNode {
    fn clone(&self) -> ReplayNode {
        enum Step<'a> {
            Enter(&'a ReplayNode),
            Exit,
        }
        fn shallow(node: &ReplayNode) -> ReplayNode {
            ReplayNode {
                label: node.label.clone(),
                process: node.process,
                oneway: node.oneway,
                work_us: node.work_us,
                children: Vec::with_capacity(node.children.len()),
            }
        }
        let mut building: Vec<ReplayNode> = Vec::new();
        let mut done: Option<ReplayNode> = None;
        let mut stack = vec![Step::Enter(self)];
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(node) => {
                    building.push(shallow(node));
                    stack.push(Step::Exit);
                    for child in node.children.iter().rev() {
                        stack.push(Step::Enter(child));
                    }
                }
                Step::Exit => {
                    let finished = building.pop().expect("Enter pushed a copy");
                    match building.last_mut() {
                        Some(parent) => parent.children.push(finished),
                        None => done = Some(finished),
                    }
                }
            }
        }
        done.expect("root Exit ran")
    }
}

impl PartialEq for ReplayNode {
    fn eq(&self, other: &ReplayNode) -> bool {
        let mut stack = vec![(self, other)];
        while let Some((a, b)) = stack.pop() {
            if a.label != b.label
                || a.process != b.process
                || a.oneway != b.oneway
                || a.work_us != b.work_us
                || a.children.len() != b.children.len()
            {
                return false;
            }
            stack.extend(a.children.iter().zip(b.children.iter()));
        }
        true
    }
}

impl Eq for ReplayNode {}

impl Drop for ReplayNode {
    fn drop(&mut self) {
        // Harnesses derived from paper-scale chains are as deep as the
        // chains themselves: flatten so the drop glue never recurses.
        if self.children.is_empty() {
            return;
        }
        let mut scratch = std::mem::take(&mut self.children);
        let mut next = 0;
        while next < scratch.len() {
            let grandchildren = std::mem::take(&mut scratch[next].children);
            scratch.extend(grandchildren);
            next += 1;
        }
    }
}

/// One causal chain of the harness.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayTree {
    /// Top-level sibling invocations.
    pub roots: Vec<ReplayNode>,
}

/// A complete derived harness.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySpec {
    /// Number of server processes the harness needs.
    pub processes: usize,
    /// The trees to replay, in original chain order.
    pub trees: Vec<ReplayTree>,
}

impl ReplaySpec {
    /// Total invocations across all trees.
    pub fn total_calls(&self) -> usize {
        self.trees
            .iter()
            .map(|t| t.roots.iter().map(ReplayNode::size).sum::<usize>())
            .sum()
    }
}

/// Options for harness derivation.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeriveOptions {
    /// Reproduce each invocation's self latency as a timed `Work` action,
    /// scaled by this factor (0.0 disables timing replay).
    pub work_scale: f64,
}

/// Derives a replay harness from a monitoring database.
pub fn derive(db: &MonitoringDb, options: DeriveOptions) -> ReplaySpec {
    let dscg = Dscg::build(db);
    derive_from_dscg(&dscg, db, options)
}

/// Derives a replay harness from an already-built DSCG.
pub fn derive_from_dscg(dscg: &Dscg, db: &MonitoringDb, options: DeriveOptions) -> ReplaySpec {
    // Map original process ids to dense harness indexes.
    let mut process_index: BTreeMap<ProcessId, usize> = BTreeMap::new();
    dscg.walk(&mut |node, _| {
        if let Some(p) = execution_process(node) {
            let next = process_index.len();
            process_index.entry(p).or_insert(next);
        }
    });

    let shallow = |node: &CallNode| -> ReplayNode {
        let process = execution_process(node)
            .and_then(|p| process_index.get(&p).copied())
            .unwrap_or(0);
        let work_us = if options.work_scale > 0.0 {
            self_latency(node)
                .map(|ns| ((ns as f64) * options.work_scale / 1_000.0).round() as u64)
                .unwrap_or(0)
        } else {
            0
        };
        ReplayNode {
            label: db
                .vocab()
                .object(node.func.object)
                .map(|o| o.label.clone())
                .unwrap_or_else(|| node.func.object.to_string()),
            process,
            oneway: node.kind == causeway_core::event::CallKind::Oneway,
            work_us,
            children: Vec::with_capacity(node.children.len()),
        }
    };
    // Iterative two-phase conversion on the shared traversal helper: Enter
    // pushes a childless ReplayNode, Exit pops it into its parent.
    let convert_roots = |roots: &[CallNode]| -> Vec<ReplayNode> {
        let mut building: Vec<ReplayNode> = Vec::new();
        let mut out: Vec<ReplayNode> = Vec::new();
        walk_pre_post(roots, &mut |node, _, visit| match visit {
            Visit::Enter => building.push(shallow(node)),
            Visit::Exit => {
                let finished = building.pop().expect("Enter pushed a node");
                match building.last_mut() {
                    Some(parent) => parent.children.push(finished),
                    None => out.push(finished),
                }
            }
        });
        out
    };

    ReplaySpec {
        processes: process_index.len().max(1),
        trees: dscg
            .trees
            .iter()
            .map(|tree| ReplayTree { roots: convert_roots(&tree.roots) })
            .collect(),
    }
}

/// The process an invocation executed in (skeleton side preferred).
fn execution_process(node: &CallNode) -> Option<ProcessId> {
    node.skel_start
        .as_ref()
        .or(node.stub_start.as_ref())
        .map(|r| r.site.process)
}

/// Replays a harness on a fresh system, returning the new run's log.
///
/// # Panics
///
/// Panics if the replayed system misbehaves — the harness is valid by
/// construction, so failures indicate runtime bugs.
pub fn execute(spec: &ReplaySpec, probe_mode: ProbeMode) -> RunLog {
    let mut builder = System::builder();
    builder.probe_mode(probe_mode);
    let node = builder.node("replay", "ReplayCpu");
    let driver = builder.process("replay-driver", node, ThreadingPolicy::ThreadPerRequest);
    let ps: Vec<ProcessId> = (0..spec.processes)
        .map(|i| builder.process(&format!("replay-{i}"), node, ThreadingPolicy::ThreadPerRequest))
        .collect();
    let system = builder.build();
    system
        .load_idl("interface Replay { long go(in long x); oneway void fire(in long x); };")
        .expect("static IDL");

    // Iterative two-phase registration (replay trees are as deep as the
    // chains they reproduce): Enter assigns the pre-order object index,
    // Exit registers the servant once all child references exist.
    fn register(
        root: &ReplayNode,
        system: &System,
        ps: &[ProcessId],
        counter: &mut usize,
    ) -> ObjRef {
        enum Step<'a> {
            Enter(&'a ReplayNode),
            Exit(&'a ReplayNode, usize),
        }
        // Child object references collected per open node.
        let mut frames: Vec<Vec<ObjRef>> = vec![Vec::new()];
        let mut stack = vec![Step::Enter(root)];
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(node) => {
                    let my_index = *counter;
                    *counter += 1;
                    frames.push(Vec::new());
                    stack.push(Step::Exit(node, my_index));
                    for child in node.children.iter().rev() {
                        stack.push(Step::Enter(child));
                    }
                }
                Step::Exit(node, my_index) => {
                    let wires = frames.pop().expect("Enter pushed a frame");
                    let mut actions = Vec::new();
                    if node.work_us > 0 {
                        actions.push(Action::Work { wall_us: node.work_us, cpu_us: node.work_us });
                    }
                    for (slot, child) in node.children.iter().enumerate() {
                        if child.oneway {
                            actions.push(Action::CallOneway { target: slot, method: "fire" });
                        } else {
                            actions.push(Action::Call { target: slot, method: "go", manual: None });
                        }
                    }
                    let script = MethodScript::new(actions);
                    let servant = ScriptedServant::new(vec![script.clone(), script]);
                    let obj = system
                        .register_servant(
                            ps[node.process.min(ps.len() - 1)],
                            "Replay",
                            &format!("Replay{my_index}"),
                            &node.label,
                            servant.clone(),
                        )
                        .expect("registration succeeds");
                    for (slot, target) in wires.into_iter().enumerate() {
                        servant.wire(slot, target);
                    }
                    frames.last_mut().expect("root frame").push(obj);
                }
            }
        }
        frames
            .pop()
            .and_then(|mut refs| refs.pop())
            .expect("root registered")
    }

    // Register every tree's objects, then replay tree by tree.
    let mut counter = 0usize;
    let plans: Vec<Vec<(ObjRef, bool)>> = spec
        .trees
        .iter()
        .map(|tree| {
            tree.roots
                .iter()
                .map(|root| (register(root, &system, &ps, &mut counter), root.oneway))
                .collect()
        })
        .collect();

    system.start();
    let client = system.client(driver);
    for plan in &plans {
        client.begin_root();
        for (obj, oneway) in plan {
            if *oneway {
                client.invoke_oneway(obj, "fire", vec![Value::I64(0)]).expect("replay oneway");
            } else {
                client.invoke(obj, "go", vec![Value::I64(0)]).expect("replay call");
            }
        }
    }
    system.quiesce(Duration::from_secs(60)).expect("replay quiesces");
    system.shutdown();
    system.harvest()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pps::{Pps, PpsConfig, PpsDeployment};
    use causeway_analyzer::dscg::Dscg;

    fn shape(dscg: &Dscg, db: &MonitoringDb) -> Vec<Vec<String>> {
        // Per tree: the pre-order label/kind sequence.
        dscg.trees
            .iter()
            .map(|tree| {
                let mut out = Vec::new();
                for root in &tree.roots {
                    root.walk(&mut |node, depth| {
                        let label = db
                            .vocab()
                            .object(node.func.object)
                            .map(|o| o.label.clone())
                            .unwrap_or_default();
                        out.push(format!("{depth}:{label}:{}", node.kind));
                    });
                }
                out
            })
            .collect()
    }

    #[test]
    fn replayed_pps_reproduces_the_call_graph_shape() {
        let config = PpsConfig {
            deployment: PpsDeployment::FourProcess,
            probe_mode: ProbeMode::CausalityOnly,
            work_scale: 0.02,
            ..PpsConfig::default()
        };
        let pps = Pps::build(&config);
        pps.run_jobs(3);
        let db = MonitoringDb::from_run(pps.finish());
        let original = Dscg::build(&db);

        let spec = derive(&db, DeriveOptions::default());
        assert_eq!(spec.total_calls(), original.total_nodes());
        assert_eq!(spec.processes, 4);

        let replay_run = execute(&spec, ProbeMode::CausalityOnly);
        let replay_db = MonitoringDb::from_run(replay_run);
        let replayed = Dscg::build(&replay_db);
        assert!(replayed.abnormalities.is_empty(), "{:?}", replayed.abnormalities);

        // Identical shape: same per-tree pre-order label/kind sequences.
        // (Collocated-vs-sync may differ because the replay places the
        // driver in its own process; compare labels and structure.)
        let strip = |shapes: Vec<Vec<String>>| -> Vec<Vec<String>> {
            shapes
                .into_iter()
                .map(|tree| {
                    tree.into_iter()
                        .map(|s| s.rsplit_once(':').map(|(a, _)| a.to_owned()).unwrap_or(s))
                        .collect()
                })
                .collect()
        };
        assert_eq!(
            strip(shape(&replayed, &replay_db)),
            strip(shape(&original, &db)),
            "replayed trees must match the originals"
        );
        // One-way calls stayed one-way.
        let count_oneway = |dscg: &Dscg| {
            let mut n = 0;
            dscg.walk(&mut |node, _| {
                if node.kind == causeway_core::event::CallKind::Oneway {
                    n += 1;
                }
            });
            n
        };
        assert_eq!(count_oneway(&replayed), count_oneway(&original));
    }

    #[test]
    fn work_replay_reproduces_latency_magnitudes() {
        let config = PpsConfig {
            deployment: PpsDeployment::FourProcess,
            probe_mode: ProbeMode::Latency,
            work_scale: 0.05,
            ..PpsConfig::default()
        };
        let pps = Pps::build(&config);
        pps.run_jobs(2);
        let db = MonitoringDb::from_run(pps.finish());

        let spec = derive(&db, DeriveOptions { work_scale: 1.0 });
        // The busiest stage (rasterize, scaled 0.05 of 400µs = ~20µs self)
        // must carry nonzero replay work.
        let has_work = spec
            .trees
            .iter()
            .flat_map(|t| &t.roots)
            .any(tree_has_work);
        assert!(has_work, "derived harness carries timing actions");

        let replay_run = execute(&spec, ProbeMode::Latency);
        let replay_db = MonitoringDb::from_run(replay_run);
        let replayed = Dscg::build(&replay_db);
        // Root latency of the replay is in the same order of magnitude as
        // the original (both dominated by the replayed Work actions).
        let root_latency = |dscg: &Dscg| {
            causeway_analyzer::latency::node_latency(&dscg.trees[0].roots[0])
                .map(|l| l.latency_ns)
                .unwrap_or(0)
        };
        let original = Dscg::build(&db);
        let a = root_latency(&original) as f64;
        let b = root_latency(&replayed) as f64;
        assert!(b > a * 0.3 && b < a * 3.0, "original {a} ns vs replay {b} ns");
    }

    fn tree_has_work(node: &ReplayNode) -> bool {
        node.work_us > 0 || node.children.iter().any(tree_has_work)
    }
}
