//! Seeded random call-tree workloads.
//!
//! Generates an arbitrary invocation tree (mixed synchronous/one-way calls
//! across several processes), executes it on the real runtime, and knows
//! its own shape — so callers can assert the analyzer reconstructed exactly
//! what ran. The property-based tests drive the same machinery through
//! proptest; this module offers a plain seeded generator for stress tests
//! and benches.

use crate::script::{Action, MethodScript, ScriptedServant};
use causeway_core::ids::ProcessId;
use causeway_core::monitor::ProbeMode;
use causeway_core::runlog::RunLog;
use causeway_core::value::Value;
use causeway_orb::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Parameters for the random tree generator.
#[derive(Debug, Clone)]
pub struct RandomTreeConfig {
    /// Maximum tree depth (root = depth 1).
    pub max_depth: usize,
    /// Maximum children per node.
    pub max_fanout: usize,
    /// Probability that a call is one-way.
    pub oneway_probability: f64,
    /// Number of simulated server processes (the driver is extra).
    pub processes: usize,
    /// Base probe mode for the run (canonical names: `causality-only`,
    /// `latency`, `cpu`, `both` — see [`ProbeMode`]'s `FromStr`).
    pub probe_mode: ProbeMode,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomTreeConfig {
    fn default() -> Self {
        RandomTreeConfig {
            max_depth: 4,
            max_fanout: 3,
            oneway_probability: 0.2,
            processes: 3,
            probe_mode: ProbeMode::CausalityOnly,
            seed: 1,
        }
    }
}

/// One node of the generated specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomNode {
    /// `true` for a one-way invocation.
    pub oneway: bool,
    /// Index of the hosting process (0-based among server processes).
    pub process: usize,
    /// Child invocations in call order.
    pub children: Vec<RandomNode>,
}

impl RandomNode {
    /// Total invocations in this subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(RandomNode::size).sum::<usize>()
    }

    /// Depth of this subtree.
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(RandomNode::depth).max().unwrap_or(0)
    }
}

/// Generates a random tree specification.
pub fn generate(config: &RandomTreeConfig) -> RandomNode {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    gen_node(&mut rng, config, 1, false)
}

fn gen_node(
    rng: &mut SmallRng,
    config: &RandomTreeConfig,
    depth: usize,
    force_leafward: bool,
) -> RandomNode {
    let oneway = rng.gen_bool(config.oneway_probability);
    let process = rng.gen_range(0..config.processes.max(1));
    let children = if depth >= config.max_depth || force_leafward {
        Vec::new()
    } else {
        let fanout = rng.gen_range(0..=config.max_fanout);
        (0..fanout)
            .map(|_| {
                // Thin out deep subtrees to keep sizes moderate.
                let force = rng.gen_bool(0.3);
                gen_node(rng, config, depth + 1, force)
            })
            .collect()
    };
    RandomNode { oneway, process, children }
}

/// The outcome of executing a random tree.
#[derive(Debug)]
pub struct RandomRun {
    /// The specification that was executed.
    pub spec: RandomNode,
    /// The harvested monitoring data.
    pub run: RunLog,
}

/// Builds the system for `spec`, executes one root transaction, quiesces
/// and harvests.
///
/// # Panics
///
/// Panics when the runtime misbehaves (registration or invocation failure)
/// — the generated workload is valid by construction, so any failure is a
/// harness bug worth crashing on.
pub fn execute(config: &RandomTreeConfig, spec: &RandomNode) -> RandomRun {
    let mut builder = System::builder();
    builder.probe_mode(config.probe_mode);
    let node = builder.node("rnd", "RndCpu");
    let driver = builder.process("driver", node, ThreadingPolicy::ThreadPerRequest);
    let ps: Vec<ProcessId> = (0..config.processes.max(1))
        .map(|i| builder.process(&format!("p{i}"), node, ThreadingPolicy::ThreadPerRequest))
        .collect();
    let system = builder.build();
    system
        .load_idl("interface R { long go(in long x); oneway void fire(in long x); };")
        .expect("static IDL");

    fn register(
        spec: &RandomNode,
        system: &System,
        ps: &[ProcessId],
        counter: &mut usize,
    ) -> ObjRef {
        let my_index = *counter;
        *counter += 1;
        let mut actions = Vec::new();
        let mut wires: Vec<ObjRef> = Vec::new();
        for child in &spec.children {
            let child_ref = register(child, system, ps, counter);
            let slot = wires.len();
            wires.push(child_ref);
            if child.oneway {
                actions.push(Action::CallOneway { target: slot, method: "fire" });
            } else {
                actions.push(Action::Call { target: slot, method: "go", manual: None });
            }
        }
        let script = MethodScript::new(actions);
        let servant = ScriptedServant::new(vec![script.clone(), script]);
        let obj = system
            .register_servant(
                ps[spec.process],
                "R",
                &format!("C{my_index}"),
                &format!("rnd{my_index}"),
                servant.clone(),
            )
            .expect("registration succeeds");
        for (slot, target) in wires.into_iter().enumerate() {
            servant.wire(slot, target);
        }
        obj
    }

    let mut counter = 0usize;
    let root_ref = register(spec, &system, &ps, &mut counter);
    system.start();
    let client = system.client(driver);
    client.begin_root();
    if spec.oneway {
        client
            .invoke_oneway(&root_ref, "fire", vec![Value::I64(0)])
            .expect("root oneway");
    } else {
        client.invoke(&root_ref, "go", vec![Value::I64(0)]).expect("root call");
    }
    system.quiesce(Duration::from_secs(30)).expect("quiesce");
    system.shutdown();
    assert_eq!(system.anomaly_count(), 0, "random workloads are anomaly-free");
    RandomRun { spec: spec.clone(), run: system.harvest() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causeway_analyzer::dscg::Dscg;
    use causeway_collector::db::MonitoringDb;

    #[test]
    fn generation_is_deterministic() {
        let config = RandomTreeConfig::default();
        assert_eq!(generate(&config), generate(&config));
        let other = RandomTreeConfig { seed: 2, ..config };
        // Extremely unlikely to coincide.
        assert_ne!(generate(&RandomTreeConfig::default()), generate(&other));
    }

    #[test]
    fn executed_tree_reconstructs_to_spec_size() {
        for seed in 0..6 {
            let config = RandomTreeConfig { seed, ..RandomTreeConfig::default() };
            let spec = generate(&config);
            let outcome = execute(&config, &spec);
            let db = MonitoringDb::from_run(outcome.run);
            let dscg = Dscg::build(&db);
            assert!(dscg.abnormalities.is_empty(), "seed {seed}: {:?}", dscg.abnormalities);
            assert_eq!(dscg.total_nodes(), spec.size(), "seed {seed}");
            assert_eq!(dscg.trees.len(), 1, "seed {seed}");
        }
    }

    #[test]
    fn depth_and_fanout_respect_bounds() {
        let config = RandomTreeConfig { max_depth: 3, max_fanout: 2, seed: 9, ..Default::default() };
        for seed in 0..20 {
            let spec = generate(&RandomTreeConfig { seed, ..config.clone() });
            assert!(spec.depth() <= 3);
            fn check(node: &RandomNode) {
                assert!(node.children.len() <= 2);
                node.children.iter().for_each(check);
            }
            check(&spec);
        }
    }
}
