//! A synthetic stand-in for the paper's commercial large-scale embedded
//! system.
//!
//! The original is proprietary (">1 million lines of code", "partitioned
//! into 32 threads in a single-processor 4 processes configuration", whose
//! largest run "consisted of about 195,000 calls, with a total of 801
//! unique methods in 155 unique interfaces from 176 unique components").
//! Since the analyzer's scalability depends only on the *shape* of the
//! monitoring data, a seeded generator reproducing those shape statistics
//! preserves the experiment (DESIGN.md §2).
//!
//! The generator emits real IDL (exercising the compiler at scale), places
//! component objects level-by-level across the 4 processes, and wires an
//! acyclic call graph whose levels map 1:1 to processes — a chain holds at
//! most one pool worker per process at a time, so fixed pools of 7 workers
//! (4 × 7 server threads + 4 driver threads = 32) can never deadlock.

use crate::script::{Action, MethodScript, ScriptedServant};
use causeway_core::monitor::ProbeMode;
use causeway_core::runlog::RunLog;
use causeway_core::value::Value;
use causeway_orb::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Shape parameters for the synthetic system.
#[derive(Debug, Clone)]
pub struct CommercialConfig {
    /// Number of components (the paper: 176).
    pub components: usize,
    /// Number of interfaces (the paper: 155).
    pub interfaces: usize,
    /// Total methods across all interfaces (the paper: 801).
    pub methods: usize,
    /// Target number of invocations (the paper: ~195,000).
    pub target_calls: usize,
    /// Driver threads issuing root transactions (4 drivers + 4×7 pool
    /// workers = the paper's 32 threads).
    pub driver_threads: usize,
    /// Pool size per server process.
    pub pool_size: usize,
    /// Base probe mode for every interface (canonical names:
    /// `causality-only`, `latency`, `cpu`, `both` — see
    /// [`ProbeMode`]'s `FromStr`). A shared [`causeway_core::monitor::ProbePolicy`]
    /// can override it per interface at runtime.
    pub probe_mode: ProbeMode,
    /// RNG seed — same seed, same system, same workload.
    pub seed: u64,
}

impl Default for CommercialConfig {
    fn default() -> Self {
        CommercialConfig {
            components: 176,
            interfaces: 155,
            methods: 801,
            target_calls: 195_000,
            driver_threads: 4,
            pool_size: 7,
            probe_mode: ProbeMode::CausalityOnly,
            seed: 0x1cdc_2003,
        }
    }
}

impl CommercialConfig {
    /// A scaled-down variant for tests (same topology rules, ~`calls`
    /// invocations).
    pub fn scaled(calls: usize, seed: u64) -> CommercialConfig {
        CommercialConfig {
            components: 24,
            interfaces: 16,
            methods: 64,
            target_calls: calls,
            driver_threads: 2,
            pool_size: 4,
            seed,
            ..CommercialConfig::default()
        }
    }
}

const LEVELS: usize = 4;

/// The generated, started system plus its workload plan.
pub struct CommercialSystem {
    /// The underlying ORB system.
    pub system: System,
    /// Level-0 entry points: (object, root method name, exact invocations a
    /// root transaction through it produces).
    pub entry_points: Vec<(ObjRef, String, usize)>,
    /// Total invocations the planned workload will produce.
    pub planned_calls: usize,
    roots_plan: Vec<usize>, // indexes into entry_points
    driver_threads: usize,
}

impl std::fmt::Debug for CommercialSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommercialSystem")
            .field("entry_points", &self.entry_points.len())
            .field("planned_calls", &self.planned_calls)
            .finish()
    }
}

fn method_name(i: usize) -> String {
    format!("m{i}")
}

impl CommercialSystem {
    /// Generates, wires and starts the system.
    pub fn build(config: &CommercialConfig) -> CommercialSystem {
        let mut rng = SmallRng::seed_from_u64(config.seed);

        // --- Interfaces: distribute `methods` over `interfaces`, skewed
        // (a few fat interfaces, many small ones). ---
        let interfaces = config.interfaces.max(1);
        let mut methods_per_iface = vec![1usize; interfaces];
        let mut remaining = config.methods.saturating_sub(interfaces);
        while remaining > 0 {
            let idx = rng.gen_range(0..interfaces);
            let grab = remaining.min(rng.gen_range(1..=3));
            methods_per_iface[idx] += grab;
            remaining -= grab;
        }

        // Emit genuine IDL text and load it through the real compiler.
        let mut idl = String::from("module Commercial {\n");
        let mut next_method = 0usize;
        // iface_methods[j] = global method ids declared on interface j.
        let mut iface_methods: Vec<Vec<usize>> = Vec::with_capacity(interfaces);
        for (j, &count) in methods_per_iface.iter().enumerate() {
            writeln!(idl, "  interface I{j} {{").expect("string write");
            let mut mine = Vec::with_capacity(count);
            for _ in 0..count {
                writeln!(idl, "    long {}(in long x);", method_name(next_method))
                    .expect("string write");
                mine.push(next_method);
                next_method += 1;
            }
            idl.push_str("  };\n");
            iface_methods.push(mine);
        }
        idl.push_str("};\n");

        // --- System: one node, a driver process + 4 pooled server
        // processes (levels). ---
        let mut builder = System::builder();
        builder.probe_mode(config.probe_mode);
        let node = builder.node("embedded-cpu", "PA-RISC");
        let _driver_p = builder.process("driver", node, ThreadingPolicy::ThreadPerRequest);
        let server_ps: Vec<_> = (0..LEVELS)
            .map(|i| {
                builder.process(
                    &format!("server-{i}"),
                    node,
                    ThreadingPolicy::ThreadPool(config.pool_size),
                )
            })
            .collect();
        let system = builder.build();
        system.load_idl(&idl).expect("generated IDL compiles");

        // --- Components: level = index mod LEVELS; each implements one
        // randomly chosen interface. ---
        let component_count = config.components.max(LEVELS).max(interfaces);
        let comp_level: Vec<usize> = (0..component_count).map(|c| c % LEVELS).collect();
        // Round-robin interface assignment so every interface (and hence
        // every method) is implemented by at least one component — the
        // paper's largest run touched all 801 methods of all 155 interfaces.
        let comp_iface: Vec<usize> = (0..component_count).map(|c| c % interfaces).collect();
        let by_level: Vec<Vec<usize>> = (0..LEVELS)
            .map(|l| (0..component_count).filter(|&c| comp_level[c] == l).collect())
            .collect();

        // --- Call graph: (component, method slot) at level L calls targets
        // at level L+1. Two passes: a coverage pass guaranteeing that every
        // method below level 0 has at least one caller (so a full run
        // exercises all `methods` unique methods, as the paper's largest
        // run did), then random extra fan-out. ---
        let mut children: Vec<Vec<Vec<(usize, usize)>>> = (0..component_count)
            .map(|c| vec![Vec::new(); iface_methods[comp_iface[c]].len()])
            .collect();
        for level in 1..LEVELS {
            for &c in &by_level[level] {
                let callers = &by_level[level - 1];
                if callers.is_empty() {
                    continue;
                }
                for mslot in 0..iface_methods[comp_iface[c]].len() {
                    let caller = callers[rng.gen_range(0..callers.len())];
                    let caller_slots = iface_methods[comp_iface[caller]].len();
                    let caller_slot = rng.gen_range(0..caller_slots);
                    children[caller][caller_slot].push((c, mslot));
                }
            }
        }
        for c in 0..component_count {
            if comp_level[c] + 1 >= LEVELS {
                continue;
            }
            let next = &by_level[comp_level[c] + 1];
            if next.is_empty() {
                continue;
            }
            let method_count = iface_methods[comp_iface[c]].len();
            for slot in children[c].iter_mut().take(method_count) {
                for _ in 0..rng.gen_range(0..=2) {
                    let target = next[rng.gen_range(0..next.len())];
                    let t_slots = iface_methods[comp_iface[target]].len();
                    slot.push((target, rng.gen_range(0..t_slots)));
                }
            }
        }

        // --- Scripts + registration, then a wiring pass. ---
        let mut servants: Vec<Arc<ScriptedServant>> = Vec::with_capacity(component_count);
        let mut wires: Vec<Vec<usize>> = Vec::with_capacity(component_count);
        let mut objs: Vec<ObjRef> = Vec::with_capacity(component_count);
        for c in 0..component_count {
            let mut my_wires: Vec<usize> = Vec::new();
            let scripts: Vec<MethodScript> = children[c]
                .iter()
                .map(|slot_calls| {
                    let mut actions = vec![Action::Compute { cpu_us: 5 }];
                    for &(target_comp, target_mslot) in slot_calls {
                        let wire_slot = my_wires.len();
                        my_wires.push(target_comp);
                        let target_method = iface_methods[comp_iface[target_comp]][target_mslot];
                        actions.push(Action::Call {
                            target: wire_slot,
                            method: Box::leak(method_name(target_method).into_boxed_str()),
                            manual: None,
                        });
                    }
                    MethodScript::new(actions)
                })
                .collect();
            let servant = ScriptedServant::new(scripts);
            let obj = system
                .register_servant(
                    server_ps[comp_level[c]],
                    &format!("Commercial::I{}", comp_iface[c]),
                    &format!("Component{c}"),
                    &format!("comp{c}#0"),
                    servant.clone(),
                )
                .expect("registration");
            servants.push(servant);
            wires.push(my_wires);
            objs.push(obj);
        }
        for c in 0..component_count {
            for (slot, &target_comp) in wires[c].iter().enumerate() {
                servants[c].wire(slot, objs[target_comp]);
            }
        }

        // --- Workload plan: exact tree size per (component, method slot);
        // accumulate level-0 roots until the target call count. ---
        let mut memo: Vec<Vec<Option<usize>>> = (0..component_count)
            .map(|c| vec![None; iface_methods[comp_iface[c]].len()])
            .collect();
        fn tree_size(
            comp: usize,
            mslot: usize,
            children: &[Vec<Vec<(usize, usize)>>],
            memo: &mut [Vec<Option<usize>>],
        ) -> usize {
            if let Some(size) = memo[comp][mslot] {
                return size;
            }
            let mut size = 1;
            for i in 0..children[comp][mslot].len() {
                let (tc, tm) = children[comp][mslot][i];
                size += tree_size(tc, tm, children, memo);
            }
            memo[comp][mslot] = Some(size);
            size
        }

        let mut entry_points = Vec::new();
        for &c in &by_level[0] {
            for (mslot, &mid) in iface_methods[comp_iface[c]].iter().enumerate() {
                let size = tree_size(c, mslot, &children, &mut memo);
                entry_points.push((objs[c], method_name(mid), size));
            }
        }

        let mut roots_plan = Vec::new();
        let mut planned = 0usize;
        let mut idx = 0usize;
        while planned < config.target_calls && !entry_points.is_empty() {
            let ep = idx % entry_points.len();
            roots_plan.push(ep);
            planned += entry_points[ep].2;
            idx += 1;
        }

        system.start();
        CommercialSystem {
            system,
            entry_points,
            planned_calls: planned,
            roots_plan,
            driver_threads: config.driver_threads.max(1),
        }
    }

    /// Executes the planned workload with the configured driver threads,
    /// then quiesces. Returns the number of root transactions issued.
    pub fn run(&self) -> usize {
        let mut chunks = vec![Vec::new(); self.driver_threads];
        for (i, &ep) in self.roots_plan.iter().enumerate() {
            chunks[i % self.driver_threads].push(ep);
        }
        let driver_p = causeway_core::ids::ProcessId(0);
        std::thread::scope(|scope| {
            for chunk in &chunks {
                let client = self.system.client(driver_p);
                let entry_points = &self.entry_points;
                scope.spawn(move || {
                    for &ep in chunk {
                        let (obj, method, _) = &entry_points[ep];
                        client.begin_root();
                        client
                            .invoke(obj, method, vec![Value::I64(0)])
                            .expect("commercial workload call");
                    }
                });
            }
        });
        self.system
            .quiesce(Duration::from_secs(60))
            .expect("commercial system quiesces");
        self.roots_plan.len()
    }

    /// Stops the system and returns the run log.
    pub fn finish(self) -> RunLog {
        self.system.shutdown();
        self.system.harvest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causeway_analyzer::dscg::Dscg;
    use causeway_collector::db::MonitoringDb;

    #[test]
    fn scaled_system_hits_its_call_target() {
        let config = CommercialConfig::scaled(2_000, 42);
        let commercial = CommercialSystem::build(&config);
        let planned = commercial.planned_calls;
        assert!(planned >= 2_000);
        let roots = commercial.run();
        assert!(roots > 0);
        let db = MonitoringDb::from_run(commercial.finish());
        let stats = db.scale_stats();
        assert_eq!(stats.calls, planned, "the plan predicted the call count exactly");
        assert_eq!(stats.total_records, 4 * planned, "4 probe records per call");
        assert_eq!(stats.processes, 5, "driver + 4 servers record probes");
        let dscg = Dscg::build(&db);
        assert!(dscg.abnormalities.is_empty(), "{:?}", dscg.abnormalities);
        assert_eq!(dscg.total_nodes(), planned);
        assert_eq!(dscg.trees.len(), roots);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = CommercialSystem::build(&CommercialConfig::scaled(500, 7));
        let b = CommercialSystem::build(&CommercialConfig::scaled(500, 7));
        assert_eq!(a.planned_calls, b.planned_calls);
        assert_eq!(a.entry_points.len(), b.entry_points.len());
        let c = CommercialSystem::build(&CommercialConfig::scaled(500, 8));
        let sizes = |s: &CommercialSystem| s.entry_points.iter().map(|e| e.2).collect::<Vec<_>>();
        assert_ne!(sizes(&a), sizes(&c), "different seed, different topology");
        a.system.shutdown();
        b.system.shutdown();
        c.system.shutdown();
    }

    #[test]
    fn full_shape_defaults_match_the_paper() {
        let config = CommercialConfig::default();
        assert_eq!(config.components, 176);
        assert_eq!(config.interfaces, 155);
        assert_eq!(config.methods, 801);
        assert_eq!(config.target_calls, 195_000);
        assert_eq!(config.driver_threads + LEVELS * config.pool_size, 32);
    }
}
