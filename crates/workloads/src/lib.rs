//! # causeway-workloads
//!
//! The example systems of the paper's §4 plus generic workload machinery:
//!
//! * [`script`] — scripted servants: declarative per-method action lists
//!   (compute, sleep, call child, raise) that drive the ORB, used by every
//!   workload and by the property-based integration tests.
//! * [`pps`] — the **Printing Pipeline Simulator**: 11 components,
//!   configurable into a monolithic single-thread deployment, the paper's
//!   single-processor 4-process deployment, or a multi-node
//!   HPUX/WindowsNT/VxWorks deployment.
//! * [`load`] — open-loop (coordinated-omission-free) load generation:
//!   fixed arrival schedules (steady, burst, thundering herd) issued from
//!   worker threads with latency charged from scheduled arrival.
//! * [`commercial`] — a seeded synthetic stand-in for the paper's
//!   1M-line commercial embedded system, matching its published shape
//!   statistics (~176 components, ~155 interfaces, ~801 methods, ~195,000
//!   calls, 32 threads, 4 processes on one processor).

#![warn(missing_docs)]

pub mod commercial;
pub mod load;
pub mod pps;
pub mod random;
pub mod replay;
pub mod script;

pub use commercial::{CommercialConfig, CommercialSystem};
pub use load::{run_open_loop, Arrivals, LoadReport};
pub use pps::{Pps, PpsConfig, PpsDeployment, StageName};
pub use random::{RandomNode, RandomTreeConfig};
pub use replay::{DeriveOptions, ReplayNode, ReplaySpec, ReplayTree};
pub use script::{Action, MethodScript, ScriptedServant};
