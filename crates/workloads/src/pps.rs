//! The Printing Pipeline Simulator (PPS).
//!
//! "The PPS system is ORBlite based and consists of 11 components. It has
//! been flexibly configured into multiple processes hosted by different
//! platforms that include HPUX, Windows and VxWorks."
//!
//! Per job, the pipeline runs:
//!
//! ```text
//! JobSource.submit
//! └─ Spooler.enqueue
//!    └─ Interpreter.interpret
//!       ├─ LayoutEngine.layout
//!       ├─ ColorConverter.convert
//!       │  └─ Halftoner.halftone
//!       ├─ Compressor.compress
//!       └─ Rasterizer.rasterize
//!          ├─ MarkingEngine.mark   (once per page)
//!          └─ Finisher.finish
//! ```
//!
//! with one-way `StatusMonitor.report` events fired from the spooler, the
//! rasterizer and the finisher.

use crate::script::{Action, MethodScript, ScriptedServant};
use causeway_core::ids::ProcessId;
use causeway_core::manual::ManualProbe;
use causeway_core::monitor::ProbeMode;
use causeway_core::runlog::RunLog;
use causeway_core::value::Value;
use causeway_orb::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// The 11 components of the PPS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StageName {
    /// Accepts jobs from the driver.
    JobSource,
    /// Queues jobs.
    Spooler,
    /// Interprets the page description language.
    Interpreter,
    /// Computes page layout.
    LayoutEngine,
    /// Converts color spaces.
    ColorConverter,
    /// Applies halftoning.
    Halftoner,
    /// Compresses the raster.
    Compressor,
    /// Produces the final raster.
    Rasterizer,
    /// Drives the print engine.
    MarkingEngine,
    /// Staples/collates.
    Finisher,
    /// Receives one-way status events.
    StatusMonitor,
}

impl StageName {
    /// All stages in pipeline order.
    pub const ALL: [StageName; 11] = [
        StageName::JobSource,
        StageName::Spooler,
        StageName::Interpreter,
        StageName::LayoutEngine,
        StageName::ColorConverter,
        StageName::Halftoner,
        StageName::Compressor,
        StageName::Rasterizer,
        StageName::MarkingEngine,
        StageName::Finisher,
        StageName::StatusMonitor,
    ];

    /// The component's display name.
    pub fn as_str(self) -> &'static str {
        match self {
            StageName::JobSource => "JobSource",
            StageName::Spooler => "Spooler",
            StageName::Interpreter => "Interpreter",
            StageName::LayoutEngine => "LayoutEngine",
            StageName::ColorConverter => "ColorConverter",
            StageName::Halftoner => "Halftoner",
            StageName::Compressor => "Compressor",
            StageName::Rasterizer => "Rasterizer",
            StageName::MarkingEngine => "MarkingEngine",
            StageName::Finisher => "Finisher",
            StageName::StatusMonitor => "StatusMonitor",
        }
    }
}

/// How the PPS is deployed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PpsDeployment {
    /// Everything in one process on one HPUX node, driven by a single
    /// thread — the paper's "monolithic single-thread configuration".
    Monolithic,
    /// The paper's "single-processor 4-process" configuration (all HPUX).
    #[default]
    FourProcess,
    /// Three nodes with different CPU types (HPUX, WindowsNT, VxWorks),
    /// four processes.
    MultiNode,
}

/// PPS configuration.
#[derive(Debug, Clone)]
pub struct PpsConfig {
    /// Deployment shape.
    pub deployment: PpsDeployment,
    /// Base probe mode for every interface (canonical names:
    /// `causality-only`, `latency`, `cpu`, `both` — see
    /// [`ProbeMode`]'s `FromStr`). A shared [`causeway_core::monitor::ProbePolicy`]
    /// can override it per interface at runtime.
    pub probe_mode: ProbeMode,
    /// Instrumented or plain stubs (plain for manual-measurement runs).
    pub instrumented: bool,
    /// Collocation optimization (the paper's latency experiment ran with it
    /// turned off so in-process calls still cross the full stub/skeleton
    /// path).
    pub collocation_optimization: bool,
    /// Pages per job (each page is one `MarkingEngine.mark` call).
    pub pages_per_job: usize,
    /// Scales every stage's work (1.0 = the defaults below; use smaller in
    /// unit tests).
    pub work_scale: f64,
    /// Manual-measurement probes to install around call sites at build time
    /// (`(caller stage, callee method, probe)`), reproducing the paper's
    /// "one probe for one target function in one system run".
    pub manual_call_probes: Vec<(StageName, &'static str, Arc<ManualProbe>)>,
}

impl Default for PpsConfig {
    fn default() -> Self {
        PpsConfig {
            deployment: PpsDeployment::FourProcess,
            probe_mode: ProbeMode::Latency,
            instrumented: true,
            collocation_optimization: false,
            pages_per_job: 2,
            work_scale: 1.0,
            manual_call_probes: Vec::new(),
        }
    }
}

/// The IDL all stages share.
pub const PPS_IDL: &str = r#"
    module Pps {
        interface Stage {
            long submit(in long job);
            long enqueue(in long job);
            long interpret(in long job);
            long layout(in long job);
            long convert(in long job);
            long halftone(in long job);
            long compress(in long job);
            long rasterize(in long job);
            long mark(in long page);
            long finish(in long job);
            oneway void report(in long code);
        };
    };
"#;

/// Per-stage work parameters (wall µs, cpu µs) at scale 1.0.
fn stage_work(stage: StageName) -> (u64, u64) {
    match stage {
        StageName::JobSource => (20, 10),
        StageName::Spooler => (40, 20),
        StageName::Interpreter => (300, 250),
        StageName::LayoutEngine => (150, 120),
        StageName::ColorConverter => (180, 150),
        StageName::Halftoner => (120, 100),
        StageName::Compressor => (90, 80),
        StageName::Rasterizer => (400, 350),
        StageName::MarkingEngine => (200, 60),
        StageName::Finisher => (80, 40),
        StageName::StatusMonitor => (10, 5),
    }
}

/// A built PPS instance.
pub struct Pps {
    /// The underlying system.
    pub system: System,
    /// Stage object references, indexed by [`StageName::ALL`] order.
    pub stages: Vec<ObjRef>,
    /// Stage servants (for attaching manual probes), same order.
    pub servants: Vec<Arc<ScriptedServant>>,
    /// The process the driver issues jobs from.
    pub driver: ProcessId,
}

impl std::fmt::Debug for Pps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pps").field("stages", &self.stages.len()).finish()
    }
}

impl Pps {
    /// Builds and starts a PPS.
    pub fn build(config: &PpsConfig) -> Pps {
        let mut builder = System::builder();
        builder
            .probe_mode(config.probe_mode)
            .instrumented(config.instrumented)
            .collocation_optimization(config.collocation_optimization);

        // Nodes and processes per deployment.
        let (processes, driver) = match config.deployment {
            PpsDeployment::Monolithic => {
                let hp = builder.node("hpux-1", "HPUX");
                let p = builder.process("pps", hp, ThreadingPolicy::ThreadPerRequest);
                (vec![p; 4], p)
            }
            PpsDeployment::FourProcess => {
                let hp = builder.node("hpux-1", "HPUX");
                let ps: Vec<ProcessId> = (0..4)
                    .map(|i| {
                        builder.process(&format!("pps-{i}"), hp, ThreadingPolicy::ThreadPerRequest)
                    })
                    .collect();
                let driver = ps[0];
                (ps, driver)
            }
            PpsDeployment::MultiNode => {
                let hp = builder.node("hpux-1", "HPUX");
                let nt = builder.node("nt-1", "WindowsNT");
                let vx = builder.node("vxworks-1", "VxWorks");
                let p0 = builder.process("frontend", hp, ThreadingPolicy::ThreadPerRequest);
                let p1 = builder.process("imaging", nt, ThreadingPolicy::ThreadPerRequest);
                let p2 = builder.process("raster", nt, ThreadingPolicy::ThreadPerRequest);
                let p3 = builder.process("engine", vx, ThreadingPolicy::ThreadPerRequest);
                (vec![p0, p1, p2, p3], p0)
            }
        };

        let system = builder.build();
        system.load_idl(PPS_IDL).expect("PPS IDL is well-formed");

        // Stage → process assignment (matching the paper's 4-process split).
        let placement = |stage: StageName| -> ProcessId {
            match stage {
                StageName::JobSource | StageName::Spooler | StageName::StatusMonitor => {
                    processes[0]
                }
                StageName::Interpreter | StageName::LayoutEngine => processes[1],
                StageName::ColorConverter | StageName::Halftoner | StageName::Compressor => {
                    processes[2]
                }
                StageName::Rasterizer | StageName::MarkingEngine | StageName::Finisher => {
                    processes[3]
                }
            }
        };

        let scale = |us: u64| -> u64 { ((us as f64) * config.work_scale).round() as u64 };

        // Wired-slot layout per stage (slot indexes into each servant):
        //   JobSource:     0 = Spooler
        //   Spooler:       0 = Interpreter, 1 = StatusMonitor
        //   Interpreter:   0 = LayoutEngine, 1 = ColorConverter,
        //                  2 = Compressor, 3 = Rasterizer
        //   ColorConverter:0 = Halftoner
        //   Rasterizer:    0 = MarkingEngine, 1 = Finisher, 2 = StatusMonitor
        //   Finisher:      0 = StatusMonitor
        let scripts = |stage: StageName| -> Vec<MethodScript> {
            let (wall, cpu) = stage_work(stage);
            let work = Action::Work { wall_us: scale(wall), cpu_us: scale(cpu) };
            // One script per method in PPS_IDL declaration order; a stage
            // implements "its" method and leaves the others empty.
            let mut methods = vec![MethodScript::default(); 11];
            let set = |methods: &mut Vec<MethodScript>, idx: usize, actions: Vec<Action>| {
                methods[idx] = MethodScript::new(actions);
            };
            match stage {
                StageName::JobSource => set(
                    &mut methods,
                    0, // submit
                    vec![work, Action::Call { target: 0, method: "enqueue", manual: None }],
                ),
                StageName::Spooler => set(
                    &mut methods,
                    1, // enqueue
                    vec![
                        work,
                        Action::CallOneway { target: 1, method: "report" },
                        Action::Call { target: 0, method: "interpret", manual: None },
                    ],
                ),
                StageName::Interpreter => set(
                    &mut methods,
                    2, // interpret
                    vec![
                        work,
                        Action::Call { target: 0, method: "layout", manual: None },
                        Action::Call { target: 1, method: "convert", manual: None },
                        Action::Call { target: 2, method: "compress", manual: None },
                        Action::Call { target: 3, method: "rasterize", manual: None },
                    ],
                ),
                StageName::LayoutEngine => set(&mut methods, 3, vec![work]),
                StageName::ColorConverter => set(
                    &mut methods,
                    4, // convert
                    vec![work, Action::Call { target: 0, method: "halftone", manual: None }],
                ),
                StageName::Halftoner => set(&mut methods, 5, vec![work]),
                StageName::Compressor => set(&mut methods, 6, vec![work]),
                StageName::Rasterizer => {
                    let mut actions = vec![work];
                    for _ in 0..config.pages_per_job {
                        actions.push(Action::Call { target: 0, method: "mark", manual: None });
                    }
                    actions.push(Action::CallOneway { target: 2, method: "report" });
                    actions.push(Action::Call { target: 1, method: "finish", manual: None });
                    set(&mut methods, 7, actions);
                }
                StageName::MarkingEngine => set(&mut methods, 8, vec![work]),
                StageName::Finisher => set(
                    &mut methods,
                    9, // finish
                    vec![work, Action::CallOneway { target: 0, method: "report" }],
                ),
                StageName::StatusMonitor => set(&mut methods, 10, vec![work]),
            }
            // Install any configured manual probes on this stage's call
            // sites.
            for script in &mut methods {
                for action in &mut script.actions {
                    if let Action::Call { method, manual, .. } = action {
                        if manual.is_none() {
                            *manual = config
                                .manual_call_probes
                                .iter()
                                .find(|(s, m, _)| *s == stage && m == method)
                                .map(|(_, _, p)| Arc::clone(p));
                        }
                    }
                }
            }
            methods
        };

        // Register all stages.
        let mut stages = Vec::new();
        let mut servants = Vec::new();
        for stage in StageName::ALL {
            let servant = ScriptedServant::new(scripts(stage));
            let obj = system
                .register_servant(
                    placement(stage),
                    "Pps::Stage",
                    stage.as_str(),
                    &format!("{}#0", stage.as_str()),
                    servant.clone(),
                )
                .expect("PPS registration");
            stages.push(obj);
            servants.push(servant);
        }

        let obj_of = |stage: StageName| stages[StageName::ALL.iter().position(|s| *s == stage).expect("stage in ALL")];
        let servant_of = |stage: StageName| {
            &servants[StageName::ALL.iter().position(|s| *s == stage).expect("stage in ALL")]
        };

        servant_of(StageName::JobSource).wire(0, obj_of(StageName::Spooler));
        servant_of(StageName::Spooler).wire(0, obj_of(StageName::Interpreter));
        servant_of(StageName::Spooler).wire(1, obj_of(StageName::StatusMonitor));
        servant_of(StageName::Interpreter).wire(0, obj_of(StageName::LayoutEngine));
        servant_of(StageName::Interpreter).wire(1, obj_of(StageName::ColorConverter));
        servant_of(StageName::Interpreter).wire(2, obj_of(StageName::Compressor));
        servant_of(StageName::Interpreter).wire(3, obj_of(StageName::Rasterizer));
        servant_of(StageName::ColorConverter).wire(0, obj_of(StageName::Halftoner));
        servant_of(StageName::Rasterizer).wire(0, obj_of(StageName::MarkingEngine));
        servant_of(StageName::Rasterizer).wire(1, obj_of(StageName::Finisher));
        servant_of(StageName::Rasterizer).wire(2, obj_of(StageName::StatusMonitor));
        servant_of(StageName::Finisher).wire(0, obj_of(StageName::StatusMonitor));

        system.start();
        Pps { system, stages, servants, driver }
    }

    /// The object reference of a stage.
    pub fn stage(&self, stage: StageName) -> ObjRef {
        self.stages[StageName::ALL.iter().position(|s| *s == stage).expect("stage in ALL")]
    }

    /// The servant of a stage (for manual probes).
    pub fn servant(&self, stage: StageName) -> &Arc<ScriptedServant> {
        &self.servants[StageName::ALL.iter().position(|s| *s == stage).expect("stage in ALL")]
    }

    /// Runs `jobs` print jobs sequentially from the driver, one causal chain
    /// per job.
    ///
    /// # Panics
    ///
    /// Panics if any job fails — the PPS scripts are infallible by
    /// construction, so a failure is a harness bug.
    pub fn run_jobs(&self, jobs: usize) {
        let client = self.system.client(self.driver);
        let source = self.stage(StageName::JobSource);
        for job in 0..jobs {
            client.begin_root();
            client
                .invoke(&source, "submit", vec![Value::I64(job as i64)])
                .expect("PPS job");
        }
        self.system
            .quiesce(Duration::from_secs(30))
            .expect("PPS quiesces");
    }

    /// Drives jobs continuously until `stop` is raised, pacing one job per
    /// `pace` (zero paces as fast as the pipeline completes), then quiesces
    /// so every submitted job's records are sealed. Returns the number of
    /// jobs submitted — the long-running load behind the live monitoring
    /// service.
    pub fn drive(&self, stop: &std::sync::atomic::AtomicBool, pace: Duration) -> usize {
        use std::sync::atomic::Ordering;
        let client = self.system.client(self.driver);
        let source = self.stage(StageName::JobSource);
        let mut jobs = 0usize;
        while !stop.load(Ordering::Relaxed) {
            client.begin_root();
            client
                .invoke(&source, "submit", vec![Value::I64(jobs as i64)])
                .expect("PPS job");
            jobs += 1;
            if !pace.is_zero() {
                std::thread::sleep(pace);
            }
        }
        self.system
            .quiesce(Duration::from_secs(30))
            .expect("PPS quiesces");
        jobs
    }

    /// Stops the system and returns its run log.
    pub fn finish(self) -> RunLog {
        self.system.shutdown();
        self.system.harvest()
    }

    /// Number of synchronous invocations each job produces (including the
    /// root `submit`): 9 fixed stages + one `mark` per page.
    pub fn sync_calls_per_job(config: &PpsConfig) -> usize {
        9 + config.pages_per_job
    }

    /// Number of one-way invocations each job produces.
    pub const ONEWAY_CALLS_PER_JOB: usize = 3;
}

#[cfg(test)]
mod tests {
    use super::*;
    use causeway_analyzer::dscg::Dscg;
    use causeway_collector::db::MonitoringDb;

    fn small(deployment: PpsDeployment) -> PpsConfig {
        PpsConfig {
            deployment,
            work_scale: 0.05,
            pages_per_job: 2,
            ..PpsConfig::default()
        }
    }

    #[test]
    fn four_process_pps_produces_clean_chains() {
        let config = small(PpsDeployment::FourProcess);
        let pps = Pps::build(&config);
        pps.run_jobs(3);
        assert_eq!(pps.system.anomaly_count(), 0);
        let db = MonitoringDb::from_run(pps.finish());
        let dscg = Dscg::build(&db);
        assert!(dscg.abnormalities.is_empty(), "{:?}", dscg.abnormalities);
        assert_eq!(dscg.trees.len(), 3);
        let per_job = Pps::sync_calls_per_job(&config) + Pps::ONEWAY_CALLS_PER_JOB;
        assert_eq!(dscg.total_nodes(), 3 * per_job);
        // All 11 components appear.
        let stats = db.scale_stats();
        assert_eq!(stats.unique_components, 11);
        assert_eq!(stats.processes, 4);
    }

    #[test]
    fn monolithic_pps_is_single_process_collocated() {
        let mut config = small(PpsDeployment::Monolithic);
        config.collocation_optimization = true;
        let pps = Pps::build(&config);
        pps.run_jobs(2);
        let db = MonitoringDb::from_run(pps.finish());
        let stats = db.scale_stats();
        assert_eq!(stats.processes, 1);
        // Synchronous pipeline stages ran collocated; only the one-way
        // status events cross threads.
        let sync_kinds: std::collections::HashSet<_> = db
            .records()
            .iter()
            .filter(|r| r.kind != causeway_core::event::CallKind::Oneway)
            .map(|r| r.kind)
            .collect();
        assert_eq!(
            sync_kinds,
            std::iter::once(causeway_core::event::CallKind::Collocated).collect()
        );
    }

    #[test]
    fn multi_node_pps_spans_three_cpu_types() {
        let pps = Pps::build(&small(PpsDeployment::MultiNode));
        pps.run_jobs(2);
        let db = MonitoringDb::from_run(pps.finish());
        assert_eq!(db.deployment().distinct_cpu_types().len(), 3);
        let dscg = Dscg::build(&db);
        assert!(dscg.abnormalities.is_empty());
    }
}
