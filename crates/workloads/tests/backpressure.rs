//! Open-loop bursts against a bounded engine queue: a thundering herd must
//! surface as explicit shed load (`causeway_engine_shed_total`), never as
//! an unbounded queue or a deadlock.

use causeway_core::metrics::MetricsRegistry;
use causeway_core::value::Value;
use causeway_orb::prelude::*;
use causeway_workloads::{run_open_loop, Arrivals};
use std::sync::Arc;
use std::time::Duration;

const IDL: &str = "interface Slow { long work(in long x); };";

/// One pooled worker behind a 2-slot queue, hit by a 64-caller stampede:
/// most of the herd must be shed with the overload reply and the shed
/// metric must account for it. The run finishing at all is the no-deadlock
/// half of the assertion (the harness timeout is the enforcement).
#[test]
fn thundering_herd_is_shed_with_metric_not_deadlock() {
    let mut builder = System::builder();
    builder.engine_queue_capacity(2);
    // A short reply timeout keeps even a missed shed from hanging the test.
    builder.reply_timeout(Duration::from_secs(10));
    let node = builder.node("n", "X");
    let driver = builder.process("driver", node, ThreadingPolicy::ThreadPerRequest);
    let server = builder.process("server", node, ThreadingPolicy::ThreadPool(1));
    let system = builder.build();
    system.load_idl(IDL).unwrap();

    let slow = system
        .register_servant(
            server,
            "Slow",
            "S",
            "s#0",
            Arc::new(FnServant::new(|_, _, args| {
                std::thread::sleep(Duration::from_millis(5));
                Ok(Value::I64(args[0].as_i64().unwrap_or(0)))
            })),
        )
        .unwrap();
    system.start();

    let registry = MetricsRegistry::global();
    let shed_before = registry
        .counter_value_with("causeway_engine_shed_total", &[("engine", "orb")])
        .unwrap_or(0);

    let schedule = Arrivals::ThunderingHerd {
        herds: 2,
        herd_size: 32,
        gap: Duration::from_millis(400),
    }
    .schedule();
    let report = run_open_loop(16, &schedule, |i| {
        let client = system.client(driver);
        client.begin_root();
        match client.invoke(&slow, "work", vec![Value::I64(i as i64)]) {
            Ok(_) => Ok(()),
            Err(e) => Err(e.to_string()),
        }
    });

    let shed_after = registry
        .counter_value_with("causeway_engine_shed_total", &[("engine", "orb")])
        .unwrap_or(0);
    let shed = shed_after - shed_before;

    assert_eq!(report.offered, 64);
    assert_eq!(report.ok + report.errors, 64, "every arrival was answered");
    assert!(report.ok > 0, "the queue admitted and served some of the herd");
    assert!(
        report.errors > 0,
        "a 64-call stampede against a 2-slot queue must shed: {report:?}"
    );
    assert!(
        shed >= report.errors as u64,
        "every overload error is accounted in causeway_engine_shed_total \
         ({shed} shed vs {} errors)",
        report.errors
    );

    system.shutdown();
}
