//! The client side: object references and the generic instrumented stub.
//!
//! [`Client::invoke`] is the paper's Figure 1 client path — probe 1 before
//! marshalling, probe 4 after the reply — with the routing decisions of
//! §2.2: collocation optimization (in-process fast path with degenerate
//! probes), custom marshalling (remote object executed in the client's
//! thread), and one-way dispatch (fire a fresh child chain and return).

use crate::error::OrbError;
use crate::interceptor::{RequestInfo, ServiceContexts};
use crate::orb::Orb;
use crate::registry::ObjectRecord;
use crate::servant::ServerCtx;
use crate::transport::{ConnKey, Incoming, RequestMsg};
use causeway_core::event::CallKind;
use causeway_core::ids::{InterfaceId, MethodIndex, ObjectId, ProcessId};
use causeway_core::record::FunctionKey;
use causeway_core::value::Value;
use causeway_core::wire;
use crossbeam::channel::bounded;
use std::sync::atomic::Ordering;

/// A location-transparent reference to a component object.
///
/// Plain data (`Copy`): workloads wire their topology by handing `ObjRef`s
/// around; invocation happens through a process-bound [`Client`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjRef {
    /// The target object.
    pub object: ObjectId,
    /// The interface it implements.
    pub interface: InterfaceId,
    /// The process hosting it.
    pub owner: ProcessId,
}

/// A client bound to one process — the origin of the invocations it issues.
#[derive(Debug, Clone)]
pub struct Client {
    orb: Orb,
}

impl Client {
    pub(crate) fn new(orb: Orb) -> Client {
        Client { orb }
    }

    /// The process this client issues invocations from.
    pub fn process(&self) -> ProcessId {
        self.orb.process()
    }

    /// Starts a new causal chain on the calling thread: the next invocation
    /// becomes the root of a fresh tree in the DSCG. Call between top-level
    /// transactions.
    pub fn begin_root(&self) {
        self.orb.monitor().begin_root();
    }

    /// Resolves a method name to its declaration index on an interface.
    ///
    /// # Errors
    ///
    /// Returns [`OrbError::UnknownMethod`] when the interface has no such
    /// method.
    pub fn resolve(&self, target: &ObjRef, method: &str) -> Result<MethodIndex, OrbError> {
        self.orb
            .inner
            .vocab
            .method_index(target.interface, method)
            .ok_or_else(|| {
                OrbError::UnknownMethod(format!("{method} on {}", target.interface))
            })
    }

    /// Invokes a synchronous method by name and waits for the result.
    ///
    /// # Errors
    ///
    /// Returns [`OrbError`] for unknown methods, one-way methods (use
    /// [`Client::invoke_oneway`]), transport failures, timeouts, marshalling
    /// failures, and application exceptions raised by the servant.
    pub fn invoke(
        &self,
        target: &ObjRef,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, OrbError> {
        let midx = self.resolve(target, method)?;
        if self.is_oneway(target, midx) {
            return Err(OrbError::CallKindMismatch(format!(
                "{method} is oneway; use invoke_oneway"
            )));
        }
        self.invoke_sync_idx(target, midx, args)
    }

    /// Invokes a one-way method by name: returns as soon as the request is
    /// handed to the transport. The callee executes on its own causal chain,
    /// linked to this caller's chain as parent.
    ///
    /// # Errors
    ///
    /// Returns [`OrbError`] for unknown methods, synchronous methods, and
    /// transport failures.
    pub fn invoke_oneway(
        &self,
        target: &ObjRef,
        method: &str,
        args: Vec<Value>,
    ) -> Result<(), OrbError> {
        let midx = self.resolve(target, method)?;
        if !self.is_oneway(target, midx) {
            return Err(OrbError::CallKindMismatch(format!(
                "{method} is synchronous; use invoke"
            )));
        }
        self.invoke_oneway_idx(target, midx, args)
    }

    fn is_oneway(&self, target: &ObjRef, midx: MethodIndex) -> bool {
        self.orb
            .inner
            .catalog
            .is_oneway(target.interface, midx)
            .unwrap_or(false)
    }

    fn lookup_record(&self, target: &ObjRef) -> Option<ObjectRecord> {
        if target.owner == self.orb.process() {
            self.orb.inner.registry.lookup(target.object)
        } else {
            self.orb
                .inner
                .registries
                .of(target.owner)?
                .lookup(target.object)
        }
    }

    /// Synchronous invocation by method index.
    pub fn invoke_sync_idx(
        &self,
        target: &ObjRef,
        midx: MethodIndex,
        args: Vec<Value>,
    ) -> Result<Value, OrbError> {
        let local = target.owner == self.orb.process();
        let record = self.lookup_record(target);

        // Custom marshalling turns remote calls into collocated calls; the
        // collocation optimization does the same for in-process calls.
        let fast_kind = match &record {
            Some(r) if r.custom_marshal && !local => Some(CallKind::CustomMarshal),
            Some(_) if local && self.orb.config().collocation_optimization => {
                Some(CallKind::Collocated)
            }
            _ => None,
        };

        if let (Some(kind), Some(record)) = (fast_kind, record) {
            return self.invoke_collocated(target, midx, args, kind, record);
        }
        self.invoke_remote(target, midx, args)
    }

    /// The collocated fast path: no marshalling, no engine; the stub/skeleton
    /// start (end) probes degenerate into back-to-back probes on the caller
    /// thread.
    fn invoke_collocated(
        &self,
        target: &ObjRef,
        midx: MethodIndex,
        args: Vec<Value>,
        kind: CallKind,
        record: ObjectRecord,
    ) -> Result<Value, OrbError> {
        let monitor = self.orb.monitor();
        let instrumented = self.orb.config().instrumented;
        let func = FunctionKey::new(target.interface, midx, target.object);

        if instrumented {
            let out = monitor.stub_start(func, kind);
            monitor.skel_start(func, kind, out.wire_ftl, None);
        }
        let ctx = ServerCtx::new(self.clone(), target.object);
        let result = record.servant.dispatch(&ctx, midx, args);
        if instrumented {
            let reply_ftl = monitor.skel_end(func, kind);
            monitor.stub_end(func, kind, Some(reply_ftl));
        }
        result.map_err(OrbError::Application)
    }

    /// The remote path: full marshalling through the transport and the
    /// target's server engine. Also taken by in-process calls when
    /// collocation optimization is disabled (they are then traced as
    /// ordinary synchronous calls, exactly like the paper's "collocated
    /// calls with optimization turned off").
    fn invoke_remote(
        &self,
        target: &ObjRef,
        midx: MethodIndex,
        args: Vec<Value>,
    ) -> Result<Value, OrbError> {
        let monitor = self.orb.monitor();
        let instrumented = self.orb.config().instrumented;
        let func = FunctionKey::new(target.interface, midx, target.object);
        let kind = CallKind::Sync;

        let out = instrumented.then(|| monitor.stub_start(func, kind));

        // Marshal, charged to this thread's CPU.
        let cpu = monitor.cpu_clock();
        let token = cpu.region_begin();
        let mut payload = wire::encode_args(&args);
        if let Some(out) = &out {
            payload = wire::append_ftl(payload, out.wire_ftl);
        }
        cpu.region_end(token);

        // Client-side interception points (pre-invoke).
        let info = RequestInfo { func, kind };
        let mut contexts = ServiceContexts::new();
        {
            let interceptors = self.orb.inner.interceptors.read();
            if !interceptors.is_empty() {
                interceptors.run_send_request(&info, &mut contexts);
            }
        }

        let delay = self.orb.inner.fabric.delay(self.orb.process(), target.owner);
        if !delay.is_zero() {
            std::thread::sleep(delay); // request transit
        }

        let (tx, rx) = bounded(1);
        self.orb.inner.pending.fetch_add(1, Ordering::SeqCst);
        let sent = self.orb.inner.fabric.send(
            target.owner,
            Incoming::Request(RequestMsg {
                conn: ConnKey(self.orb.process()),
                target: target.object,
                interface: target.interface,
                method: midx,
                oneway: false,
                payload,
                contexts,
                reply: Some(tx),
                net_delay: std::time::Duration::ZERO,
            }),
        );
        if let Err(e) = sent {
            self.orb.inner.pending.fetch_sub(1, Ordering::SeqCst);
            self.abandon_stub(func, kind, instrumented);
            return Err(OrbError::ProcessUnreachable(e));
        }

        let reply = rx
            .recv_timeout(self.orb.config().reply_timeout)
            .map_err(|_| {
                self.abandon_stub(func, kind, instrumented);
                OrbError::Timeout(format!("{func} on {}", target.owner))
            })?;

        if !delay.is_zero() {
            std::thread::sleep(delay); // reply transit
        }

        // Client-side interception points (post-invoke).
        {
            let interceptors = self.orb.inner.interceptors.read();
            if !interceptors.is_empty() {
                interceptors.run_receive_reply(&info, &reply.contexts);
            }
        }

        let body = match reply.body {
            Ok(body) => body,
            Err(msg) => {
                self.abandon_stub(func, kind, instrumented);
                return Err(OrbError::UnknownObject(msg));
            }
        };

        let token = cpu.region_begin();
        let (body, reply_ftl) = if instrumented {
            let (body, ftl) = wire::split_ftl(body)?;
            (body, Some(ftl))
        } else {
            (body, None)
        };
        let result = crate::reply::decode_reply(body);
        cpu.region_end(token);

        if instrumented {
            monitor.stub_end(func, kind, reply_ftl);
        }
        result?.map_err(OrbError::Application)
    }

    /// Closes the stub bracket after a failed remote invocation so the
    /// chain's event numbering stays consistent (the missing skeleton events
    /// will surface in the analyzer's abnormal-transition report, which is
    /// exactly how a lost request should look).
    fn abandon_stub(&self, func: FunctionKey, kind: CallKind, instrumented: bool) {
        if instrumented {
            self.orb.monitor().stub_end(func, kind, None);
        }
    }

    /// One-way invocation by method index.
    pub fn invoke_oneway_idx(
        &self,
        target: &ObjRef,
        midx: MethodIndex,
        args: Vec<Value>,
    ) -> Result<(), OrbError> {
        let monitor = self.orb.monitor();
        let instrumented = self.orb.config().instrumented;
        let func = FunctionKey::new(target.interface, midx, target.object);
        let kind = CallKind::Oneway;

        let out = instrumented.then(|| monitor.stub_start(func, kind));

        let cpu = monitor.cpu_clock();
        let token = cpu.region_begin();
        let mut payload = wire::encode_args(&args);
        if let Some(out) = &out {
            let parent = out
                .oneway_parent
                .expect("stub_start always links oneway parents");
            payload = Orb::append_oneway_meta(payload, out.wire_ftl, parent);
        }
        cpu.region_end(token);

        // Client-side interception points for the one-way send.
        let info = RequestInfo { func, kind };
        let mut contexts = ServiceContexts::new();
        {
            let interceptors = self.orb.inner.interceptors.read();
            if !interceptors.is_empty() {
                interceptors.run_send_request(&info, &mut contexts);
            }
        }

        let delay = self.orb.inner.fabric.delay(self.orb.process(), target.owner);
        self.orb.inner.pending.fetch_add(1, Ordering::SeqCst);
        let sent = self.orb.inner.fabric.send(
            target.owner,
            Incoming::Request(RequestMsg {
                conn: ConnKey(self.orb.process()),
                target: target.object,
                interface: target.interface,
                method: midx,
                oneway: true,
                payload,
                contexts,
                reply: None,
                net_delay: delay,
            }),
        );
        if let Err(e) = sent {
            self.orb.inner.pending.fetch_sub(1, Ordering::SeqCst);
            self.abandon_stub(func, kind, instrumented);
            return Err(OrbError::ProcessUnreachable(e));
        }

        if instrumented {
            monitor.stub_end(func, kind, None);
        }
        // Client-side post-invoke interception for the completed send (the
        // CORBA `receive_other` point for one-way requests).
        {
            let interceptors = self.orb.inner.interceptors.read();
            if !interceptors.is_empty() {
                interceptors.run_receive_reply(&info, &ServiceContexts::new());
            }
        }
        Ok(())
    }
}
