//! System assembly: nodes, processes, interfaces, objects, lifecycle.
//!
//! A [`System`] is one simulated deployment — the unit the paper calls "the
//! application": a set of processes on a set of processors, sharing a name
//! vocabulary and a transport fabric, all monitored under one configuration.

use crate::catalog::InterfaceCatalog;
use crate::client::{Client, ObjRef};
use crate::engine::{ServerEngine, ThreadingPolicy};
use crate::error::OrbError;
use crate::orb::{Orb, OrbConfig};
use crate::registry::{ObjectRecord, ObjectRegistry, SharedRegistries};
use crate::servant::Servant;
use crate::transport::{Fabric, Incoming};
use causeway_core::clock::{CpuClock, SystemClock, VirtualCpuClock, WallClock};
use causeway_core::deploy::Deployment;
use causeway_core::ids::{InterfaceId, NodeId, ProcessId};
use causeway_core::monitor::{Monitor, ProbeMode, ProbePolicy};
use causeway_core::names::SystemVocab;
use causeway_core::runlog::RunLog;
use causeway_core::sink::LogStore;
use causeway_idl::compile::{CompileError, InstrumentMode, compile};
use causeway_idl::{ParseError, parse};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::{Duration, Instant};

/// Errors raised while assembling or operating a system.
#[derive(Debug)]
#[non_exhaustive]
pub enum SystemError {
    /// IDL source failed to parse.
    Parse(ParseError),
    /// IDL failed semantic checks.
    Compile(CompileError),
    /// A name was not found (interface, process, …).
    Unknown(String),
    /// The system did not reach quiescence within the allowed time.
    QuiesceTimeout {
        /// Requests still in flight when the wait gave up.
        in_flight: i64,
    },
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Parse(e) => write!(f, "idl parse error: {e}"),
            SystemError::Compile(e) => write!(f, "idl compile error: {e}"),
            SystemError::Unknown(name) => write!(f, "unknown name: {name}"),
            SystemError::QuiesceTimeout { in_flight } => {
                write!(f, "system did not quiesce: {in_flight} requests in flight")
            }
        }
    }
}

impl std::error::Error for SystemError {}

impl From<ParseError> for SystemError {
    fn from(e: ParseError) -> Self {
        SystemError::Parse(e)
    }
}

impl From<CompileError> for SystemError {
    fn from(e: CompileError) -> Self {
        SystemError::Compile(e)
    }
}

/// Builder for a [`System`] (C-BUILDER).
pub struct SystemBuilder {
    vocab: SystemVocab,
    deployment: Deployment,
    policies: Vec<ThreadingPolicy>,
    probe_mode: ProbeMode,
    probe_policy: Option<ProbePolicy>,
    instrumented: bool,
    collocation_optimization: bool,
    reply_timeout: Duration,
    engine_queue_capacity: usize,
    wall: Option<Arc<dyn WallClock>>,
    cpu: Option<Arc<dyn CpuClock>>,
}

impl std::fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("nodes", &self.deployment.nodes.len())
            .field("processes", &self.deployment.processes.len())
            .field("probe_mode", &self.probe_mode)
            .field("instrumented", &self.instrumented)
            .finish()
    }
}

impl SystemBuilder {
    /// Adds a node (processor) with a CPU type name (`"HPUX"`, …).
    pub fn node(&mut self, name: &str, cpu_type: &str) -> NodeId {
        let cpu = self.vocab.intern_cpu_type(cpu_type);
        self.deployment.add_node(name, cpu)
    }

    /// Adds a process on `node` with a server threading policy.
    pub fn process(&mut self, name: &str, node: NodeId, policy: ThreadingPolicy) -> ProcessId {
        self.policies.push(policy);
        self.deployment.add_process(name, node)
    }

    /// Sets the base probe mode (default [`ProbeMode::Latency`]). The mode
    /// becomes the base of the system's shared [`ProbePolicy`] unless
    /// [`SystemBuilder::probe_policy`] supplies one.
    pub fn probe_mode(&mut self, mode: ProbeMode) -> &mut Self {
        self.probe_mode = mode;
        self
    }

    /// Shares an external probe policy with every process monitor instead
    /// of minting one from the base mode — e.g. one policy spanning an ORB
    /// system plus COM/EJB domains so a control plane steers all of them.
    pub fn probe_policy(&mut self, policy: ProbePolicy) -> &mut Self {
        self.probe_policy = Some(policy);
        self
    }

    /// Selects instrumented or plain stubs/skeletons (default instrumented).
    pub fn instrumented(&mut self, instrumented: bool) -> &mut Self {
        self.instrumented = instrumented;
        self
    }

    /// Enables or disables collocation optimization (default enabled).
    pub fn collocation_optimization(&mut self, enabled: bool) -> &mut Self {
        self.collocation_optimization = enabled;
        self
    }

    /// Sets the synchronous reply timeout (default 30 s).
    pub fn reply_timeout(&mut self, timeout: Duration) -> &mut Self {
        self.reply_timeout = timeout;
        self
    }

    /// Bounds each server engine's dispatch queue (default
    /// [`crate::orb::DEFAULT_ENGINE_QUEUE_CAPACITY`]); requests over the
    /// bound are shed with an overload reply and counted in
    /// `causeway_engine_shed_total{engine="orb"}`.
    pub fn engine_queue_capacity(&mut self, capacity: usize) -> &mut Self {
        self.engine_queue_capacity = capacity.max(1);
        self
    }

    /// Substitutes the wall clock shared by all monitors.
    pub fn wall_clock(&mut self, clock: Arc<dyn WallClock>) -> &mut Self {
        self.wall = Some(clock);
        self
    }

    /// Substitutes the CPU clock shared by all monitors.
    pub fn cpu_clock(&mut self, clock: Arc<dyn CpuClock>) -> &mut Self {
        self.cpu = Some(clock);
        self
    }

    /// Assembles the system. Engines are not yet running; call
    /// [`System::start`] once objects are registered.
    ///
    /// # Panics
    ///
    /// Panics if no process was declared — a system with nothing to run is
    /// a builder bug.
    pub fn build(self) -> System {
        assert!(
            !self.deployment.processes.is_empty(),
            "a system needs at least one process"
        );
        let fabric = Fabric::new();
        let catalog = InterfaceCatalog::new();
        let registries = SharedRegistries::new();
        let pending = Arc::new(AtomicI64::new(0));
        let wall = self.wall.unwrap_or_else(|| Arc::new(SystemClock::new()));
        let cpu = self.cpu.unwrap_or_else(|| Arc::new(VirtualCpuClock::new()));
        let probe_policy =
            self.probe_policy.unwrap_or_else(|| ProbePolicy::new(self.probe_mode));

        let mut orbs = Vec::new();
        for (idx, proc_info) in self.deployment.processes.iter().enumerate() {
            let process = ProcessId(idx as u16);
            let registry = ObjectRegistry::new();
            registries.insert(process, registry.clone());
            let monitor = Monitor::builder(process, proc_info.node)
                .policy(probe_policy.clone())
                .wall_clock(Arc::clone(&wall))
                .cpu_clock(Arc::clone(&cpu))
                .store(LogStore::new())
                .build();
            let orb = Orb::new(
                process,
                proc_info.node,
                monitor,
                registry,
                registries.clone(),
                catalog.clone(),
                self.vocab.clone(),
                fabric.clone(),
                OrbConfig {
                    instrumented: self.instrumented,
                    collocation_optimization: self.collocation_optimization,
                    reply_timeout: self.reply_timeout,
                    engine_queue_capacity: self.engine_queue_capacity,
                },
                Arc::clone(&pending),
            );
            orbs.push(orb);
        }

        System {
            vocab: self.vocab,
            deployment: self.deployment,
            policies: self.policies,
            probe_policy,
            fabric,
            catalog,
            orbs,
            pending,
            engines: Mutex::new(Vec::new()),
            started: Mutex::new(false),
        }
    }
}

/// One simulated deployment under monitoring.
pub struct System {
    vocab: SystemVocab,
    deployment: Deployment,
    policies: Vec<ThreadingPolicy>,
    probe_policy: ProbePolicy,
    fabric: Fabric,
    catalog: InterfaceCatalog,
    orbs: Vec<Orb>,
    pending: Arc<AtomicI64>,
    engines: Mutex<Vec<(ProcessId, ServerEngine)>>,
    started: Mutex<bool>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("processes", &self.orbs.len())
            .field("started", &*self.started.lock())
            .field("in_flight", &self.pending.load(Ordering::SeqCst))
            .finish()
    }
}

impl System {
    /// Starts building a system.
    pub fn builder() -> SystemBuilder {
        SystemBuilder {
            vocab: SystemVocab::new(),
            deployment: Deployment::new(),
            policies: Vec::new(),
            probe_mode: ProbeMode::default(),
            probe_policy: None,
            instrumented: true,
            collocation_optimization: true,
            reply_timeout: Duration::from_secs(30),
            engine_queue_capacity: crate::orb::DEFAULT_ENGINE_QUEUE_CAPACITY,
            wall: None,
            cpu: None,
        }
    }

    /// The shared name vocabulary.
    pub fn vocab(&self) -> &SystemVocab {
        &self.vocab
    }

    /// The deployment topology.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The probe policy shared by every process monitor. Hand a clone to a
    /// control plane (e.g. `LiveConfig.adaptive`) to let it hot-swap
    /// per-interface stamping at runtime.
    pub fn probe_policy(&self) -> &ProbePolicy {
        &self.probe_policy
    }

    /// The transport fabric (for configuring link latency).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The ORB of a process.
    ///
    /// # Panics
    ///
    /// Panics on an unknown process id.
    pub fn orb(&self, process: ProcessId) -> &Orb {
        &self.orbs[process.0 as usize]
    }

    /// A client bound to a process.
    pub fn client(&self, process: ProcessId) -> Client {
        self.orb(process).client()
    }

    /// Parses and compiles IDL source with the system's instrumentation
    /// flag, registering every interface. Returns qualified name → id.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] on parse or semantic failures.
    pub fn load_idl(&self, source: &str) -> Result<HashMap<String, InterfaceId>, SystemError> {
        let spec = parse(source)?;
        let mode = if self.orbs[0].config().instrumented {
            InstrumentMode::Instrumented
        } else {
            InstrumentMode::Plain
        };
        let compiled = compile(&spec, mode)?;
        Ok(self.catalog.load(&compiled, &self.vocab))
    }

    /// Registers a servant as a component object in a process.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Unknown`] when the interface was not loaded.
    pub fn register_servant(
        &self,
        process: ProcessId,
        interface: &str,
        component: &str,
        label: &str,
        servant: Arc<dyn Servant>,
    ) -> Result<ObjRef, SystemError> {
        self.register_servant_with(process, interface, component, label, servant, false)
    }

    /// Registers a servant that uses custom marshalling (marshal-by-value):
    /// remote invocations on it execute in the caller's thread.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Unknown`] when the interface was not loaded.
    pub fn register_custom_marshal_servant(
        &self,
        process: ProcessId,
        interface: &str,
        component: &str,
        label: &str,
        servant: Arc<dyn Servant>,
    ) -> Result<ObjRef, SystemError> {
        self.register_servant_with(process, interface, component, label, servant, true)
    }

    fn register_servant_with(
        &self,
        process: ProcessId,
        interface: &str,
        component: &str,
        label: &str,
        servant: Arc<dyn Servant>,
        custom_marshal: bool,
    ) -> Result<ObjRef, SystemError> {
        let iface = self
            .vocab
            .interface_id(interface)
            .ok_or_else(|| SystemError::Unknown(format!("interface {interface}")))?;
        let comp = self.vocab.intern_component(component);
        let object = self.vocab.register_object(label, iface, comp, process);
        self.orb(process).registry().insert(
            object,
            ObjectRecord { servant, interface: iface, component: comp, custom_marshal },
        );
        Ok(ObjRef { object, interface: iface, owner: process })
    }

    /// Starts every process's server engine. Idempotent.
    pub fn start(&self) {
        let mut started = self.started.lock();
        if *started {
            return;
        }
        let mut engines = self.engines.lock();
        for (idx, orb) in self.orbs.iter().enumerate() {
            let process = ProcessId(idx as u16);
            let rx = self.fabric.register(process);
            let stop_tx = self.fabric.sender(process).expect("inbox just registered");
            engines.push((
                process,
                ServerEngine::start(orb.clone(), rx, stop_tx, self.policies[idx]),
            ));
        }
        *started = true;
    }

    /// Requests currently in flight (sent but not fully dispatched).
    pub fn in_flight(&self) -> i64 {
        self.pending.load(Ordering::SeqCst)
    }

    /// Seals the calling thread's open log chunks for every process's
    /// store. Application (client) threads should call this at idle
    /// points — e.g. after a batch of root invocations — so a live
    /// monitor draining from another thread can see their records;
    /// server-side worker threads already flush at dispatch end. Without
    /// this, an idle client thread's tail records stay in its open chunk
    /// until its next invocation or thread exit.
    pub fn flush_local_logs(&self) {
        for orb in &self.orbs {
            orb.monitor().store().flush_current_thread();
        }
    }

    /// Worker threads the process's engine currently tracks (live, or
    /// finished but not yet reaped). Returns 0 when the system is not
    /// started. Observability hook for engine lifecycle tests.
    pub fn tracked_workers(&self, process: ProcessId) -> usize {
        self.engines
            .lock()
            .iter()
            .find(|(p, _)| *p == process)
            .map(|(_, engine)| engine.tracked_workers())
            .unwrap_or(0)
    }

    /// Waits until no requests are in flight — the "quiescent state" after
    /// which logs may be collected.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::QuiesceTimeout`] when in-flight work remains
    /// after `timeout`.
    pub fn quiesce(&self, timeout: Duration) -> Result<(), SystemError> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.pending.load(Ordering::SeqCst) <= 0 {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(SystemError::QuiesceTimeout {
                    in_flight: self.pending.load(Ordering::SeqCst),
                });
            }
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    /// Stops all engines and joins their threads. Idempotent.
    pub fn shutdown(&self) {
        let mut started = self.started.lock();
        if !*started {
            return;
        }
        let mut engines = self.engines.lock();
        for (process, _) in engines.iter() {
            let _ = self.fabric.send(*process, Incoming::Stop);
        }
        for (process, engine) in engines.iter_mut() {
            engine.join();
            self.fabric.unregister(*process);
        }
        engines.clear();
        *started = false;
    }

    /// Gathers every process's scattered logs plus the vocabulary snapshot
    /// and deployment into a [`RunLog`]. Call after [`System::quiesce`].
    pub fn harvest(&self) -> RunLog {
        let mut records = Vec::new();
        let mut expected = 0u64;
        for orb in &self.orbs {
            let store = orb.monitor().store();
            // Captured before the drain so the analyzer can detect records
            // stranded in unsealed chunks (harvest before quiescence).
            expected += store.len() as u64;
            records.extend(store.drain());
        }
        let mut run = RunLog::new(records, self.vocab.snapshot(), self.deployment.clone());
        run.expected_records = Some(expected);
        run
    }

    /// Total anomalies recovered by any process's monitor (0 in healthy
    /// runs).
    pub fn anomaly_count(&self) -> u64 {
        self.orbs.iter().map(|o| o.monitor().anomaly_count()).sum()
    }
}

impl Drop for System {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Convenience conversion so examples can `?` across error kinds.
impl From<OrbError> for SystemError {
    fn from(e: OrbError) -> Self {
        SystemError::Unknown(e.to_string())
    }
}
