//! Per-process object registry.

use crate::servant::Servant;
use causeway_core::ids::{InterfaceId, ObjectId, ProcessId};
use causeway_core::names::ComponentId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Everything the skeleton needs to dispatch to one registered object.
#[derive(Clone)]
pub struct ObjectRecord {
    /// The implementation.
    pub servant: Arc<dyn Servant>,
    /// The interface the object implements.
    pub interface: InterfaceId,
    /// The owning component.
    pub component: ComponentId,
    /// `true` when the object uses custom marshalling (marshal-by-value):
    /// remote invocations execute in the *client's* thread context.
    pub custom_marshal: bool,
}

impl std::fmt::Debug for ObjectRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectRecord")
            .field("interface", &self.interface)
            .field("component", &self.component)
            .field("custom_marshal", &self.custom_marshal)
            .finish()
    }
}

/// A process's object table. Cloning shares state.
#[derive(Debug, Clone, Default)]
pub struct ObjectRegistry {
    inner: Arc<RwLock<HashMap<ObjectId, ObjectRecord>>>,
}

impl ObjectRegistry {
    /// Creates an empty registry.
    pub fn new() -> ObjectRegistry {
        ObjectRegistry::default()
    }

    /// Registers an object.
    pub fn insert(&self, object: ObjectId, record: ObjectRecord) {
        self.inner.write().insert(object, record);
    }

    /// Looks up an object.
    pub fn lookup(&self, object: ObjectId) -> Option<ObjectRecord> {
        self.inner.read().get(&object).cloned()
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// `true` when no objects are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

/// All processes' registries — one address space hosts every simulated
/// process, which is what makes custom marshalling (executing a remote
/// object's implementation in the client's thread) expressible.
#[derive(Debug, Clone, Default)]
pub struct SharedRegistries {
    inner: Arc<RwLock<HashMap<ProcessId, ObjectRegistry>>>,
}

impl SharedRegistries {
    /// Creates an empty set.
    pub fn new() -> SharedRegistries {
        SharedRegistries::default()
    }

    /// Registers a process's registry.
    pub fn insert(&self, process: ProcessId, registry: ObjectRegistry) {
        self.inner.write().insert(process, registry);
    }

    /// The registry of a process.
    pub fn of(&self, process: ProcessId) -> Option<ObjectRegistry> {
        self.inner.read().get(&process).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servant::{FnServant, MethodResult};
    use causeway_core::value::Value;

    fn dummy() -> Arc<dyn Servant> {
        Arc::new(FnServant::new(|_, _, _| -> MethodResult { Ok(Value::Void) }))
    }

    #[test]
    fn insert_and_lookup() {
        let reg = ObjectRegistry::new();
        assert!(reg.is_empty());
        reg.insert(
            ObjectId(1),
            ObjectRecord {
                servant: dummy(),
                interface: InterfaceId(0),
                component: ComponentId(0),
                custom_marshal: false,
            },
        );
        assert_eq!(reg.len(), 1);
        assert!(reg.lookup(ObjectId(1)).is_some());
        assert!(reg.lookup(ObjectId(2)).is_none());
    }

    #[test]
    fn shared_registries_resolve_by_process() {
        let shared = SharedRegistries::new();
        let reg = ObjectRegistry::new();
        shared.insert(ProcessId(3), reg.clone());
        assert!(shared.of(ProcessId(3)).is_some());
        assert!(shared.of(ProcessId(4)).is_none());
        // Clones observe the same map.
        let shared2 = shared.clone();
        shared2.insert(ProcessId(4), ObjectRegistry::new());
        assert!(shared.of(ProcessId(4)).is_some());
    }
}
