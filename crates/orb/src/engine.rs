//! Server engines: the multithreading architectures of Schmidt's ORB survey
//! that §2.2 of the paper proves causality tracing robust against.
//!
//! All three policies preserve observation O1 — a physical thread is
//! dedicated to an incoming call until that call finishes — which, together
//! with O2 (the skeleton-start probe refreshes the thread's FTL on every
//! dispatch), is why the tunnel survives thread reuse.
//!
//! Worker threads also honor the chunked log sink's sealing discipline:
//! each dispatch seals the worker's open chunk before the request stops
//! counting as in-flight (see [`crate::orb::Orb`]), and pooled workers
//! additionally flush before blocking on an empty inbox, so a quiescent
//! engine strands no records in open chunks.

use crate::orb::{Orb, engine_metrics};
use crate::transport::{ConnKey, Incoming};
use crossbeam::channel::{Receiver, Sender, TryRecvError, unbounded};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A message on an engine-internal queue, stamped at enqueue so the worker
/// that picks it up can report how long it waited
/// (`causeway_engine_queue_wait_ns{engine="orb"}`).
struct Queued {
    enqueued: Instant,
    incoming: Incoming,
}

impl Queued {
    fn now(incoming: Incoming) -> Queued {
        Queued { enqueued: Instant::now(), incoming }
    }

    /// Records the queue wait (for requests; control messages are not a
    /// workload) and unwraps. Call exactly once, at pickup.
    fn claim(self) -> Incoming {
        if matches!(self.incoming, Incoming::Request(_)) {
            engine_metrics()
                .queue_wait_ns
                .observe(self.enqueued.elapsed().as_nanos() as u64);
        }
        self.incoming
    }
}


/// The server threading policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThreadingPolicy {
    /// A fresh thread per incoming request (reclaimed by the OS afterwards).
    #[default]
    ThreadPerRequest,
    /// A fixed pool of worker threads sharing the request queue.
    ThreadPool(usize),
    /// One dedicated worker per client connection, spawned on first use.
    ThreadPerConnection,
}

/// The running server side of one process.
#[derive(Debug)]
pub struct ServerEngine {
    acceptor: Option<JoinHandle<()>>,
    /// Joined at stop; per-request and per-connection threads park their
    /// handles here (finished per-request handles are reaped as new
    /// requests arrive, so the list stays bounded by live threads).
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// Lets `Drop` signal the inbox so the acceptor and its workers exit
    /// even when nobody sent [`Incoming::Stop`] explicitly.
    stop_tx: Sender<Incoming>,
}

impl ServerEngine {
    /// Starts an engine consuming `rx` under `policy`. `stop_tx` must feed
    /// the same inbox as `rx`; the engine uses it to stop itself when
    /// dropped without an explicit [`Incoming::Stop`].
    pub fn start(
        orb: Orb,
        rx: Receiver<Incoming>,
        stop_tx: Sender<Incoming>,
        policy: ThreadingPolicy,
    ) -> ServerEngine {
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = match policy {
            ThreadingPolicy::ThreadPerRequest => spawn_per_request(orb, rx, Arc::clone(&workers)),
            ThreadingPolicy::ThreadPool(size) => spawn_pool(orb, rx, size, Arc::clone(&workers)),
            ThreadingPolicy::ThreadPerConnection => {
                spawn_per_connection(orb, rx, Arc::clone(&workers))
            }
        };
        ServerEngine { acceptor: Some(acceptor), workers, stop_tx }
    }

    /// Joins the acceptor and every worker. Call after sending
    /// [`Incoming::Stop`] to the inbox.
    pub fn join(&mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Worker threads currently tracked (live, or finished but not yet
    /// reaped).
    pub fn tracked_workers(&self) -> usize {
        self.workers.lock().len()
    }
}

impl Drop for ServerEngine {
    fn drop(&mut self) {
        // If `join` already ran the acceptor is gone and workers were
        // joined; otherwise signal the inbox so the engine's threads wind
        // down instead of leaking, then join them.
        if self.acceptor.is_some() {
            let _ = self.stop_tx.send(Incoming::Stop);
        }
        self.join();
    }
}

/// Joins and removes finished handles, keeping the tracked set bounded by
/// the number of *live* threads.
fn reap_finished(workers: &Mutex<Vec<JoinHandle<()>>>) {
    let mut guard = workers.lock();
    let mut i = 0;
    while i < guard.len() {
        if guard[i].is_finished() {
            let handle = guard.swap_remove(i);
            let _ = handle.join();
        } else {
            i += 1;
        }
    }
}

/// Receives the next message, sealing the worker's open log chunk before
/// blocking on an empty inbox — a parked worker must not sit on records.
fn recv_flushing<T>(rx: &Receiver<T>, orb: &Orb) -> Option<T> {
    match rx.try_recv() {
        Ok(incoming) => Some(incoming),
        Err(TryRecvError::Disconnected) => None,
        Err(TryRecvError::Empty) => {
            orb.monitor().store().flush_current_thread();
            rx.recv().ok()
        }
    }
}

fn spawn_per_request(
    orb: Orb,
    rx: Receiver<Incoming>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> JoinHandle<()> {
    let capacity = orb.config().engine_queue_capacity.max(1);
    std::thread::Builder::new()
        .name(format!("{}-acceptor", orb.process()))
        .spawn(move || {
            while let Ok(incoming) = rx.recv() {
                match incoming {
                    Incoming::Request(msg) => {
                        // Completed requests leave finished handles behind;
                        // reap them here so a long-lived engine does not
                        // accumulate one dead handle per request ever
                        // served — and so the capacity check below counts
                        // only live request threads.
                        reap_finished(&workers);
                        // The queue under thread-per-request IS the thread
                        // set: shed rather than spawn without bound.
                        if workers.lock().len() >= capacity {
                            orb.shed(msg);
                            continue;
                        }
                        let orb = orb.clone();
                        // Queue wait under thread-per-request is the spawn
                        // cost: stamp here, claim when the thread runs.
                        let queued = Queued::now(Incoming::Request(msg));
                        let handle = std::thread::Builder::new()
                            .name(format!("{}-req", orb.process()))
                            .spawn(move || {
                                let _worker = engine_metrics().worker();
                                if let Incoming::Request(msg) = queued.claim() {
                                    orb.dispatch(msg);
                                }
                            })
                            .expect("spawn request thread");
                        workers.lock().push(handle);
                    }
                    Incoming::Stop => break,
                }
            }
        })
        .expect("spawn acceptor")
}

fn spawn_pool(
    orb: Orb,
    rx: Receiver<Incoming>,
    size: usize,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> JoinHandle<()> {
    let size = size.max(1);
    let (work_tx, work_rx) = unbounded::<Queued>();
    {
        let mut guard = workers.lock();
        for i in 0..size {
            let orb = orb.clone();
            let work_rx = work_rx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("{}-pool{}", orb.process(), i))
                .spawn(move || {
                    let _worker = engine_metrics().worker();
                    while let Some(queued) = recv_flushing(&work_rx, &orb) {
                        match queued.claim() {
                            Incoming::Request(msg) => orb.dispatch(msg),
                            Incoming::Stop => break,
                        }
                    }
                })
                .expect("spawn pool worker");
            guard.push(handle);
        }
    }
    let capacity = orb.config().engine_queue_capacity.max(1);
    std::thread::Builder::new()
        .name(format!("{}-acceptor", orb.process()))
        .spawn(move || {
            while let Ok(incoming) = rx.recv() {
                match incoming {
                    Incoming::Request(msg) => {
                        // Bounded admission: a full worker queue sheds the
                        // request with an overload reply instead of letting
                        // an arrival burst grow the queue without bound.
                        if work_tx.len() >= capacity {
                            orb.shed(msg);
                            continue;
                        }
                        if work_tx.send(Queued::now(Incoming::Request(msg))).is_err() {
                            break;
                        }
                    }
                    Incoming::Stop => {
                        for _ in 0..size {
                            let _ = work_tx.send(Queued::now(Incoming::Stop));
                        }
                        break;
                    }
                }
            }
        })
        .expect("spawn acceptor")
}

fn spawn_per_connection(
    orb: Orb,
    rx: Receiver<Incoming>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> JoinHandle<()> {
    let capacity = orb.config().engine_queue_capacity.max(1);
    std::thread::Builder::new()
        .name(format!("{}-acceptor", orb.process()))
        .spawn(move || {
            let mut conns: HashMap<ConnKey, Sender<Queued>> = HashMap::new();
            while let Ok(incoming) = rx.recv() {
                match incoming {
                    Incoming::Request(msg) => {
                        let conn = msg.conn;
                        // Bounded admission per connection queue (the
                        // worker is per connection, so the bound is too).
                        if conns.get(&conn).is_some_and(|tx| tx.len() >= capacity) {
                            orb.shed(msg);
                            continue;
                        }
                        let tx = conns.entry(conn).or_insert_with(|| {
                            let (tx, conn_rx) = unbounded::<Queued>();
                            let orb = orb.clone();
                            let handle = std::thread::Builder::new()
                                .name(format!("{}-conn{}", orb.process(), conn.0))
                                .spawn(move || {
                                    let _worker = engine_metrics().worker();
                                    while let Some(queued) = recv_flushing(&conn_rx, &orb) {
                                        match queued.claim() {
                                            Incoming::Request(msg) => orb.dispatch(msg),
                                            Incoming::Stop => break,
                                        }
                                    }
                                })
                                .expect("spawn connection worker");
                            workers.lock().push(handle);
                            tx
                        });
                        let _ = tx.send(Queued::now(Incoming::Request(msg)));
                    }
                    Incoming::Stop => {
                        for tx in conns.values() {
                            let _ = tx.send(Queued::now(Incoming::Stop));
                        }
                        break;
                    }
                }
            }
        })
        .expect("spawn acceptor")
}
