//! Server engines: the multithreading architectures of Schmidt's ORB survey
//! that §2.2 of the paper proves causality tracing robust against.
//!
//! All three policies preserve observation O1 — a physical thread is
//! dedicated to an incoming call until that call finishes — which, together
//! with O2 (the skeleton-start probe refreshes the thread's FTL on every
//! dispatch), is why the tunnel survives thread reuse.

use crate::orb::Orb;
use crate::transport::{ConnKey, Incoming};
use crossbeam::channel::{Receiver, Sender, unbounded};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// The server threading policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThreadingPolicy {
    /// A fresh thread per incoming request (reclaimed by the OS afterwards).
    #[default]
    ThreadPerRequest,
    /// A fixed pool of worker threads sharing the request queue.
    ThreadPool(usize),
    /// One dedicated worker per client connection, spawned on first use.
    ThreadPerConnection,
}

/// The running server side of one process.
#[derive(Debug)]
pub struct ServerEngine {
    acceptor: Option<JoinHandle<()>>,
    /// Joined at stop; per-request and per-connection threads park their
    /// handles here.
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerEngine {
    /// Starts an engine consuming `rx` under `policy`.
    pub fn start(orb: Orb, rx: Receiver<Incoming>, policy: ThreadingPolicy) -> ServerEngine {
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = match policy {
            ThreadingPolicy::ThreadPerRequest => spawn_per_request(orb, rx, Arc::clone(&workers)),
            ThreadingPolicy::ThreadPool(size) => spawn_pool(orb, rx, size, Arc::clone(&workers)),
            ThreadingPolicy::ThreadPerConnection => {
                spawn_per_connection(orb, rx, Arc::clone(&workers))
            }
        };
        ServerEngine { acceptor: Some(acceptor), workers }
    }

    /// Joins the acceptor and every worker. Call after sending
    /// [`Incoming::Stop`] to the inbox.
    pub fn join(&mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerEngine {
    fn drop(&mut self) {
        // Best effort: if stop was never signalled the acceptor thread may
        // still be blocked; joining would hang, so only join when the
        // acceptor was already taken by `join`.
        if self.acceptor.is_none() {
            let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
            for handle in handles {
                let _ = handle.join();
            }
        }
    }
}

fn spawn_per_request(
    orb: Orb,
    rx: Receiver<Incoming>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("{}-acceptor", orb.process()))
        .spawn(move || {
            while let Ok(incoming) = rx.recv() {
                match incoming {
                    Incoming::Request(msg) => {
                        let orb = orb.clone();
                        let handle = std::thread::Builder::new()
                            .name(format!("{}-req", orb.process()))
                            .spawn(move || orb.dispatch(msg))
                            .expect("spawn request thread");
                        workers.lock().push(handle);
                    }
                    Incoming::Stop => break,
                }
            }
        })
        .expect("spawn acceptor")
}

fn spawn_pool(
    orb: Orb,
    rx: Receiver<Incoming>,
    size: usize,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> JoinHandle<()> {
    let size = size.max(1);
    let (work_tx, work_rx) = unbounded::<Incoming>();
    {
        let mut guard = workers.lock();
        for i in 0..size {
            let orb = orb.clone();
            let work_rx = work_rx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("{}-pool{}", orb.process(), i))
                .spawn(move || {
                    while let Ok(incoming) = work_rx.recv() {
                        match incoming {
                            Incoming::Request(msg) => orb.dispatch(msg),
                            Incoming::Stop => break,
                        }
                    }
                })
                .expect("spawn pool worker");
            guard.push(handle);
        }
    }
    std::thread::Builder::new()
        .name(format!("{}-acceptor", orb.process()))
        .spawn(move || {
            while let Ok(incoming) = rx.recv() {
                match incoming {
                    Incoming::Request(msg) => {
                        if work_tx.send(Incoming::Request(msg)).is_err() {
                            break;
                        }
                    }
                    Incoming::Stop => {
                        for _ in 0..size {
                            let _ = work_tx.send(Incoming::Stop);
                        }
                        break;
                    }
                }
            }
        })
        .expect("spawn acceptor")
}

fn spawn_per_connection(
    orb: Orb,
    rx: Receiver<Incoming>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("{}-acceptor", orb.process()))
        .spawn(move || {
            let mut conns: HashMap<ConnKey, Sender<Incoming>> = HashMap::new();
            while let Ok(incoming) = rx.recv() {
                match incoming {
                    Incoming::Request(msg) => {
                        let conn = msg.conn;
                        let tx = conns.entry(conn).or_insert_with(|| {
                            let (tx, conn_rx) = unbounded::<Incoming>();
                            let orb = orb.clone();
                            let handle = std::thread::Builder::new()
                                .name(format!("{}-conn{}", orb.process(), conn.0))
                                .spawn(move || {
                                    while let Ok(incoming) = conn_rx.recv() {
                                        match incoming {
                                            Incoming::Request(msg) => orb.dispatch(msg),
                                            Incoming::Stop => break,
                                        }
                                    }
                                })
                                .expect("spawn connection worker");
                            workers.lock().push(handle);
                            tx
                        });
                        let _ = tx.send(Incoming::Request(msg));
                    }
                    Incoming::Stop => {
                        for tx in conns.values() {
                            let _ = tx.send(Incoming::Stop);
                        }
                        break;
                    }
                }
            }
        })
        .expect("spawn acceptor")
}
