//! CORBA-style portable interceptors — the alternative instrumentation
//! point the paper evaluates and rejects (§5):
//!
//! > "CORBA interceptor allows user-defined message manipulation. While it
//! > might be employed to capture causality information, timing latency and
//! > CPU utilization will be less accurate because of the unknown overhead
//! > from the interceptors. Moreover, depending on vendor implementation,
//! > the interceptor and the dispatching of the execution of the function
//! > implementation might be carried by different thread contexts. This
//! > would break both the tracing tunnel and the transparency of the
//! > skeleton dispatching since thread-specific storage is key to our
//! > monitoring."
//!
//! This module implements the standard four interception points with
//! *service contexts* riding the request/reply messages, plus the
//! vendor-dependent [`InterceptorThreadModel`]: under
//! [`InterceptorThreadModel::IoThread`] the server-side interception points
//! run on a separate I/O thread — as some real ORBs did — which is exactly
//! the configuration that breaks TSS-based causality tunneling. The
//! `exp_interceptor_tunnel` experiment reproduces the paper's argument with
//! it.

use bytes::Bytes;
use causeway_core::event::CallKind;
use causeway_core::record::FunctionKey;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Service contexts: tagged blobs attached to requests and replies (the
/// CORBA `ServiceContextList`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceContexts {
    entries: BTreeMap<u32, Bytes>,
}

impl ServiceContexts {
    /// No contexts.
    pub fn new() -> ServiceContexts {
        ServiceContexts::default()
    }

    /// Sets a context by tag (replacing a previous one).
    pub fn set(&mut self, tag: u32, payload: Bytes) {
        self.entries.insert(tag, payload);
    }

    /// Reads a context.
    pub fn get(&self, tag: u32) -> Option<&Bytes> {
        self.entries.get(&tag)
    }

    /// Number of attached contexts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Static facts about the intercepted invocation.
#[derive(Debug, Clone, Copy)]
pub struct RequestInfo {
    /// The invoked function.
    pub func: FunctionKey,
    /// The invocation kind.
    pub kind: CallKind,
}

/// Client-side interception points (pre-invoke / post-invoke).
pub trait ClientInterceptor: Send + Sync {
    /// Runs on the caller thread just before the request is sent; may
    /// attach service contexts.
    fn send_request(&self, info: &RequestInfo, contexts: &mut ServiceContexts);
    /// Runs on the caller thread when the reply arrives.
    fn receive_reply(&self, info: &RequestInfo, contexts: &ServiceContexts);
}

/// Server-side interception points (pre-dispatch / post-dispatch).
pub trait ServerInterceptor: Send + Sync {
    /// Runs when the request reaches the server, *on whichever thread the
    /// vendor chose* (see [`InterceptorThreadModel`]).
    fn receive_request(&self, info: &RequestInfo, contexts: &ServiceContexts);
    /// Runs when the reply is about to be sent, on the same vendor-chosen
    /// thread; may attach reply contexts.
    fn send_reply(&self, info: &RequestInfo, contexts: &mut ServiceContexts);
}

/// Which thread runs the server-side interception points — the
/// vendor-implementation detail the paper warns about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterceptorThreadModel {
    /// The same worker thread that dispatches the up-call (the benign
    /// vendor). TSS written by the interceptor is visible to the servant.
    #[default]
    DispatchThread,
    /// A separate I/O thread handles interception; the up-call runs
    /// elsewhere. TSS written by the interceptor lands on the wrong thread
    /// — the tunnel breaks.
    IoThread,
}

/// The interceptors registered with an ORB.
#[derive(Clone, Default)]
pub struct InterceptorSet {
    /// Client-side interceptors, invoked in registration order.
    pub clients: Vec<Arc<dyn ClientInterceptor>>,
    /// Server-side interceptors, invoked in registration order.
    pub servers: Vec<Arc<dyn ServerInterceptor>>,
    /// The vendor's threading choice for the server-side points.
    pub thread_model: InterceptorThreadModel,
}

impl std::fmt::Debug for InterceptorSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InterceptorSet")
            .field("clients", &self.clients.len())
            .field("servers", &self.servers.len())
            .field("thread_model", &self.thread_model)
            .finish()
    }
}

impl InterceptorSet {
    /// An empty set with the default (benign) thread model.
    pub fn new() -> InterceptorSet {
        InterceptorSet::default()
    }

    /// `true` when no interceptors are registered.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty() && self.servers.is_empty()
    }

    pub(crate) fn run_send_request(&self, info: &RequestInfo, contexts: &mut ServiceContexts) {
        for interceptor in &self.clients {
            interceptor.send_request(info, contexts);
        }
    }

    pub(crate) fn run_receive_reply(&self, info: &RequestInfo, contexts: &ServiceContexts) {
        for interceptor in &self.clients {
            interceptor.receive_reply(info, contexts);
        }
    }

    /// Runs the server-side pre-dispatch points under the vendor's thread
    /// model.
    pub(crate) fn run_receive_request(&self, info: &RequestInfo, contexts: &ServiceContexts) {
        match self.thread_model {
            InterceptorThreadModel::DispatchThread => {
                for interceptor in &self.servers {
                    interceptor.receive_request(info, contexts);
                }
            }
            InterceptorThreadModel::IoThread => {
                // The vendor runs interception on its I/O thread: simulate
                // with a short-lived thread — anything the interceptor put
                // in *its* thread-specific storage is lost to the dispatch
                // thread, exactly the hazard the paper describes.
                std::thread::scope(|scope| {
                    scope.spawn(|| {
                        for interceptor in &self.servers {
                            interceptor.receive_request(info, contexts);
                        }
                    });
                });
            }
        }
    }

    /// Runs the server-side post-dispatch points under the vendor's thread
    /// model.
    pub(crate) fn run_send_reply(&self, info: &RequestInfo, contexts: &mut ServiceContexts) {
        match self.thread_model {
            InterceptorThreadModel::DispatchThread => {
                for interceptor in &self.servers {
                    interceptor.send_reply(info, contexts);
                }
            }
            InterceptorThreadModel::IoThread => {
                std::thread::scope(|scope| {
                    scope.spawn(|| {
                        for interceptor in &self.servers {
                            interceptor.send_reply(info, contexts);
                        }
                    });
                });
            }
        }
    }
}

/// The service-context tag used by [`FtlInterceptor`].
pub const FTL_CONTEXT_TAG: u32 = 0xCA05_EF01;

/// A tracing interceptor that attempts the paper's causality capture *via
/// interceptors instead of instrumented stubs/skeletons*: it moves the FTL
/// through service contexts and records the four probe events through the
/// process monitor.
///
/// Under [`InterceptorThreadModel::DispatchThread`] this works — the TSS it
/// installs is visible to the servant, so child calls continue the chain.
/// Under [`InterceptorThreadModel::IoThread`] the tunnel silently breaks:
/// the servant's children mint fresh chains and the reconstructed graph
/// shatters. That contrast is the paper's argument for stub/skeleton
/// instrumentation.
#[derive(Debug, Clone)]
pub struct FtlInterceptor {
    monitor: causeway_core::monitor::Monitor,
}

impl FtlInterceptor {
    /// Creates the tracing interceptor recording through `monitor`.
    pub fn new(monitor: causeway_core::monitor::Monitor) -> FtlInterceptor {
        FtlInterceptor { monitor }
    }
}

impl ClientInterceptor for FtlInterceptor {
    fn send_request(&self, info: &RequestInfo, contexts: &mut ServiceContexts) {
        let out = self.monitor.stub_start(info.func, info.kind);
        contexts.set(FTL_CONTEXT_TAG, Bytes::copy_from_slice(&out.wire_ftl.to_wire()));
    }

    fn receive_reply(&self, info: &RequestInfo, contexts: &ServiceContexts) {
        let reply_ftl = contexts
            .get(FTL_CONTEXT_TAG)
            .and_then(|bytes| causeway_core::ftl::FunctionTxLog::from_wire(bytes));
        self.monitor.stub_end(info.func, info.kind, reply_ftl);
    }
}

impl ServerInterceptor for FtlInterceptor {
    fn receive_request(&self, info: &RequestInfo, contexts: &ServiceContexts) {
        if let Some(ftl) = contexts
            .get(FTL_CONTEXT_TAG)
            .and_then(|bytes| causeway_core::ftl::FunctionTxLog::from_wire(bytes))
        {
            // Installs the FTL into *this* thread's TSS — which is only the
            // dispatch thread under the benign vendor model.
            self.monitor.skel_start(info.func, info.kind, ftl, None);
        }
    }

    fn send_reply(&self, info: &RequestInfo, contexts: &mut ServiceContexts) {
        let ftl = self.monitor.skel_end(info.func, info.kind);
        contexts.set(FTL_CONTEXT_TAG, Bytes::copy_from_slice(&ftl.to_wire()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causeway_core::ids::{InterfaceId, MethodIndex, ObjectId};

    #[test]
    fn service_contexts_round_trip() {
        let mut contexts = ServiceContexts::new();
        assert!(contexts.is_empty());
        contexts.set(7, Bytes::from_static(b"hello"));
        contexts.set(7, Bytes::from_static(b"world"));
        assert_eq!(contexts.len(), 1);
        assert_eq!(contexts.get(7).map(|b| &b[..]), Some(&b"world"[..]));
        assert_eq!(contexts.get(8), None);
    }

    #[test]
    fn io_thread_model_runs_on_another_thread() {
        struct ThreadProbe(std::sync::Mutex<Option<std::thread::ThreadId>>);
        impl ServerInterceptor for ThreadProbe {
            fn receive_request(&self, _: &RequestInfo, _: &ServiceContexts) {
                *self.0.lock().unwrap() = Some(std::thread::current().id());
            }
            fn send_reply(&self, _: &RequestInfo, _: &mut ServiceContexts) {}
        }
        let probe = Arc::new(ThreadProbe(std::sync::Mutex::new(None)));
        let info = RequestInfo {
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(0)),
            kind: CallKind::Sync,
        };
        let mut set = InterceptorSet::new();
        set.servers.push(probe.clone());

        set.thread_model = InterceptorThreadModel::DispatchThread;
        set.run_receive_request(&info, &ServiceContexts::new());
        assert_eq!(
            probe.0.lock().unwrap().take(),
            Some(std::thread::current().id()),
            "benign vendor runs on the dispatch thread"
        );

        set.thread_model = InterceptorThreadModel::IoThread;
        set.run_receive_request(&info, &ServiceContexts::new());
        assert_ne!(
            probe.0.lock().unwrap().take(),
            Some(std::thread::current().id()),
            "io-thread vendor runs elsewhere"
        );
    }
}
