//! # causeway-orb
//!
//! A CORBA-like component runtime (an ORBlite analog) with instrumented
//! stubs and skeletons — the primary substrate of the Causeway reproduction
//! of Li's ICDCS 2003 global-causality-capture paper.
//!
//! Each [`system::System`] hosts several simulated *processes* (runtime
//! domains with their own object registries, server engines and transport
//! inboxes) on several *nodes* (processors with CPU types). Invocations that
//! cross a process boundary genuinely marshal their arguments to bytes and
//! hop threads through the fabric; the only causal context that survives is
//! the FTL the instrumented stub appended — which is the paper's whole
//! point.
//!
//! Supported invocation shapes (§2.2 of the paper): synchronous, one-way
//! (forking a child causal chain), collocated with or without collocation
//! optimization, and custom marshalling. Server threading policies:
//! thread-per-request, thread pool, thread-per-connection.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use causeway_core::value::Value;
//! use causeway_orb::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut builder = System::builder();
//! let node = builder.node("dev-box", "Linux");
//! let client_p = builder.process("client", node, ThreadingPolicy::ThreadPerRequest);
//! let server_p = builder.process("server", node, ThreadingPolicy::ThreadPool(2));
//! let system = builder.build();
//!
//! system.load_idl("interface Echo { string say(in string text); };")?;
//! let echo = system.register_servant(
//!     server_p,
//!     "Echo",
//!     "EchoComponent",
//!     "echo#0",
//!     Arc::new(FnServant::new(|_ctx, _m, args| {
//!         Ok(Value::Str(format!("echo: {}", args[0].as_str().unwrap_or(""))))
//!     })),
//! )?;
//! system.start();
//!
//! let client = system.client(client_p);
//! client.begin_root();
//! let reply = client.invoke(&echo, "say", vec![Value::from("hello")])?;
//! assert_eq!(reply.as_str(), Some("echo: hello"));
//!
//! system.quiesce(std::time::Duration::from_secs(5))?;
//! system.shutdown();
//! let run = system.harvest();
//! assert_eq!(run.records.len(), 4); // one probe record per Figure-1 probe
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod client;
pub mod engine;
pub mod error;
pub mod interceptor;
pub mod orb;
pub mod registry;
pub mod reply;
pub mod servant;
pub mod system;
pub mod transport;

/// Commonly used ORB types.
pub mod prelude {
    pub use crate::client::{Client, ObjRef};
    pub use crate::engine::ThreadingPolicy;
    pub use crate::error::{AppError, OrbError};
    pub use crate::interceptor::{
        ClientInterceptor, FtlInterceptor, InterceptorSet, InterceptorThreadModel,
        ServerInterceptor,
    };
    pub use crate::orb::{Orb, OrbConfig};
    pub use crate::servant::{FnServant, MethodResult, Servant, ServerCtx};
    pub use crate::system::{System, SystemBuilder, SystemError};
}

pub use client::{Client, ObjRef};
pub use engine::ThreadingPolicy;
pub use error::{AppError, OrbError};
pub use servant::{FnServant, MethodResult, Servant, ServerCtx};
pub use system::{System, SystemBuilder, SystemError};
