//! Transport fabric: message passing between simulated processes.
//!
//! Each process owns an inbox; requests are real messages whose argument
//! payloads are marshalled bytes. Crossing the fabric genuinely loses all
//! thread context — the only causality that survives is what the
//! instrumented stub appended to the payload. A [`LatencyModel`] can inject
//! per-link network delay so that remote calls cost more than collocated
//! ones, as on the paper's multi-machine testbeds.

use crate::interceptor::ServiceContexts;
use bytes::Bytes;
use causeway_core::ids::{InterfaceId, MethodIndex, ObjectId, ProcessId};
use crossbeam::channel::{Receiver, Sender, unbounded};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Identifies a client connection for thread-per-connection dispatching:
/// one connection per client process, as with one TCP connection per peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnKey(pub ProcessId);

/// A request message.
#[derive(Debug, Clone)]
pub struct RequestMsg {
    /// The originating connection.
    pub conn: ConnKey,
    /// Target object.
    pub target: ObjectId,
    /// Target interface (for dispatch validation).
    pub interface: InterfaceId,
    /// Method declaration index.
    pub method: MethodIndex,
    /// `true` for one-way requests: no reply will be sent.
    pub oneway: bool,
    /// Marshalled arguments (with the hidden FTL appended when the system is
    /// instrumented).
    pub payload: Bytes,
    /// Service contexts attached by client interceptors.
    pub contexts: ServiceContexts,
    /// Where to send the reply (absent for one-way requests).
    pub reply: Option<Sender<ReplyMsg>>,
    /// Network delay the server should model before dispatching (used for
    /// one-way requests, whose callers do not wait).
    pub net_delay: Duration,
}

/// A reply message.
#[derive(Debug, Clone)]
pub struct ReplyMsg {
    /// Marshalled result (with the hidden FTL appended when instrumented),
    /// or a runtime-level failure rendered as a string.
    pub body: Result<Bytes, String>,
    /// Service contexts attached by server interceptors on the reply path.
    pub contexts: ServiceContexts,
}

/// What a server engine receives.
#[derive(Debug)]
pub enum Incoming {
    /// A request to dispatch.
    Request(RequestMsg),
    /// Orderly shutdown.
    Stop,
}

/// Per-link network delay model.
#[derive(Debug, Default)]
pub struct LatencyModel {
    default: Duration,
    overrides: HashMap<(ProcessId, ProcessId), Duration>,
}

impl LatencyModel {
    /// One-way delay between two processes.
    pub fn delay(&self, from: ProcessId, to: ProcessId) -> Duration {
        if from == to {
            return Duration::ZERO;
        }
        self.overrides.get(&(from, to)).copied().unwrap_or(self.default)
    }
}

#[derive(Debug, Default)]
struct FabricInner {
    inboxes: RwLock<HashMap<ProcessId, Sender<Incoming>>>,
    latency: RwLock<LatencyModel>,
}

/// The shared message fabric. Cloning shares state.
#[derive(Debug, Clone, Default)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

impl Fabric {
    /// Creates an empty fabric.
    pub fn new() -> Fabric {
        Fabric::default()
    }

    /// Creates an inbox for `process`, returning its receiving end.
    pub fn register(&self, process: ProcessId) -> Receiver<Incoming> {
        let (tx, rx) = unbounded();
        self.inner.inboxes.write().insert(process, tx);
        rx
    }

    /// Removes a process's inbox (tear-down).
    pub fn unregister(&self, process: ProcessId) {
        self.inner.inboxes.write().remove(&process);
    }

    /// The sending end of a registered process's inbox, e.g. for a server
    /// engine to signal itself to stop.
    pub fn sender(&self, process: ProcessId) -> Option<Sender<Incoming>> {
        self.inner.inboxes.read().get(&process).cloned()
    }

    /// Sends a message to a process's inbox.
    ///
    /// # Errors
    ///
    /// Returns the display name of the problem when the process has no
    /// inbox or its engine has stopped.
    pub fn send(&self, to: ProcessId, msg: Incoming) -> Result<(), String> {
        let inboxes = self.inner.inboxes.read();
        let tx = inboxes
            .get(&to)
            .ok_or_else(|| format!("{to} has no transport endpoint"))?;
        tx.send(msg).map_err(|_| format!("{to} engine stopped"))
    }

    /// Sets the default one-way network delay between distinct processes.
    pub fn set_default_delay(&self, delay: Duration) {
        self.inner.latency.write().default = delay;
    }

    /// Overrides the one-way delay for a specific directed link.
    pub fn set_link_delay(&self, from: ProcessId, to: ProcessId, delay: Duration) {
        self.inner.latency.write().overrides.insert((from, to), delay);
    }

    /// The modelled one-way delay between two processes.
    pub fn delay(&self, from: ProcessId, to: ProcessId) -> Duration {
        self.inner.latency.read().delay(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_send() {
        let fabric = Fabric::new();
        let rx = fabric.register(ProcessId(1));
        fabric.send(ProcessId(1), Incoming::Stop).unwrap();
        assert!(matches!(rx.recv().unwrap(), Incoming::Stop));
    }

    #[test]
    fn send_to_unknown_process_fails() {
        let fabric = Fabric::new();
        let err = fabric.send(ProcessId(9), Incoming::Stop).unwrap_err();
        assert!(err.contains("no transport endpoint"));
    }

    #[test]
    fn send_after_unregister_fails() {
        let fabric = Fabric::new();
        let _rx = fabric.register(ProcessId(1));
        fabric.unregister(ProcessId(1));
        assert!(fabric.send(ProcessId(1), Incoming::Stop).is_err());
    }

    #[test]
    fn latency_model_defaults_and_overrides() {
        let fabric = Fabric::new();
        let (a, b, c) = (ProcessId(0), ProcessId(1), ProcessId(2));
        assert_eq!(fabric.delay(a, b), Duration::ZERO);
        fabric.set_default_delay(Duration::from_micros(50));
        assert_eq!(fabric.delay(a, b), Duration::from_micros(50));
        fabric.set_link_delay(a, c, Duration::from_micros(200));
        assert_eq!(fabric.delay(a, c), Duration::from_micros(200));
        assert_eq!(fabric.delay(c, a), Duration::from_micros(50), "directed");
        assert_eq!(fabric.delay(a, a), Duration::ZERO, "loopback is free");
    }
}
