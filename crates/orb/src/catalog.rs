//! Interface catalog: runtime metadata derived from compiled IDL.
//!
//! The vocabulary interns *names*; the catalog carries what the runtime
//! additionally needs per method — today, the `oneway` flag.

use causeway_core::ids::{InterfaceId, MethodIndex};
use causeway_core::names::SystemVocab;
use causeway_idl::CompiledSpec;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct InterfaceMeta {
    oneway: Vec<bool>,
}

/// Shared interface metadata for one system. Cloning shares state.
#[derive(Debug, Clone, Default)]
pub struct InterfaceCatalog {
    inner: Arc<RwLock<HashMap<InterfaceId, InterfaceMeta>>>,
}

impl InterfaceCatalog {
    /// Creates an empty catalog.
    pub fn new() -> InterfaceCatalog {
        InterfaceCatalog::default()
    }

    /// Registers every interface of a compiled spec into `vocab` and records
    /// its runtime metadata, returning the qualified-name → id map.
    pub fn load(&self, spec: &CompiledSpec, vocab: &SystemVocab) -> HashMap<String, InterfaceId> {
        let ids = spec.register(vocab);
        let mut inner = self.inner.write();
        for iface in &spec.interfaces {
            let id = ids[&iface.qualified_name];
            inner.insert(
                id,
                InterfaceMeta {
                    oneway: iface.methods.iter().map(|m| m.oneway).collect(),
                },
            );
        }
        ids
    }

    /// Whether a method was declared `oneway`. Returns `None` when the
    /// interface or method is unknown to the catalog.
    pub fn is_oneway(&self, iface: InterfaceId, method: MethodIndex) -> Option<bool> {
        self.inner
            .read()
            .get(&iface)
            .and_then(|m| m.oneway.get(method.0 as usize))
            .copied()
    }

    /// Number of catalogued interfaces.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// `true` when no interfaces are catalogued.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causeway_idl::compile::{InstrumentMode, compile};
    use causeway_idl::parse;

    #[test]
    fn load_records_oneway_flags() {
        let spec = parse(
            "interface Pipe { void push(in long x); oneway void signal(in string ev); };",
        )
        .unwrap();
        let compiled = compile(&spec, InstrumentMode::Instrumented).unwrap();
        let vocab = SystemVocab::new();
        let catalog = InterfaceCatalog::new();
        let ids = catalog.load(&compiled, &vocab);
        let id = ids["Pipe"];
        assert_eq!(catalog.is_oneway(id, MethodIndex(0)), Some(false));
        assert_eq!(catalog.is_oneway(id, MethodIndex(1)), Some(true));
        assert_eq!(catalog.is_oneway(id, MethodIndex(2)), None);
        assert_eq!(catalog.is_oneway(InterfaceId(99), MethodIndex(0)), None);
        assert_eq!(catalog.len(), 1);
    }

    #[test]
    fn clones_share_state() {
        let catalog = InterfaceCatalog::new();
        let clone = catalog.clone();
        let spec = parse("interface I { void m(); };").unwrap();
        let compiled = compile(&spec, InstrumentMode::Plain).unwrap();
        catalog.load(&compiled, &SystemVocab::new());
        assert!(!clone.is_empty());
    }
}
