//! The per-process ORB: configuration, server-side dispatch (the generic
//! instrumented skeleton), and accessors.

use crate::catalog::InterfaceCatalog;
use crate::client::Client;
use crate::interceptor::{InterceptorSet, RequestInfo, ServiceContexts};
use crate::registry::{ObjectRegistry, SharedRegistries};
use crate::reply::encode_reply;
use crate::servant::ServerCtx;
use crate::transport::{Fabric, ReplyMsg, RequestMsg};
use bytes::Bytes;
use causeway_core::event::CallKind;
use causeway_core::ftl::FunctionTxLog;
use causeway_core::ids::{NodeId, ProcessId};
use causeway_core::metrics::{EngineMetrics, MetricsRegistry, OpMetrics};
use causeway_core::monitor::Monitor;
use causeway_core::names::SystemVocab;
use causeway_core::record::FunctionKey;
use causeway_core::uuid::Uuid;
use causeway_core::wire;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Self-observability handles for the ORB substrate, shared by every ORB in
/// the process (series are labeled `engine="orb"`).
pub(crate) fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EngineMetrics::register(MetricsRegistry::global(), "orb"))
}

/// Per-operation dispatch series (`iface=`/`method=` labels on top of
/// `engine="orb"`) — the keys the paper's Table 2 characterizes by.
pub(crate) fn op_metrics() -> &'static OpMetrics {
    static METRICS: OnceLock<OpMetrics> = OnceLock::new();
    METRICS.get_or_init(|| OpMetrics::new("orb"))
}

/// Default bound on each server engine's internal dispatch queue (and, for
/// thread-per-request, on live request threads). Requests beyond it are
/// shed with an overload reply instead of queueing without bound — an
/// open-loop arrival burst must surface as explicit shed load
/// (`causeway_engine_shed_total`), not as a silently growing queue.
pub const DEFAULT_ENGINE_QUEUE_CAPACITY: usize = 65_536;

/// Static ORB configuration, fixed at system build time.
#[derive(Debug, Clone)]
pub struct OrbConfig {
    /// `true` when stubs/skeletons are the instrumented variants (the
    /// paper's back-end compilation flag).
    pub instrumented: bool,
    /// `true` enables collocation optimization: in-process invocations
    /// bypass marshalling and the server engine, and the stub/skeleton
    /// probes degenerate into merged start/end probes on the caller thread.
    pub collocation_optimization: bool,
    /// How long a synchronous caller waits for a reply before giving up.
    pub reply_timeout: Duration,
    /// Bound on the server engine's dispatch queue; requests over it are
    /// shed with an overload reply (see
    /// [`DEFAULT_ENGINE_QUEUE_CAPACITY`]). A value of 0 is treated as 1.
    pub engine_queue_capacity: usize,
}

impl Default for OrbConfig {
    fn default() -> Self {
        OrbConfig {
            instrumented: true,
            collocation_optimization: true,
            reply_timeout: Duration::from_secs(30),
            engine_queue_capacity: DEFAULT_ENGINE_QUEUE_CAPACITY,
        }
    }
}

#[derive(Debug)]
pub(crate) struct OrbInner {
    pub(crate) process: ProcessId,
    pub(crate) node: NodeId,
    pub(crate) monitor: Monitor,
    pub(crate) registry: ObjectRegistry,
    pub(crate) registries: SharedRegistries,
    pub(crate) catalog: InterfaceCatalog,
    pub(crate) vocab: SystemVocab,
    pub(crate) fabric: Fabric,
    pub(crate) config: OrbConfig,
    pub(crate) pending: Arc<AtomicI64>,
    pub(crate) interceptors: parking_lot::RwLock<InterceptorSet>,
}

/// A per-process ORB handle. Cloning shares state.
#[derive(Debug, Clone)]
pub struct Orb {
    pub(crate) inner: Arc<OrbInner>,
}

impl Orb {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        process: ProcessId,
        node: NodeId,
        monitor: Monitor,
        registry: ObjectRegistry,
        registries: SharedRegistries,
        catalog: InterfaceCatalog,
        vocab: SystemVocab,
        fabric: Fabric,
        config: OrbConfig,
        pending: Arc<AtomicI64>,
    ) -> Orb {
        Orb {
            inner: Arc::new(OrbInner {
                process,
                node,
                monitor,
                registry,
                registries,
                catalog,
                vocab,
                fabric,
                config,
                pending,
                interceptors: parking_lot::RwLock::new(InterceptorSet::new()),
            }),
        }
    }

    /// The process this ORB serves.
    pub fn process(&self) -> ProcessId {
        self.inner.process
    }

    /// The node hosting the process.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The probe runtime of this process.
    pub fn monitor(&self) -> &Monitor {
        &self.inner.monitor
    }

    /// This process's object registry.
    pub fn registry(&self) -> &ObjectRegistry {
        &self.inner.registry
    }

    /// The ORB configuration.
    pub fn config(&self) -> &OrbConfig {
        &self.inner.config
    }

    /// A client bound to this process, for issuing invocations.
    pub fn client(&self) -> Client {
        Client::new(self.clone())
    }

    /// Registers this process's portable interceptors (replacing any
    /// previous set). See [`crate::interceptor`] for the caveats the paper
    /// raises about this instrumentation point.
    pub fn set_interceptors(&self, set: InterceptorSet) {
        *self.inner.interceptors.write() = set;
    }

    /// Server-side dispatch of one request: the generic instrumented
    /// skeleton of Figure 1 (probes 2 and 3 around the up-call), plus reply
    /// transmission. Called by the server engine on whatever thread the
    /// threading policy selected.
    pub(crate) fn dispatch(&self, msg: RequestMsg) {
        // Busy time covers the whole dispatch — including the modelled
        // one-way transit sleep, which really does occupy the worker.
        let _timer = engine_metrics().begin_dispatch();
        if !msg.net_delay.is_zero() {
            // One-way transit modelled on the server side because the
            // caller did not wait.
            std::thread::sleep(msg.net_delay);
        }
        let (body, contexts) = self.dispatch_inner(&msg);
        if let Some(reply) = &msg.reply {
            // The caller may have timed out and dropped the receiver; that
            // is its problem, not ours.
            let _ = reply.send(ReplyMsg { body, contexts });
        }
        // Seal this worker's open chunk before the request stops counting
        // as in-flight: quiescence (`pending == 0`) then implies every
        // server-side record is visible to the collector. Runs after the
        // reply send, so it never sits on the caller's latency path.
        self.inner.monitor.store().flush_current_thread();
        self.inner.pending.fetch_sub(1, Ordering::SeqCst);
    }

    /// Refuses one request at admission because the engine's dispatch
    /// queue is full: counts the shed, answers the caller with an overload
    /// failure (synchronous callers see it as an immediate error instead
    /// of a timeout), and releases the request's in-flight count — a shed
    /// request must not wedge quiescence.
    pub(crate) fn shed(&self, msg: RequestMsg) {
        engine_metrics().shed.inc();
        if let Some(reply) = &msg.reply {
            let _ = reply.send(ReplyMsg {
                body: Err(format!(
                    "overloaded: {} engine dispatch queue at capacity",
                    self.process()
                )),
                contexts: ServiceContexts::new(),
            });
        }
        self.inner.pending.fetch_sub(1, Ordering::SeqCst);
    }

    fn dispatch_inner(&self, msg: &RequestMsg) -> (Result<Bytes, String>, ServiceContexts) {
        let instrumented = self.inner.config.instrumented;
        let kind = if msg.oneway { CallKind::Oneway } else { CallKind::Sync };
        let monitor = &self.inner.monitor;
        let mut reply_contexts = ServiceContexts::new();

        // Split the hidden FTL parameter(s) back off the payload.
        let split = if instrumented {
            if msg.oneway {
                wire::split_ftl(msg.payload.clone())
                    .map_err(|e| format!("bad oneway parent marker: {e}"))
                    .and_then(|(rest, parent)| {
                        wire::split_ftl(rest).map_err(|e| format!("bad FTL: {e}")).map(
                            |(body, child)| {
                                (
                                    body,
                                    Some(child),
                                    Some((parent.global_function_id, parent.event_seq_no)),
                                )
                            },
                        )
                    })
            } else {
                wire::split_ftl(msg.payload.clone())
                    .map_err(|e| format!("bad FTL: {e}"))
                    .map(|(body, ftl)| (body, Some(ftl), None))
            }
        } else {
            Ok((msg.payload.clone(), None, None))
        };
        let (body, ftl, oneway_parent) = match split {
            Ok(parts) => parts,
            Err(e) => return (Err(e), reply_contexts),
        };

        // Unknown objects fail before any probe fires — the invocation never
        // reached a skeleton.
        let Some(record) = self.inner.registry.lookup(msg.target) else {
            return (
                Err(format!("unknown object {} in {}", msg.target, self.inner.process)),
                reply_contexts,
            );
        };

        let func = FunctionKey::new(msg.interface, msg.method, msg.target);
        let op = op_metrics().series(func.interface, func.method, || {
            (
                self.inner
                    .vocab
                    .interface_name(func.interface)
                    .unwrap_or_else(|| func.interface.to_string()),
                self.inner
                    .vocab
                    .method_name(func.interface, func.method)
                    .unwrap_or_else(|| func.method.to_string()),
            )
        });
        op.dispatch.inc();
        let op_started = std::time::Instant::now();
        let info = RequestInfo { func, kind };
        {
            let interceptors = self.inner.interceptors.read();
            if !interceptors.is_empty() {
                interceptors.run_receive_request(&info, &msg.contexts);
            }
        }
        if let Some(ftl) = ftl {
            monitor.skel_start(func, kind, ftl, oneway_parent);
        }

        // Unmarshal inside the skeleton window, charged to this thread.
        let cpu = monitor.cpu_clock();
        let token = cpu.region_begin();
        let args = wire::decode_args(body);
        cpu.region_end(token);

        let result = match args {
            Ok(args) => {
                let ctx = ServerCtx::new(self.client(), msg.target);
                record.servant.dispatch(&ctx, msg.method, args)
            }
            Err(e) => Err(crate::error::AppError::new("MarshalError", e.to_string())),
        };

        op.busy_ns.observe(op_started.elapsed().as_nanos() as u64);
        let reply_ftl = instrumented.then(|| monitor.skel_end(func, kind));
        {
            let interceptors = self.inner.interceptors.read();
            if !interceptors.is_empty() {
                interceptors.run_send_reply(&info, &mut reply_contexts);
            }
        }

        if msg.oneway {
            return (Ok(Bytes::new()), reply_contexts);
        }

        let token = cpu.region_begin();
        let body = encode_reply(&result);
        cpu.region_end(token);
        let body = match reply_ftl {
            Some(ftl) => wire::append_ftl(body, ftl),
            None => body,
        };
        (Ok(body), reply_contexts)
    }

    /// Appends the one-way hidden parameters (child FTL + parent marker) to
    /// a payload. The parent marker reuses the FTL wire form: UUID + the
    /// parent's event number at the fork.
    pub(crate) fn append_oneway_meta(
        payload: Bytes,
        child: FunctionTxLog,
        parent: (Uuid, u64),
    ) -> Bytes {
        let with_child = wire::append_ftl(payload, child);
        wire::append_ftl(with_child, FunctionTxLog::new(parent.0, parent.1))
    }
}
