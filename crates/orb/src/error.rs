//! ORB error types.

use causeway_core::error::CoreError;
use std::fmt;

/// An application-level exception raised by a servant — the runtime carries
/// it back to the caller like a CORBA user exception.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppError {
    /// Exception name (one of the method's `raises(…)` names by convention).
    pub exception: String,
    /// Human-readable detail.
    pub message: String,
}

impl AppError {
    /// Creates an application exception.
    pub fn new(exception: impl Into<String>, message: impl Into<String>) -> AppError {
        AppError { exception: exception.into(), message: message.into() }
    }
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.exception, self.message)
    }
}

impl std::error::Error for AppError {}

/// Errors surfaced to invokers by the ORB.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OrbError {
    /// The target object is not registered in the owning process.
    UnknownObject(String),
    /// The method name does not exist on the target interface.
    UnknownMethod(String),
    /// The target process has no transport endpoint (not started or torn
    /// down).
    ProcessUnreachable(String),
    /// The reply did not arrive within the client's timeout.
    Timeout(String),
    /// A payload failed to marshal or unmarshal.
    Wire(CoreError),
    /// The servant raised an application exception.
    Application(AppError),
    /// A one-way invocation was attempted on a method not declared `oneway`,
    /// or vice versa.
    CallKindMismatch(String),
}

impl fmt::Display for OrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrbError::UnknownObject(msg) => write!(f, "unknown object: {msg}"),
            OrbError::UnknownMethod(msg) => write!(f, "unknown method: {msg}"),
            OrbError::ProcessUnreachable(msg) => write!(f, "process unreachable: {msg}"),
            OrbError::Timeout(msg) => write!(f, "invocation timed out: {msg}"),
            OrbError::Wire(err) => write!(f, "marshalling error: {err}"),
            OrbError::Application(err) => write!(f, "application exception {err}"),
            OrbError::CallKindMismatch(msg) => write!(f, "call kind mismatch: {msg}"),
        }
    }
}

impl std::error::Error for OrbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OrbError::Wire(err) => Some(err),
            OrbError::Application(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CoreError> for OrbError {
    fn from(err: CoreError) -> OrbError {
        OrbError::Wire(err)
    }
}

impl From<AppError> for OrbError {
    fn from(err: AppError) -> OrbError {
        OrbError::Application(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = OrbError::Application(AppError::new("Offline", "printer offline"));
        assert_eq!(e.to_string(), "application exception Offline: printer offline");
        assert_eq!(
            OrbError::UnknownObject("obj9".into()).to_string(),
            "unknown object: obj9"
        );
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e = OrbError::Wire(CoreError::TssEmpty);
        assert!(e.source().is_some());
        assert!(OrbError::Timeout("x".into()).source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OrbError>();
        assert_send_sync::<AppError>();
    }
}
