//! Servants: user-defined function implementations.
//!
//! A [`Servant`] is the component object implementation the skeleton
//! up-calls into. Implementations receive a [`ServerCtx`] through which they
//! can invoke *child* functions on other objects — those child stubs read
//! the FTL from the current thread's TSS, which is how the causal chain
//! continues through user code without the user code knowing.

use crate::client::Client;
use crate::error::AppError;
use causeway_core::ids::{MethodIndex, ObjectId};
use causeway_core::value::Value;

/// Result of a method implementation: a value or an application exception.
pub type MethodResult = Result<Value, AppError>;

/// Context handed to a servant for the duration of one up-call.
#[derive(Debug, Clone)]
pub struct ServerCtx {
    client: Client,
    object: ObjectId,
}

impl ServerCtx {
    pub(crate) fn new(client: Client, object: ObjectId) -> ServerCtx {
        ServerCtx { client, object }
    }

    /// A client bound to the hosting process, for invoking child functions.
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// The object this up-call targets (useful for servants shared between
    /// several registrations).
    pub fn object(&self) -> ObjectId {
        self.object
    }
}

/// A component object implementation.
///
/// `dispatch` receives the method's declaration index (resolve names via the
/// vocabulary at registration time) and the unmarshalled arguments.
pub trait Servant: Send + Sync {
    /// Executes one method. Child invocations made through
    /// [`ServerCtx::client`] are traced as this call's children.
    fn dispatch(&self, ctx: &ServerCtx, method: MethodIndex, args: Vec<Value>) -> MethodResult;
}

/// A servant built from a closure — convenient for tests and examples.
///
/// # Example
///
/// ```no_run
/// use causeway_orb::servant::{FnServant, MethodResult};
/// use causeway_core::value::Value;
///
/// let servant = FnServant::new(|_ctx, _method, args| -> MethodResult {
///     let x = args[0].as_i32().unwrap_or(0);
///     Ok(Value::I32(x * 2))
/// });
/// # let _ = servant;
/// ```
pub struct FnServant<F>(F);

impl<F> FnServant<F>
where
    F: Fn(&ServerCtx, MethodIndex, Vec<Value>) -> MethodResult + Send + Sync,
{
    /// Wraps a closure as a servant.
    pub fn new(f: F) -> FnServant<F> {
        FnServant(f)
    }
}

impl<F> Servant for FnServant<F>
where
    F: Fn(&ServerCtx, MethodIndex, Vec<Value>) -> MethodResult + Send + Sync,
{
    fn dispatch(&self, ctx: &ServerCtx, method: MethodIndex, args: Vec<Value>) -> MethodResult {
        (self.0)(ctx, method, args)
    }
}

impl<F> std::fmt::Debug for FnServant<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnServant")
    }
}
