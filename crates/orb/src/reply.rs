//! Reply-body marshalling: results and application exceptions.
//!
//! Application exceptions travel back through the same instrumented reply
//! path as normal results, so the FTL returns to the stub even when the
//! servant raised — the causal chain never breaks on an exception.

use crate::error::AppError;
use crate::servant::MethodResult;
use bytes::Bytes;
use causeway_core::error::CoreError;
use causeway_core::value::Value;
use causeway_core::wire;

/// Marshals a method result (or application exception) for the reply.
pub fn encode_reply(result: &MethodResult) -> Bytes {
    let value = match result {
        Ok(v) => Value::Struct(vec![("ok".into(), v.clone())]),
        Err(e) => Value::Struct(vec![
            ("exception".into(), Value::Str(e.exception.clone())),
            ("message".into(), Value::Str(e.message.clone())),
        ]),
    };
    wire::encode_args(std::slice::from_ref(&value))
}

/// Unmarshals a reply body back into a method result.
///
/// # Errors
///
/// Returns [`CoreError::WireDecode`] on malformed reply buffers.
pub fn decode_reply(bytes: Bytes) -> Result<MethodResult, CoreError> {
    let mut args = wire::decode_args(bytes)?;
    if args.len() != 1 {
        return Err(CoreError::WireDecode(format!(
            "reply carried {} values, expected 1",
            args.len()
        )));
    }
    let value = args.pop().expect("length checked above");
    if let Some(ok) = value.field("ok") {
        return Ok(Ok(ok.clone()));
    }
    match (value.field("exception"), value.field("message")) {
        (Some(Value::Str(exception)), Some(Value::Str(message))) => {
            Ok(Err(AppError::new(exception.clone(), message.clone())))
        }
        _ => Err(CoreError::WireDecode("reply struct missing ok/exception".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_round_trips() {
        let result: MethodResult = Ok(Value::Str("done".into()));
        let decoded = decode_reply(encode_reply(&result)).unwrap();
        assert_eq!(decoded, result);
    }

    #[test]
    fn exception_round_trips() {
        let result: MethodResult = Err(AppError::new("Offline", "device off"));
        let decoded = decode_reply(encode_reply(&result)).unwrap();
        assert_eq!(decoded, result);
    }

    #[test]
    fn void_round_trips() {
        let result: MethodResult = Ok(Value::Void);
        assert_eq!(decode_reply(encode_reply(&result)).unwrap(), result);
    }

    #[test]
    fn malformed_reply_is_rejected() {
        assert!(decode_reply(Bytes::from_static(&[1, 2, 3])).is_err());
        let empty = wire::encode_args(&[]);
        assert!(decode_reply(empty).is_err());
        let wrong = wire::encode_args(&[Value::I32(5)]);
        assert!(decode_reply(wrong).is_err());
    }
}
