//! End-to-end tests of the ORB runtime: invocation shapes, threading
//! policies, instrumentation behavior, and failure handling.

use causeway_core::event::{CallKind, TraceEvent};
use causeway_core::monitor::ProbeMode;
use causeway_core::uuid::Uuid;
use causeway_core::value::Value;
use causeway_orb::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::OnceLock;
use std::time::Duration;

const PIPELINE_IDL: &str = r#"
    module Pipe {
        interface Stage {
            long run(in long x);
            oneway void notify(in string event);
        };
    };
"#;

/// A late-bound object reference: registered objects are wired into servants
/// after registration, before the first invocation.
type Slot = Arc<OnceLock<ObjRef>>;

fn forwarding_servant(next: Slot) -> Arc<dyn Servant> {
    Arc::new(FnServant::new(move |ctx, midx, args| {
        match midx.0 {
            0 => {
                let x = args[0].as_i64().unwrap_or(0);
                match next.get() {
                    Some(target) => {
                        let inner = ctx
                            .client()
                            .invoke(target, "run", vec![Value::I64(x + 1)])
                            .map_err(|e| AppError::new("Downstream", e.to_string()))?;
                        Ok(Value::I64(inner.as_i64().unwrap_or(0) + 1))
                    }
                    None => Ok(Value::I64(x * 10)),
                }
            }
            1 => Ok(Value::Void), // oneway notify
            _ => Err(AppError::new("BadMethod", format!("m{}", midx.0))),
        }
    }))
}

struct Rig {
    system: System,
    stages: Vec<ObjRef>,
    client_p: causeway_core::ids::ProcessId,
}

/// Builds client + N server processes, each hosting one pipeline stage that
/// forwards to the next.
fn pipeline_rig(
    stages: usize,
    policy: ThreadingPolicy,
    configure: impl FnOnce(&mut SystemBuilder),
) -> Rig {
    let mut builder = System::builder();
    configure(&mut builder);
    let node = builder.node("test-node", "TestCpu");
    let client_p = builder.process("client", node, ThreadingPolicy::ThreadPerRequest);
    let server_ps: Vec<_> = (0..stages)
        .map(|i| builder.process(&format!("server{i}"), node, policy))
        .collect();
    let system = builder.build();
    system.load_idl(PIPELINE_IDL).unwrap();

    let slots: Vec<Slot> = (0..stages).map(|_| Arc::new(OnceLock::new())).collect();
    let mut refs = Vec::new();
    for (i, p) in server_ps.iter().enumerate() {
        let obj = system
            .register_servant(
                *p,
                "Pipe::Stage",
                "StageComponent",
                &format!("stage#{i}"),
                forwarding_servant(Arc::clone(&slots[i])),
            )
            .unwrap();
        refs.push(obj);
    }
    // Wire stage i -> stage i+1.
    for i in 0..stages.saturating_sub(1) {
        slots[i].set(refs[i + 1]).unwrap();
    }
    system.start();
    Rig { system, stages: refs, client_p }
}

fn finish(rig: &Rig) -> causeway_core::runlog::RunLog {
    rig.system.quiesce(Duration::from_secs(10)).unwrap();
    rig.system.shutdown();
    rig.system.harvest()
}

#[test]
fn single_remote_call_round_trips() {
    let rig = pipeline_rig(1, ThreadingPolicy::ThreadPerRequest, |_| {});
    let client = rig.system.client(rig.client_p);
    client.begin_root();
    let out = client.invoke(&rig.stages[0], "run", vec![Value::I64(4)]).unwrap();
    assert_eq!(out.as_i64(), Some(40));
    let run = finish(&rig);
    assert_eq!(run.records.len(), 4);
    assert_eq!(rig.system.anomaly_count(), 0);
}

#[test]
fn nested_chain_spans_three_processes_under_one_uuid() {
    let rig = pipeline_rig(3, ThreadingPolicy::ThreadPerRequest, |_| {});
    let client = rig.system.client(rig.client_p);
    client.begin_root();
    let out = client.invoke(&rig.stages[0], "run", vec![Value::I64(0)]).unwrap();
    // 0 -> (+1) -> (+1) -> *10 = 20, then +1 +1 on the way back = 22.
    assert_eq!(out.as_i64(), Some(22));

    let run = finish(&rig);
    // Three nested invocations x four probes.
    assert_eq!(run.records.len(), 12);
    let uuid = run.records[0].uuid;
    assert!(run.records.iter().all(|r| r.uuid == uuid), "one causal chain");
    // Sequence numbers are a dense permutation of 1..=12.
    let mut seqs: Vec<u64> = run.records.iter().map(|r| r.seq).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (1..=12).collect::<Vec<u64>>());
    // The records span 4 distinct processes.
    let procs: std::collections::HashSet<_> =
        run.records.iter().map(|r| r.site.process).collect();
    assert_eq!(procs.len(), 4);
}

#[test]
fn sibling_calls_continue_the_chain() {
    let rig = pipeline_rig(2, ThreadingPolicy::ThreadPerRequest, |_| {});
    let client = rig.system.client(rig.client_p);
    client.begin_root();
    client.invoke(&rig.stages[1], "run", vec![Value::I64(1)]).unwrap();
    client.invoke(&rig.stages[1], "run", vec![Value::I64(2)]).unwrap();
    let run = finish(&rig);
    assert_eq!(run.records.len(), 8);
    let uuid = run.records[0].uuid;
    assert!(run.records.iter().all(|r| r.uuid == uuid), "siblings share the chain");
}

#[test]
fn begin_root_separates_chains() {
    let rig = pipeline_rig(1, ThreadingPolicy::ThreadPerRequest, |_| {});
    let client = rig.system.client(rig.client_p);
    client.begin_root();
    client.invoke(&rig.stages[0], "run", vec![Value::I64(1)]).unwrap();
    client.begin_root();
    client.invoke(&rig.stages[0], "run", vec![Value::I64(2)]).unwrap();
    let run = finish(&rig);
    let uuids: std::collections::HashSet<Uuid> = run.records.iter().map(|r| r.uuid).collect();
    assert_eq!(uuids.len(), 2);
}

#[test]
fn oneway_forks_a_linked_child_chain() {
    let rig = pipeline_rig(1, ThreadingPolicy::ThreadPerRequest, |_| {});
    let client = rig.system.client(rig.client_p);
    client.begin_root();
    client
        .invoke_oneway(&rig.stages[0], "notify", vec![Value::from("paper-out")])
        .unwrap();
    let run = finish(&rig);

    // Parent chain: stub_start + stub_end. Child chain: skel_start + skel_end.
    assert_eq!(run.records.len(), 4);
    let by_event: HashMap<TraceEvent, &causeway_core::record::ProbeRecord> =
        run.records.iter().map(|r| (r.event, r)).collect();
    let stub_start = by_event[&TraceEvent::StubStart];
    let skel_start = by_event[&TraceEvent::SkelStart];
    assert_eq!(stub_start.kind, CallKind::Oneway);
    assert_ne!(stub_start.uuid, skel_start.uuid, "child chain is fresh");
    assert_eq!(stub_start.oneway_child, Some(skel_start.uuid));
    assert_eq!(skel_start.oneway_parent, Some((stub_start.uuid, stub_start.seq)));
    assert_eq!(by_event[&TraceEvent::StubEnd].uuid, stub_start.uuid);
    assert_eq!(by_event[&TraceEvent::SkelEnd].uuid, skel_start.uuid);
}

#[test]
fn oneway_on_sync_method_is_rejected_and_vice_versa() {
    let rig = pipeline_rig(1, ThreadingPolicy::ThreadPerRequest, |_| {});
    let client = rig.system.client(rig.client_p);
    client.begin_root();
    let err = client.invoke(&rig.stages[0], "notify", vec![Value::from("x")]).unwrap_err();
    assert!(matches!(err, OrbError::CallKindMismatch(_)));
    let err = client
        .invoke_oneway(&rig.stages[0], "run", vec![Value::I64(1)])
        .unwrap_err();
    assert!(matches!(err, OrbError::CallKindMismatch(_)));
    rig.system.shutdown();
}

#[test]
fn collocated_call_with_optimization_runs_in_caller_thread() {
    let mut builder = System::builder();
    let node = builder.node("n", "X");
    let p = builder.process("solo", node, ThreadingPolicy::ThreadPerRequest);
    let system = builder.build();
    system.load_idl(PIPELINE_IDL).unwrap();
    let obj = system
        .register_servant(p, "Pipe::Stage", "C", "s#0", forwarding_servant(Arc::new(OnceLock::new())))
        .unwrap();
    system.start();

    let client = system.client(p);
    client.begin_root();
    client.invoke(&obj, "run", vec![Value::I64(3)]).unwrap();
    system.quiesce(Duration::from_secs(5)).unwrap();
    system.shutdown();
    let run = system.harvest();

    assert_eq!(run.records.len(), 4);
    assert!(run.records.iter().all(|r| r.kind == CallKind::Collocated));
    let threads: std::collections::HashSet<_> =
        run.records.iter().map(|r| r.site.thread).collect();
    assert_eq!(threads.len(), 1, "degenerate probes stay on the caller thread");
}

#[test]
fn collocated_call_without_optimization_goes_remote() {
    let mut builder = System::builder();
    builder.collocation_optimization(false);
    let node = builder.node("n", "X");
    let p = builder.process("solo", node, ThreadingPolicy::ThreadPerRequest);
    let system = builder.build();
    system.load_idl(PIPELINE_IDL).unwrap();
    let obj = system
        .register_servant(p, "Pipe::Stage", "C", "s#0", forwarding_servant(Arc::new(OnceLock::new())))
        .unwrap();
    system.start();

    let client = system.client(p);
    client.begin_root();
    client.invoke(&obj, "run", vec![Value::I64(3)]).unwrap();
    system.quiesce(Duration::from_secs(5)).unwrap();
    system.shutdown();
    let run = system.harvest();

    assert!(run.records.iter().all(|r| r.kind == CallKind::Sync));
    let threads: std::collections::HashSet<_> =
        run.records.iter().map(|r| r.site.thread).collect();
    assert_eq!(threads.len(), 2, "skeleton runs on a server thread");
}

#[test]
fn custom_marshal_runs_remote_object_in_caller_thread() {
    let rig = pipeline_rig(1, ThreadingPolicy::ThreadPerRequest, |_| {});
    // Register an extra custom-marshal object in the server process.
    let obj = rig
        .system
        .register_custom_marshal_servant(
            rig.stages[0].owner,
            "Pipe::Stage",
            "ByValue",
            "value#0",
            forwarding_servant(Arc::new(OnceLock::new())),
        )
        .unwrap();
    let client = rig.system.client(rig.client_p);
    client.begin_root();
    let out = client.invoke(&obj, "run", vec![Value::I64(2)]).unwrap();
    assert_eq!(out.as_i64(), Some(20));
    let run = finish(&rig);
    assert!(run.records.iter().all(|r| r.kind == CallKind::CustomMarshal));
    assert!(
        run.records
            .iter()
            .all(|r| r.site.process == rig.client_p),
        "custom marshalling executes in the client's process/thread"
    );
}

#[test]
fn application_exception_propagates_and_chain_survives() {
    let mut builder = System::builder();
    let node = builder.node("n", "X");
    let cp = builder.process("client", node, ThreadingPolicy::ThreadPerRequest);
    let sp = builder.process("server", node, ThreadingPolicy::ThreadPerRequest);
    let system = builder.build();
    system.load_idl(PIPELINE_IDL).unwrap();
    let obj = system
        .register_servant(
            sp,
            "Pipe::Stage",
            "C",
            "s#0",
            Arc::new(FnServant::new(|_, _, _| {
                Err(AppError::new("Offline", "device is offline"))
            })),
        )
        .unwrap();
    system.start();

    let client = system.client(cp);
    client.begin_root();
    let err = client.invoke(&obj, "run", vec![Value::I64(1)]).unwrap_err();
    match err {
        OrbError::Application(app) => {
            assert_eq!(app.exception, "Offline");
            assert_eq!(app.message, "device is offline");
        }
        other => panic!("expected application error, got {other}"),
    }
    system.quiesce(Duration::from_secs(5)).unwrap();
    system.shutdown();
    let run = system.harvest();
    // All four probes fired despite the exception; the chain is intact.
    assert_eq!(run.records.len(), 4);
    let mut seqs: Vec<u64> = run.records.iter().map(|r| r.seq).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, vec![1, 2, 3, 4]);
}

#[test]
fn unknown_object_and_method_fail_cleanly() {
    let rig = pipeline_rig(1, ThreadingPolicy::ThreadPerRequest, |_| {});
    let client = rig.system.client(rig.client_p);
    client.begin_root();

    let bogus = ObjRef {
        object: causeway_core::ids::ObjectId(999),
        interface: rig.stages[0].interface,
        owner: rig.stages[0].owner,
    };
    let err = client.invoke(&bogus, "run", vec![Value::I64(1)]).unwrap_err();
    assert!(matches!(err, OrbError::UnknownObject(_)), "{err}");

    let err = client.invoke(&rig.stages[0], "no_such_method", vec![]).unwrap_err();
    assert!(matches!(err, OrbError::UnknownMethod(_)));
    rig.system.quiesce(Duration::from_secs(5)).unwrap();
    rig.system.shutdown();
}

#[test]
fn uninstrumented_system_records_nothing_and_still_works() {
    let mut rig_builder = System::builder();
    rig_builder.instrumented(false);
    let node = rig_builder.node("n", "X");
    let cp = rig_builder.process("client", node, ThreadingPolicy::ThreadPerRequest);
    let sp = rig_builder.process("server", node, ThreadingPolicy::ThreadPool(2));
    let system = rig_builder.build();
    system.load_idl(PIPELINE_IDL).unwrap();
    let obj = system
        .register_servant(sp, "Pipe::Stage", "C", "s#0", forwarding_servant(Arc::new(OnceLock::new())))
        .unwrap();
    system.start();
    let client = system.client(cp);
    let out = client.invoke(&obj, "run", vec![Value::I64(5)]).unwrap();
    assert_eq!(out.as_i64(), Some(50));
    system.quiesce(Duration::from_secs(5)).unwrap();
    system.shutdown();
    assert!(system.harvest().is_empty());
}

#[test]
fn thread_pool_policy_serves_nested_and_concurrent_calls() {
    let rig = pipeline_rig(3, ThreadingPolicy::ThreadPool(4), |_| {});
    let clients: Vec<_> = (0..4).map(|_| rig.system.client(rig.client_p)).collect();
    let handles: Vec<_> = clients
        .into_iter()
        .map(|client| {
            let head = rig.stages[0];
            std::thread::spawn(move || {
                client.begin_root();
                client.invoke(&head, "run", vec![Value::I64(0)]).unwrap().as_i64()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), Some(22));
    }
    let run = finish(&rig);
    assert_eq!(run.records.len(), 4 * 12);
    let uuids: std::collections::HashSet<Uuid> = run.records.iter().map(|r| r.uuid).collect();
    assert_eq!(uuids.len(), 4, "four concurrent chains stay distinct");
    // Each chain individually has dense numbering.
    for uuid in uuids {
        let mut seqs: Vec<u64> = run
            .records
            .iter()
            .filter(|r| r.uuid == uuid)
            .map(|r| r.seq)
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (1..=12).collect::<Vec<u64>>());
    }
}

#[test]
fn thread_per_connection_policy_works() {
    let rig = pipeline_rig(2, ThreadingPolicy::ThreadPerConnection, |_| {});
    let client = rig.system.client(rig.client_p);
    client.begin_root();
    let out = client.invoke(&rig.stages[0], "run", vec![Value::I64(0)]).unwrap();
    // 0 -> (+1) -> *10 = 10, then +1 on the way back = 11.
    assert_eq!(out.as_i64(), Some(11));
    let run = finish(&rig);
    assert_eq!(run.records.len(), 8);
    assert_eq!(rig.system.anomaly_count(), 0);
}

#[test]
fn network_delay_inflates_remote_latency() {
    let rig = pipeline_rig(1, ThreadingPolicy::ThreadPerRequest, |b| {
        b.probe_mode(ProbeMode::Latency);
    });
    rig.system.fabric().set_default_delay(Duration::from_millis(3));
    let client = rig.system.client(rig.client_p);
    client.begin_root();
    client.invoke(&rig.stages[0], "run", vec![Value::I64(1)]).unwrap();
    let run = finish(&rig);
    let stub_start = run
        .records
        .iter()
        .find(|r| r.event == TraceEvent::StubStart)
        .unwrap();
    let stub_end = run
        .records
        .iter()
        .find(|r| r.event == TraceEvent::StubEnd)
        .unwrap();
    let elapsed = stub_end.wall_start.unwrap() - stub_start.wall_end.unwrap();
    assert!(
        elapsed >= 6_000_000,
        "round trip should include 2x 3ms delay, got {elapsed} ns"
    );
}

#[test]
fn quiesce_times_out_when_work_is_stuck() {
    let mut builder = System::builder();
    let node = builder.node("n", "X");
    let cp = builder.process("client", node, ThreadingPolicy::ThreadPerRequest);
    let sp = builder.process("server", node, ThreadingPolicy::ThreadPerRequest);
    builder.reply_timeout(Duration::from_millis(200));
    let system = builder.build();
    system.load_idl(PIPELINE_IDL).unwrap();
    let obj = system
        .register_servant(
            sp,
            "Pipe::Stage",
            "C",
            "s#0",
            Arc::new(FnServant::new(|_, _, _| {
                std::thread::sleep(Duration::from_millis(600));
                Ok(Value::Void)
            })),
        )
        .unwrap();
    system.start();
    let client = system.client(cp);
    client.begin_root();
    // The client times out before the servant finishes.
    let err = client.invoke(&obj, "run", vec![Value::I64(1)]).unwrap_err();
    assert!(matches!(err, OrbError::Timeout(_)));
    // Quiesce with a tiny budget reports the still-running dispatch…
    assert!(system.quiesce(Duration::from_millis(50)).is_err());
    // …and succeeds once it drains.
    system.quiesce(Duration::from_secs(5)).unwrap();
    system.shutdown();
}

#[test]
fn harvest_reports_vocab_and_deployment() {
    let rig = pipeline_rig(2, ThreadingPolicy::ThreadPerRequest, |_| {});
    let client = rig.system.client(rig.client_p);
    client.begin_root();
    client.invoke(&rig.stages[0], "run", vec![Value::I64(1)]).unwrap();
    let run = finish(&rig);
    assert_eq!(run.deployment.processes.len(), 3);
    assert_eq!(run.deployment.nodes.len(), 1);
    let rec = &run.records[0];
    assert_eq!(run.vocab.interface_name(rec.func.interface), "Pipe::Stage");
    assert_eq!(run.vocab.method_name(rec.func.interface, rec.func.method), "run");
    assert!(run.vocab.object(rec.func.object).is_some());
}
