//! Interceptor-based causality capture — the §5 alternative — works only
//! when the vendor runs interception on the dispatch thread. These tests
//! pin down both sides of the paper's argument.

use causeway_analyzer::dscg::Dscg;
use causeway_collector::db::MonitoringDb;
use causeway_core::value::Value;
use causeway_orb::interceptor::{FtlInterceptor, InterceptorSet, InterceptorThreadModel};
use causeway_orb::prelude::*;
use std::sync::Arc;
use std::sync::OnceLock;
use std::time::Duration;

const IDL: &str = "interface Hop { long go(in long x); };";

/// Three-process chain (driver → A → B) traced *only* by interceptors:
/// plain stubs/skeletons, FTL via service contexts.
fn run_with_interceptors(model: InterceptorThreadModel) -> MonitoringDb {
    let mut builder = System::builder();
    builder.instrumented(false); // no stub/skeleton probes
    builder.collocation_optimization(false); // interceptors skip fast paths
    let node = builder.node("n", "X");
    let driver = builder.process("driver", node, ThreadingPolicy::ThreadPerRequest);
    let pa = builder.process("a", node, ThreadingPolicy::ThreadPerRequest);
    let pb = builder.process("b", node, ThreadingPolicy::ThreadPerRequest);
    let system = builder.build();
    system.load_idl(IDL).unwrap();

    let b_ref: Arc<OnceLock<ObjRef>> = Arc::new(OnceLock::new());
    let b = system
        .register_servant(
            pb,
            "Hop",
            "B",
            "b#0",
            Arc::new(FnServant::new(|_, _, args| {
                Ok(Value::I64(args[0].as_i64().unwrap_or(0) * 10))
            })),
        )
        .unwrap();
    b_ref.set(b).unwrap();

    let next = b_ref.clone();
    let a = system
        .register_servant(
            pa,
            "Hop",
            "A",
            "a#0",
            Arc::new(FnServant::new(move |ctx, _, args| {
                let inner = ctx
                    .client()
                    .invoke(next.get().expect("wired"), "go", args)
                    .map_err(|e| AppError::new("Downstream", e.to_string()))?;
                Ok(Value::I64(inner.as_i64().unwrap_or(0) + 1))
            })),
        )
        .unwrap();

    // Register the tracing interceptor in every process, under the given
    // vendor thread model.
    for p in [driver, pa, pb] {
        let orb = system.orb(p);
        let tracer = Arc::new(FtlInterceptor::new(orb.monitor().clone()));
        let mut set = InterceptorSet::new();
        set.clients.push(tracer.clone());
        set.servers.push(tracer);
        set.thread_model = model;
        orb.set_interceptors(set);
    }

    system.start();
    let client = system.client(driver);
    client.begin_root();
    let out = client.invoke(&a, "go", vec![Value::I64(4)]).unwrap();
    assert_eq!(out.as_i64(), Some(41));
    system.quiesce(Duration::from_secs(5)).unwrap();
    system.shutdown();
    MonitoringDb::from_run(system.harvest())
}

#[test]
fn dispatch_thread_vendor_preserves_the_tunnel() {
    let db = run_with_interceptors(InterceptorThreadModel::DispatchThread);
    let dscg = Dscg::build(&db);
    assert!(dscg.abnormalities.is_empty(), "{:?}", dscg.abnormalities);
    assert_eq!(dscg.trees.len(), 1, "one chain end to end");
    assert_eq!(dscg.total_nodes(), 2, "A and nested B");
    let root = &dscg.trees[0].roots[0];
    assert_eq!(root.children.len(), 1, "B nests under A");
}

#[test]
fn io_thread_vendor_breaks_the_tunnel() {
    let db = run_with_interceptors(InterceptorThreadModel::IoThread);
    let dscg = Dscg::build(&db);
    // The interceptor installed the FTL into the I/O thread's TSS; the
    // dispatch thread (and hence A's child call) never saw it. The chain
    // shatters: more than one tree and/or abnormalities.
    let broken = dscg.trees.len() > 1 || !dscg.abnormalities.is_empty();
    assert!(
        broken,
        "expected the tunnel to break: {} trees, {} abnormalities",
        dscg.trees.len(),
        dscg.abnormalities.len()
    );
}

#[test]
fn interceptors_do_not_fire_without_registration() {
    // Baseline sanity: no interceptors, plain stubs — nothing recorded.
    let mut builder = System::builder();
    builder.instrumented(false);
    let node = builder.node("n", "X");
    let p = builder.process("solo", node, ThreadingPolicy::ThreadPerRequest);
    let system = builder.build();
    system.load_idl(IDL).unwrap();
    let obj = system
        .register_servant(
            p,
            "Hop",
            "S",
            "s#0",
            Arc::new(FnServant::new(|_, _, args| Ok(args.into_iter().next().unwrap_or(Value::Void)))),
        )
        .unwrap();
    system.start();
    system.client(p).invoke(&obj, "go", vec![Value::I64(1)]).unwrap();
    system.shutdown();
    assert!(system.harvest().is_empty());
}
