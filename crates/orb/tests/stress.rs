//! Stress and boundary tests for the ORB runtime: deep chains, wide sibling
//! fans, large payloads, and mixed invocation shapes under load.

use causeway_analyzer::dscg::Dscg;
use causeway_collector::db::MonitoringDb;
use causeway_core::monitor::ProbeMode;
use causeway_core::value::Value;
use causeway_orb::prelude::*;
use std::sync::Arc;
use std::sync::OnceLock;
use std::time::Duration;

const IDL: &str = r#"
    interface Deep {
        long dive(in long depth);
        string bounce(in sequence<octet> blob);
    };
"#;

/// Two processes ping-ponging a recursive call to the requested depth.
#[test]
fn fifty_level_deep_chain_reconstructs_exactly() {
    let mut builder = System::builder();
    builder.probe_mode(ProbeMode::CausalityOnly);
    let node = builder.node("n", "X");
    let driver = builder.process("driver", node, ThreadingPolicy::ThreadPerRequest);
    let pa = builder.process("a", node, ThreadingPolicy::ThreadPerRequest);
    let pb = builder.process("b", node, ThreadingPolicy::ThreadPerRequest);
    let system = builder.build();
    system.load_idl(IDL).unwrap();

    let a_slot: Arc<OnceLock<ObjRef>> = Arc::new(OnceLock::new());
    let b_slot: Arc<OnceLock<ObjRef>> = Arc::new(OnceLock::new());

    let make_servant = |next: Arc<OnceLock<ObjRef>>| -> Arc<dyn Servant> {
        Arc::new(FnServant::new(move |ctx, _, args: Vec<Value>| {
            let depth = args[0].as_i64().unwrap_or(0);
            if depth <= 1 {
                return Ok(Value::I64(0));
            }
            let inner = ctx
                .client()
                .invoke(next.get().expect("wired"), "dive", vec![Value::I64(depth - 1)])
                .map_err(|e| AppError::new("Downstream", e.to_string()))?;
            Ok(Value::I64(inner.as_i64().unwrap_or(0) + 1))
        }))
    };

    let a = system
        .register_servant(pa, "Deep", "A", "a#0", make_servant(b_slot.clone()))
        .unwrap();
    a_slot.set(a).unwrap();
    let b = system
        .register_servant(pb, "Deep", "B", "b#0", make_servant(a_slot.clone()))
        .unwrap();
    b_slot.set(b).unwrap();

    system.start();
    let client = system.client(driver);
    client.begin_root();
    let out = client.invoke(&a, "dive", vec![Value::I64(50)]).unwrap();
    assert_eq!(out.as_i64(), Some(49));
    system.quiesce(Duration::from_secs(30)).unwrap();
    system.shutdown();

    let db = MonitoringDb::from_run(system.harvest());
    let dscg = Dscg::build(&db);
    assert!(dscg.abnormalities.is_empty(), "{:?}", dscg.abnormalities);
    assert_eq!(dscg.trees.len(), 1);
    assert_eq!(dscg.total_nodes(), 50);
    assert_eq!(dscg.trees[0].roots[0].depth(), 50);
    // Dense numbering over 200 events, no clock involved.
    let mut seqs: Vec<u64> = db.records().iter().map(|r| r.seq).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (1..=200).collect::<Vec<u64>>());
}

#[test]
fn two_hundred_siblings_on_one_chain() {
    let mut builder = System::builder();
    builder.probe_mode(ProbeMode::CausalityOnly);
    let node = builder.node("n", "X");
    let driver = builder.process("driver", node, ThreadingPolicy::ThreadPerRequest);
    let server = builder.process("server", node, ThreadingPolicy::ThreadPool(2));
    let system = builder.build();
    system.load_idl(IDL).unwrap();
    let obj = system
        .register_servant(
            server,
            "Deep",
            "S",
            "s#0",
            Arc::new(FnServant::new(|_, _, _| Ok(Value::I64(0)))),
        )
        .unwrap();
    system.start();
    let client = system.client(driver);
    client.begin_root();
    for depth in 0..200 {
        client.invoke(&obj, "dive", vec![Value::I64(depth)]).unwrap();
    }
    system.quiesce(Duration::from_secs(30)).unwrap();
    system.shutdown();

    let db = MonitoringDb::from_run(system.harvest());
    let dscg = Dscg::build(&db);
    assert!(dscg.abnormalities.is_empty());
    assert_eq!(dscg.trees.len(), 1, "all siblings share one chain");
    assert_eq!(dscg.trees[0].roots.len(), 200);
    assert!(dscg.trees[0].roots.iter().all(|r| r.children.is_empty() && r.complete));
}

#[test]
fn megabyte_payload_round_trips_with_the_hidden_parameter() {
    let mut builder = System::builder();
    let node = builder.node("n", "X");
    let driver = builder.process("driver", node, ThreadingPolicy::ThreadPerRequest);
    let server = builder.process("server", node, ThreadingPolicy::ThreadPerRequest);
    let system = builder.build();
    system.load_idl(IDL).unwrap();
    let obj = system
        .register_servant(
            server,
            "Deep",
            "S",
            "s#0",
            Arc::new(FnServant::new(|_, _, args: Vec<Value>| {
                let blob = args[0].as_blob().map(<[u8]>::len).unwrap_or(0);
                Ok(Value::Str(format!("got {blob} bytes")))
            })),
        )
        .unwrap();
    system.start();
    let client = system.client(driver);
    client.begin_root();
    let payload = vec![0xAB_u8; 1_000_000];
    let out = client.invoke(&obj, "bounce", vec![Value::Blob(payload)]).unwrap();
    assert_eq!(out.as_str(), Some("got 1000000 bytes"));
    system.quiesce(Duration::from_secs(10)).unwrap();
    system.shutdown();
    let db = MonitoringDb::from_run(system.harvest());
    assert_eq!(db.records().len(), 4, "the FTL still rode along");
    assert!(Dscg::build(&db).abnormalities.is_empty());
}

#[test]
fn concurrent_mixed_shapes_stay_untangled() {
    // 8 driver threads, each issuing 20 roots that mix sync, sibling and
    // one-way calls; every chain must reconstruct cleanly.
    let mut builder = System::builder();
    builder.probe_mode(ProbeMode::CausalityOnly);
    let node = builder.node("n", "X");
    let driver = builder.process("driver", node, ThreadingPolicy::ThreadPerRequest);
    let server = builder.process("server", node, ThreadingPolicy::ThreadPool(6));
    let system = builder.build();
    system
        .load_idl("interface M { long work(in long x); oneway void note(in long x); };")
        .unwrap();
    let obj = system
        .register_servant(
            server,
            "M",
            "S",
            "s#0",
            Arc::new(FnServant::new(|_, midx, args: Vec<Value>| {
                if midx.0 == 0 {
                    Ok(Value::I64(args[0].as_i64().unwrap_or(0) + 1))
                } else {
                    Ok(Value::Void)
                }
            })),
        )
        .unwrap();
    system.start();

    std::thread::scope(|scope| {
        for lane in 0..8 {
            let client = system.client(driver);
            scope.spawn(move || {
                for i in 0..20 {
                    client.begin_root();
                    client.invoke(&obj, "work", vec![Value::I64(lane * 100 + i)]).unwrap();
                    client.invoke_oneway(&obj, "note", vec![Value::I64(i)]).unwrap();
                    client.invoke(&obj, "work", vec![Value::I64(i)]).unwrap();
                }
            });
        }
    });
    system.quiesce(Duration::from_secs(30)).unwrap();
    system.shutdown();
    assert_eq!(system.anomaly_count(), 0);

    let db = MonitoringDb::from_run(system.harvest());
    let dscg = Dscg::build(&db);
    assert!(dscg.abnormalities.is_empty(), "{:?}", dscg.abnormalities);
    assert_eq!(dscg.trees.len(), 8 * 20);
    for tree in &dscg.trees {
        assert_eq!(tree.roots.len(), 3, "work + oneway note + work");
    }
}
