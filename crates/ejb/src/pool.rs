//! Bounded instance pools for stateless session beans.
//!
//! The container checks an instance out for the duration of each business
//! call and returns it afterwards; when every instance is busy, callers
//! block until one is free (up to the pool bound, instances are created
//! lazily). This is the classic stateless-session-bean lifecycle and the
//! part of the J2EE dispatch model that differs most from an ORB's shared
//! servants.

use crate::bean::SessionBean;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

type Factory = Arc<dyn Fn() -> Box<dyn SessionBean> + Send + Sync>;

struct PoolState {
    idle: Vec<Box<dyn SessionBean>>,
    created: usize,
}

/// A bounded, lazily filled pool of bean instances.
pub struct InstancePool {
    factory: Factory,
    max: usize,
    state: Mutex<PoolState>,
    available: Condvar,
}

impl std::fmt::Debug for InstancePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("InstancePool")
            .field("max", &self.max)
            .field("created", &state.created)
            .field("idle", &state.idle.len())
            .finish()
    }
}

impl InstancePool {
    /// Creates a pool producing instances with `factory`, bounded at `max`
    /// concurrent instances (minimum 1).
    pub fn new(max: usize, factory: Factory) -> InstancePool {
        InstancePool {
            factory,
            max: max.max(1),
            state: Mutex::new(PoolState { idle: Vec::new(), created: 0 }),
            available: Condvar::new(),
        }
    }

    /// Checks an instance out, creating one lazily or blocking until a busy
    /// instance returns.
    pub fn checkout(&self) -> Box<dyn SessionBean> {
        let mut state = self.state.lock();
        loop {
            if let Some(instance) = state.idle.pop() {
                return instance;
            }
            if state.created < self.max {
                state.created += 1;
                drop(state);
                return (self.factory)();
            }
            self.available.wait(&mut state);
        }
    }

    /// Returns an instance to the pool.
    pub fn checkin(&self, instance: Box<dyn SessionBean>) {
        let mut state = self.state.lock();
        state.idle.push(instance);
        drop(state);
        self.available.notify_one();
    }

    /// Instances created so far.
    pub fn created(&self) -> usize {
        self.state.lock().created
    }

    /// Instances currently idle.
    pub fn idle(&self) -> usize {
        self.state.lock().idle.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bean::{BeanCtx, FnBean};
    use causeway_core::ids::MethodIndex;
    use causeway_core::value::Value;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn counter_pool(max: usize) -> (Arc<InstancePool>, Arc<AtomicUsize>) {
        let created = Arc::new(AtomicUsize::new(0));
        let created2 = Arc::clone(&created);
        let pool = Arc::new(InstancePool::new(
            max,
            Arc::new(move || {
                created2.fetch_add(1, Ordering::SeqCst);
                Box::new(FnBean::new(0u64, |state, _, _, _| {
                    *state += 1;
                    Ok(Value::I64(*state as i64))
                }))
            }),
        ));
        (pool, created)
    }

    #[test]
    fn instances_are_created_lazily_and_reused() {
        let (pool, created) = counter_pool(4);
        assert_eq!(created.load(Ordering::SeqCst), 0);
        let a = pool.checkout();
        assert_eq!(created.load(Ordering::SeqCst), 1);
        pool.checkin(a);
        let b = pool.checkout();
        assert_eq!(created.load(Ordering::SeqCst), 1, "idle instance reused");
        pool.checkin(b);
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.created(), 1);
    }

    #[test]
    fn exhausted_pool_blocks_until_checkin() {
        let (pool, _) = counter_pool(1);
        let instance = pool.checkout();
        let pool2 = Arc::clone(&pool);
        let waiter = std::thread::spawn(move || {
            let instance = pool2.checkout();
            pool2.checkin(instance);
            true
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(!waiter.is_finished(), "second checkout must block");
        pool.checkin(instance);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn pool_bound_is_respected_under_concurrency() {
        let (pool, created) = counter_pool(3);
        let handles: Vec<_> = (0..12)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let mut instance = pool.checkout();
                    std::thread::sleep(Duration::from_millis(5));
                    // Exercise `&mut self` state while checked out.
                    let ctx = BeanCtx::new(
                        crate::container::EjbClient::detached(),
                        causeway_core::ids::ObjectId(0),
                    );
                    let _ = instance.business(&ctx, MethodIndex(0), vec![]);
                    pool.checkin(instance);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(created.load(Ordering::SeqCst) <= 3, "bound respected");
        assert_eq!(pool.idle(), pool.created());
    }
}
