//! Container interceptor chains — the `@AroundInvoke` idiom.
//!
//! Unlike the transport-level interceptors of `causeway-orb`, these wrap
//! the business method *inside* the container, after the instance is
//! checked out and the monitoring skeleton probe has fired. They are the
//! natural place for container services (security, transactions, metrics)
//! and they run strictly in registration order, on the dispatch thread.

use causeway_core::ids::{MethodIndex, ObjectId};

/// Static facts about the current business invocation.
#[derive(Debug, Clone, Copy)]
pub struct InvocationInfo {
    /// The bean deployment being invoked.
    pub bean: ObjectId,
    /// The business method index.
    pub method: MethodIndex,
}

/// An `@AroundInvoke`-style container interceptor (split into before/after
/// halves to stay object-safe and simple).
pub trait ContainerInterceptor: Send + Sync {
    /// Runs before the business method, on the dispatch thread.
    fn before(&self, info: &InvocationInfo);
    /// Runs after the business method (whether it succeeded or raised).
    fn after(&self, info: &InvocationInfo, succeeded: bool);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::sync::Mutex;

    #[test]
    fn interceptors_are_plain_hooks() {
        struct Recorder(Mutex<Vec<&'static str>>);
        impl ContainerInterceptor for Recorder {
            fn before(&self, _: &InvocationInfo) {
                self.0.lock().unwrap().push("before");
            }
            fn after(&self, _: &InvocationInfo, _: bool) {
                self.0.lock().unwrap().push("after");
            }
        }
        let recorder = Arc::new(Recorder(Mutex::new(vec![])));
        let info = InvocationInfo { bean: ObjectId(1), method: MethodIndex(0) };
        recorder.before(&info);
        recorder.after(&info, true);
        assert_eq!(*recorder.0.lock().unwrap(), vec!["before", "after"]);
    }
}
