//! The EJB container: bean deployment, JNDI naming, pooled dispatch, and
//! the monitored business proxy.

use crate::bean::{BeanCtx, SessionBean};
use crate::error::EjbError;
use crate::interceptor::{ContainerInterceptor, InvocationInfo};
use crate::pool::InstancePool;
use bytes::Bytes;
use causeway_core::clock::{CpuClock, SystemClock, VirtualCpuClock, WallClock};
use causeway_core::deploy::Deployment;
use causeway_core::event::CallKind;
use causeway_core::ftl::FunctionTxLog;
use causeway_core::ids::{InterfaceId, NodeId, ObjectId, ProcessId};
use causeway_core::metrics::{EngineMetrics, MetricsRegistry, OpMetrics};
use causeway_core::monitor::{Monitor, ProbeMode, ProbePolicy};
use causeway_core::names::SystemVocab;
use causeway_core::runlog::RunLog;
use causeway_core::value::Value;
use causeway_core::wire;
use causeway_idl::compile::{InstrumentMode, compile};
use causeway_idl::parse;
use crossbeam::channel::{Receiver, Sender, bounded, unbounded};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Self-observability handles for the EJB substrate (series labeled
/// `engine="ejb"`), shared by every container in the process.
fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EngineMetrics::register(MetricsRegistry::global(), "ejb"))
}

/// Per-operation dispatch series (`iface=`/`method=` on top of
/// `engine="ejb"`).
fn op_metrics() -> &'static OpMetrics {
    static METRICS: OnceLock<OpMetrics> = OnceLock::new();
    METRICS.get_or_init(|| OpMetrics::new("ejb"))
}

/// Container configuration.
#[derive(Debug, Clone)]
pub struct ContainerConfig {
    /// Base probe mode for this container's monitor. Ignored when
    /// [`ContainerConfig::probe_policy`] supplies a shared policy.
    pub probe_mode: ProbeMode,
    /// A probe policy shared with other runtimes, so one control plane
    /// steers the container's stamping too. `None` mints a private policy
    /// from `probe_mode`.
    pub probe_policy: Option<ProbePolicy>,
    /// Instrumented (probing) or plain business proxies.
    pub instrumented: bool,
    /// Container dispatch threads.
    pub dispatch_threads: usize,
    /// Default instance-pool bound per bean.
    pub default_pool_size: usize,
    /// Reply timeout for business calls.
    pub reply_timeout: Duration,
    /// Bound on the container's dispatch queue; business calls over it
    /// are refused with [`crate::error::EjbError::Overloaded`] and counted
    /// in `causeway_engine_shed_total{engine="ejb"}`. 0 is treated as 1.
    pub queue_capacity: usize,
}

impl Default for ContainerConfig {
    fn default() -> Self {
        ContainerConfig {
            probe_mode: ProbeMode::Latency,
            probe_policy: None,
            instrumented: true,
            dispatch_threads: 4,
            default_pool_size: 8,
            reply_timeout: Duration::from_secs(30),
            queue_capacity: 65_536,
        }
    }
}

/// A remote business reference bound in JNDI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BeanRef {
    /// The bean deployment identity.
    pub bean: ObjectId,
    /// The business interface.
    pub interface: InterfaceId,
    /// The container hosting the bean.
    pub container: ProcessId,
}

/// The JNDI-style shared naming registry. Cloning shares state.
#[derive(Debug, Clone, Default)]
pub struct Jndi {
    inner: Arc<RwLock<HashMap<String, BeanRef>>>,
}

impl Jndi {
    /// Creates an empty registry.
    pub fn new() -> Jndi {
        Jndi::default()
    }

    /// Binds a name to a bean reference (rebinding replaces).
    pub fn bind(&self, name: &str, bean: BeanRef) {
        self.inner.write().insert(name.to_owned(), bean);
    }

    /// Looks a name up.
    ///
    /// # Errors
    ///
    /// Returns [`EjbError::NameNotFound`] for unbound names.
    pub fn lookup(&self, name: &str) -> Result<BeanRef, EjbError> {
        self.inner
            .read()
            .get(name)
            .copied()
            .ok_or_else(|| EjbError::NameNotFound(name.to_owned()))
    }

    /// All bound names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().keys().cloned().collect();
        names.sort();
        names
    }
}

/// The work-area context attached to every container invocation: a tagged
/// byte map, as the J2EE activity/work-area services carried. The FTL rides
/// here under [`FTL_WORK_AREA_KEY`].
pub type WorkArea = HashMap<String, Bytes>;

/// The work-area key carrying the FTL.
pub const FTL_WORK_AREA_KEY: &str = "causeway.ftl";

struct WorkItem {
    bean: ObjectId,
    interface: InterfaceId,
    method: causeway_core::ids::MethodIndex,
    payload: Bytes,
    work_area: WorkArea,
    reply: Sender<WorkReply>,
    /// Stamped at enqueue; the dispatch worker reports the wait as
    /// `causeway_engine_queue_wait_ns{engine="ejb"}`.
    enqueued: Instant,
}

struct WorkReply {
    body: Result<Result<Bytes, (String, String)>, String>,
    work_area: WorkArea,
}

struct BeanDeployment {
    pool: InstancePool,
}

struct ContainerInner {
    process: ProcessId,
    node: NodeId,
    monitor: Monitor,
    vocab: SystemVocab,
    jndi: Jndi,
    config: ContainerConfig,
    beans: RwLock<HashMap<ObjectId, Arc<BeanDeployment>>>,
    interceptors: RwLock<Vec<Arc<dyn ContainerInterceptor>>>,
    /// Routing + accounting shared by every container of one domain.
    domain: Arc<DomainShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ContainerInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Container")
            .field("process", &self.process)
            .field("beans", &self.beans.read().len())
            .finish()
    }
}

enum ContainerMsg {
    Work(WorkItem),
    Stop,
}

/// State shared by every container of one routing domain.
#[derive(Default)]
struct DomainShared {
    routes: RwLock<HashMap<ProcessId, Sender<ContainerMsg>>>,
    /// In-flight business calls across the whole domain (a call increments
    /// at the proxy and decrements at the dispatching container, which may
    /// be a different one).
    pending: AtomicI64,
}

/// One EJB container (one simulated process). Cloning shares state.
#[derive(Debug, Clone)]
pub struct Container {
    inner: Arc<ContainerInner>,
}

/// Builder for [`Container`].
pub struct ContainerBuilder {
    process: ProcessId,
    node: NodeId,
    config: ContainerConfig,
    vocab: Option<SystemVocab>,
    jndi: Option<Jndi>,
    domain: Option<Arc<DomainShared>>,
    wall: Option<Arc<dyn WallClock>>,
    cpu: Option<Arc<dyn CpuClock>>,
}

impl std::fmt::Debug for ContainerBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContainerBuilder").field("process", &self.process).finish()
    }
}

impl ContainerBuilder {
    /// Sets the configuration.
    pub fn config(mut self, config: ContainerConfig) -> Self {
        self.config = config;
        self
    }

    /// Shares a vocabulary (for hybrid deployments).
    pub fn vocab(mut self, vocab: SystemVocab) -> Self {
        self.vocab = Some(vocab);
        self
    }

    /// Shares a naming registry with sibling containers.
    pub fn jndi(mut self, jndi: Jndi) -> Self {
        self.jndi = Some(jndi);
        self
    }

    /// Substitutes the wall clock.
    pub fn wall_clock(mut self, clock: Arc<dyn WallClock>) -> Self {
        self.wall = Some(clock);
        self
    }

    /// Substitutes the CPU clock.
    pub fn cpu_clock(mut self, clock: Arc<dyn CpuClock>) -> Self {
        self.cpu = Some(clock);
        self
    }

    /// Joins the routing domain of `peer` so the two containers can call
    /// each other. Containers built without this form a new domain.
    pub fn join(mut self, peer: &Container) -> Self {
        self.domain = Some(Arc::clone(&peer.inner.domain));
        if self.vocab.is_none() {
            self.vocab = Some(peer.inner.vocab.clone());
        }
        if self.jndi.is_none() {
            self.jndi = Some(peer.inner.jndi.clone());
        }
        self
    }

    /// Builds and starts the container's dispatch workers.
    pub fn build(self) -> Container {
        let probe_policy = self
            .config
            .probe_policy
            .clone()
            .unwrap_or_else(|| ProbePolicy::new(self.config.probe_mode));
        let monitor = Monitor::builder(self.process, self.node)
            .policy(probe_policy)
            .wall_clock(self.wall.unwrap_or_else(|| Arc::new(SystemClock::new())))
            .cpu_clock(self.cpu.unwrap_or_else(|| Arc::new(VirtualCpuClock::new())))
            .build();
        let container = Container {
            inner: Arc::new(ContainerInner {
                process: self.process,
                node: self.node,
                monitor,
                vocab: self.vocab.unwrap_or_default(),
                jndi: self.jndi.unwrap_or_default(),
                config: self.config,
                beans: RwLock::new(HashMap::new()),
                interceptors: RwLock::new(Vec::new()),
                domain: self.domain.unwrap_or_default(),
                workers: Mutex::new(Vec::new()),
            }),
        };
        container.start();
        container
    }
}

impl Container {
    /// Starts building a container with the given identity.
    pub fn builder(process: ProcessId, node: NodeId) -> ContainerBuilder {
        ContainerBuilder {
            process,
            node,
            config: ContainerConfig::default(),
            vocab: None,
            jndi: None,
            domain: None,
            wall: None,
            cpu: None,
        }
    }

    fn start(&self) {
        let (tx, rx): (Sender<ContainerMsg>, Receiver<ContainerMsg>) = unbounded();
        self.inner.domain.routes.write().insert(self.inner.process, tx);
        let mut workers = self.inner.workers.lock();
        for i in 0..self.inner.config.dispatch_threads.max(1) {
            let container = self.clone();
            let rx = rx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("{}-ejb{}", self.inner.process, i))
                    .spawn(move || {
                        let _worker = engine_metrics().worker();
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                ContainerMsg::Work(item) => container.dispatch(item),
                                ContainerMsg::Stop => break,
                            }
                        }
                    })
                    .expect("spawn dispatch worker"),
            );
        }
    }

    /// The container's vocabulary.
    pub fn vocab(&self) -> &SystemVocab {
        &self.inner.vocab
    }

    /// The shared naming registry.
    pub fn jndi(&self) -> &Jndi {
        &self.inner.jndi
    }

    /// The container's monitor.
    pub fn monitor(&self) -> &Monitor {
        &self.inner.monitor
    }

    /// Parses and compiles business-interface IDL with this container's
    /// instrumentation flag.
    ///
    /// # Errors
    ///
    /// Returns [`EjbError::Definition`] on parse/compile failures.
    pub fn load_idl(&self, source: &str) -> Result<(), EjbError> {
        let spec = parse(source).map_err(|e| EjbError::Definition(e.to_string()))?;
        let mode = if self.inner.config.instrumented {
            InstrumentMode::Instrumented
        } else {
            InstrumentMode::Plain
        };
        let compiled = compile(&spec, mode).map_err(|e| EjbError::Definition(e.to_string()))?;
        compiled.register(&self.inner.vocab);
        Ok(())
    }

    /// Registers a container-wide interceptor (appends to the chain).
    pub fn add_interceptor(&self, interceptor: Arc<dyn ContainerInterceptor>) {
        self.inner.interceptors.write().push(interceptor);
    }

    /// Deploys a bean: binds `name` in JNDI to a pooled deployment of the
    /// given business interface, with instances created by `factory`.
    ///
    /// # Errors
    ///
    /// Returns [`EjbError::Definition`] when the interface was not loaded.
    pub fn deploy(
        &self,
        name: &str,
        interface: &str,
        pool_size: Option<usize>,
        factory: Arc<dyn Fn() -> Box<dyn SessionBean> + Send + Sync>,
    ) -> Result<BeanRef, EjbError> {
        let iface = self
            .inner
            .vocab
            .interface_id(interface)
            .ok_or_else(|| EjbError::Definition(format!("interface {interface} not loaded")))?;
        let component = self.inner.vocab.intern_component(name);
        let bean = self
            .inner
            .vocab
            .register_object(name, iface, component, self.inner.process);
        self.inner.beans.write().insert(
            bean,
            Arc::new(BeanDeployment {
                pool: InstancePool::new(
                    pool_size.unwrap_or(self.inner.config.default_pool_size),
                    factory,
                ),
            }),
        );
        let bean_ref = BeanRef { bean, interface: iface, container: self.inner.process };
        self.inner.jndi.bind(name, bean_ref);
        Ok(bean_ref)
    }

    /// The process identity this container reports in probe records.
    pub fn process(&self) -> ProcessId {
        self.inner.process
    }

    /// The node hosting this container.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// A client bound to this container (its invocations originate here).
    pub fn client(&self) -> EjbClient {
        EjbClient { container: Some(self.clone()) }
    }

    /// Calls currently in flight across the routing domain.
    pub fn in_flight(&self) -> i64 {
        self.inner.domain.pending.load(Ordering::SeqCst)
    }

    /// Waits until no calls are in flight.
    ///
    /// # Errors
    ///
    /// Returns the stuck count after `timeout`.
    pub fn quiesce(&self, timeout: Duration) -> Result<(), i64> {
        let deadline = Instant::now() + timeout;
        loop {
            let pending = self.inner.domain.pending.load(Ordering::SeqCst);
            if pending <= 0 {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(pending);
            }
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    /// Stops this container's dispatch workers.
    pub fn shutdown(&self) {
        if let Some(tx) = self.inner.domain.routes.write().remove(&self.inner.process) {
            for _ in 0..self.inner.config.dispatch_threads.max(1) {
                let _ = tx.send(ContainerMsg::Stop);
            }
        }
        let workers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.inner.workers.lock());
        for worker in workers {
            let _ = worker.join();
        }
    }

    /// Drains this container's probe records.
    pub fn drain_records(&self) -> Vec<causeway_core::record::ProbeRecord> {
        self.inner.monitor.store().drain()
    }

    /// Drains into a standalone [`RunLog`] with a single-node deployment.
    pub fn harvest_standalone(&self, node_name: &str, cpu_type: &str) -> RunLog {
        let cpu = self.inner.vocab.intern_cpu_type(cpu_type);
        let mut deployment = Deployment::new();
        let node = deployment.add_node(node_name, cpu);
        deployment.add_process("ejb-container", node);
        let expected = self.inner.monitor.store().len() as u64;
        let mut run = RunLog::new(self.drain_records(), self.inner.vocab.snapshot(), deployment);
        run.expected_records = Some(expected);
        run
    }

    /// Server-side dispatch: skeleton probe, pool checkout, interceptor
    /// chain, business method, checkin, reply.
    fn dispatch(&self, item: WorkItem) {
        let m = engine_metrics();
        m.queue_wait_ns.observe(item.enqueued.elapsed().as_nanos() as u64);
        let _timer = m.begin_dispatch();
        let monitor = &self.inner.monitor;
        let instrumented = self.inner.config.instrumented;
        let func = causeway_core::record::FunctionKey::new(item.interface, item.method, item.bean);
        let op = op_metrics().series(func.interface, func.method, || {
            (
                self.inner
                    .vocab
                    .interface_name(func.interface)
                    .unwrap_or_else(|| func.interface.to_string()),
                self.inner
                    .vocab
                    .method_name(func.interface, func.method)
                    .unwrap_or_else(|| func.method.to_string()),
            )
        });
        op.dispatch.inc();
        let op_started = std::time::Instant::now();
        let kind = CallKind::Sync;

        let deployment = self.inner.beans.read().get(&item.bean).cloned();
        let Some(deployment) = deployment else {
            let _ = item.reply.send(WorkReply {
                body: Err(format!("no bean {} in {}", item.bean, self.inner.process)),
                work_area: WorkArea::new(),
            });
            self.inner.domain.pending.fetch_sub(1, Ordering::SeqCst);
            return;
        };

        // Skeleton probe: install the FTL from the work area.
        if instrumented {
            if let Some(ftl) = item
                .work_area
                .get(FTL_WORK_AREA_KEY)
                .and_then(|bytes| FunctionTxLog::from_wire(bytes))
            {
                monitor.skel_start(func, kind, ftl, None);
            }
        }

        let cpu = monitor.cpu_clock();
        let token = cpu.region_begin();
        let args = wire::decode_args(item.payload.clone());
        cpu.region_end(token);

        let result = match args {
            Ok(args) => {
                let mut instance = deployment.pool.checkout();
                let info = InvocationInfo { bean: item.bean, method: item.method };
                let interceptors: Vec<_> = self.inner.interceptors.read().clone();
                for interceptor in &interceptors {
                    interceptor.before(&info);
                }
                let ctx = BeanCtx::new(self.client(), item.bean);
                let result = instance.business(&ctx, item.method, args);
                for interceptor in interceptors.iter().rev() {
                    interceptor.after(&info, result.is_ok());
                }
                deployment.pool.checkin(instance);
                result
            }
            Err(e) => Err(("MarshalError".to_owned(), e.to_string())),
        };

        op.busy_ns.observe(op_started.elapsed().as_nanos() as u64);
        let mut work_area = WorkArea::new();
        if instrumented {
            let reply_ftl = monitor.skel_end(func, kind);
            work_area.insert(
                FTL_WORK_AREA_KEY.to_owned(),
                Bytes::copy_from_slice(&reply_ftl.to_wire()),
            );
        }

        let body = match result {
            Ok(value) => {
                let token = cpu.region_begin();
                let bytes = wire::encode_args(std::slice::from_ref(&value));
                cpu.region_end(token);
                Ok(Ok(bytes))
            }
            Err(app) => Ok(Err(app)),
        };
        let _ = item.reply.send(WorkReply { body, work_area });
        // Seal this dispatch thread's open log chunk before the call stops
        // counting as in-flight, so quiescence implies every server-side
        // record reached the collector stream.
        monitor.store().flush_current_thread();
        self.inner.domain.pending.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A client for business invocations; the generated proxy analog.
#[derive(Debug, Clone)]
pub struct EjbClient {
    container: Option<Container>,
}

impl EjbClient {
    /// A client bound to no container; every call fails. Exists for unit
    /// tests of bean code that never invokes children.
    pub fn detached() -> EjbClient {
        EjbClient { container: None }
    }

    /// Starts a new causal chain on the calling thread.
    pub fn begin_root(&self) {
        if let Some(container) = &self.container {
            container.inner.monitor.begin_root();
        }
    }

    /// Looks up a JNDI name and invokes a business method on it.
    ///
    /// # Errors
    ///
    /// Returns [`EjbError`] for unbound names, unknown methods, transport
    /// failures, timeouts, and application exceptions.
    pub fn call(&self, name: &str, method: &str, args: Vec<Value>) -> Result<Value, EjbError> {
        let container = self
            .container
            .as_ref()
            .ok_or_else(|| EjbError::ContainerUnreachable("detached client".into()))?;
        let target = container.inner.jndi.lookup(name)?;
        self.call_ref(&target, method, args)
    }

    /// Invokes a business method on a resolved reference.
    ///
    /// # Errors
    ///
    /// As for [`EjbClient::call`].
    pub fn call_ref(
        &self,
        target: &BeanRef,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, EjbError> {
        let container = self
            .container
            .as_ref()
            .ok_or_else(|| EjbError::ContainerUnreachable("detached client".into()))?;
        let inner = &container.inner;
        let midx = inner
            .vocab
            .method_index(target.interface, method)
            .ok_or_else(|| EjbError::UnknownMethod(format!("{method} on {}", target.interface)))?;

        let monitor = &inner.monitor;
        let instrumented = inner.config.instrumented;
        let func = causeway_core::record::FunctionKey::new(target.interface, midx, target.bean);
        let kind = CallKind::Sync;

        // Proxy-side probe 1.
        let out = instrumented.then(|| monitor.stub_start(func, kind));

        let cpu = monitor.cpu_clock();
        let token = cpu.region_begin();
        let payload = wire::encode_args(&args);
        let mut work_area = WorkArea::new();
        if let Some(out) = &out {
            work_area.insert(
                FTL_WORK_AREA_KEY.to_owned(),
                Bytes::copy_from_slice(&out.wire_ftl.to_wire()),
            );
        }
        cpu.region_end(token);

        let route = inner.domain.routes.read().get(&target.container).cloned();
        let Some(route) = route else {
            if instrumented {
                monitor.stub_end(func, kind, None);
            }
            return Err(EjbError::ContainerUnreachable(target.container.to_string()));
        };

        // Bounded admission: a full container queue sheds the call with an
        // explicit overload error instead of queueing without bound. The
        // proxy-side probe still closes, so the causal chain stays intact.
        if route.len() >= inner.config.queue_capacity.max(1) {
            engine_metrics().shed.inc();
            if instrumented {
                monitor.stub_end(func, kind, None);
            }
            return Err(EjbError::Overloaded(format!(
                "{} dispatch queue at capacity",
                target.container
            )));
        }

        let (reply_tx, reply_rx) = bounded(1);
        inner.domain.pending.fetch_add(1, Ordering::SeqCst);
        if route
            .send(ContainerMsg::Work(WorkItem {
                bean: target.bean,
                interface: target.interface,
                method: midx,
                payload,
                work_area,
                reply: reply_tx,
                enqueued: Instant::now(),
            }))
            .is_err()
        {
            inner.domain.pending.fetch_sub(1, Ordering::SeqCst);
            if instrumented {
                monitor.stub_end(func, kind, None);
            }
            return Err(EjbError::ContainerUnreachable(target.container.to_string()));
        }

        let reply = match reply_rx.recv_timeout(inner.config.reply_timeout) {
            Ok(reply) => reply,
            Err(_) => {
                if instrumented {
                    monitor.stub_end(func, kind, None);
                }
                return Err(EjbError::Timeout(format!("{func}")));
            }
        };

        // Proxy-side probe 4.
        if instrumented {
            let reply_ftl = reply
                .work_area
                .get(FTL_WORK_AREA_KEY)
                .and_then(|bytes| FunctionTxLog::from_wire(bytes));
            monitor.stub_end(func, kind, reply_ftl);
        }

        match reply.body {
            Err(runtime) => Err(EjbError::ContainerUnreachable(runtime)),
            Ok(Err((exception, message))) => Err(EjbError::Application(exception, message)),
            Ok(Ok(bytes)) => {
                let mut values =
                    wire::decode_args(bytes).map_err(|e| EjbError::Definition(e.to_string()))?;
                values
                    .pop()
                    .ok_or_else(|| EjbError::Definition("empty reply".into()))
            }
        }
    }
}
