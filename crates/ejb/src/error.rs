//! EJB container errors.

use std::fmt;

/// Errors surfaced by the container runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EjbError {
    /// No bean is bound under the JNDI name.
    NameNotFound(String),
    /// The method name does not exist on the bean's business interface.
    UnknownMethod(String),
    /// The target container is gone.
    ContainerUnreachable(String),
    /// The reply did not arrive in time.
    Timeout(String),
    /// The bean raised (exception, message).
    Application(String, String),
    /// A payload failed to (un)marshal, or IDL failed to compile.
    Definition(String),
    /// The container shed the call: its dispatch queue was at capacity.
    Overloaded(String),
}

impl fmt::Display for EjbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EjbError::NameNotFound(n) => write!(f, "name not found: {n}"),
            EjbError::UnknownMethod(m) => write!(f, "unknown method: {m}"),
            EjbError::ContainerUnreachable(m) => write!(f, "container unreachable: {m}"),
            EjbError::Overloaded(m) => write!(f, "overloaded: {m}"),
            EjbError::Timeout(m) => write!(f, "invocation timed out: {m}"),
            EjbError::Application(e, m) => write!(f, "application exception {e}: {m}"),
            EjbError::Definition(m) => write!(f, "definition error: {m}"),
        }
    }
}

impl std::error::Error for EjbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(
            EjbError::NameNotFound("java:global/Cart".into()).to_string(),
            "name not found: java:global/Cart"
        );
        assert_eq!(
            EjbError::Application("CartFull".into(), "limit".into()).to_string(),
            "application exception CartFull: limit"
        );
    }
}
