//! # causeway-ejb
//!
//! A J2EE-style container runtime — the paper's first-named future effort:
//! "one future effort is to investigate the adoption of our monitoring
//! techniques to the J2EE-based applications."
//!
//! The adoption works because J2EE has the same structural property the
//! paper exploits in CORBA and COM: an *indirection layer* between caller
//! and implementation. Here that layer is the container-generated business
//! proxy (client side) and the container dispatch (server side); the four
//! probes of Figure 1 sit at exactly those points, and the FTL rides the
//! invocation's *work-area context* (a tagged map attached to every
//! container invocation, as J2EE activity services did).
//!
//! What makes this a genuinely different substrate rather than a re-skinned
//! ORB:
//!
//! * **Stateless-session-bean pooling** — bean instances take `&mut self`;
//!   the container checks an instance out of a bounded [`pool`] for the
//!   duration of a call and queues callers when the pool is exhausted.
//! * **Container interceptor chains** — `@AroundInvoke`-style
//!   [`interceptor::ContainerInterceptor`]s wrap every business method
//!   *inside* the container (not at the transport), in registration order.
//! * **JNDI-style naming** — beans are looked up by string names bound in
//!   a shared [`container::Jndi`] registry.
//!
//! Observation O1 holds (a container worker is dedicated to a call until it
//! completes), so — per §2.2 of the paper — the TSS-based tunnel carries
//! over unchanged. The integration tests verify end-to-end chains across
//! containers, and the hybrid test in `tests/` shows a chain crossing
//! CORBA → EJB through nothing but the shared thread-specific storage.

#![warn(missing_docs)]

pub mod bean;
pub mod container;
pub mod error;
pub mod interceptor;
pub mod pool;

pub use bean::{BeanCtx, FnBean, SessionBean};
pub use container::{BeanRef, Container, ContainerConfig, EjbClient, Jndi};
pub use error::EjbError;
pub use interceptor::{ContainerInterceptor, InvocationInfo};
