//! Session beans: the user-defined business logic.

use crate::container::EjbClient;
use causeway_core::ids::{MethodIndex, ObjectId};
use causeway_core::value::Value;

/// A stateless session bean. Unlike ORB servants, bean methods take
/// `&mut self`: the container guarantees exclusive access by checking the
/// instance out of its pool for the duration of the call.
pub trait SessionBean: Send {
    /// Executes one business method.
    fn business(
        &mut self,
        ctx: &BeanCtx,
        method: MethodIndex,
        args: Vec<Value>,
    ) -> Result<Value, (String, String)>;
}

/// Context injected into a bean for the duration of one call.
#[derive(Debug, Clone)]
pub struct BeanCtx {
    client: EjbClient,
    bean: ObjectId,
}

impl BeanCtx {
    pub(crate) fn new(client: EjbClient, bean: ObjectId) -> BeanCtx {
        BeanCtx { client, bean }
    }

    /// A client for invoking other beans (children of this call).
    pub fn client(&self) -> &EjbClient {
        &self.client
    }

    /// The identity of the bean deployment this instance belongs to.
    pub fn bean(&self) -> ObjectId {
        self.bean
    }
}

/// A bean built from a closure plus per-instance state created by a factory
/// — handy for tests and examples.
pub struct FnBean<S, F> {
    state: S,
    body: F,
}

impl<S, F> FnBean<S, F>
where
    S: Send,
    F: Fn(&mut S, &BeanCtx, MethodIndex, Vec<Value>) -> Result<Value, (String, String)>
        + Send
        + Sync,
{
    /// Creates a bean instance with the given state and body.
    pub fn new(state: S, body: F) -> FnBean<S, F> {
        FnBean { state, body }
    }
}

impl<S, F> SessionBean for FnBean<S, F>
where
    S: Send,
    F: Fn(&mut S, &BeanCtx, MethodIndex, Vec<Value>) -> Result<Value, (String, String)>
        + Send
        + Sync,
{
    fn business(
        &mut self,
        ctx: &BeanCtx,
        method: MethodIndex,
        args: Vec<Value>,
    ) -> Result<Value, (String, String)> {
        (self.body)(&mut self.state, ctx, method, args)
    }
}

impl<S, F> std::fmt::Debug for FnBean<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnBean")
    }
}
