//! End-to-end tests of the EJB container: pooled dispatch, tracing through
//! the business proxy, cross-container chains, interceptor ordering, and
//! the hybrid CORBA→EJB tunnel.

use causeway_analyzer::dscg::Dscg;
use causeway_collector::db::MonitoringDb;
use causeway_core::ids::{NodeId, ProcessId};
use causeway_core::value::Value;
use causeway_ejb::{
    BeanCtx, Container, ContainerConfig, ContainerInterceptor, EjbError, FnBean, InvocationInfo,
};
use std::sync::Arc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

const IDL: &str = r#"
    module Shop {
        interface Cart {
            long add(in long item);
            long checkout(in long cart);
        };
    };
"#;

fn simple_bean() -> Arc<dyn Fn() -> Box<dyn causeway_ejb::SessionBean> + Send + Sync> {
    Arc::new(|| {
        Box::new(FnBean::new(0i64, |state, _ctx, midx, args| {
            let x = args.first().and_then(Value::as_i64).unwrap_or(0);
            match midx.0 {
                0 => {
                    *state += x;
                    Ok(Value::I64(*state))
                }
                1 => Ok(Value::I64(x * 100)),
                _ => Err(("BadMethod".into(), String::new())),
            }
        }))
    })
}

#[test]
fn business_call_round_trips_with_four_probes() {
    let container = Container::builder(ProcessId(0), NodeId(0)).build();
    container.load_idl(IDL).unwrap();
    container
        .deploy("java:global/Cart", "Shop::Cart", None, simple_bean())
        .unwrap();
    let client = container.client();
    client.begin_root();
    let out = client.call("java:global/Cart", "add", vec![Value::I64(7)]).unwrap();
    assert_eq!(out.as_i64(), Some(7));
    container.quiesce(Duration::from_secs(5)).unwrap();
    container.shutdown();

    let db = MonitoringDb::from_run(container.harvest_standalone("appserver", "JvmHost"));
    assert_eq!(db.records().len(), 4, "the business proxy carries all four probes");
    let dscg = Dscg::build(&db);
    assert!(dscg.abnormalities.is_empty());
    assert_eq!(dscg.total_nodes(), 1);
}

#[test]
fn nested_cross_container_chain_stays_on_one_uuid() {
    let front = Container::builder(ProcessId(0), NodeId(0)).build();
    front.load_idl(IDL).unwrap();
    let back = Container::builder(ProcessId(1), NodeId(0)).join(&front).build();

    back.deploy("java:global/Inventory", "Shop::Cart", None, simple_bean())
        .unwrap();
    front
        .deploy(
            "java:global/Cart",
            "Shop::Cart",
            None,
            Arc::new(|| {
                Box::new(FnBean::new((), |_state, ctx: &BeanCtx, midx, args| {
                    if midx.0 == 0 {
                        // add -> checks inventory in the other container.
                        let inner = ctx
                            .client()
                            .call("java:global/Inventory", "checkout", args)
                            .map_err(|e| ("Downstream".to_owned(), e.to_string()))?;
                        Ok(Value::I64(inner.as_i64().unwrap_or(0) + 1))
                    } else {
                        Ok(Value::Void)
                    }
                }))
            }),
        )
        .unwrap();

    let client = front.client();
    client.begin_root();
    let out = client.call("java:global/Cart", "add", vec![Value::I64(3)]).unwrap();
    assert_eq!(out.as_i64(), Some(301));
    front.quiesce(Duration::from_secs(5)).unwrap();
    back.quiesce(Duration::from_secs(5)).unwrap();
    front.shutdown();
    back.shutdown();

    let mut run = front.harvest_standalone("appserver", "JvmHost");
    run.merge(causeway_core::runlog::RunLog::new(
        back.drain_records(),
        run.vocab.clone(),
        run.deployment.clone(),
    ));
    let db = MonitoringDb::from_run(run);
    let dscg = Dscg::build(&db);
    assert!(dscg.abnormalities.is_empty(), "{:?}", dscg.abnormalities);
    assert_eq!(dscg.trees.len(), 1, "one chain across both containers");
    assert_eq!(dscg.total_nodes(), 2);
    assert_eq!(dscg.trees[0].roots[0].children.len(), 1);
    // Dense event numbering across the container boundary.
    let mut seqs: Vec<u64> = db.records().iter().map(|r| r.seq).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (1..=8).collect::<Vec<u64>>());
}

#[test]
fn pool_bound_limits_concurrent_instances() {
    let container = Container::builder(ProcessId(0), NodeId(0))
        .config(ContainerConfig { dispatch_threads: 8, ..ContainerConfig::default() })
        .build();
    container.load_idl(IDL).unwrap();
    let live = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    let (live2, peak2) = (Arc::clone(&live), Arc::clone(&peak));
    container
        .deploy(
            "java:global/Slow",
            "Shop::Cart",
            Some(2), // at most 2 instances
            Arc::new(move || {
                let live = Arc::clone(&live2);
                let peak = Arc::clone(&peak2);
                Box::new(FnBean::new((live, peak), |state, _, _, args| {
                    let now = state.0.fetch_add(1, Ordering::SeqCst) + 1;
                    state.1.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(20));
                    state.0.fetch_sub(1, Ordering::SeqCst);
                    Ok(args.into_iter().next().unwrap_or(Value::Void))
                }))
            }),
        )
        .unwrap();

    let handles: Vec<_> = (0..8)
        .map(|i| {
            let client = container.client();
            std::thread::spawn(move || {
                client.begin_root();
                client.call("java:global/Slow", "add", vec![Value::I64(i)]).unwrap()
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    container.shutdown();
    assert!(
        peak.load(Ordering::SeqCst) <= 2,
        "pool bound exceeded: peak {}",
        peak.load(Ordering::SeqCst)
    );
}

#[test]
fn interceptor_chain_wraps_every_business_call() {
    struct Recorder {
        calls: Arc<AtomicUsize>,
        failures: Arc<AtomicUsize>,
    }
    impl ContainerInterceptor for Recorder {
        fn before(&self, _: &InvocationInfo) {
            self.calls.fetch_add(1, Ordering::SeqCst);
        }
        fn after(&self, _: &InvocationInfo, succeeded: bool) {
            if !succeeded {
                self.failures.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    let container = Container::builder(ProcessId(0), NodeId(0)).build();
    container.load_idl(IDL).unwrap();
    let calls = Arc::new(AtomicUsize::new(0));
    let failures = Arc::new(AtomicUsize::new(0));
    container.add_interceptor(Arc::new(Recorder {
        calls: Arc::clone(&calls),
        failures: Arc::clone(&failures),
    }));
    container
        .deploy(
            "java:global/Flaky",
            "Shop::Cart",
            None,
            Arc::new(|| {
                Box::new(FnBean::new((), |_, _, _, args| {
                    if args.first().and_then(Value::as_i64) == Some(13) {
                        Err(("Unlucky".into(), "13".into()))
                    } else {
                        Ok(Value::Void)
                    }
                }))
            }),
        )
        .unwrap();
    let client = container.client();
    client.begin_root();
    client.call("java:global/Flaky", "add", vec![Value::I64(1)]).unwrap();
    let err = client.call("java:global/Flaky", "add", vec![Value::I64(13)]).unwrap_err();
    assert!(matches!(err, EjbError::Application(e, _) if e == "Unlucky"));
    container.shutdown();
    assert_eq!(calls.load(Ordering::SeqCst), 2);
    assert_eq!(failures.load(Ordering::SeqCst), 1);
}

#[test]
fn naming_failures_and_unknown_methods() {
    let container = Container::builder(ProcessId(0), NodeId(0)).build();
    container.load_idl(IDL).unwrap();
    container
        .deploy("java:global/Cart", "Shop::Cart", None, simple_bean())
        .unwrap();
    let client = container.client();
    assert!(matches!(
        client.call("java:global/Nope", "add", vec![]),
        Err(EjbError::NameNotFound(_))
    ));
    assert!(matches!(
        client.call("java:global/Cart", "refund", vec![]),
        Err(EjbError::UnknownMethod(_))
    ));
    assert_eq!(container.jndi().names(), vec!["java:global/Cart".to_owned()]);
    container.shutdown();
}

#[test]
fn stateless_instances_recycle_state_across_calls() {
    // The same pooled instance serves sequential calls: its &mut state
    // accumulates — exactly why stateless beans must not assume a fresh
    // instance per call.
    let container = Container::builder(ProcessId(0), NodeId(0))
        .config(ContainerConfig { dispatch_threads: 1, ..ContainerConfig::default() })
        .build();
    container.load_idl(IDL).unwrap();
    container
        .deploy("java:global/Acc", "Shop::Cart", Some(1), simple_bean())
        .unwrap();
    let client = container.client();
    client.begin_root();
    assert_eq!(
        client.call("java:global/Acc", "add", vec![Value::I64(5)]).unwrap().as_i64(),
        Some(5)
    );
    assert_eq!(
        client.call("java:global/Acc", "add", vec![Value::I64(5)]).unwrap().as_i64(),
        Some(10),
        "the single pooled instance accumulated"
    );
    container.shutdown();
}
