//! Golden-file test for the Chrome trace exporter.
//!
//! Builds a deterministic printing-pipeline run by hand (fixed uuids,
//! sequence numbers and wall stamps — live runs randomize all three) and
//! checks the exported trace byte-for-byte against
//! `tests/golden/printing_pipeline.trace.json`. The golden file is a real
//! Chrome trace: drop it on <https://ui.perfetto.dev> to inspect it.
//!
//! To regenerate after an intentional exporter change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p causeway-analyzer --test chrome_trace_golden
//! ```

use causeway_analyzer::chrome_trace;
use causeway_collector::db::{DbBuilder, MonitoringDb};
use causeway_collector::json::{self, Json};
use causeway_core::deploy::Deployment;
use causeway_core::event::{CallKind, TraceEvent};
use causeway_core::ids::*;
use causeway_core::names::SystemVocab;
use causeway_core::record::{CallSite, FunctionKey, ProbeRecord};
use causeway_core::uuid::Uuid;

const JOB_CHAIN: Uuid = Uuid(0xA11CE);
const NOTIFY_CHAIN: Uuid = Uuid(0xB0B);

#[allow(clippy::too_many_arguments)]
fn rec(
    uuid: Uuid,
    seq: u64,
    event: TraceEvent,
    kind: CallKind,
    func: FunctionKey,
    process: u16,
    node: u16,
    wall: (u64, u64),
) -> ProbeRecord {
    ProbeRecord {
        uuid,
        seq,
        event,
        kind,
        site: CallSite {
            node: NodeId(node),
            process: ProcessId(process),
            thread: LogicalThreadId(0),
        },
        func,
        wall_start: Some(wall.0),
        wall_end: Some(wall.1),
        cpu_start: None,
        cpu_end: None,
        oneway_child: None,
        oneway_parent: None,
    }
}

/// One print job through the paper's printing-pipeline system: the client
/// submits to the intake, the intake synchronously rasterizes on the RIP,
/// and the RIP fires a one-way completion notification at the press.
fn printing_pipeline_db() -> MonitoringDb {
    let vocab = SystemVocab::new();
    let intake_if = vocab.intern_interface("JobIntake", &["submit"]);
    let rip_if = vocab.intern_interface("Rip", &["rasterize"]);
    let press_if = vocab.intern_interface("Press", &["notify_done"]);
    let intake_c = vocab.intern_component("IntakeComponent");
    let rip_c = vocab.intern_component("RipComponent");
    let press_c = vocab.intern_component("PressComponent");
    let intake_obj = vocab.register_object("intake#0", intake_if, intake_c, ProcessId(1));
    let rip_obj = vocab.register_object("rip#0", rip_if, rip_c, ProcessId(2));
    let press_obj = vocab.register_object("press#0", press_if, press_c, ProcessId(3));

    let mut deployment = Deployment::new();
    let cpu = vocab.intern_cpu_type("TestCpu");
    let office = deployment.add_node("office", cpu);
    let pressroom = deployment.add_node("pressroom", cpu);
    deployment.add_process("client", office);
    deployment.add_process("intake", office);
    deployment.add_process("rip", pressroom);
    deployment.add_process("press", pressroom);

    let submit = FunctionKey::new(intake_if, MethodIndex(0), intake_obj);
    let rasterize = FunctionKey::new(rip_if, MethodIndex(0), rip_obj);
    let notify = FunctionKey::new(press_if, MethodIndex(0), press_obj);
    let sync = CallKind::Sync;
    let oneway = CallKind::Oneway;

    let mut fork = rec(
        JOB_CHAIN, 5, TraceEvent::StubStart, oneway, notify, 2, 1, (5_000, 5_100),
    );
    fork.oneway_child = Some(NOTIFY_CHAIN);
    let mut notify_head = rec(
        NOTIFY_CHAIN, 1, TraceEvent::SkelStart, oneway, notify, 3, 1, (5_500, 5_600),
    );
    notify_head.oneway_parent = Some((JOB_CHAIN, 5));

    let mut builder = DbBuilder::new();
    builder.ingest_records([
        rec(JOB_CHAIN, 1, TraceEvent::StubStart, sync, submit, 0, 0, (1_000, 1_200)),
        rec(JOB_CHAIN, 2, TraceEvent::SkelStart, sync, submit, 1, 0, (2_000, 2_200)),
        rec(JOB_CHAIN, 3, TraceEvent::StubStart, sync, rasterize, 1, 0, (3_000, 3_200)),
        rec(JOB_CHAIN, 4, TraceEvent::SkelStart, sync, rasterize, 2, 1, (4_000, 4_200)),
        fork,
        rec(JOB_CHAIN, 6, TraceEvent::StubEnd, oneway, notify, 2, 1, (5_200, 5_300)),
        rec(JOB_CHAIN, 7, TraceEvent::SkelEnd, sync, rasterize, 2, 1, (6_000, 6_200)),
        rec(JOB_CHAIN, 8, TraceEvent::StubEnd, sync, rasterize, 1, 0, (7_000, 7_200)),
        rec(JOB_CHAIN, 9, TraceEvent::SkelEnd, sync, submit, 1, 0, (8_000, 8_200)),
        rec(JOB_CHAIN, 10, TraceEvent::StubEnd, sync, submit, 0, 0, (9_000, 9_200)),
        notify_head,
        rec(NOTIFY_CHAIN, 2, TraceEvent::SkelEnd, oneway, notify, 3, 1, (5_800, 5_900)),
    ]);
    builder.finish(vocab.snapshot(), deployment)
}

const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/printing_pipeline.trace.json");

#[test]
fn printing_pipeline_trace_matches_golden_file() {
    let exported = chrome_trace::export(&printing_pipeline_db());

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &exported).expect("write golden file");
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file exists (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        exported, golden,
        "exporter output drifted from the golden trace; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn golden_trace_is_loadable_chrome_json() {
    let exported = chrome_trace::export(&printing_pipeline_db());
    let parsed = json::parse(&exported).expect("valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("top-level traceEvents array");
    assert!(!events.is_empty());

    // Every event carries the envelope Perfetto requires of its phase.
    for event in events {
        let ph = event.get("ph").and_then(Json::as_str).expect("ph");
        assert!(event.get("name").and_then(Json::as_str).is_some(), "name on {ph}");
        assert!(event.get("pid").and_then(Json::as_u64).is_some(), "pid on {ph}");
        match ph {
            "M" => {}
            "X" => {
                assert!(event.get("ts").is_some() && event.get("dur").is_some());
            }
            "b" | "e" | "s" | "f" => {
                assert!(event.get("ts").is_some() && event.get("id").is_some());
            }
            "i" => assert!(event.get("ts").is_some()),
            other => panic!("unexpected phase {other}"),
        }
    }

    // The one-way notification grafted into the job chain: its client
    // slice sits on the RIP's process, its server slice on the press's.
    let slice = |cat: &str, pid: u64| {
        events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("cat").and_then(Json::as_str) == Some(cat)
                && e.get("pid").and_then(Json::as_u64) == Some(pid)
                && e.get("name")
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.contains("notify_done"))
        })
    };
    assert!(slice("stub", 2), "one-way client slice on the rip");
    assert!(slice("skel", 3), "grafted one-way server slice on the press");

    // Four process_name metadata tracks, named from the deployment.
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str))
        .collect();
    assert_eq!(
        names,
        [
            "client @ office",
            "intake @ office",
            "rip @ pressroom",
            "press @ pressroom"
        ]
    );
}
