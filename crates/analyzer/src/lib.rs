//! # causeway-analyzer
//!
//! The off-line characterization tool of the paper's §3: reconstruct the
//! **Dynamic System Call Graph** from the causality records, then compute
//! end-to-end timing latency and system-wide CPU consumption on top of it.
//!
//! * [`dscg`] — the Figure-4 state machine that parses each causal chain's
//!   event stream into a call tree, with "abnormal" transition reporting and
//!   restart; one-way child chains are grafted under their fork sites.
//! * [`latency`] — `L(F) = P_{F,4,start} − P_{F,1,end} − O_F` with the
//!   probe-overhead compensation `O_F`, plus per-method statistics.
//! * [`cpu`] — self CPU `SC_F`, descendant CPU `DC_F` as a vector per
//!   processor type, propagated up the call hierarchy.
//! * [`ccsg`] — the CPU Consumption Summarization Graph of Figure 6.
//! * [`render`] — ASCII / DOT / JSON views of the DSCG (substituting for
//!   the hyperbolic tree viewer) and the XML view of the CCSG.
//!
//! # Example
//!
//! ```
//! use causeway_collector::db::MonitoringDb;
//! use causeway_core::runlog::RunLog;
//! use causeway_analyzer::dscg::Dscg;
//!
//! let db = MonitoringDb::from_run(RunLog::default());
//! let dscg = Dscg::build(&db);
//! assert!(dscg.trees.is_empty());
//! assert!(dscg.abnormalities.is_empty());
//! ```

#![warn(missing_docs)]

pub mod ccsg;
pub mod chrome_trace;
pub mod cpu;
pub mod dscg;
pub mod exemplar;
pub mod history;
pub mod hotspot;
pub mod incident;
pub mod latency;
pub mod live;
pub mod online;
pub mod render;

pub use ccsg::{Ccsg, CcsgNode};
pub use cpu::{CpuAnalysis, CpuVector};
pub use dscg::{Abnormality, CallNode, CallTree, Dscg};
pub use exemplar::{Exemplar, ExemplarConfig, ExemplarStore};
pub use history::{BurnRule, BurnState, WindowHistory};
pub use incident::{Hypothesis, Incident, IncidentStore, Tombstone};
pub use latency::{LatencyAnalysis, LatencyStats};
pub use live::{AlertEvent, AlertRule, LiveConfig, LiveMonitor, WindowSnapshot};
