//! Renderers: textual views of the DSCG and CCSG.
//!
//! The paper inspected the DSCG in a hyperbolic tree viewer (Figure 5) and
//! the CCSG in an XML viewer (Figure 6). The data products are identical
//! here; the views are an ASCII tree, Graphviz DOT, and XML, which are
//! inspectable without a 2003-era licensed viewer.

use crate::ccsg::{Ccsg, CcsgNode, format_sec_usec};
use crate::dscg::{CallNode, Dscg};
use crate::latency::node_latency;
use causeway_core::event::CallKind;
use causeway_core::names::VocabSnapshot;
use causeway_core::record::FunctionKey;
use causeway_core::uuid::Uuid;
use std::fmt::Write as _;

/// Options for the ASCII DSCG view.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsciiOptions {
    /// Annotate nodes with `L(F)` when wall stamps are present.
    pub show_latency: bool,
    /// Annotate nodes with the executing process.
    pub show_site: bool,
    /// Truncate each tree after this many nodes (0 = no limit) — Figure 5
    /// likewise shows "a portion of the DSCG".
    pub max_nodes_per_tree: usize,
}

/// Renders the DSCG as an indented ASCII tree.
pub fn ascii_tree(dscg: &Dscg, vocab: &VocabSnapshot, options: AsciiOptions) -> String {
    let mut out = String::new();
    for (i, tree) in dscg.trees.iter().enumerate() {
        writeln!(out, "chain {} ({} nodes)", tree.chain, tree.size()).expect("string write");
        let mut printed = 0usize;
        let mut truncated = false;
        // Explicit pre-order stack: deep trees must not recurse.
        let mut stack: Vec<(&CallNode, usize)> = tree.roots.iter().rev().map(|r| (r, 1)).collect();
        while let Some((node, depth)) = stack.pop() {
            if options.max_nodes_per_tree > 0 && printed >= options.max_nodes_per_tree {
                truncated = true;
                break;
            }
            render_ascii_node(node, vocab, options, depth, &mut printed, &mut out);
            for child in node.children.iter().rev() {
                stack.push((child, depth + 1));
            }
        }
        if truncated {
            writeln!(out, "  … ({} more nodes)", tree.size() - printed).expect("string write");
        }
        if i + 1 < dscg.trees.len() {
            out.push('\n');
        }
    }
    if !dscg.abnormalities.is_empty() {
        writeln!(out, "\n{} abnormalities:", dscg.abnormalities.len()).expect("string write");
        for a in &dscg.abnormalities {
            writeln!(out, "  chain {}: {}", a.chain, a.message).expect("string write");
        }
    }
    out
}

fn render_ascii_node(
    node: &CallNode,
    vocab: &VocabSnapshot,
    options: AsciiOptions,
    depth: usize,
    printed: &mut usize,
    out: &mut String,
) {
    *printed += 1;
    let indent = "  ".repeat(depth);
    let name = vocab.qualified_function(&node.func);
    write!(out, "{indent}{name} [{}]", node.kind).expect("string write");
    if !node.complete {
        out.push_str(" [INCOMPLETE]");
    }
    if options.show_latency {
        if let Some(lat) = node_latency(node) {
            write!(out, " L={}us", lat.latency_ns / 1_000).expect("string write");
        }
    }
    if options.show_site {
        if let Some(skel) = &node.skel_start {
            write!(out, " @{}", skel.site).expect("string write");
        } else if let Some(stub) = &node.stub_start {
            write!(out, " @{}", stub.site).expect("string write");
        }
    }
    out.push('\n');
}

/// Renders the DSCG as Graphviz DOT (one cluster per chain).
pub fn dot(dscg: &Dscg, vocab: &VocabSnapshot) -> String {
    let mut out = String::from("digraph dscg {\n  node [shape=box, fontsize=9];\n");
    let mut next_id = 0usize;
    for (i, tree) in dscg.trees.iter().enumerate() {
        writeln!(out, "  subgraph cluster_{i} {{").expect("string write");
        writeln!(out, "    label=\"chain {}\";", tree.chain).expect("string write");
        // Explicit pre-order stack (node, parent id); ids are assigned in
        // pop order, which matches the old recursion's DFS numbering.
        let mut stack: Vec<(&CallNode, Option<usize>)> =
            tree.roots.iter().rev().map(|r| (r, None)).collect();
        while let Some((node, parent)) = stack.pop() {
            let id = next_id;
            next_id += 1;
            let label = vocab.qualified_function(&node.func).replace('"', "'");
            writeln!(out, "    n{id} [label=\"{label}\\n{}\"];", node.kind).expect("string write");
            if let Some(parent) = parent {
                writeln!(out, "    n{parent} -> n{id};").expect("string write");
            }
            for child in node.children.iter().rev() {
                stack.push((child, Some(id)));
            }
        }
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    out
}

/// Renders the CCSG as the Figure-6-style XML document.
pub fn ccsg_xml(ccsg: &Ccsg, vocab: &VocabSnapshot) -> String {
    let mut out = String::from("<?xml version=\"1.0\"?>\n<CPUConsumptionSummarizationGraph>\n");
    for (cpu_type, total) in ccsg.system_total.iter() {
        writeln!(
            out,
            "  <SystemTotal cpuType=\"{}\" consumption=\"{}\"/>",
            xml_escape(vocab.cpu_type_name(cpu_type)),
            format_sec_usec(total)
        )
        .expect("string write");
    }
    // Open/close tags need both sides of each subtree: an explicit
    // enter/exit stack replaces the old per-level recursion.
    enum Step<'a> {
        Enter(&'a CcsgNode, usize),
        Exit(usize),
    }
    let mut stack: Vec<Step> = ccsg.roots.iter().rev().map(|r| Step::Enter(r, 1)).collect();
    while let Some(step) = stack.pop() {
        match step {
            Step::Enter(node, depth) => {
                ccsg_xml_open(node, vocab, depth, &mut out);
                stack.push(Step::Exit(depth));
                for child in node.children.iter().rev() {
                    stack.push(Step::Enter(child, depth + 1));
                }
            }
            Step::Exit(depth) => {
                writeln!(out, "{}</Function>", "  ".repeat(depth)).expect("string write");
            }
        }
    }
    out.push_str("</CPUConsumptionSummarizationGraph>\n");
    out
}

fn ccsg_xml_open(node: &CcsgNode, vocab: &VocabSnapshot, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let iface = xml_escape(vocab.interface_name(node.func.interface));
    let method = xml_escape(vocab.method_name(node.func.interface, node.func.method));
    writeln!(
        out,
        "{indent}<Function interface=\"{iface}\" name=\"{method}\" ObjectID=\"{}\" InvocationTimes=\"{}\">",
        node.func.object, node.invocation_times
    )
    .expect("string write");
    writeln!(
        out,
        "{indent}  <IncludedFunctionInstances count=\"{}\"/>",
        node.included_instances.len()
    )
    .expect("string write");
    for (cpu_type, ns) in node.self_cpu.iter() {
        writeln!(
            out,
            "{indent}  <SelfCPUConsumption cpuType=\"{}\">{}</SelfCPUConsumption>",
            xml_escape(vocab.cpu_type_name(cpu_type)),
            format_sec_usec(ns)
        )
        .expect("string write");
    }
    for (cpu_type, ns) in node.descendant_cpu.iter() {
        writeln!(
            out,
            "{indent}  <DescendentCPUConsumption cpuType=\"{}\">{}</DescendentCPUConsumption>",
            xml_escape(vocab.cpu_type_name(cpu_type)),
            format_sec_usec(ns)
        )
        .expect("string write");
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// One completed invocation as streamed by the on-line analyzer: enough to
/// rebuild the chain's call tree without retaining raw probe records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedCall {
    /// The invoked function.
    pub func: FunctionKey,
    /// How it was invoked (sync, one-way, collocated, …).
    pub kind: CallKind,
    /// Nesting depth within the chain (roots at 0).
    pub depth: usize,
    /// Compensated latency, ns (0 when wall stamps were absent).
    pub latency_ns: u64,
}

/// A node of a reconstructed completed-call tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletionNode {
    /// The completed invocation.
    pub call: CompletedCall,
    /// Child invocations in call order.
    pub children: Vec<CompletionNode>,
}

/// Rebuilds a chain's call forest from its completion events.
///
/// The analyzer emits completions in post-order (children before parents)
/// with depths, which uniquely determines the tree: scanning in order, a
/// completion at depth `d` adopts the contiguous run of already-built
/// subtrees of depth `d + 1` at the top of the stack. Orphans whose parent
/// never completed surface as extra roots rather than disappearing.
pub fn completion_forest(completions: &[CompletedCall]) -> Vec<CompletionNode> {
    let mut stack: Vec<CompletionNode> = Vec::new();
    for &call in completions {
        let mut children = Vec::new();
        while stack.last().is_some_and(|n| n.call.depth == call.depth + 1) {
            children.push(stack.pop().expect("checked last"));
        }
        children.reverse(); // popped newest-first; restore call order
        stack.push(CompletionNode { call, children });
    }
    stack
}

/// Renders one completed chain as an indented ASCII tree (the streaming
/// DSCG view: same shape as [`ascii_tree`], fed from completion events).
pub fn completed_chain_ascii(
    chain: Uuid,
    completions: &[CompletedCall],
    vocab: &VocabSnapshot,
) -> String {
    let forest = completion_forest(completions);
    let mut out = String::new();
    writeln!(out, "chain {chain} ({} completed calls)", completions.len())
        .expect("string write");
    let mut stack: Vec<(&CompletionNode, usize)> =
        forest.iter().rev().map(|r| (r, 1)).collect();
    while let Some((node, indent)) = stack.pop() {
        writeln!(
            out,
            "{}{} [{}] L={}us",
            "  ".repeat(indent),
            vocab.qualified_function(&node.call.func),
            node.call.kind,
            node.call.latency_ns / 1_000
        )
        .expect("string write");
        for child in node.children.iter().rev() {
            stack.push((child, indent + 1));
        }
    }
    out
}

/// Renders one completed chain as Graphviz DOT (single cluster).
pub fn completed_chain_dot(
    chain: Uuid,
    completions: &[CompletedCall],
    vocab: &VocabSnapshot,
) -> String {
    let forest = completion_forest(completions);
    let mut out = String::from("digraph dscg {\n  node [shape=box, fontsize=9];\n");
    writeln!(out, "  subgraph cluster_0 {{\n    label=\"chain {chain}\";")
        .expect("string write");
    let mut next_id = 0usize;
    let mut stack: Vec<(&CompletionNode, Option<usize>)> =
        forest.iter().rev().map(|r| (r, None)).collect();
    while let Some((node, parent)) = stack.pop() {
        let id = next_id;
        next_id += 1;
        let label = vocab.qualified_function(&node.call.func).replace('"', "'");
        writeln!(
            out,
            "    n{id} [label=\"{label}\\n{} {}us\"];",
            node.call.kind,
            node.call.latency_ns / 1_000
        )
        .expect("string write");
        if let Some(parent) = parent {
            writeln!(out, "    n{parent} -> n{id};").expect("string write");
        }
        for child in node.children.iter().rev() {
            stack.push((child, Some(id)));
        }
    }
    out.push_str("  }\n}\n");
    out
}

/// Renders an OVATION-style sequence chart: one lane per (process, thread)
/// entity, invocations plotted against wall time. This is the view OVATION
/// offered *without* causality — shown here both for ad-hoc inspection and
/// to make the baselines comparison tangible (the lanes show *when*, the
/// DSCG shows *why*).
pub fn sequence_chart(dscg: &Dscg, vocab: &VocabSnapshot, width: usize) -> String {
    use causeway_core::ids::{LogicalThreadId, ProcessId};
    struct Span {
        entity: (ProcessId, LogicalThreadId),
        start: u64,
        end: u64,
        label: String,
    }
    let mut spans: Vec<Span> = Vec::new();
    dscg.walk(&mut |node, _| {
        // Prefer the servant-side window (where the work happened).
        let (record_start, record_end) = match (&node.skel_start, &node.skel_end) {
            (Some(s), Some(e)) => (s, e),
            _ => match (&node.stub_start, &node.stub_end) {
                (Some(s), Some(e)) => (s, e),
                _ => return,
            },
        };
        if let (Some(start), Some(end)) = (record_start.wall_start, record_end.wall_end) {
            spans.push(Span {
                entity: (record_start.site.process, record_start.site.thread),
                start,
                end,
                label: vocab
                    .method_name(node.func.interface, node.func.method)
                    .to_owned(),
            });
        }
    });
    if spans.is_empty() {
        return String::from("(no timed invocations)\n");
    }
    let t_min = spans.iter().map(|s| s.start).min().expect("non-empty");
    let t_max = spans.iter().map(|s| s.end).max().expect("non-empty").max(t_min + 1);
    let width = width.max(20);
    let scale = |t: u64| -> usize {
        ((t - t_min) as u128 * (width - 1) as u128 / (t_max - t_min) as u128) as usize
    };

    let mut entities: Vec<(ProcessId, LogicalThreadId)> =
        spans.iter().map(|s| s.entity).collect();
    entities.sort();
    entities.dedup();

    let mut out = String::new();
    writeln!(
        out,
        "time: {} .. {} ({} µs span)",
        t_min,
        t_max,
        (t_max - t_min) / 1_000
    )
    .expect("string write");
    for entity in entities {
        let mut lane = vec![b' '; width];
        let mut labels: Vec<(usize, String)> = Vec::new();
        for span in spans.iter().filter(|s| s.entity == entity) {
            let a = scale(span.start);
            let b = scale(span.end).max(a);
            for cell in lane.iter_mut().take(b + 1).skip(a) {
                *cell = b'=';
            }
            lane[a] = b'[';
            lane[b] = b']';
            labels.push((a, span.label.clone()));
        }
        writeln!(
            out,
            "{}/{:<6} |{}|",
            entity.0,
            entity.1.to_string(),
            String::from_utf8_lossy(&lane)
        )
        .expect("string write");
        // One label line, best effort (labels may overlap; first wins).
        let mut label_line = vec![b' '; width];
        for (pos, label) in labels {
            let bytes = label.as_bytes();
            if label_line[pos.min(width - 1)] == b' ' {
                for (i, &c) in bytes.iter().enumerate() {
                    if pos + i < width && label_line[pos + i] == b' ' {
                        label_line[pos + i] = c;
                    } else {
                        break;
                    }
                }
            }
        }
        writeln!(
            out,
            "{:w$}  {}",
            "",
            String::from_utf8_lossy(&label_line).trim_end(),
            w = 11
        )
        .expect("string write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccsg::Ccsg;
    use crate::dscg::{CallTree, Dscg};
    use causeway_core::deploy::Deployment;
    use causeway_core::event::{CallKind, TraceEvent};
    use causeway_core::ids::*;
    use causeway_core::names::{InterfaceEntry, VocabSnapshot};
    use causeway_core::record::{CallSite, FunctionKey, ProbeRecord};
    use causeway_core::uuid::Uuid;

    fn vocab() -> VocabSnapshot {
        let mut v = VocabSnapshot::default();
        v.interfaces.push(InterfaceEntry {
            name: "Pipe::Stage".into(),
            methods: vec!["run".into()],
        });
        v.cpu_types.push("HPUX".into());
        v
    }

    fn rec(event: TraceEvent) -> ProbeRecord {
        ProbeRecord {
            uuid: Uuid(1),
            seq: 1,
            event,
            kind: CallKind::Sync,
            site: CallSite {
                node: NodeId(0),
                process: ProcessId(0),
                thread: LogicalThreadId(0),
            },
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(3)),
            wall_start: Some(0),
            wall_end: Some(10),
            cpu_start: Some(0),
            cpu_end: Some(10),
            oneway_child: None,
            oneway_parent: None,
        }
    }

    fn simple_dscg() -> Dscg {
        let node = CallNode {
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(3)),
            kind: CallKind::Sync,
            stub_start: Some(rec(TraceEvent::StubStart)),
            skel_start: Some(rec(TraceEvent::SkelStart)),
            skel_end: Some(rec(TraceEvent::SkelEnd)),
            stub_end: Some(rec(TraceEvent::StubEnd)),
            children: vec![],
            complete: true,
        };
        Dscg::from_trees(vec![CallTree { chain: Uuid(1), roots: vec![node] }])
    }

    #[test]
    fn ascii_tree_names_functions() {
        let text = ascii_tree(&simple_dscg(), &vocab(), AsciiOptions::default());
        assert!(text.contains("Pipe::Stage.run@obj3"), "{text}");
        assert!(text.contains("chain"));
        assert!(text.contains("[sync]"));
    }

    #[test]
    fn ascii_tree_truncates() {
        let mut dscg = simple_dscg();
        let extra = dscg.trees[0].roots[0].clone();
        for _ in 0..5 {
            dscg.trees[0].roots.push(extra.clone());
        }
        let text = ascii_tree(
            &dscg,
            &vocab(),
            AsciiOptions { max_nodes_per_tree: 2, ..Default::default() },
        );
        assert!(text.contains("more nodes"), "{text}");
    }

    #[test]
    fn ascii_tree_reports_abnormalities() {
        let mut dscg = simple_dscg();
        dscg.abnormalities.push(crate::dscg::Abnormality {
            chain: Uuid(1),
            at_seq: Some(4),
            message: "unexpected stub_end".into(),
        });
        let text = ascii_tree(&dscg, &vocab(), AsciiOptions::default());
        assert!(text.contains("1 abnormalities"));
        assert!(text.contains("unexpected stub_end"));
    }

    #[test]
    fn dot_output_is_wellformed() {
        let text = dot(&simple_dscg(), &vocab());
        assert!(text.starts_with("digraph dscg {"));
        assert!(text.contains("subgraph cluster_0"));
        assert!(text.contains("Pipe::Stage.run@obj3"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn ccsg_xml_contains_figure_6_fields() {
        let dscg = simple_dscg();
        let mut deployment = Deployment::new();
        let n = deployment.add_node("hp", CpuTypeId(0));
        deployment.add_process("p0", n);
        let ccsg = Ccsg::build(&dscg, &deployment);
        let xml = ccsg_xml(&ccsg, &vocab());
        assert!(xml.contains("<CPUConsumptionSummarizationGraph>"));
        assert!(xml.contains("ObjectID=\"obj3\""));
        assert!(xml.contains("InvocationTimes=\"1\""));
        assert!(xml.contains("SelfCPUConsumption"));
        assert!(xml.contains("microsecond"));
        assert!(xml.contains("cpuType=\"HPUX\""));
    }

    #[test]
    fn xml_escaping() {
        assert_eq!(xml_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }

    fn completed(iface: u32, depth: usize, latency_us: u64) -> CompletedCall {
        CompletedCall {
            func: FunctionKey::new(InterfaceId(iface), MethodIndex(0), ObjectId(3)),
            kind: CallKind::Sync,
            depth,
            latency_ns: latency_us * 1_000,
        }
    }

    #[test]
    fn completion_forest_rebuilds_post_order_tree() {
        // Post-order: child (depth 1), sibling (depth 1), then parent
        // (depth 0), plus a second root.
        let events =
            vec![completed(0, 1, 10), completed(0, 1, 20), completed(0, 0, 50), completed(0, 0, 5)];
        let forest = completion_forest(&events);
        assert_eq!(forest.len(), 2);
        assert_eq!(forest[0].children.len(), 2);
        assert_eq!(forest[0].children[0].call.latency_ns, 10_000, "call order kept");
        assert_eq!(forest[0].children[1].call.latency_ns, 20_000);
        assert!(forest[1].children.is_empty());
    }

    #[test]
    fn completion_forest_surfaces_orphans_as_roots() {
        // A depth-2 completion whose depth-1 parent never completed must
        // still be visible.
        let events = vec![completed(0, 2, 10), completed(0, 0, 50)];
        let forest = completion_forest(&events);
        assert_eq!(forest.len(), 2);
    }

    #[test]
    fn completed_chain_renders_are_wellformed() {
        let events = vec![completed(0, 1, 10), completed(0, 0, 50)];
        let ascii = completed_chain_ascii(Uuid(7), &events, &vocab());
        assert!(ascii.starts_with("chain"), "{ascii}");
        assert!(ascii.contains("Pipe::Stage.run@obj3 [sync] L=50us"), "{ascii}");
        assert!(ascii.contains("    Pipe::Stage.run@obj3 [sync] L=10us"), "nested: {ascii}");

        let dot = completed_chain_dot(Uuid(7), &events, &vocab());
        assert!(dot.starts_with("digraph dscg {"), "{dot}");
        assert!(dot.contains("n0 -> n1;"), "{dot}");
        assert!(dot.trim_end().ends_with('}'), "{dot}");
    }
}

#[cfg(test)]
mod sequence_chart_tests {
    use super::*;
    use crate::dscg::{CallNode, CallTree, Dscg};
    use causeway_core::event::{CallKind, TraceEvent};
    use causeway_core::ids::*;
    use causeway_core::names::{InterfaceEntry, VocabSnapshot};
    use causeway_core::record::{CallSite, FunctionKey, ProbeRecord};
    use causeway_core::uuid::Uuid;

    fn stamped(event: TraceEvent, process: u16, t: u64) -> ProbeRecord {
        ProbeRecord {
            uuid: Uuid(1),
            seq: 1,
            event,
            kind: CallKind::Sync,
            site: CallSite {
                node: NodeId(0),
                process: ProcessId(process),
                thread: LogicalThreadId(0),
            },
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(1)),
            wall_start: Some(t),
            wall_end: Some(t),
            cpu_start: None,
            cpu_end: None,
            oneway_child: None,
            oneway_parent: None,
        }
    }

    fn vocab() -> VocabSnapshot {
        let mut v = VocabSnapshot::default();
        v.interfaces.push(InterfaceEntry {
            name: "I".into(),
            methods: vec!["run".into()],
        });
        v
    }

    #[test]
    fn chart_draws_one_lane_per_entity() {
        let node = CallNode {
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(1)),
            kind: CallKind::Sync,
            stub_start: Some(stamped(TraceEvent::StubStart, 0, 0)),
            skel_start: Some(stamped(TraceEvent::SkelStart, 1, 100)),
            skel_end: Some(stamped(TraceEvent::SkelEnd, 1, 900)),
            stub_end: Some(stamped(TraceEvent::StubEnd, 0, 1000)),
            children: vec![],
            complete: true,
        };
        let dscg = Dscg::from_trees(vec![CallTree { chain: Uuid(1), roots: vec![node] }]);
        let chart = sequence_chart(&dscg, &vocab(), 60);
        assert!(chart.contains("proc1/thr0"), "{chart}");
        assert!(chart.contains('['), "{chart}");
        assert!(chart.contains("run"), "{chart}");
    }

    #[test]
    fn empty_dscg_yields_placeholder() {
        let chart = sequence_chart(&Dscg::default(), &vocab(), 60);
        assert!(chart.contains("no timed invocations"));
    }
}
