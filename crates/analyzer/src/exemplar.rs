//! Tail-based exemplar capture: the concrete causal chains behind every
//! percentile, alert, and incident.
//!
//! The live monitor's aggregates (`/latency` histograms, alert rules, burn
//! rates) summarize thousands of chains per window; the paper's whole
//! point is that global causality capture lets an operator go from the
//! aggregate symptom back to the concrete execution that explains it. The
//! completed-chain trace ring (`trace_capacity`) cannot serve that role —
//! it is strict FIFO, so under load the few slow or abnormal chains that
//! explain a p99 breach are evicted by sheer volume of fast ones before
//! anyone queries `/dscg`.
//!
//! [`ExemplarStore`] keeps a small, *tail-biased* reservoir per
//! (interface, method) series instead: the K slowest chains, every
//! abnormal chain, and a deterministic uniform sample, each retained with
//! its full completion events so the DSCG render and a Chrome-trace slice
//! view stay reproducible long after the FIFO ring churned. Eviction
//! within a reservoir is **fastest-first, never FIFO** — volume alone can
//! never push out the chain that made the percentile.
//!
//! Determinism contract: admission decisions depend only on the chain's
//! uuid, latency, verdict and the store's own state — never on wall-clock
//! time or ambient randomness — so a sharded monitor replaying admissions
//! in rank order produces a bit-identical store at any shard count
//! (`tests/live_sharded.rs` proves it).
//!
//! With [`ExemplarConfig::spill`] set, every admission is also appended to
//! a crash-safe frame segment (same framing as the history spill); on
//! restart the file replays through the same admission logic, so the
//! store — ids included — survives the process.

use crate::live::SeriesKey;
use crate::render::{completion_forest, CompletedCall, CompletionNode};
use causeway_collector::json::Json;
use causeway_collector::segment::{next_frame, write_frame};
use causeway_core::event::CallKind;
use causeway_core::ids::{InterfaceId, MethodIndex, ObjectId};
use causeway_core::metrics::{Counter, Gauge, MetricsRegistry};
use causeway_core::names::VocabSnapshot;
use causeway_core::record::FunctionKey;
use causeway_core::uuid::Uuid;
use causeway_core::wire;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// Static configuration of an [`ExemplarStore`].
#[derive(Debug, Clone)]
pub struct ExemplarConfig {
    /// Capture exemplars at all. Disabled, every offer is a no-op and the
    /// read side serves an empty store.
    pub enabled: bool,
    /// Tail slots per series: the K slowest (plus abnormal) chains kept
    /// per (interface, method).
    pub per_series: usize,
    /// Uniform-sample slots per series, on top of the tail slots. Every
    /// chain has the same uuid-derived chance of becoming a sample
    /// candidate, independent of its latency.
    pub sample_per_series: usize,
    /// Global exemplar-count cap across all series; beyond it the least
    /// valuable exemplar store-wide (samples before slow, slow before
    /// abnormal; fastest first within a class) is evicted.
    pub max_total: usize,
    /// Approximate byte cap on retained completion events; evicts like
    /// `max_total`. A single chain costing more than the whole cap is
    /// rejected outright.
    pub max_bytes: usize,
    /// Append-only spill segment for admitted exemplars; replayed through
    /// the admission logic on restart. `None` (the default) keeps the
    /// store memory-only.
    pub spill: Option<PathBuf>,
}

impl Default for ExemplarConfig {
    fn default() -> Self {
        ExemplarConfig {
            enabled: true,
            per_series: 4,
            sample_per_series: 2,
            max_total: 512,
            max_bytes: 1 << 20,
            spill: None,
        }
    }
}

/// Why a chain was retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Among the K slowest of its series.
    Slow,
    /// The chain tripped a Figure-4 reconstruction abnormality.
    Abnormal,
    /// Deterministic uniform sample (uuid-derived), kept regardless of
    /// latency so the store always holds some "normal" executions too.
    Sampled,
}

impl Verdict {
    /// The JSON/exposition name.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Slow => "slow",
            Verdict::Abnormal => "abnormal",
            Verdict::Sampled => "sampled",
        }
    }

    /// Keep priority under eviction pressure: higher survives longer.
    fn keep_rank(self) -> u8 {
        match self {
            Verdict::Sampled => 0,
            Verdict::Slow => 1,
            Verdict::Abnormal => 2,
        }
    }

    fn tag(self) -> u8 {
        match self {
            Verdict::Slow => 0,
            Verdict::Abnormal => 1,
            Verdict::Sampled => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Verdict> {
        match tag {
            0 => Some(Verdict::Slow),
            1 => Some(Verdict::Abnormal),
            2 => Some(Verdict::Sampled),
            _ => None,
        }
    }
}

/// One retained chain: the link from an aggregate (a percentile bucket, an
/// alert, an incident hypothesis) back to the concrete execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// Monotonic admission ordinal (stable across a spill replay).
    pub id: u64,
    /// The chain's causality uuid — the public exemplar reference.
    pub chain: Uuid,
    /// The root call's (interface, method) series.
    pub series: SeriesKey,
    /// The root call's compensated latency, ns.
    pub latency_ns: u64,
    /// Tumbling window ordinal during which the chain completed.
    pub window_index: u64,
    /// Why it was retained.
    pub verdict: Verdict,
    /// The chain's completion events, enough to rebuild its call forest.
    pub completions: Vec<CompletedCall>,
}

/// Per-series tail-biased reservoirs of completed chains.
#[derive(Debug)]
pub struct ExemplarStore {
    cfg: ExemplarConfig,
    next_id: u64,
    rings: BTreeMap<SeriesKey, Vec<Exemplar>>,
    total: usize,
    bytes: usize,
    admitted_n: u64,
    evicted_n: u64,
    rejected_n: u64,
    spill: Option<ExemplarSpill>,
    spill_error: Option<String>,
    spill_errors: u64,
    /// Alert-referenced chains shielded from eviction, oldest pin first.
    /// Bounded by [`PIN_CAPACITY`]; an evicted exemplar drops its pin.
    pinned: Vec<Uuid>,
    admitted: Counter,
    evicted: Counter,
    rejected: Counter,
    count_gauge: Gauge,
    bytes_gauge: Gauge,
}

/// Fixed per-exemplar accounting overhead on top of the completion events.
const EXEMPLAR_BASE_COST: usize = 64;

/// Most pins held at once: enough for several alerts' worth of breach
/// references, small enough that pins can never dominate the store.
const PIN_CAPACITY: usize = 32;

/// One in this many chains becomes a uniform-sample candidate.
const SAMPLE_MODULUS: u64 = 16;

/// `true` when the chain's uuid elects it into the uniform sample. Pure
/// function of the uuid (splitmix64 finalizer), so sharded replay and
/// restarts agree.
pub fn sampled(chain: Uuid) -> bool {
    let mut x = (chain.0 as u64) ^ ((chain.0 >> 64) as u64) ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x.is_multiple_of(SAMPLE_MODULUS)
}

impl ExemplarStore {
    /// Creates a store; with a spill path configured, opens (or creates)
    /// the segment and replays prior admissions through the admission
    /// logic, so the post-restart state matches the pre-restart state.
    /// A spill that cannot be attached degrades to memory-only capture,
    /// recording the error for the read side.
    pub fn new(cfg: ExemplarConfig) -> ExemplarStore {
        let registry = MetricsRegistry::global();
        let mut store = ExemplarStore {
            cfg: cfg.clone(),
            next_id: 0,
            rings: BTreeMap::new(),
            total: 0,
            bytes: 0,
            admitted_n: 0,
            evicted_n: 0,
            rejected_n: 0,
            spill: None,
            spill_error: None,
            spill_errors: 0,
            pinned: Vec::new(),
            admitted: registry.counter(
                "causeway_live_exemplar_admitted_total",
                "Chains admitted into the exemplar reservoirs.",
            ),
            evicted: registry.counter(
                "causeway_live_exemplar_evicted_total",
                "Exemplars evicted under per-series, count, or byte caps.",
            ),
            rejected: registry.counter(
                "causeway_live_exemplar_rejected_total",
                "Chains offered but not worth a reservoir slot.",
            ),
            count_gauge: registry.gauge(
                "causeway_live_exemplar_count",
                "Exemplars currently retained across all series.",
            ),
            bytes_gauge: registry.gauge(
                "causeway_live_exemplar_bytes",
                "Approximate bytes retained by the exemplar store.",
            ),
        };
        if !cfg.enabled {
            return store;
        }
        if let Some(path) = &cfg.spill {
            match ExemplarSpill::open(path) {
                Ok((spill, replay)) => {
                    for ex in replay {
                        store.next_id = store.next_id.max(ex.id + 1);
                        store.place(ex);
                    }
                    store.spill = Some(spill);
                }
                Err(e) => store.spill_error = Some(format!("{}: {e}", path.display())),
            }
        }
        store
    }

    /// Offers one completed chain. Selection inputs (series, latency) are
    /// computed by the caller under the shard lock; the admission decision
    /// and any eviction happen here, under the control lock, in rank
    /// order. Returns the admitted exemplar's id.
    pub fn offer(
        &mut self,
        series: SeriesKey,
        chain: Uuid,
        latency_ns: u64,
        window_index: u64,
        abnormal: bool,
        completions: &[CompletedCall],
    ) -> Option<u64> {
        if !self.cfg.enabled || completions.is_empty() {
            return None;
        }
        let cost = Self::cost_of(completions);
        if self.cfg.max_bytes > 0 && cost > self.cfg.max_bytes {
            return self.reject();
        }
        let pinned = &self.pinned;
        let ring = self.rings.entry(series).or_default();
        let verdict = if abnormal {
            Verdict::Abnormal
        } else if Self::tail_accepts(ring, pinned, latency_ns, self.cfg.per_series) {
            Verdict::Slow
        } else if sampled(chain)
            && Self::sample_accepts(ring, pinned, latency_ns, self.cfg.sample_per_series)
        {
            Verdict::Sampled
        } else {
            return self.reject();
        };
        let id = self.next_id;
        self.next_id += 1;
        let exemplar = Exemplar {
            id,
            chain,
            series,
            latency_ns,
            window_index,
            verdict,
            completions: completions.to_vec(),
        };
        if let Some(spill) = &mut self.spill {
            if let Err(e) = spill.append(&exemplar) {
                self.spill_errors += 1;
                self.spill_error = Some(format!("{}: {e}", spill.path().display()));
                self.spill = None; // degrade to memory-only, keep capturing
            }
        }
        self.place(exemplar);
        Some(id)
    }

    /// Shields a retained chain from eviction: the uuids a fired alert
    /// publishes must keep resolving at `/exemplars?id=` for as long as an
    /// operator might follow the link, however much faster traffic arrives
    /// afterwards. Bounded FIFO — pinning past [`PIN_CAPACITY`] releases
    /// the oldest pin; pinning an unretained chain is a no-op. Pins are
    /// not spilled: after a restart the replayed store keeps whatever the
    /// unpinned admission order retains.
    pub fn pin(&mut self, chain: Uuid) {
        if self.pinned.contains(&chain) {
            return;
        }
        if !self.rings.values().any(|ring| ring.iter().any(|e| e.chain == chain)) {
            return;
        }
        self.pinned.push(chain);
        if self.pinned.len() > PIN_CAPACITY {
            self.pinned.remove(0);
        }
    }

    /// Would the tail (slow + abnormal) section admit this latency?
    /// Pinned members are not displaceable, so admission must beat the
    /// fastest *unpinned* slow-rank member.
    fn tail_accepts(ring: &[Exemplar], pinned: &[Uuid], latency_ns: u64, cap: usize) -> bool {
        if cap == 0 {
            return false;
        }
        let tail: Vec<&Exemplar> =
            ring.iter().filter(|e| e.verdict != Verdict::Sampled).collect();
        if tail.len() < cap {
            return true;
        }
        // Full: must strictly beat the section's eviction victim.
        tail.iter()
            .filter(|e| !pinned.contains(&e.chain))
            .map(|e| (e.verdict.keep_rank(), e.latency_ns))
            .min()
            .is_some_and(|(rank, fastest)| rank == Verdict::Slow.keep_rank() && latency_ns > fastest)
    }

    /// Would the sample section admit this latency? Pinned samples are not
    /// displaceable.
    fn sample_accepts(ring: &[Exemplar], pinned: &[Uuid], latency_ns: u64, cap: usize) -> bool {
        if cap == 0 {
            return false;
        }
        let mut n = 0usize;
        let mut fastest = u64::MAX;
        for e in ring.iter().filter(|e| e.verdict == Verdict::Sampled) {
            n += 1;
            if pinned.contains(&e.chain) {
                continue;
            }
            fastest = fastest.min(e.latency_ns);
        }
        n < cap || latency_ns > fastest
    }

    /// Inserts an exemplar and restores every bound (per-series sections,
    /// global count, global bytes) by fastest-first eviction.
    fn place(&mut self, exemplar: Exemplar) {
        let series = exemplar.series;
        let cost = Self::cost_of(&exemplar.completions);
        self.rings.entry(series).or_default().push(exemplar);
        self.total += 1;
        self.bytes += cost;
        self.admitted_n += 1;
        self.admitted.inc();
        self.shrink_sections(series);
        while self.total > self.cfg.max_total.max(1) && self.evict_global() {}
        while self.cfg.max_bytes > 0 && self.bytes > self.cfg.max_bytes && self.evict_global() {}
        self.count_gauge.set(self.total as i64);
        self.bytes_gauge.set(self.bytes as i64);
    }

    /// Restores one series' section caps: samples and the tail each evict
    /// their lowest-priority, fastest member first.
    fn shrink_sections(&mut self, series: SeriesKey) {
        loop {
            let Some(ring) = self.rings.get(&series) else { return };
            let samples = ring.iter().filter(|e| e.verdict == Verdict::Sampled).count();
            let tail = ring.len() - samples;
            let victim = if samples > self.cfg.sample_per_series {
                Self::victim_index(ring, &self.pinned, true)
            } else if tail > self.cfg.per_series {
                Self::victim_index(ring, &self.pinned, false)
            } else {
                return;
            };
            if let Some(at) = victim {
                self.remove_at(series, at);
            } else {
                return;
            }
        }
    }

    /// Index of the eviction victim within one ring, restricted to the
    /// sampled or tail section: minimum (pinned?, keep rank, latency, id)
    /// — pinned members go last, so a pin only breaks when every other
    /// member of the section is pinned too.
    fn victim_index(ring: &[Exemplar], pinned: &[Uuid], sampled_section: bool) -> Option<usize> {
        ring.iter()
            .enumerate()
            .filter(|(_, e)| (e.verdict == Verdict::Sampled) == sampled_section)
            .min_by_key(|(_, e)| {
                (pinned.contains(&e.chain), e.verdict.keep_rank(), e.latency_ns, e.id)
            })
            .map(|(at, _)| at)
    }

    /// Evicts the least valuable exemplar store-wide. `false` when empty.
    fn evict_global(&mut self) -> bool {
        let pinned = &self.pinned;
        let victim = self
            .rings
            .iter()
            .flat_map(|(series, ring)| {
                ring.iter().enumerate().map(move |(at, e)| (series, at, e))
            })
            .min_by_key(|(_, _, e)| {
                (pinned.contains(&e.chain), e.verdict.keep_rank(), e.latency_ns, e.id)
            })
            .map(|(series, at, _)| (*series, at));
        match victim {
            Some((series, at)) => {
                self.remove_at(series, at);
                true
            }
            None => false,
        }
    }

    fn remove_at(&mut self, series: SeriesKey, at: usize) {
        if let Some(ring) = self.rings.get_mut(&series) {
            let gone = ring.swap_remove(at);
            self.total -= 1;
            self.bytes = self.bytes.saturating_sub(Self::cost_of(&gone.completions));
            self.evicted_n += 1;
            self.evicted.inc();
            self.pinned.retain(|chain| *chain != gone.chain);
            if ring.is_empty() {
                self.rings.remove(&series);
            }
        }
    }

    fn reject(&mut self) -> Option<u64> {
        self.rejected_n += 1;
        self.rejected.inc();
        None
    }

    fn cost_of(completions: &[CompletedCall]) -> usize {
        EXEMPLAR_BASE_COST + std::mem::size_of_val(completions)
    }

    /// The retained exemplar for a chain uuid (the newest admission when a
    /// uuid was somehow admitted twice).
    pub fn get(&self, chain: Uuid) -> Option<&Exemplar> {
        self.rings
            .values()
            .flatten()
            .filter(|e| e.chain == chain)
            .max_by_key(|e| e.id)
    }

    /// One series' exemplars, slowest first (ties broken oldest first) —
    /// the deterministic render order.
    pub fn series_sorted(&self, series: SeriesKey) -> Vec<&Exemplar> {
        let mut out: Vec<&Exemplar> =
            self.rings.get(&series).map(|r| r.iter().collect()).unwrap_or_default();
        out.sort_by_key(|e| (std::cmp::Reverse(e.latency_ns), e.id));
        out
    }

    /// Every retained series, in key order.
    pub fn series_keys(&self) -> Vec<SeriesKey> {
        self.rings.keys().copied().collect()
    }

    /// Exemplars of one series at or above a latency floor, slowest first
    /// — the `/latency` percentile-bucket references.
    pub fn refs_at_least(&self, series: SeriesKey, floor_ns: u64, limit: usize) -> Vec<&Exemplar> {
        let mut out = self.series_sorted(series);
        out.retain(|e| e.latency_ns >= floor_ns);
        out.truncate(limit);
        out
    }

    /// The exemplar uuids to pin on a just-fired alert: chains from the
    /// breach window first, then the slowest overall, filtered to the
    /// rule's series when it targets one. Deterministic order:
    /// (breach-window membership, latency desc, id asc).
    pub fn breaching(
        &self,
        series: Option<SeriesKey>,
        window_index: u64,
        limit: usize,
    ) -> Vec<Uuid> {
        let mut candidates: Vec<&Exemplar> = self
            .rings
            .iter()
            .filter(|(key, _)| series.is_none_or(|want| want == **key))
            .flat_map(|(_, ring)| ring.iter())
            .collect();
        candidates.sort_by_key(|e| {
            (e.window_index != window_index, std::cmp::Reverse(e.latency_ns), e.id)
        });
        let mut out = Vec::new();
        for e in candidates {
            if !out.contains(&e.chain) {
                out.push(e.chain);
                if out.len() >= limit {
                    break;
                }
            }
        }
        out
    }

    /// Retained exemplar count.
    pub fn len(&self) -> usize {
        self.total
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Approximate retained bytes.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Admissions since this store was created (spill replay included).
    pub fn admitted(&self) -> u64 {
        self.admitted_n
    }

    /// Evictions under any cap since this store was created.
    pub fn evicted(&self) -> u64 {
        self.evicted_n
    }

    /// Offers not worth a slot since this store was created.
    pub fn rejected(&self) -> u64 {
        self.rejected_n
    }

    /// Why the configured spill is not attached, if it isn't.
    pub fn spill_error(&self) -> Option<&str> {
        self.spill_error.as_deref()
    }

    /// Admissions lost to spill append failures.
    pub fn spill_errors(&self) -> u64 {
        self.spill_errors
    }

    /// The active configuration.
    pub fn config(&self) -> &ExemplarConfig {
        &self.cfg
    }
}

/// A Chrome trace-event ("Perfetto") slice view of one exemplar's call
/// forest. Completion events carry latencies, not wall stamps, so slice
/// timestamps are *synthesized*: roots are laid out sequentially from 0,
/// children sequentially from their parent's start — nesting and durations
/// are faithful, absolute times are not wall-clock.
pub fn chrome_slice_json(exemplar: &Exemplar, vocab: &VocabSnapshot) -> Json {
    let forest = completion_forest(&exemplar.completions);
    let mut slices: Vec<(u64, usize, String, u64, &'static str)> = Vec::new();
    let mut work: Vec<(&CompletionNode, u64)> = Vec::new();
    let mut cursor = 0u64;
    for root in &forest {
        work.push((root, cursor));
        cursor = cursor.saturating_add(root.call.latency_ns);
    }
    while let Some((node, start)) = work.pop() {
        let name = format!(
            "{}.{}",
            vocab.interface_name(node.call.func.interface),
            vocab.method_name(node.call.func.interface, node.call.func.method)
        );
        slices.push((start, node.call.depth, name, node.call.latency_ns, kind_name(node.call.kind)));
        let mut at = start;
        for child in &node.children {
            work.push((child, at));
            at = at.saturating_add(child.call.latency_ns);
        }
    }
    slices.sort();
    let events: Vec<Json> = slices
        .into_iter()
        .map(|(start, depth, name, latency_ns, kind)| {
            Json::obj([
                ("name", Json::Str(name)),
                ("cat", Json::Str("exemplar".to_owned())),
                ("ph", Json::Str("X".to_owned())),
                ("ts", Json::Num(start as f64 / 1_000.0)),
                ("dur", Json::Num(latency_ns as f64 / 1_000.0)),
                ("pid", Json::Num(1.0)),
                ("tid", Json::Num(1.0)),
                (
                    "args",
                    Json::obj([
                        ("chain", Json::Str(exemplar.chain.to_string())),
                        ("depth", Json::Num(depth as f64)),
                        ("kind", Json::Str(kind.to_owned())),
                    ]),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".to_owned())),
    ])
}

fn kind_name(kind: CallKind) -> &'static str {
    match kind {
        CallKind::Sync => "sync",
        CallKind::Oneway => "oneway",
        CallKind::Collocated => "collocated",
        CallKind::CustomMarshal => "custom_marshal",
    }
}

// --- spill segment ------------------------------------------------------

/// Magic prefix of an exemplar spill segment file.
pub const SPILL_MAGIC: &[u8; 8] = b"CWEXMP1\n";

/// Append-only disk segment of admitted exemplars, one checksummed frame
/// per admission (the collector's segment framing, like the history
/// spill). Reopen replays complete frames and truncates a torn tail.
#[derive(Debug)]
struct ExemplarSpill {
    path: PathBuf,
    out: BufWriter<File>,
    end: u64,
}

impl ExemplarSpill {
    /// Opens or creates the segment; returns the writer plus every intact
    /// admission for replay. Refuses (`InvalidData`) a non-empty file that
    /// is not an exemplar spill — a mistyped path must not destroy an
    /// unrelated file.
    fn open(path: impl AsRef<Path>) -> io::Result<(ExemplarSpill, Vec<Exemplar>)> {
        let path = path.as_ref().to_path_buf();
        let existing = match std::fs::read(&path) {
            Ok(bytes)
                if bytes.len() >= SPILL_MAGIC.len()
                    && bytes[..SPILL_MAGIC.len()] == SPILL_MAGIC[..] =>
            {
                Some(bytes)
            }
            Ok(bytes) if SPILL_MAGIC.starts_with(&bytes) => None,
            Ok(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{} exists but is not an exemplar spill segment; refusing to overwrite it",
                        path.display()
                    ),
                ));
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let mut replay = Vec::new();
        let (file, end) = match existing {
            Some(bytes) => {
                let mut at = SPILL_MAGIC.len();
                while let Some(frame) = next_frame(&bytes, at) {
                    if wire::crc32(frame.payload) != frame.crc {
                        break;
                    }
                    let Some(exemplar) = decode_exemplar(frame.payload) else {
                        break;
                    };
                    replay.push(exemplar);
                    at = frame.end;
                }
                let mut file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(at as u64)?; // drop the torn tail, if any
                file.seek(SeekFrom::End(0))?;
                (file, at as u64)
            }
            None => {
                let mut file = File::create(&path)?;
                file.write_all(SPILL_MAGIC)?;
                file.flush()?;
                (file, SPILL_MAGIC.len() as u64)
            }
        };
        Ok((ExemplarSpill { path, out: BufWriter::new(file), end }, replay))
    }

    /// Appends one admission as a checksummed frame and flushes it.
    fn append(&mut self, exemplar: &Exemplar) -> io::Result<()> {
        let payload = encode_exemplar(exemplar);
        write_frame(&mut self.out, &payload)?;
        self.out.flush()?;
        self.end += (payload.len() + 8) as u64;
        Ok(())
    }

    fn path(&self) -> &Path {
        &self.path
    }
}

// --- exemplar wire codec (spill frame payloads) -------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u128(buf: &mut Vec<u8>, v: u128) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encodes one exemplar as a spill frame payload: scalars, then each
/// completion event in order.
fn encode_exemplar(e: &Exemplar) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + e.completions.len() * 27);
    put_u64(&mut buf, e.id);
    put_u128(&mut buf, e.chain.0);
    put_u32(&mut buf, e.series.0 .0);
    put_u16(&mut buf, e.series.1 .0);
    put_u64(&mut buf, e.latency_ns);
    put_u64(&mut buf, e.window_index);
    buf.push(e.verdict.tag());
    put_u32(&mut buf, e.completions.len() as u32);
    for call in &e.completions {
        put_u32(&mut buf, call.func.interface.0);
        put_u16(&mut buf, call.func.method.0);
        put_u64(&mut buf, call.func.object.0);
        buf.push(call_kind_tag(call.kind));
        put_u32(&mut buf, call.depth.min(u32::MAX as usize) as u32);
        put_u64(&mut buf, call.latency_ns);
    }
    buf
}

/// Decodes a spill frame payload; `None` on short, trailing, or
/// out-of-range data (the reader treats that frame as torn).
fn decode_exemplar(payload: &[u8]) -> Option<Exemplar> {
    let mut r = Reader { bytes: payload, at: 0 };
    let id = r.u64()?;
    let chain = Uuid(r.u128()?);
    let series = (InterfaceId(r.u32()?), MethodIndex(r.u16()?));
    let latency_ns = r.u64()?;
    let window_index = r.u64()?;
    let verdict = Verdict::from_tag(r.u8()?)?;
    let n = r.u32()? as usize;
    let mut completions = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let func = FunctionKey {
            interface: InterfaceId(r.u32()?),
            method: MethodIndex(r.u16()?),
            object: ObjectId(r.u64()?),
        };
        let kind = call_kind_from_tag(r.u8()?)?;
        let depth = r.u32()? as usize;
        let latency_ns = r.u64()?;
        completions.push(CompletedCall { func, kind, depth, latency_ns });
    }
    if r.at != payload.len() {
        return None; // trailing bytes: not a frame we wrote
    }
    Some(Exemplar { id, chain, series, latency_ns, window_index, verdict, completions })
}

fn call_kind_tag(kind: CallKind) -> u8 {
    match kind {
        CallKind::Sync => 0,
        CallKind::Oneway => 1,
        CallKind::Collocated => 2,
        CallKind::CustomMarshal => 3,
    }
}

fn call_kind_from_tag(tag: u8) -> Option<CallKind> {
    match tag {
        0 => Some(CallKind::Sync),
        1 => Some(CallKind::Oneway),
        2 => Some(CallKind::Collocated),
        3 => Some(CallKind::CustomMarshal),
        _ => None,
    }
}

/// Bounds-checked little-endian cursor over a frame payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let out = self.bytes.get(self.at..self.at + n)?;
        self.at += n;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes(b.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn u128(&mut self) -> Option<u128> {
        self.take(16).map(|b| u128::from_le_bytes(b.try_into().expect("16 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(latency_ns: u64) -> CompletedCall {
        CompletedCall {
            func: FunctionKey {
                interface: InterfaceId(0),
                method: MethodIndex(0),
                object: ObjectId(1),
            },
            kind: CallKind::Sync,
            depth: 0,
            latency_ns,
        }
    }

    fn series() -> SeriesKey {
        (InterfaceId(0), MethodIndex(0))
    }

    fn cfg(per_series: usize, sample: usize) -> ExemplarConfig {
        ExemplarConfig {
            per_series,
            sample_per_series: sample,
            ..ExemplarConfig::default()
        }
    }

    /// A uuid that the deterministic sampler elects, found by scan so the
    /// test does not bake in the hash constants.
    fn sampled_uuid() -> Uuid {
        (0..10_000u128).map(Uuid).find(|u| sampled(*u)).expect("some uuid samples")
    }

    fn unsampled_uuid(skip: u128) -> Uuid {
        (skip..skip + 10_000)
            .map(Uuid)
            .find(|u| !sampled(*u))
            .expect("some uuid does not sample")
    }

    #[test]
    fn eviction_is_fastest_first_never_fifo() {
        let mut store = ExemplarStore::new(cfg(2, 0));
        store.offer(series(), Uuid(1), 10, 0, false, &[call(10)]);
        store.offer(series(), Uuid(2), 30, 0, false, &[call(30)]);
        // A slower chain displaces the *fastest* retained one, not the
        // oldest: uuid 1 (latency 10) goes, uuid 2 (older than 3) stays.
        store.offer(series(), Uuid(3), 20, 1, false, &[call(20)]);
        assert!(store.get(Uuid(1)).is_none());
        assert!(store.get(Uuid(2)).is_some());
        assert!(store.get(Uuid(3)).is_some());
        // A faster chain is rejected outright.
        assert_eq!(store.offer(series(), Uuid(4), 5, 1, false, &[call(5)]), None);
        assert_eq!(store.rejected(), 1);
        assert_eq!(store.evicted(), 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn pinned_exemplars_survive_eviction_by_slower_traffic() {
        let mut store = ExemplarStore::new(cfg(2, 0));
        store.offer(series(), Uuid(1), 10, 0, false, &[call(10)]);
        store.offer(series(), Uuid(2), 30, 0, false, &[call(30)]);
        // Pin the fastest — the member fastest-first eviction would take.
        store.pin(Uuid(1));
        // Admission must now beat the fastest *unpinned* member (30ns, not
        // the pinned 10ns): 20ns is rejected, 40ns displaces uuid 2.
        assert_eq!(store.offer(series(), Uuid(9), 20, 1, false, &[call(20)]), None);
        store.offer(series(), Uuid(3), 40, 1, false, &[call(40)]);
        assert!(store.get(Uuid(1)).is_some(), "pinned chain survives");
        assert!(store.get(Uuid(2)).is_none(), "unpinned 30ns chain evicted instead");
        assert!(store.get(Uuid(3)).is_some());
        // With every tail member pinned there is no displaceable victim:
        // an even slower chain is rejected rather than breaking a pin.
        store.pin(Uuid(3));
        assert_eq!(store.offer(series(), Uuid(4), 1_000, 1, false, &[call(1_000)]), None);
        assert!(store.get(Uuid(1)).is_some());
        assert!(store.get(Uuid(3)).is_some());
        // Pinning an unretained chain is a no-op, and the pin FIFO is
        // bounded: flooding it (one retained abnormal chain per fresh
        // series) releases the oldest pins, after which slower traffic can
        // displace uuid 1 again.
        store.pin(Uuid(999));
        assert!(store.get(Uuid(999)).is_none());
        for i in 0..PIN_CAPACITY as u32 {
            let chain = Uuid(u128::from(i) + 1000);
            let fresh = (InterfaceId(i + 1), MethodIndex(0));
            store.offer(fresh, chain, 5, 2, true, &[call(5)]);
            store.pin(chain);
            assert!(store.get(chain).is_some(), "retained, so genuinely pinned");
        }
        assert!(
            store.offer(series(), Uuid(5), 2_000, 3, false, &[call(2_000)]).is_some(),
            "oldest pin released once the FIFO wrapped"
        );
        assert!(store.get(Uuid(1)).is_none(), "formerly pinned 10ns chain evicted");
    }

    #[test]
    fn abnormal_chains_always_admit_and_outlive_slow_ones() {
        let mut store = ExemplarStore::new(cfg(2, 0));
        store.offer(series(), Uuid(1), 100, 0, false, &[call(100)]);
        store.offer(series(), Uuid(2), 90, 0, false, &[call(90)]);
        // An abnormal chain admits regardless of latency, evicting the
        // fastest slow chain.
        store.offer(series(), Uuid(3), 1, 0, true, &[call(1)]);
        assert!(store.get(Uuid(2)).is_none());
        assert_eq!(store.get(Uuid(3)).unwrap().verdict, Verdict::Abnormal);
        // A merely-slow chain cannot displace the abnormal one: the victim
        // would be the slow 100ns entry, which it does not beat.
        assert_eq!(store.offer(series(), Uuid(4), 95, 0, false, &[call(95)]), None);
        assert!(store.get(Uuid(3)).is_some());
    }

    #[test]
    fn uniform_sample_admits_fast_chains_deterministically() {
        let mut store = ExemplarStore::new(cfg(1, 1));
        let fast_sampled = sampled_uuid();
        let fast_plain = unsampled_uuid(fast_sampled.0 + 1);
        store.offer(series(), Uuid(u128::MAX), 1_000_000, 0, false, &[call(1_000_000)]);
        // Tail is full and both chains are far too fast for it; only the
        // uuid the sampler elects gets the sample slot.
        assert!(store.offer(series(), fast_sampled, 5, 0, false, &[call(5)]).is_some());
        assert_eq!(store.offer(series(), fast_plain, 5, 0, false, &[call(5)]), None);
        assert_eq!(store.get(fast_sampled).unwrap().verdict, Verdict::Sampled);
    }

    #[test]
    fn global_count_and_byte_caps_evict_lowest_value_first() {
        let mut config = cfg(4, 0);
        config.max_total = 2;
        let mut store = ExemplarStore::new(config);
        let other = (InterfaceId(1), MethodIndex(0));
        store.offer(series(), Uuid(1), 10, 0, false, &[call(10)]);
        store.offer(series(), Uuid(2), 30, 0, false, &[call(30)]);
        store.offer(other, Uuid(3), 20, 0, true, &[call(20)]);
        // Global cap 2: the fastest slow exemplar (uuid 1) is evicted; the
        // abnormal one survives despite being in another series.
        assert_eq!(store.len(), 2);
        assert!(store.get(Uuid(1)).is_none());
        assert!(store.get(Uuid(2)).is_some());
        assert!(store.get(Uuid(3)).is_some());

        let mut tiny = cfg(4, 0);
        tiny.max_bytes = EXEMPLAR_BASE_COST; // no room for any completions
        let mut store = ExemplarStore::new(tiny);
        assert_eq!(store.offer(series(), Uuid(9), 10, 0, false, &[call(10)]), None);
        assert_eq!(store.rejected(), 1);
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn disabled_store_captures_nothing() {
        let config = ExemplarConfig { enabled: false, ..ExemplarConfig::default() };
        let mut store = ExemplarStore::new(config);
        assert_eq!(store.offer(series(), Uuid(1), 10, 0, true, &[call(10)]), None);
        assert!(store.is_empty());
        assert_eq!(store.admitted(), 0);
        assert_eq!(store.rejected(), 0);
    }

    #[test]
    fn breaching_prefers_breach_window_then_latency() {
        let mut store = ExemplarStore::new(cfg(4, 0));
        store.offer(series(), Uuid(1), 500, 3, false, &[call(500)]);
        store.offer(series(), Uuid(2), 100, 7, false, &[call(100)]);
        store.offer(series(), Uuid(3), 200, 7, false, &[call(200)]);
        let picked = store.breaching(Some(series()), 7, 2);
        assert_eq!(picked, vec![Uuid(3), Uuid(2)]);
        // Series filter: a different series yields nothing.
        assert!(store.breaching(Some((InterfaceId(9), MethodIndex(0))), 7, 2).is_empty());
        // No filter: the breach window still leads, then overall latency.
        assert_eq!(store.breaching(None, 7, 3), vec![Uuid(3), Uuid(2), Uuid(1)]);
    }

    #[test]
    fn codec_round_trips_and_rejects_every_strict_prefix() {
        let e = Exemplar {
            id: 42,
            chain: Uuid(0xdead_beef_0000_0001),
            series: (InterfaceId(3), MethodIndex(1)),
            latency_ns: 123_456,
            window_index: 9,
            verdict: Verdict::Abnormal,
            completions: vec![call(123_456), call(7)],
        };
        let payload = encode_exemplar(&e);
        assert_eq!(decode_exemplar(&payload), Some(e));
        for cut in 0..payload.len() {
            assert_eq!(decode_exemplar(&payload[..cut]), None, "prefix of {cut} bytes decoded");
        }
    }

    /// A unique temp path that cleans itself up when the test ends.
    struct TempSpill(PathBuf);

    impl TempSpill {
        fn new(tag: &str) -> TempSpill {
            TempSpill(std::env::temp_dir().join(format!(
                "causeway_exemplar_spill_{tag}_{}.cwexmp",
                std::process::id()
            )))
        }
    }

    impl Drop for TempSpill {
        fn drop(&mut self) {
            std::fs::remove_file(&self.0).ok();
        }
    }

    #[test]
    fn spill_replay_restores_store_with_stable_ids() {
        let tmp = TempSpill::new("replay");
        let mut config = cfg(2, 0);
        config.spill = Some(tmp.0.clone());
        let mut store = ExemplarStore::new(config.clone());
        store.offer(series(), Uuid(1), 10, 0, false, &[call(10)]);
        store.offer(series(), Uuid(2), 30, 0, false, &[call(30)]);
        store.offer(series(), Uuid(3), 20, 1, false, &[call(20)]);
        let before: Vec<(u64, Uuid)> =
            store.series_sorted(series()).iter().map(|e| (e.id, e.chain)).collect();
        drop(store);

        // Restart: the spill replays every admission through the same
        // caps, reproducing the surviving set and its ids.
        let store = ExemplarStore::new(config);
        assert!(store.spill_error().is_none());
        let after: Vec<(u64, Uuid)> =
            store.series_sorted(series()).iter().map(|e| (e.id, e.chain)).collect();
        assert_eq!(before, after);
        assert!(store.get(Uuid(1)).is_none(), "evicted exemplar must not resurrect");
    }

    #[test]
    fn spill_refuses_foreign_files_and_degrades_gracefully() {
        let tmp = TempSpill::new("foreign");
        std::fs::write(&tmp.0, b"definitely not a spill segment").unwrap();
        let config = ExemplarConfig { spill: Some(tmp.0.clone()), ..ExemplarConfig::default() };
        let mut store = ExemplarStore::new(config);
        assert!(store.spill_error().is_some(), "foreign file must be refused");
        // Capture still works memory-only.
        assert!(store.offer(series(), Uuid(1), 10, 0, false, &[call(10)]).is_some());
        // And the foreign file was left untouched.
        assert_eq!(std::fs::read(&tmp.0).unwrap(), b"definitely not a spill segment");
    }

    #[test]
    fn chrome_slices_nest_children_inside_parents() {
        let mut root = call(100);
        root.depth = 0;
        let mut child = call(40);
        child.depth = 1;
        child.func.method = MethodIndex(0);
        let e = Exemplar {
            id: 0,
            chain: Uuid(5),
            series: series(),
            latency_ns: 100,
            window_index: 0,
            verdict: Verdict::Slow,
            // Post-order: child completes before its parent.
            completions: vec![child, root],
        };
        let vocab = VocabSnapshot {
            interfaces: vec![causeway_core::names::InterfaceEntry {
                name: "T::I".to_owned(),
                methods: vec!["m".to_owned()],
            }],
            ..VocabSnapshot::default()
        };
        let json = chrome_slice_json(&e, &vocab);
        let text = json.to_string();
        assert!(text.contains("\"traceEvents\""), "{text}");
        assert!(text.contains("T::I.m"), "{text}");
        // Both slices start at ts 0 (child nested at parent start), parent
        // dur 0.1us * 1000 = 100ns → 0.1µs.
        assert!(text.contains("\"ph\":\"X\""), "{text}");
    }
}
