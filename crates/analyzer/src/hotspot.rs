//! Hotspot and critical-path analysis — the "richer end-to-end system
//! behavior characterization" the paper lists as future work, and the
//! automated version of what its authors did by hand ("by navigating the
//! DSCG … within minutes, developers were able to identify certain code
//! implementation inefficiency").
//!
//! * **Self latency** of an invocation: `L(F)` minus the latency of its
//!   synchronous children — the wall time attributable to the function's
//!   own body (plus runtime transport for remote calls). Summed per
//!   (interface, method), this ranks where end-to-end time is actually
//!   spent.
//! * **Critical path** of a tree: from the root downwards, repeatedly
//!   descend into the synchronous child with the largest latency. The
//!   resulting path is where an optimizer should look first.

use crate::dscg::{CallNode, CallTree, Dscg};
use crate::latency::node_latency;
use causeway_core::event::CallKind;
use causeway_core::ids::{InterfaceId, MethodIndex};
use std::collections::BTreeMap;

/// Aggregated self-latency for one (interface, method).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Hotspot {
    /// Invocations contributing.
    pub count: usize,
    /// Total self latency, ns.
    pub total_self_ns: u64,
    /// Largest single-invocation self latency, ns.
    pub max_self_ns: u64,
}

/// Self latency of one node: `L(F)` minus synchronous children's `L`.
/// One-way children cost the caller only their send window, which the `O_F`
/// compensation already handles, so they are not subtracted.
pub fn self_latency(node: &CallNode) -> Option<u64> {
    let own = node_latency(node)?.latency_ns;
    let children: u64 = node
        .children
        .iter()
        .filter(|c| c.kind != CallKind::Oneway)
        .filter_map(|c| node_latency(c).map(|l| l.latency_ns))
        .sum();
    Some(own.saturating_sub(children))
}

/// Ranks methods by total self latency across the whole DSCG, descending.
pub fn hotspots(dscg: &Dscg) -> Vec<((InterfaceId, MethodIndex), Hotspot)> {
    let mut map: BTreeMap<(InterfaceId, MethodIndex), Hotspot> = BTreeMap::new();
    dscg.walk(&mut |node, _| {
        if let Some(self_ns) = self_latency(node) {
            let entry = map.entry(node.func.method_key()).or_default();
            entry.count += 1;
            entry.total_self_ns += self_ns;
            entry.max_self_ns = entry.max_self_ns.max(self_ns);
        }
    });
    let mut out: Vec<_> = map.into_iter().collect();
    out.sort_by_key(|e| std::cmp::Reverse(e.1.total_self_ns));
    out
}

/// One step of a critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// The invocation at this step.
    pub func: causeway_core::record::FunctionKey,
    /// Its end-to-end latency `L(F)`, ns.
    pub latency_ns: u64,
    /// Its self latency, ns.
    pub self_ns: u64,
}

/// The critical path of one tree (rooted at its first root): descend into
/// the synchronous child with the largest latency until reaching a leaf.
/// Returns an empty path when no latency data exists.
pub fn critical_path(tree: &CallTree) -> Vec<PathStep> {
    let mut path = Vec::new();
    let Some(mut node) = tree.roots.first() else {
        return path;
    };
    while let Some(latency) = node_latency(node) {
        path.push(PathStep {
            func: node.func,
            latency_ns: latency.latency_ns,
            self_ns: self_latency(node).unwrap_or(0),
        });
        let next = node
            .children
            .iter()
            .filter(|c| c.kind != CallKind::Oneway)
            .filter_map(|c| node_latency(c).map(|l| (c, l.latency_ns)))
            .max_by_key(|(_, l)| *l);
        match next {
            Some((child, _)) => node = child,
            None => break,
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use causeway_core::event::TraceEvent;
    use causeway_core::ids::*;
    use causeway_core::record::{CallSite, FunctionKey, ProbeRecord};
    use causeway_core::uuid::Uuid;

    fn stamp(event: TraceEvent, start: u64, end: u64) -> ProbeRecord {
        ProbeRecord {
            uuid: Uuid(1),
            seq: 1,
            event,
            kind: CallKind::Sync,
            site: CallSite {
                node: NodeId(0),
                process: ProcessId(0),
                thread: LogicalThreadId(0),
            },
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(0)),
            wall_start: Some(start),
            wall_end: Some(end),
            cpu_start: None,
            cpu_end: None,
            oneway_child: None,
            oneway_parent: None,
        }
    }

    /// A sync node spanning `[start, end]` on the wall (zero-width probes).
    fn node(object: u64, method: u16, start: u64, end: u64) -> CallNode {
        let func = FunctionKey::new(InterfaceId(0), MethodIndex(method), ObjectId(object));
        let make = |event, t| {
            let mut r = stamp(event, t, t);
            r.func = func;
            r
        };
        CallNode {
            func,
            kind: CallKind::Sync,
            stub_start: Some(make(TraceEvent::StubStart, start)),
            skel_start: Some(make(TraceEvent::SkelStart, start + 1)),
            skel_end: Some(make(TraceEvent::SkelEnd, end - 1)),
            stub_end: Some(make(TraceEvent::StubEnd, end)),
            children: vec![],
            complete: true,
        }
    }

    #[test]
    fn self_latency_subtracts_sync_children() {
        let mut parent = node(1, 0, 0, 1000);
        parent.children.push(node(2, 1, 100, 400)); // L = 300
        parent.children.push(node(3, 2, 500, 900)); // L = 400
        assert_eq!(self_latency(&parent), Some(1000 - 300 - 400));
    }

    #[test]
    fn oneway_children_are_not_subtracted() {
        let mut parent = node(1, 0, 0, 1000);
        let mut oneway = node(2, 1, 100, 400);
        oneway.kind = CallKind::Oneway;
        parent.children.push(oneway);
        assert_eq!(self_latency(&parent), Some(1000));
    }

    #[test]
    fn hotspots_rank_by_total_self_latency() {
        let mut parent = node(1, 0, 0, 1000);
        parent.children.push(node(2, 1, 100, 900)); // hot child: self 800
        let dscg = Dscg::from_trees(vec![CallTree { chain: Uuid(1), roots: vec![parent] }]);
        let ranked = hotspots(&dscg);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].0, (InterfaceId(0), MethodIndex(1)), "child is hottest");
        assert_eq!(ranked[0].1.total_self_ns, 800);
        assert_eq!(ranked[1].1.total_self_ns, 200);
        assert_eq!(ranked[0].1.count, 1);
        assert_eq!(ranked[0].1.max_self_ns, 800);
    }

    #[test]
    fn critical_path_follows_the_slowest_child() {
        let mut root = node(1, 0, 0, 1000);
        let mut slow = node(2, 1, 100, 900); // L = 800
        slow.children.push(node(4, 3, 200, 450)); // L = 250
        let fast = node(3, 2, 910, 950); // L = 40
        root.children.push(fast);
        root.children.push(slow);
        let tree = CallTree { chain: Uuid(1), roots: vec![root] };
        let path = critical_path(&tree);
        let methods: Vec<u16> = path.iter().map(|s| s.func.method.0).collect();
        assert_eq!(methods, vec![0, 1, 3], "root -> slow -> its child");
        assert_eq!(path[0].latency_ns, 1000);
        assert_eq!(path[1].latency_ns, 800);
    }

    #[test]
    fn empty_tree_has_empty_path() {
        let tree = CallTree { chain: Uuid(1), roots: vec![] };
        assert!(critical_path(&tree).is_empty());
        let dscg = Dscg::default();
        assert!(hotspots(&dscg).is_empty());
    }
}
