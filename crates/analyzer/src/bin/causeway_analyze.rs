//! `causeway-analyze` — the stand-alone off-line characterization tool.
//!
//! Reads a run log — the JSONL format produced by
//! `causeway_collector::jsonl::write_run`, or the binary segment format
//! produced by `causeway_collector::segment` — and prints the requested
//! views:
//!
//! ```text
//! causeway_analyze <runlog> [--format=auto|jsonl|bin] [--stats] [--dscg]
//!                           [--latency] [--cpu] [--ccsg] [--dot] [--lossy]
//!                           [--max-nodes N] [--threads N]
//! causeway_analyze trace <runlog> [--lossy] [--threads N]
//! ```
//!
//! With no view flags, `--stats --dscg` is assumed. `--format=auto` (the
//! default) sniffs the segment magic, so `.cwseg` files just work. For a
//! binary segment, `--lossy` runs crash recovery: the longest clean frame
//! prefix is analyzed and the truncation is reported. The `trace`
//! subcommand writes Chrome trace-event JSON to stdout — redirect it to a
//! file and open it in [Perfetto](https://ui.perfetto.dev) or
//! `chrome://tracing`.

use causeway_analyzer::ccsg::Ccsg;
use causeway_analyzer::chrome_trace;
use causeway_analyzer::cpu::CpuAnalysis;
use causeway_analyzer::dscg::Dscg;
use causeway_analyzer::latency::LatencyAnalysis;
use causeway_analyzer::hotspot;
use causeway_analyzer::render::{AsciiOptions, ascii_tree, ccsg_xml, dot, sequence_chart};
use causeway_collector::db::MonitoringDb;
use causeway_collector::jsonl;
use causeway_collector::segment;
use causeway_core::pool;
use causeway_core::runlog::RunLog;
use std::process::ExitCode;

/// The on-disk run-log encoding to expect.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    /// Sniff: segment magic → binary, anything else → JSONL.
    Auto,
    /// Line-oriented JSON (`jsonl::write_run`).
    Jsonl,
    /// Checksummed binary segment (`segment::write_run_log`).
    Bin,
}

struct Options {
    path: String,
    format: Format,
    trace: bool,
    stats: bool,
    dscg: bool,
    latency: bool,
    cpu: bool,
    ccsg: bool,
    dot: bool,
    chart: bool,
    hotspots: bool,
    histogram: bool,
    lossy: bool,
    max_nodes: usize,
    threads: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut first_positional = true;
    let mut options = Options {
        path: String::new(),
        format: Format::Auto,
        trace: false,
        stats: false,
        dscg: false,
        latency: false,
        cpu: false,
        ccsg: false,
        dot: false,
        chart: false,
        hotspots: false,
        histogram: false,
        lossy: false,
        max_nodes: 50,
        threads: pool::configured_threads(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stats" => options.stats = true,
            "--dscg" => options.dscg = true,
            "--latency" => options.latency = true,
            "--cpu" => options.cpu = true,
            "--ccsg" => options.ccsg = true,
            "--dot" => options.dot = true,
            "--chart" => options.chart = true,
            "--hotspots" => options.hotspots = true,
            "--histogram" => options.histogram = true,
            "--lossy" => options.lossy = true,
            "--max-nodes" => {
                options.max_nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--max-nodes needs a number")?;
            }
            "--threads" => {
                options.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--threads needs a positive number")?;
            }
            "--format" => {
                let value = args.next().ok_or("--format needs auto, jsonl, or bin")?;
                options.format = parse_format(&value)?;
            }
            other if other.starts_with("--format=") => {
                options.format = parse_format(&other["--format=".len()..])?;
            }
            "--help" | "-h" => return Err("help".into()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}"));
            }
            "trace" if first_positional => {
                options.trace = true;
                first_positional = false;
            }
            path => {
                first_positional = false;
                if !options.path.is_empty() {
                    return Err("multiple input files given".into());
                }
                options.path = path.to_owned();
            }
        }
    }
    if options.path.is_empty() {
        return Err("no input file given".into());
    }
    if options.trace {
        return Ok(options);
    }
    if !(options.stats || options.dscg || options.latency || options.cpu || options.ccsg
        || options.dot || options.chart || options.hotspots || options.histogram)
    {
        options.stats = true;
        options.dscg = true;
    }
    Ok(options)
}

fn parse_format(value: &str) -> Result<Format, String> {
    match value {
        "auto" => Ok(Format::Auto),
        "jsonl" => Ok(Format::Jsonl),
        "bin" => Ok(Format::Bin),
        other => Err(format!("unknown format {other:?} (want auto, jsonl, or bin)")),
    }
}

/// Loads the run from raw file bytes according to the (possibly sniffed)
/// format, honoring `--lossy` in both encodings.
fn load_run(bytes: Vec<u8>, options: &Options) -> Result<RunLog, String> {
    let format = match options.format {
        Format::Auto => {
            if bytes.starts_with(segment::SEGMENT_MAGIC) {
                Format::Bin
            } else {
                Format::Jsonl
            }
        }
        explicit => explicit,
    };
    match format {
        Format::Bin if options.lossy => {
            let recovery = segment::recover_run_log_with_threads(&bytes, options.threads)
                .map_err(|e| e.to_string())?;
            if !recovery.is_clean() {
                eprintln!(
                    "warning: segment recovered, not read cleanly: {} trailing byte(s) \
                     dropped, sealed={}",
                    recovery.truncated_bytes, recovery.sealed,
                );
            }
            Ok(recovery.run)
        }
        Format::Bin => segment::read_run_log_with_threads(&bytes, options.threads)
            .map_err(|e| format!("{e} (try --lossy to recover a damaged segment)")),
        Format::Jsonl => {
            let text = String::from_utf8(bytes)
                .map_err(|_| "run log is not UTF-8 (binary segment? try --format=bin)")?;
            if options.lossy {
                let (run, skipped) =
                    jsonl::read_run_lossy_with_threads(&text, options.threads)
                        .map_err(|e| e.to_string())?;
                if skipped > 0 {
                    eprintln!("warning: skipped {skipped} corrupt record lines");
                }
                Ok(run)
            } else {
                jsonl::read_run_with_threads(&text, options.threads)
                    .map_err(|e| format!("{e} (try --lossy for damaged logs)"))
            }
        }
        Format::Auto => unreachable!("resolved above"),
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            if message != "help" {
                eprintln!("error: {message}\n");
            }
            eprintln!(
                "usage: causeway_analyze <runlog> [--format=auto|jsonl|bin] [--stats] [--dscg] [--latency] \
                 [--cpu] [--ccsg] [--dot] [--chart] [--hotspots] [--histogram] [--lossy] [--max-nodes N] [--threads N]\n\
                 \x20      causeway_analyze trace <runlog> [--lossy] [--threads N]   Chrome trace JSON on stdout"
            );
            return ExitCode::FAILURE;
        }
    };

    let bytes = match std::fs::read(&options.path) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", options.path);
            return ExitCode::FAILURE;
        }
    };

    let run = match load_run(bytes, &options) {
        Ok(run) => run,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    // Harvest-completeness diagnostic: the header says how many records the
    // stores held when harvested; fewer in the log means the rest were
    // stranded in unsealed per-thread chunks or lost in transit.
    let expected_records = run.expected_records;
    if let Some(missing) = run.missing_records() {
        eprintln!(
            "warning: {missing} record(s) missing — the log holds {} of {} buffered at \
             harvest; quiesce before harvesting so every thread seals its open chunk",
            run.len(),
            expected_records.unwrap_or(0),
        );
    }

    let db = MonitoringDb::from_run_with_threads(run, options.threads);

    if options.trace {
        print!("{}", chrome_trace::export(&db));
        return ExitCode::SUCCESS;
    }

    let dscg = Dscg::build_with_threads(&db, options.threads);

    if options.stats {
        let stats = db.scale_stats();
        println!("== run statistics ==");
        println!("records:            {}", stats.total_records);
        if let Some(expected) = expected_records {
            println!("expected at harvest:{expected:>6}");
        }
        println!("calls:              {}", stats.calls);
        println!("unique methods:     {}", stats.unique_methods);
        println!("unique interfaces:  {}", stats.unique_interfaces);
        println!("unique components:  {}", stats.unique_components);
        println!("unique objects:     {}", stats.unique_objects);
        println!("causal chains:      {}", stats.unique_chains);
        println!("threads:            {}", stats.threads);
        println!("processes:          {}", stats.processes);
        println!("dscg trees:         {}", dscg.trees.len());
        println!("dscg nodes:         {}", dscg.total_nodes());
        println!("abnormalities:      {}", dscg.abnormalities.len());
        println!();
    }

    if options.dscg {
        println!("== dynamic system call graph ==");
        print!(
            "{}",
            ascii_tree(
                &dscg,
                db.vocab(),
                AsciiOptions {
                    show_latency: true,
                    show_site: true,
                    max_nodes_per_tree: options.max_nodes,
                }
            )
        );
        println!();
    }

    if options.latency {
        println!("== per-method latency ==");
        let analysis = LatencyAnalysis::compute_with_threads(&dscg, options.threads);
        for ((iface, method), stats) in &analysis.per_method {
            println!(
                "{}.{}: n={} mean={:.1}µs min={:.1}µs p50={:.1}µs p95={:.1}µs max={:.1}µs",
                db.vocab().interface_name(*iface),
                db.vocab().method_name(*iface, *method),
                stats.count,
                stats.mean_ns / 1e3,
                stats.min_ns as f64 / 1e3,
                stats.p50_ns as f64 / 1e3,
                stats.p95_ns as f64 / 1e3,
                stats.max_ns as f64 / 1e3,
            );
        }
        println!();
    }

    if options.cpu {
        println!("== system-wide CPU by processor type ==");
        let analysis = CpuAnalysis::compute_with_threads(&dscg, db.deployment(), options.threads);
        for (cpu_type, ns) in analysis.system_total.iter() {
            println!(
                "{}: {:.3} ms",
                db.vocab().cpu_type_name(cpu_type),
                ns as f64 / 1e6
            );
        }
        println!();
    }

    if options.ccsg {
        let ccsg = Ccsg::build_with_threads(&dscg, db.deployment(), options.threads);
        print!("{}", ccsg_xml(&ccsg, db.vocab()));
    }

    if options.chart {
        println!("== sequence chart ==");
        print!("{}", sequence_chart(&dscg, db.vocab(), 100));
        println!();
    }

    if options.hotspots {
        println!("== hotspots (self latency) ==");
        for ((iface, method), spot) in hotspot::hotspots(&dscg).into_iter().take(15) {
            println!(
                "{}.{}: total {:.1}µs across {} calls (max {:.1}µs)",
                db.vocab().interface_name(iface),
                db.vocab().method_name(iface, method),
                spot.total_self_ns as f64 / 1e3,
                spot.count,
                spot.max_self_ns as f64 / 1e3,
            );
        }
        println!();
    }

    if options.histogram {
        println!("== latency histograms ==");
        for ((iface, method), hist) in
            causeway_analyzer::latency::histograms_with_threads(&dscg, options.threads)
        {
            println!(
                "{}.{} (n={}):",
                db.vocab().interface_name(iface),
                db.vocab().method_name(iface, method),
                hist.count(),
            );
            print!("{}", hist.render());
            println!();
        }
    }

    if options.dot {
        print!("{}", dot(&dscg, db.vocab()));
    }

    ExitCode::SUCCESS
}
