//! `causeway-analyze` — the stand-alone off-line characterization tool.
//!
//! Reads a run log in the JSONL format produced by
//! `causeway_collector::jsonl::write_run` and prints the requested views:
//!
//! ```text
//! causeway_analyze <runlog.jsonl> [--stats] [--dscg] [--latency] [--cpu]
//!                                 [--ccsg] [--dot] [--lossy] [--max-nodes N]
//!                                 [--threads N]
//! causeway_analyze trace <runlog.jsonl> [--lossy] [--threads N]
//! ```
//!
//! With no view flags, `--stats --dscg` is assumed. The `trace` subcommand
//! writes Chrome trace-event JSON to stdout — redirect it to a file and
//! open it in [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`.

use causeway_analyzer::ccsg::Ccsg;
use causeway_analyzer::chrome_trace;
use causeway_analyzer::cpu::CpuAnalysis;
use causeway_analyzer::dscg::Dscg;
use causeway_analyzer::latency::LatencyAnalysis;
use causeway_analyzer::hotspot;
use causeway_analyzer::render::{AsciiOptions, ascii_tree, ccsg_xml, dot, sequence_chart};
use causeway_collector::db::MonitoringDb;
use causeway_collector::jsonl;
use causeway_core::pool;
use std::process::ExitCode;

struct Options {
    path: String,
    trace: bool,
    stats: bool,
    dscg: bool,
    latency: bool,
    cpu: bool,
    ccsg: bool,
    dot: bool,
    chart: bool,
    hotspots: bool,
    histogram: bool,
    lossy: bool,
    max_nodes: usize,
    threads: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut first_positional = true;
    let mut options = Options {
        path: String::new(),
        trace: false,
        stats: false,
        dscg: false,
        latency: false,
        cpu: false,
        ccsg: false,
        dot: false,
        chart: false,
        hotspots: false,
        histogram: false,
        lossy: false,
        max_nodes: 50,
        threads: pool::configured_threads(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stats" => options.stats = true,
            "--dscg" => options.dscg = true,
            "--latency" => options.latency = true,
            "--cpu" => options.cpu = true,
            "--ccsg" => options.ccsg = true,
            "--dot" => options.dot = true,
            "--chart" => options.chart = true,
            "--hotspots" => options.hotspots = true,
            "--histogram" => options.histogram = true,
            "--lossy" => options.lossy = true,
            "--max-nodes" => {
                options.max_nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--max-nodes needs a number")?;
            }
            "--threads" => {
                options.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--threads needs a positive number")?;
            }
            "--help" | "-h" => return Err("help".into()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}"));
            }
            "trace" if first_positional => {
                options.trace = true;
                first_positional = false;
            }
            path => {
                first_positional = false;
                if !options.path.is_empty() {
                    return Err("multiple input files given".into());
                }
                options.path = path.to_owned();
            }
        }
    }
    if options.path.is_empty() {
        return Err("no input file given".into());
    }
    if options.trace {
        return Ok(options);
    }
    if !(options.stats || options.dscg || options.latency || options.cpu || options.ccsg
        || options.dot || options.chart || options.hotspots || options.histogram)
    {
        options.stats = true;
        options.dscg = true;
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            if message != "help" {
                eprintln!("error: {message}\n");
            }
            eprintln!(
                "usage: causeway_analyze <runlog.jsonl> [--stats] [--dscg] [--latency] \
                 [--cpu] [--ccsg] [--dot] [--chart] [--hotspots] [--histogram] [--lossy] [--max-nodes N] [--threads N]\n\
                 \x20      causeway_analyze trace <runlog.jsonl> [--lossy] [--threads N]   Chrome trace JSON on stdout"
            );
            return ExitCode::FAILURE;
        }
    };

    let text = match std::fs::read_to_string(&options.path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", options.path);
            return ExitCode::FAILURE;
        }
    };

    let run = if options.lossy {
        match jsonl::read_run_lossy_with_threads(&text, options.threads) {
            Ok((run, skipped)) => {
                if skipped > 0 {
                    eprintln!("warning: skipped {skipped} corrupt record lines");
                }
                run
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match jsonl::read_run_with_threads(&text, options.threads) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("error: {e} (try --lossy for damaged logs)");
                return ExitCode::FAILURE;
            }
        }
    };

    // Harvest-completeness diagnostic: the header says how many records the
    // stores held when harvested; fewer in the log means the rest were
    // stranded in unsealed per-thread chunks or lost in transit.
    let expected_records = run.expected_records;
    if let Some(missing) = run.missing_records() {
        eprintln!(
            "warning: {missing} record(s) missing — the log holds {} of {} buffered at \
             harvest; quiesce before harvesting so every thread seals its open chunk",
            run.len(),
            expected_records.unwrap_or(0),
        );
    }

    let db = MonitoringDb::from_run_with_threads(run, options.threads);

    if options.trace {
        print!("{}", chrome_trace::export(&db));
        return ExitCode::SUCCESS;
    }

    let dscg = Dscg::build_with_threads(&db, options.threads);

    if options.stats {
        let stats = db.scale_stats();
        println!("== run statistics ==");
        println!("records:            {}", stats.total_records);
        if let Some(expected) = expected_records {
            println!("expected at harvest:{expected:>6}");
        }
        println!("calls:              {}", stats.calls);
        println!("unique methods:     {}", stats.unique_methods);
        println!("unique interfaces:  {}", stats.unique_interfaces);
        println!("unique components:  {}", stats.unique_components);
        println!("unique objects:     {}", stats.unique_objects);
        println!("causal chains:      {}", stats.unique_chains);
        println!("threads:            {}", stats.threads);
        println!("processes:          {}", stats.processes);
        println!("dscg trees:         {}", dscg.trees.len());
        println!("dscg nodes:         {}", dscg.total_nodes());
        println!("abnormalities:      {}", dscg.abnormalities.len());
        println!();
    }

    if options.dscg {
        println!("== dynamic system call graph ==");
        print!(
            "{}",
            ascii_tree(
                &dscg,
                db.vocab(),
                AsciiOptions {
                    show_latency: true,
                    show_site: true,
                    max_nodes_per_tree: options.max_nodes,
                }
            )
        );
        println!();
    }

    if options.latency {
        println!("== per-method latency ==");
        let analysis = LatencyAnalysis::compute_with_threads(&dscg, options.threads);
        for ((iface, method), stats) in &analysis.per_method {
            println!(
                "{}.{}: n={} mean={:.1}µs min={:.1}µs p50={:.1}µs p95={:.1}µs max={:.1}µs",
                db.vocab().interface_name(*iface),
                db.vocab().method_name(*iface, *method),
                stats.count,
                stats.mean_ns / 1e3,
                stats.min_ns as f64 / 1e3,
                stats.p50_ns as f64 / 1e3,
                stats.p95_ns as f64 / 1e3,
                stats.max_ns as f64 / 1e3,
            );
        }
        println!();
    }

    if options.cpu {
        println!("== system-wide CPU by processor type ==");
        let analysis = CpuAnalysis::compute_with_threads(&dscg, db.deployment(), options.threads);
        for (cpu_type, ns) in analysis.system_total.iter() {
            println!(
                "{}: {:.3} ms",
                db.vocab().cpu_type_name(cpu_type),
                ns as f64 / 1e6
            );
        }
        println!();
    }

    if options.ccsg {
        let ccsg = Ccsg::build_with_threads(&dscg, db.deployment(), options.threads);
        print!("{}", ccsg_xml(&ccsg, db.vocab()));
    }

    if options.chart {
        println!("== sequence chart ==");
        print!("{}", sequence_chart(&dscg, db.vocab(), 100));
        println!();
    }

    if options.hotspots {
        println!("== hotspots (self latency) ==");
        for ((iface, method), spot) in hotspot::hotspots(&dscg).into_iter().take(15) {
            println!(
                "{}.{}: total {:.1}µs across {} calls (max {:.1}µs)",
                db.vocab().interface_name(iface),
                db.vocab().method_name(iface, method),
                spot.total_self_ns as f64 / 1e3,
                spot.count,
                spot.max_self_ns as f64 / 1e3,
            );
        }
        println!();
    }

    if options.histogram {
        println!("== latency histograms ==");
        for ((iface, method), hist) in
            causeway_analyzer::latency::histograms_with_threads(&dscg, options.threads)
        {
            println!(
                "{}.{} (n={}):",
                db.vocab().interface_name(iface),
                db.vocab().method_name(iface, method),
                hist.count(),
            );
            print!("{}", hist.render());
            println!();
        }
    }

    if options.dot {
        print!("{}", dot(&dscg, db.vocab()));
    }

    ExitCode::SUCCESS
}
