//! System-wide CPU consumption (§3.2, second half).
//!
//! Three phases, exactly as the paper structures them:
//!
//! 1. **Self CPU** of each invocation:
//!    `SC_F = (P_{F,3,start} − P_{F,2,end}) − Σ_i (P_{i,4,end} − P_{i,1,start})`
//!    on per-thread CPU stamps — the skeleton window minus each immediate
//!    child's caller-side window (all of which ran on F's thread).
//! 2. **Descendant CPU** propagated along the caller/callee relationship:
//!    `DC_F = Σ_{f ∈ children} (SC_f + DC_f)`, represented as a vector
//!    `<C_1 … C_M>` with one component per processor type.
//! 3. Synthesis with the DSCG into the CCSG (see [`crate::ccsg`]).

use crate::dscg::{CallNode, Dscg, Visit, walk_pre_post};
use causeway_core::deploy::Deployment;
use causeway_core::ids::CpuTypeId;
use causeway_core::pool;
use std::collections::BTreeMap;

/// CPU nanoseconds bucketed by processor type — the paper's `<C1..CM>`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CpuVector {
    buckets: BTreeMap<CpuTypeId, u64>,
}

impl CpuVector {
    /// The empty vector.
    pub fn new() -> CpuVector {
        CpuVector::default()
    }

    /// A vector with a single component.
    pub fn single(cpu_type: CpuTypeId, ns: u64) -> CpuVector {
        let mut v = CpuVector::new();
        v.add(cpu_type, ns);
        v
    }

    /// Adds `ns` to one component.
    pub fn add(&mut self, cpu_type: CpuTypeId, ns: u64) {
        *self.buckets.entry(cpu_type).or_insert(0) += ns;
    }

    /// Component-wise addition.
    pub fn add_vector(&mut self, other: &CpuVector) {
        for (&cpu_type, &ns) in &other.buckets {
            self.add(cpu_type, ns);
        }
    }

    /// One component's value.
    pub fn get(&self, cpu_type: CpuTypeId) -> u64 {
        self.buckets.get(&cpu_type).copied().unwrap_or(0)
    }

    /// Sum across all components.
    pub fn total(&self) -> u64 {
        self.buckets.values().sum()
    }

    /// Iterates (cpu type, ns) in cpu-type order.
    pub fn iter(&self) -> impl Iterator<Item = (CpuTypeId, u64)> + '_ {
        self.buckets.iter().map(|(&k, &v)| (k, v))
    }

    /// `true` when every component is zero or absent.
    pub fn is_zero(&self) -> bool {
        self.total() == 0
    }
}

/// Self and descendant CPU for one invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeCpu {
    /// `SC_F` — the exclusive portion, attributed to the executing node's
    /// CPU type.
    pub self_cpu: CpuVector,
    /// `DC_F` — the inclusive portion contributed by descendants.
    pub descendant_cpu: CpuVector,
}

impl NodeCpu {
    /// `SC_F + DC_F`, the inclusive (total) consumption.
    pub fn inclusive(&self) -> CpuVector {
        let mut v = self.self_cpu.clone();
        v.add_vector(&self.descendant_cpu);
        v
    }
}

/// The CPU characterization of a whole DSCG: a parallel tree of [`NodeCpu`]
/// values, pre-order aligned with [`Dscg::walk`].
#[derive(Debug, Clone, Default)]
pub struct CpuAnalysis {
    /// Pre-order `NodeCpu` per invocation, aligned with `Dscg::walk` order.
    pub per_node: Vec<NodeCpu>,
    /// Grand total self CPU across the system, by processor type.
    pub system_total: CpuVector,
}

impl CpuAnalysis {
    /// Runs phases 1 and 2 over the DSCG on the configured worker pool.
    pub fn compute(dscg: &Dscg, deployment: &Deployment) -> CpuAnalysis {
        Self::compute_with_threads(dscg, deployment, pool::configured_threads())
    }

    /// Runs phases 1 and 2 using up to `threads` worker threads.
    ///
    /// Every tree's `SC`/`DC` roll-up is independent, so trees shard across
    /// the pool; per-tree pre-order slices concatenate in tree order, which
    /// is exactly the serial `Dscg::walk` alignment.
    pub fn compute_with_threads(dscg: &Dscg, deployment: &Deployment, threads: usize) -> CpuAnalysis {
        let shards = pool::par_map(&dscg.trees, threads, |tree| {
            let mut slice = Vec::new();
            let mut tree_total = CpuVector::new();
            compute_tree(&tree.roots, deployment, &mut slice, &mut tree_total);
            (slice, tree_total)
        });
        let mut per_node = Vec::new();
        let mut system_total = CpuVector::new();
        for (slice, tree_total) in shards {
            per_node.extend(slice);
            system_total.add_vector(&tree_total);
        }
        CpuAnalysis { per_node, system_total }
    }
}

/// Computes `SC` and `DC` for every node under `roots`, appending pre-order.
///
/// One iterative pre/post pass: Enter reserves the node's pre-order slot and
/// opens an inclusive-sum frame; Exit fills the slot and folds the node's
/// inclusive vector into its parent's frame — no recursion, so paper-scale
/// chain depths cost heap instead of call stack.
fn compute_tree(
    roots: &[CallNode],
    deployment: &Deployment,
    out: &mut Vec<NodeCpu>,
    system_total: &mut CpuVector,
) {
    // Frame per open node: (pre-order slot, Σ children's inclusive vectors).
    let mut frames: Vec<(usize, CpuVector)> = Vec::new();
    walk_pre_post(roots, &mut |node, _, visit| match visit {
        Visit::Enter => {
            frames.push((out.len(), CpuVector::new()));
            out.push(NodeCpu::default());
        }
        Visit::Exit => {
            let (my_index, descendant) = frames.pop().expect("Enter pushed a frame");
            let self_cpu = self_cpu_of(node, deployment);
            system_total.add_vector(&self_cpu);
            let entry = NodeCpu { self_cpu, descendant_cpu: descendant };
            let inclusive = entry.inclusive();
            out[my_index] = entry;
            if let Some((_, parent_sum)) = frames.last_mut() {
                parent_sum.add_vector(&inclusive);
            }
        }
    });
}

/// Phase 1: `SC_F` on per-thread CPU stamps, attributed to the CPU type of
/// the node where the skeleton ran. Returns the zero vector when CPU stamps
/// are absent (CPU probing was off or the invocation is incomplete).
pub fn self_cpu_of(node: &CallNode, deployment: &Deployment) -> CpuVector {
    let (Some(skel_start), Some(skel_end)) = (&node.skel_start, &node.skel_end) else {
        return CpuVector::new();
    };
    let (Some(window_start), Some(window_end)) = (skel_start.cpu_end, skel_end.cpu_start) else {
        return CpuVector::new();
    };
    let mut window = window_end.saturating_sub(window_start);

    for child in &node.children {
        // The child's caller-side bracket ran on F's thread: probes 1 and 4
        // exist for every child kind, and for collocated children the whole
        // execution sits inside the bracket (it is re-added via DC).
        // For a grafted one-way child the bracket is its stub side.
        let start = child.stub_start.as_ref().and_then(|r| r.cpu_start);
        let end = child.stub_end.as_ref().and_then(|r| r.cpu_end);
        if let (Some(start), Some(end)) = (start, end) {
            window = window.saturating_sub(end.saturating_sub(start));
        }
    }

    let cpu_type = deployment
        .cpu_type_of_node(skel_start.site.node)
        .unwrap_or(CpuTypeId(u16::MAX));
    CpuVector::single(cpu_type, window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dscg::CallTree;
    use causeway_core::event::{CallKind, TraceEvent};
    use causeway_core::ids::*;
    use causeway_core::record::{CallSite, FunctionKey, ProbeRecord};
    use causeway_core::uuid::Uuid;

    fn cpu_stamp(event: TraceEvent, node_id: u16, start: u64, end: u64) -> ProbeRecord {
        ProbeRecord {
            uuid: Uuid(1),
            seq: 0,
            event,
            kind: CallKind::Sync,
            site: CallSite {
                node: NodeId(node_id),
                process: ProcessId(node_id),
                thread: LogicalThreadId(0),
            },
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(0)),
            wall_start: None,
            wall_end: None,
            cpu_start: Some(start),
            cpu_end: Some(end),
            oneway_child: None,
            oneway_parent: None,
        }
    }

    /// A sync node whose skeleton ran on `node_id`, with the given cpu
    /// stamps for probes (1, 2, 3, 4): each pair (start, end).
    fn node_on(
        node_id: u16,
        p1: (u64, u64),
        p2: (u64, u64),
        p3: (u64, u64),
        p4: (u64, u64),
    ) -> CallNode {
        CallNode {
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(node_id as u64)),
            kind: CallKind::Sync,
            stub_start: Some(cpu_stamp(TraceEvent::StubStart, 0, p1.0, p1.1)),
            skel_start: Some(cpu_stamp(TraceEvent::SkelStart, node_id, p2.0, p2.1)),
            skel_end: Some(cpu_stamp(TraceEvent::SkelEnd, node_id, p3.0, p3.1)),
            stub_end: Some(cpu_stamp(TraceEvent::StubEnd, 0, p4.0, p4.1)),
            children: Vec::new(),
            complete: true,
        }
    }

    fn two_type_deployment() -> Deployment {
        let mut d = Deployment::new();
        let a = d.add_node("hpux-box", CpuTypeId(0));
        let b = d.add_node("nt-box", CpuTypeId(1));
        d.add_process("p0", a);
        d.add_process("p1", b);
        d
    }

    #[test]
    fn leaf_self_cpu_is_the_skeleton_window() {
        let d = two_type_deployment();
        // Skeleton window on the server thread: 100 (P2 end) .. 400 (P3 start).
        let node = node_on(0, (0, 5), (95, 100), (400, 405), (410, 415));
        let sc = self_cpu_of(&node, &d);
        assert_eq!(sc.get(CpuTypeId(0)), 300);
        assert_eq!(sc.total(), 300);
    }

    #[test]
    fn child_windows_are_excluded_from_self_cpu() {
        let d = two_type_deployment();
        let mut parent = node_on(0, (0, 5), (95, 100), (400, 405), (410, 415));
        // Child bracket on the parent's thread: cpu 150..250 (100 ns).
        let child = node_on(1, (150, 160), (0, 10), (80, 90), (240, 250));
        parent.children.push(child);
        let sc = self_cpu_of(&parent, &d);
        assert_eq!(sc.get(CpuTypeId(0)), 300 - 100);
    }

    #[test]
    fn descendant_cpu_propagates_as_a_vector_per_cpu_type() {
        let d = two_type_deployment();
        // Parent skeleton on node 0 (HPUX); child skeleton on node 1 (NT).
        let mut parent = node_on(0, (0, 5), (95, 100), (400, 405), (410, 415));
        let child = node_on(1, (150, 160), (1000, 1010), (1090, 1100), (240, 250));
        parent.children.push(child);
        let dscg = Dscg::from_trees(vec![CallTree { chain: Uuid(1), roots: vec![parent] }]);
        let analysis = CpuAnalysis::compute(&dscg, &d);
        assert_eq!(analysis.per_node.len(), 2);
        let parent_cpu = &analysis.per_node[0];
        let child_cpu = &analysis.per_node[1];
        // Child self: 1010..1090 = 80 on NT.
        assert_eq!(child_cpu.self_cpu.get(CpuTypeId(1)), 80);
        assert!(child_cpu.descendant_cpu.is_zero());
        // Parent self: 300 − child bracket 100 = 200 on HPUX.
        assert_eq!(parent_cpu.self_cpu.get(CpuTypeId(0)), 200);
        // Parent descendant: the child's inclusive 80 on NT.
        assert_eq!(parent_cpu.descendant_cpu.get(CpuTypeId(1)), 80);
        assert_eq!(parent_cpu.descendant_cpu.get(CpuTypeId(0)), 0);
        // Inclusive = <200 HPUX, 80 NT>.
        let inc = parent_cpu.inclusive();
        assert_eq!(inc.get(CpuTypeId(0)), 200);
        assert_eq!(inc.get(CpuTypeId(1)), 80);
        // System total = sum of self CPUs.
        assert_eq!(analysis.system_total.get(CpuTypeId(0)), 200);
        assert_eq!(analysis.system_total.get(CpuTypeId(1)), 80);
        assert_eq!(analysis.system_total.total(), 280);
    }

    #[test]
    fn three_level_propagation_sums_transitively() {
        let d = two_type_deployment();
        let mut top = node_on(0, (0, 0), (0, 1000), (2000, 2000), (0, 0));
        let mut mid = node_on(1, (1100, 1100), (0, 100), (700, 700), (1200, 1200));
        let leaf = node_on(0, (200, 200), (5000, 5000), (5400, 5400), (300, 300));
        mid.children.push(leaf);
        top.children.push(mid);
        let dscg = Dscg::from_trees(vec![CallTree { chain: Uuid(1), roots: vec![top] }]);
        let analysis = CpuAnalysis::compute(&dscg, &d);
        // leaf self = 400 (HPUX); mid self = 600−100 = 500 (NT);
        // top self = 1000−100 = 900 (HPUX).
        assert_eq!(analysis.per_node[2].self_cpu.get(CpuTypeId(0)), 400);
        assert_eq!(analysis.per_node[1].self_cpu.get(CpuTypeId(1)), 500);
        assert_eq!(analysis.per_node[0].self_cpu.get(CpuTypeId(0)), 900);
        // top descendant = mid inclusive = <400 HPUX, 500 NT>.
        let dc = &analysis.per_node[0].descendant_cpu;
        assert_eq!(dc.get(CpuTypeId(0)), 400);
        assert_eq!(dc.get(CpuTypeId(1)), 500);
    }

    #[test]
    fn missing_cpu_stamps_yield_zero_vector() {
        let d = two_type_deployment();
        let mut node = node_on(0, (0, 0), (0, 0), (0, 0), (0, 0));
        node.skel_start.as_mut().unwrap().cpu_end = None;
        assert!(self_cpu_of(&node, &d).is_zero());
        node.skel_start = None;
        assert!(self_cpu_of(&node, &d).is_zero());
    }

    #[test]
    fn cpu_vector_arithmetic() {
        let mut a = CpuVector::single(CpuTypeId(0), 10);
        a.add(CpuTypeId(1), 5);
        let b = CpuVector::single(CpuTypeId(1), 7);
        a.add_vector(&b);
        assert_eq!(a.get(CpuTypeId(0)), 10);
        assert_eq!(a.get(CpuTypeId(1)), 12);
        assert_eq!(a.total(), 22);
        assert_eq!(a.iter().count(), 2);
        assert!(!a.is_zero());
        assert!(CpuVector::new().is_zero());
    }
}
