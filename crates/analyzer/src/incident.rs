//! Incident forensics: an add-only causal hypothesis graph over retained
//! evidence.
//!
//! The monitoring stack up to here stops at *detection*: burn-rate and
//! threshold alerts fire, flamegraph diffs and spilled history exist, but
//! nothing connects "the alert fired" to "here is the surviving causal
//! explanation". This module organizes the already-retained evidence into a
//! queryable diagnosis workflow:
//!
//! * An [`Incident`] is registered when an alert transitions to firing
//!   (see `LiveMonitor::finalize_window`). It is auto-populated with
//!   [`Hypothesis`] entries drawn from evidence the monitor already holds:
//!   the top `/flamegraph/diff` regressions between the breach window and a
//!   pre-breach baseline window (resolved through the history ring *and*
//!   its spill segment), recently abnormal chains with their DSCG renders,
//!   and the hottest folded-stack paths of the breach window.
//! * The graph is **add-only**: hypotheses are never removed or mutated.
//!   Analysis passes (and operators, over `POST /incidents/eliminate`)
//!   eliminate a hypothesis by recording a [`Tombstone`] carrying full
//!   provenance — the pass name, its evidence, and a wall-clock stamp.
//! * The **surviving-cause set is computed at query time** from
//!   `hypotheses − tombstoned`, so concurrent analysis passes and manual
//!   eliminations compose without coordination: adds and tombstones
//!   commute, exactly like a two-set (add/remove with provenance) CRDT.
//!   Tombstones are deduplicated per `(hypothesis, pass)` pair, which makes
//!   re-running a pass idempotent and bounds the graph.
//!
//! The [`IncidentStore`] retains a bounded ring of incidents and exports
//! `causeway_incident_*` metrics: opened/resolved counters and live /
//! eliminated hypothesis gauges.

use causeway_collector::json::Json;
use causeway_core::metrics::{Counter, Gauge, MetricsRegistry};
use std::collections::VecDeque;

/// Milliseconds since the Unix epoch — the wall-clock stamp carried by
/// alert events, hypotheses and tombstones. Monitors keep their own
/// monotonic `now_ns` for window arithmetic; forensics timelines need real
/// time an operator can correlate with external logs.
pub fn wall_clock_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Pass name recorded by the baseline-presence elimination pass
/// ("regression also present in baseline").
pub const PASS_BASELINE: &str = "baseline-presence";
/// Pass name recorded by the stack-share-floor elimination pass.
pub const PASS_STACK_FLOOR: &str = "stack-floor";
/// Pass name recorded by the abnormal-chain re-check elimination pass.
pub const PASS_CHAIN_RECHECK: &str = "chain-recheck";
/// Pass name recorded for operator tombstones via `POST
/// /incidents/eliminate`.
pub const PASS_OPERATOR: &str = "operator";

/// Longest accepted pass name on an operator tombstone.
pub const MAX_PASS_LEN: usize = 64;
/// Longest accepted free-text evidence/reason on an operator tombstone.
pub const MAX_EVIDENCE_LEN: usize = 1024;

/// Where a hypothesis came from — which retained evidence nominated it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HypothesisKind {
    /// A folded-stack path whose self time grew between the baseline and
    /// breach windows (a `/flamegraph/diff` top regression).
    FlamegraphRegression,
    /// A chain that tripped the Figure-4 reconstruction near the breach.
    AbnormalChain,
    /// One of the hottest folded-stack paths of the breach window.
    HotStack,
}

impl HypothesisKind {
    /// The stable JSON identifier for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            HypothesisKind::FlamegraphRegression => "flamegraph-regression",
            HypothesisKind::AbnormalChain => "abnormal-chain",
            HypothesisKind::HotStack => "hot-stack",
        }
    }
}

/// One node of the causal hypothesis graph: a candidate explanation for
/// the incident, tied to the evidence that nominated it. Never mutated or
/// removed once added.
#[derive(Debug, Clone, PartialEq)]
pub struct Hypothesis {
    /// Incident-scoped id (dense, starting at 0) — the handle eliminations
    /// reference.
    pub id: u64,
    /// Which evidence source nominated this hypothesis.
    pub kind: HypothesisKind,
    /// What is suspected: a folded stack path or a chain UUID.
    pub subject: String,
    /// Human-readable evidence (delta vs baseline, abnormality message and
    /// DSCG render, self-time share, …).
    pub detail: String,
    /// Evidence magnitude in nanoseconds (diff delta or self time) — the
    /// ranking key; 0 for abnormal chains.
    pub weight_ns: u64,
    /// Tumbling window ordinal at which the hypothesis was added.
    pub added_window: u64,
    /// Wall-clock stamp (epoch millis) of the addition.
    pub added_at_ms: u64,
}

/// An incident-scoped elimination with provenance. Tombstones are add-only
/// too: the graph records *who ruled a hypothesis out, on what grounds,
/// and when* — it never forgets that the hypothesis existed.
#[derive(Debug, Clone, PartialEq)]
pub struct Tombstone {
    /// The eliminated hypothesis's id.
    pub hypothesis: u64,
    /// The analysis pass (or `operator`) that ruled it out.
    pub pass: String,
    /// Why: the evidence the pass saw.
    pub evidence: String,
    /// Wall-clock stamp (epoch millis) of the elimination.
    pub at_ms: u64,
}

/// One narrated step of an incident's lifecycle, for the `/incidents?id=`
/// timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Wall-clock stamp (epoch millis).
    pub at_ms: u64,
    /// Tumbling window ordinal at which the step happened.
    pub window: u64,
    /// What happened.
    pub what: String,
}

/// One registered incident: the alert that opened it, its evidence windows,
/// and the add-only hypothesis graph with its tombstones.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Store-wide incident number (dense, starting at 1).
    pub id: u64,
    /// The alert rule whose firing opened this incident.
    pub alert: String,
    /// Wall-clock stamp (epoch millis) at open.
    pub opened_at_ms: u64,
    /// The tumbling window whose close fired the alert.
    pub breach_window: u64,
    /// The pre-breach comparison window, when one was still retained
    /// (ring or spill); `None` when the breach happened too early or the
    /// baseline already aged out of both tiers.
    pub baseline_window: Option<u64>,
    /// Wall-clock stamp of the alert resolving, once it has.
    pub resolved_at_ms: Option<u64>,
    /// The window whose close resolved the alert, once it has.
    pub resolved_window: Option<u64>,
    hypotheses: Vec<Hypothesis>,
    tombstones: Vec<Tombstone>,
    timeline: Vec<TimelineEvent>,
}

impl Incident {
    fn new(id: u64, alert: &str, breach_window: u64, baseline_window: Option<u64>, at_ms: u64) -> Incident {
        let baseline_note = match baseline_window {
            Some(b) => format!("baseline window {b}"),
            None => "no retained baseline window".to_owned(),
        };
        Incident {
            id,
            alert: alert.to_owned(),
            opened_at_ms: at_ms,
            breach_window,
            baseline_window,
            resolved_at_ms: None,
            resolved_window: None,
            hypotheses: Vec::new(),
            tombstones: Vec::new(),
            timeline: vec![TimelineEvent {
                at_ms,
                window: breach_window,
                what: format!("opened: alert {alert:?} fired at window {breach_window} ({baseline_note})"),
            }],
        }
    }

    /// `true` until the opening alert resolves.
    pub fn is_open(&self) -> bool {
        self.resolved_at_ms.is_none()
    }

    /// The full hypothesis graph, in addition order (add-only: eliminated
    /// hypotheses stay here forever).
    pub fn hypotheses(&self) -> &[Hypothesis] {
        &self.hypotheses
    }

    /// Every elimination recorded so far, in addition order.
    pub fn tombstones(&self) -> &[Tombstone] {
        &self.tombstones
    }

    /// The narrated lifecycle, oldest first.
    pub fn timeline(&self) -> &[TimelineEvent] {
        &self.timeline
    }

    /// Appends a timeline note.
    pub fn note(&mut self, window: u64, what: impl Into<String>, at_ms: u64) {
        self.timeline.push(TimelineEvent { at_ms, window, what: what.into() });
    }

    /// Adds a hypothesis to the graph and returns its incident-scoped id.
    pub fn add_hypothesis(
        &mut self,
        kind: HypothesisKind,
        subject: impl Into<String>,
        detail: impl Into<String>,
        weight_ns: u64,
        added_window: u64,
        at_ms: u64,
    ) -> u64 {
        let id = self.hypotheses.len() as u64;
        self.hypotheses.push(Hypothesis {
            id,
            kind,
            subject: subject.into(),
            detail: detail.into(),
            weight_ns,
            added_window,
            added_at_ms: at_ms,
        });
        id
    }

    /// Records an elimination tombstone for `hypothesis`. Idempotent per
    /// `(hypothesis, pass)` pair — re-running a pass (or re-POSTing an
    /// operator elimination) adds nothing, which keeps concurrent passes
    /// race-free and the graph bounded. Returns `true` when the hypothesis
    /// was live until now (this tombstone newly eliminated it).
    ///
    /// # Errors
    ///
    /// Rejects unknown hypothesis ids — a tombstone must reference a node
    /// that exists in the add-only graph.
    pub fn tombstone(
        &mut self,
        hypothesis: u64,
        pass: &str,
        evidence: &str,
        at_ms: u64,
    ) -> Result<bool, String> {
        if hypothesis >= self.hypotheses.len() as u64 {
            return Err(format!(
                "incident {} has no hypothesis {hypothesis} (graph holds {})",
                self.id,
                self.hypotheses.len()
            ));
        }
        if self.tombstones.iter().any(|t| t.hypothesis == hypothesis && t.pass == pass) {
            return Ok(false); // already recorded by this pass: idempotent
        }
        let newly = !self.is_eliminated(hypothesis);
        self.tombstones.push(Tombstone {
            hypothesis,
            pass: truncated(pass, MAX_PASS_LEN),
            evidence: truncated(evidence, MAX_EVIDENCE_LEN),
            at_ms,
        });
        self.timeline.push(TimelineEvent {
            at_ms,
            window: self.breach_window,
            what: format!("pass {pass:?} eliminated hypothesis {hypothesis}"),
        });
        Ok(newly)
    }

    /// `true` when at least one tombstone references `hypothesis`.
    pub fn is_eliminated(&self, hypothesis: u64) -> bool {
        self.tombstones.iter().any(|t| t.hypothesis == hypothesis)
    }

    /// The surviving-cause set, computed at query time: every hypothesis
    /// with no tombstone, heaviest evidence first.
    pub fn surviving(&self) -> Vec<&Hypothesis> {
        let mut live: Vec<&Hypothesis> =
            self.hypotheses.iter().filter(|h| !self.is_eliminated(h.id)).collect();
        live.sort_by(|a, b| b.weight_ns.cmp(&a.weight_ns).then_with(|| a.id.cmp(&b.id)));
        live
    }

    /// Marks the incident resolved (the opening alert resolved).
    pub fn resolve(&mut self, window: u64, at_ms: u64) {
        if self.resolved_at_ms.is_some() {
            return;
        }
        self.resolved_at_ms = Some(at_ms);
        self.resolved_window = Some(window);
        self.timeline.push(TimelineEvent {
            at_ms,
            window,
            what: format!("resolved: alert {:?} calmed at window {window}", self.alert),
        });
    }

    /// One `/incidents` index line: identity plus live/eliminated tallies.
    pub fn summary_json(&self) -> Json {
        let surviving = self.surviving().len();
        Json::obj([
            ("id", Json::Num(self.id as f64)),
            ("alert", Json::Str(self.alert.clone())),
            ("state", Json::Str(if self.is_open() { "open" } else { "resolved" }.to_owned())),
            ("opened_at_ms", Json::Num(self.opened_at_ms as f64)),
            ("breach_window", Json::Num(self.breach_window as f64)),
            (
                "baseline_window",
                self.baseline_window.map_or(Json::Null, |b| Json::Num(b as f64)),
            ),
            ("hypotheses", Json::Num(self.hypotheses.len() as f64)),
            ("surviving", Json::Num(surviving as f64)),
            (
                "eliminated",
                Json::Num((self.hypotheses.len() - surviving) as f64),
            ),
        ])
    }

    /// The full `/incidents?id=` body: timeline, the add-only hypothesis
    /// graph (each node flagged `eliminated` but never dropped), every
    /// tombstone with provenance, and the surviving-cause id set computed
    /// at render time.
    pub fn detail_json(&self) -> Json {
        let hypotheses = self
            .hypotheses
            .iter()
            .map(|h| {
                Json::obj([
                    ("id", Json::Num(h.id as f64)),
                    ("kind", Json::Str(h.kind.as_str().to_owned())),
                    ("subject", Json::Str(h.subject.clone())),
                    ("detail", Json::Str(h.detail.clone())),
                    ("weight_ns", Json::Num(h.weight_ns as f64)),
                    ("added_window", Json::Num(h.added_window as f64)),
                    ("added_at_ms", Json::Num(h.added_at_ms as f64)),
                    ("eliminated", Json::Bool(self.is_eliminated(h.id))),
                ])
            })
            .collect();
        let tombstones = self
            .tombstones
            .iter()
            .map(|t| {
                Json::obj([
                    ("hypothesis", Json::Num(t.hypothesis as f64)),
                    ("pass", Json::Str(t.pass.clone())),
                    ("evidence", Json::Str(t.evidence.clone())),
                    ("at_ms", Json::Num(t.at_ms as f64)),
                ])
            })
            .collect();
        let timeline = self
            .timeline
            .iter()
            .map(|e| {
                Json::obj([
                    ("at_ms", Json::Num(e.at_ms as f64)),
                    ("window", Json::Num(e.window as f64)),
                    ("event", Json::Str(e.what.clone())),
                ])
            })
            .collect();
        let surviving = self.surviving().iter().map(|h| Json::Num(h.id as f64)).collect();
        Json::obj([
            ("id", Json::Num(self.id as f64)),
            ("alert", Json::Str(self.alert.clone())),
            ("state", Json::Str(if self.is_open() { "open" } else { "resolved" }.to_owned())),
            ("opened_at_ms", Json::Num(self.opened_at_ms as f64)),
            ("breach_window", Json::Num(self.breach_window as f64)),
            (
                "baseline_window",
                self.baseline_window.map_or(Json::Null, |b| Json::Num(b as f64)),
            ),
            (
                "resolved_at_ms",
                self.resolved_at_ms.map_or(Json::Null, |t| Json::Num(t as f64)),
            ),
            (
                "resolved_window",
                self.resolved_window.map_or(Json::Null, |w| Json::Num(w as f64)),
            ),
            ("timeline", Json::Arr(timeline)),
            ("hypotheses", Json::Arr(hypotheses)),
            ("tombstones", Json::Arr(tombstones)),
            ("surviving", Json::Arr(surviving)),
        ])
    }
}

/// Truncates free-form operator text at a byte budget (on a char
/// boundary), marking the cut.
fn truncated(text: &str, max: usize) -> String {
    if text.len() <= max {
        return text.to_owned();
    }
    let mut cut = max.saturating_sub(1);
    while cut > 0 && !text.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}…", &text[..cut])
}

/// Why an elimination request could not be applied (mapped to HTTP status
/// codes by the `/incidents/eliminate` handler).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EliminateError {
    /// No retained incident with that id.
    UnknownIncident(u64),
    /// The incident exists but the hypothesis id does not.
    UnknownHypothesis(String),
}

impl std::fmt::Display for EliminateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EliminateError::UnknownIncident(id) => {
                write!(f, "incident {id} is not retained")
            }
            EliminateError::UnknownHypothesis(detail) => f.write_str(detail),
        }
    }
}

/// A bounded ring of registered incidents, oldest first, with the
/// `causeway_incident_*` metric exports.
#[derive(Debug)]
pub struct IncidentStore {
    incidents: VecDeque<Incident>,
    next_id: u64,
    capacity: usize,
    open_gauge: Gauge,
    live_gauge: Gauge,
    eliminated_gauge: Gauge,
    opened_total: Counter,
    resolved_total: Counter,
    tombstones_total: Counter,
}

impl IncidentStore {
    /// Creates an empty store retaining at most `capacity` incidents. A
    /// capacity of 0 retains nothing: every open is immediately evicted
    /// (callers must treat a vanished just-opened incident as a skip, not
    /// a bug — see `causeway_incident_dropped_total`).
    pub fn new(capacity: usize) -> IncidentStore {
        let registry = MetricsRegistry::global();
        IncidentStore {
            incidents: VecDeque::new(),
            next_id: 1,
            capacity,
            open_gauge: registry.gauge(
                "causeway_incident_open",
                "Registered incidents whose opening alert is still firing.",
            ),
            live_gauge: registry.gauge(
                "causeway_incident_hypotheses_live",
                "Surviving (un-tombstoned) hypotheses across retained incidents.",
            ),
            eliminated_gauge: registry.gauge(
                "causeway_incident_hypotheses_eliminated",
                "Tombstoned hypotheses across retained incidents.",
            ),
            opened_total: registry.counter(
                "causeway_incident_opened_total",
                "Incidents registered by alert firings.",
            ),
            resolved_total: registry.counter(
                "causeway_incident_resolved_total",
                "Incidents whose opening alert resolved.",
            ),
            tombstones_total: registry.counter(
                "causeway_incident_tombstones_total",
                "Hypothesis eliminations recorded (all passes and operators).",
            ),
        }
    }

    /// Registers a new incident and returns its id. The oldest incident is
    /// evicted once the ring exceeds its capacity.
    pub fn open(
        &mut self,
        alert: &str,
        breach_window: u64,
        baseline_window: Option<u64>,
        at_ms: u64,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.incidents.push_back(Incident::new(id, alert, breach_window, baseline_window, at_ms));
        while self.incidents.len() > self.capacity {
            self.incidents.pop_front();
        }
        self.opened_total.inc();
        self.refresh_gauges();
        id
    }

    /// The retained incident with store id `id`.
    pub fn get(&self, id: u64) -> Option<&Incident> {
        self.incidents.iter().find(|i| i.id == id)
    }

    /// Mutable access to the retained incident with store id `id`.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut Incident> {
        self.incidents.iter_mut().find(|i| i.id == id)
    }

    /// Retained incidents, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Incident> {
        self.incidents.iter()
    }

    /// Retained incident count.
    pub fn len(&self) -> usize {
        self.incidents.len()
    }

    /// `true` when no incident has been registered (or all aged out).
    pub fn is_empty(&self) -> bool {
        self.incidents.is_empty()
    }

    /// Resolves every open incident opened by `alert`; returns how many
    /// resolved.
    pub fn resolve_for_alert(&mut self, alert: &str, window: u64, at_ms: u64) -> usize {
        let mut resolved = 0;
        for incident in self.incidents.iter_mut() {
            if incident.is_open() && incident.alert == alert {
                incident.resolve(window, at_ms);
                resolved += 1;
            }
        }
        self.resolved_total.add(resolved as u64);
        self.refresh_gauges();
        resolved
    }

    /// Records a tombstone on `(incident, hypothesis)` with provenance and
    /// returns the incident's surviving-cause count afterwards.
    ///
    /// # Errors
    ///
    /// [`EliminateError::UnknownIncident`] / `UnknownHypothesis` when the
    /// target does not exist (never retroactively created — the graph is
    /// add-only on both node sets).
    pub fn eliminate(
        &mut self,
        incident: u64,
        hypothesis: u64,
        pass: &str,
        evidence: &str,
    ) -> Result<usize, EliminateError> {
        let at_ms = wall_clock_ms();
        let entry = self
            .get_mut(incident)
            .ok_or(EliminateError::UnknownIncident(incident))?;
        let newly = entry
            .tombstone(hypothesis, pass, evidence, at_ms)
            .map_err(EliminateError::UnknownHypothesis)?;
        let surviving = entry.surviving().len();
        if newly {
            self.tombstones_total.inc();
        }
        self.refresh_gauges();
        Ok(surviving)
    }

    /// Recomputes the live/eliminated/open gauges from the retained ring.
    /// Mutating entries via [`IncidentStore::get_mut`] directly should be
    /// followed by a call to this.
    pub fn refresh_gauges(&self) {
        let mut open = 0i64;
        let mut live = 0i64;
        let mut eliminated = 0i64;
        for incident in &self.incidents {
            if incident.is_open() {
                open += 1;
            }
            let surviving = incident.surviving().len() as i64;
            live += surviving;
            eliminated += incident.hypotheses().len() as i64 - surviving;
        }
        self.open_gauge.set(open);
        self.live_gauge.set(live);
        self.eliminated_gauge.set(eliminated);
    }

    /// The `/incidents` index body, oldest first.
    pub fn index_json(&self) -> Json {
        Json::obj([(
            "incidents",
            Json::Arr(self.incidents.iter().map(Incident::summary_json).collect()),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_incident() -> (IncidentStore, u64) {
        let mut store = IncidentStore::new(8);
        let id = store.open("p95>1ms", 10, Some(6), 1_000);
        let incident = store.get_mut(id).unwrap();
        incident.add_hypothesis(
            HypothesisKind::FlamegraphRegression,
            "A.run;B.go",
            "self-time +5000000ns vs baseline window 6",
            5_000_000,
            10,
            1_000,
        );
        incident.add_hypothesis(
            HypothesisKind::HotStack,
            "A.run",
            "15000ns self time",
            15_000,
            10,
            1_000,
        );
        incident.add_hypothesis(
            HypothesisKind::AbnormalChain,
            "00000000-0000-0000-0000-00000000002a",
            "seq 4: gap in event numbers",
            0,
            10,
            1_000,
        );
        (store, id)
    }

    #[test]
    fn surviving_set_is_computed_at_query_time_and_graph_is_add_only() {
        let (mut store, id) = store_with_incident();
        assert_eq!(store.get(id).unwrap().surviving().len(), 3);

        let surviving = store.eliminate(id, 1, PASS_STACK_FLOOR, "0.3% < 2% floor").unwrap();
        assert_eq!(surviving, 2);
        let incident = store.get(id).unwrap();
        // Add-only: the eliminated hypothesis is still in the full graph.
        assert_eq!(incident.hypotheses().len(), 3);
        assert!(incident.is_eliminated(1));
        assert!(!incident.is_eliminated(0));
        // Surviving is ordered heaviest evidence first.
        let ids: Vec<u64> = incident.surviving().iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![0, 2]);
        // Provenance is recorded verbatim.
        let t = &incident.tombstones()[0];
        assert_eq!((t.hypothesis, t.pass.as_str()), (1, PASS_STACK_FLOOR));
        assert!(t.evidence.contains("floor"));
        assert!(t.at_ms > 0);
    }

    #[test]
    fn tombstones_are_idempotent_per_pass_and_commute() {
        let (mut store, id) = store_with_incident();
        assert_eq!(store.eliminate(id, 0, PASS_BASELINE, "seen in baseline").unwrap(), 2);
        // Same pass again: no new tombstone, same surviving set.
        assert_eq!(store.eliminate(id, 0, PASS_BASELINE, "re-run").unwrap(), 2);
        assert_eq!(store.get(id).unwrap().tombstones().len(), 1);
        // A different pass may independently eliminate the same node; the
        // surviving set is unchanged (set semantics), provenance is kept.
        assert_eq!(store.eliminate(id, 0, PASS_OPERATOR, "confirmed").unwrap(), 2);
        assert_eq!(store.get(id).unwrap().tombstones().len(), 2);
    }

    #[test]
    fn eliminate_rejects_unknown_targets() {
        let (mut store, id) = store_with_incident();
        assert_eq!(
            store.eliminate(99, 0, PASS_OPERATOR, "x"),
            Err(EliminateError::UnknownIncident(99))
        );
        assert!(matches!(
            store.eliminate(id, 99, PASS_OPERATOR, "x"),
            Err(EliminateError::UnknownHypothesis(_))
        ));
    }

    #[test]
    fn resolve_marks_open_incidents_for_the_alert_only() {
        let (mut store, id) = store_with_incident();
        let other = store.open("rate<1", 12, None, 2_000);
        assert_eq!(store.resolve_for_alert("p95>1ms", 14, 3_000), 1);
        assert!(!store.get(id).unwrap().is_open());
        assert!(store.get(other).unwrap().is_open());
        // Resolving again is a no-op.
        assert_eq!(store.resolve_for_alert("p95>1ms", 15, 4_000), 0);
        let resolved = store.get(id).unwrap();
        assert_eq!(resolved.resolved_window, Some(14));
        assert_eq!(resolved.resolved_at_ms, Some(3_000));
    }

    #[test]
    fn ring_capacity_evicts_oldest_incidents() {
        let mut store = IncidentStore::new(2);
        let a = store.open("a", 1, None, 1);
        let b = store.open("b", 2, None, 2);
        let c = store.open("c", 3, None, 3);
        assert_eq!(store.len(), 2);
        assert!(store.get(a).is_none(), "oldest evicted");
        assert!(store.get(b).is_some() && store.get(c).is_some());
        // Ids stay dense and unique across evictions.
        assert_eq!((b, c), (2, 3));
    }

    #[test]
    fn json_bodies_carry_the_full_graph_and_query_time_surviving_set() {
        let (mut store, id) = store_with_incident();
        store.eliminate(id, 2, PASS_CHAIN_RECHECK, "chain completed normally").unwrap();
        let index = store.index_json();
        let list = index.get("incidents").and_then(Json::as_arr).unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].get("hypotheses").and_then(Json::as_u64), Some(3));
        assert_eq!(list[0].get("surviving").and_then(Json::as_u64), Some(2));
        assert_eq!(list[0].get("eliminated").and_then(Json::as_u64), Some(1));

        let detail = store.get(id).unwrap().detail_json();
        assert_eq!(detail.get("state").and_then(Json::as_str), Some("open"));
        let hypotheses = detail.get("hypotheses").and_then(Json::as_arr).unwrap();
        assert_eq!(hypotheses.len(), 3, "add-only: tombstoned nodes still rendered");
        assert_eq!(hypotheses[2].get("eliminated").and_then(Json::as_bool), Some(true));
        let tombstones = detail.get("tombstones").and_then(Json::as_arr).unwrap();
        assert_eq!(tombstones[0].get("pass").and_then(Json::as_str), Some(PASS_CHAIN_RECHECK));
        let surviving = detail.get("surviving").and_then(Json::as_arr).unwrap();
        assert_eq!(surviving.len(), 2);
    }

    #[test]
    fn operator_text_is_truncated_at_the_byte_budget() {
        let (mut store, id) = store_with_incident();
        let huge = "x".repeat(4 * MAX_EVIDENCE_LEN);
        store.eliminate(id, 0, PASS_OPERATOR, &huge).unwrap();
        let t = &store.get(id).unwrap().tombstones()[0];
        assert!(t.evidence.len() <= MAX_EVIDENCE_LEN + '…'.len_utf8());
        assert!(t.evidence.ends_with('…'));
    }
}
