//! End-to-end timing latency (§3.2, first half).
//!
//! For each reconstructed invocation `F`:
//!
//! * synchronous / one-way stub side:
//!   `L(F) = P_{F,4,start} − P_{F,1,end} − O_F`
//! * collocated / one-way skeleton side:
//!   `L(F) = P_{F,3,start} − P_{F,2,end} − O_F`
//!
//! with the causality-capture overhead compensated by
//! `O_F = Σ_i Σ_{j ∈ R(i)} (P_{i,j,end} − P_{i,j,start})` over the immediate
//! child invocations `i`, where `R` is `{1,2,3,4}` for synchronous children
//! and `{1,4}` for one-way children (whose skeleton probes run elsewhere and
//! do not occupy the caller's window).

use crate::dscg::{CallNode, Dscg, walk_nodes};
use causeway_core::event::CallKind;
use causeway_core::ids::{InterfaceId, MethodIndex};
use causeway_core::pool;
use std::collections::BTreeMap;

/// Latency of a single invocation, ns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeLatency {
    /// The compensated end-to-end latency `L(F)`.
    pub latency_ns: u64,
    /// The probe overhead `O_F` that was subtracted.
    pub overhead_ns: u64,
}

/// Computes `L(F)` for one node, or `None` when the needed wall stamps are
/// absent (latency probing was off, or the invocation is incomplete).
pub fn node_latency(node: &CallNode) -> Option<NodeLatency> {
    let overhead = child_probe_overhead(node);
    let window = match node.kind {
        CallKind::Sync => {
            let end = node.stub_end.as_ref()?.wall_start?;
            let start = node.stub_start.as_ref()?.wall_end?;
            end.saturating_sub(start)
        }
        CallKind::Oneway => {
            // Prefer the skeleton side (actual execution) when the fork was
            // grafted; fall back to the stub side (send cost) otherwise.
            match (&node.skel_start, &node.skel_end) {
                (Some(ss), Some(se)) => se.wall_start?.saturating_sub(ss.wall_end?),
                _ => {
                    let end = node.stub_end.as_ref()?.wall_start?;
                    let start = node.stub_start.as_ref()?.wall_end?;
                    end.saturating_sub(start)
                }
            }
        }
        CallKind::Collocated | CallKind::CustomMarshal => {
            let end = node.skel_end.as_ref()?.wall_start?;
            let start = node.skel_start.as_ref()?.wall_end?;
            end.saturating_sub(start)
        }
    };
    Some(NodeLatency {
        latency_ns: window.saturating_sub(overhead),
        overhead_ns: overhead,
    })
}

/// `O_F`: the summed probe spans of the immediate children, restricted to
/// the probes that execute inside the caller's measured window.
fn child_probe_overhead(node: &CallNode) -> u64 {
    let mut total = 0u64;
    for child in &node.children {
        let caller_side = match child.kind {
            CallKind::Oneway => [&child.stub_start, &child.stub_end].to_vec(),
            _ => [
                &child.stub_start,
                &child.skel_start,
                &child.skel_end,
                &child.stub_end,
            ]
            .to_vec(),
        };
        for record in caller_side.into_iter().flatten() {
            total += record.wall_span().unwrap_or(0);
        }
    }
    total
}

/// Aggregate latency statistics for one (interface, method).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Invocations with measurable latency.
    pub count: usize,
    /// Mean latency, ns.
    pub mean_ns: f64,
    /// Minimum latency, ns.
    pub min_ns: u64,
    /// Maximum latency, ns.
    pub max_ns: u64,
    /// Median latency, ns.
    pub p50_ns: u64,
    /// 95th-percentile latency, ns.
    pub p95_ns: u64,
    /// 99th-percentile latency, ns.
    pub p99_ns: u64,
    /// Mean compensated overhead, ns.
    pub mean_overhead_ns: f64,
}

/// Latency analysis over a whole DSCG.
#[derive(Debug, Clone, Default)]
pub struct LatencyAnalysis {
    /// Per-(interface, method) statistics.
    pub per_method: BTreeMap<(InterfaceId, MethodIndex), LatencyStats>,
}

impl LatencyAnalysis {
    /// Computes per-method statistics across every invocation in the DSCG on
    /// the configured worker pool.
    pub fn compute(dscg: &Dscg) -> LatencyAnalysis {
        Self::compute_with_threads(dscg, pool::configured_threads())
    }

    /// Computes per-method statistics using up to `threads` worker threads.
    ///
    /// Trees shard across the pool; each shard collects its `L(F)` samples
    /// in walk order, and the merge appends shard maps in tree order — the
    /// exact sample sequence the serial walk produces, so the (stable) sort
    /// and percentile math below yield bit-identical statistics.
    pub fn compute_with_threads(dscg: &Dscg, threads: usize) -> LatencyAnalysis {
        let shard_maps = pool::par_map(&dscg.trees, threads, |tree| {
            let mut samples: BTreeMap<(InterfaceId, MethodIndex), Vec<NodeLatency>> =
                BTreeMap::new();
            walk_nodes(&tree.roots, &mut |node, _| {
                if let Some(lat) = node_latency(node) {
                    samples
                        .entry((node.func.interface, node.func.method))
                        .or_default()
                        .push(lat);
                }
            });
            samples
        });
        let mut samples: BTreeMap<(InterfaceId, MethodIndex), Vec<NodeLatency>> = BTreeMap::new();
        for map in shard_maps {
            for (key, values) in map {
                samples.entry(key).or_default().extend(values);
            }
        }
        let per_method = samples
            .into_iter()
            .map(|(key, mut values)| {
                values.sort_by_key(|l| l.latency_ns);
                let count = values.len();
                let sum: u64 = values.iter().map(|l| l.latency_ns).sum();
                let overhead_sum: u64 = values.iter().map(|l| l.overhead_ns).sum();
                let stats = LatencyStats {
                    count,
                    mean_ns: sum as f64 / count as f64,
                    min_ns: values.first().map(|l| l.latency_ns).unwrap_or(0),
                    max_ns: values.last().map(|l| l.latency_ns).unwrap_or(0),
                    p50_ns: percentile(&values, 50),
                    p95_ns: percentile(&values, 95),
                    p99_ns: percentile(&values, 99),
                    mean_overhead_ns: overhead_sum as f64 / count as f64,
                };
                (key, stats)
            })
            .collect();
        LatencyAnalysis { per_method }
    }

    /// Statistics for one method, if any invocation was measurable.
    pub fn method(&self, iface: InterfaceId, method: MethodIndex) -> Option<&LatencyStats> {
        self.per_method.get(&(iface, method))
    }
}

fn percentile(sorted: &[NodeLatency], pct: u32) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct as usize * sorted.len()).div_ceil(100)).clamp(1, sorted.len());
    sorted[rank - 1].latency_ns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dscg::CallTree;
    use causeway_core::event::TraceEvent;
    use causeway_core::ids::*;
    use causeway_core::record::{CallSite, FunctionKey, ProbeRecord};
    use causeway_core::uuid::Uuid;

    fn stamp(seq: u64, event: TraceEvent, start: u64, end: u64) -> ProbeRecord {
        ProbeRecord {
            uuid: Uuid(1),
            seq,
            event,
            kind: CallKind::Sync,
            site: CallSite {
                node: NodeId(0),
                process: ProcessId(0),
                thread: LogicalThreadId(0),
            },
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(0)),
            wall_start: Some(start),
            wall_end: Some(end),
            cpu_start: None,
            cpu_end: None,
            oneway_child: None,
            oneway_parent: None,
        }
    }

    fn sync_node(p1: (u64, u64), p2: (u64, u64), p3: (u64, u64), p4: (u64, u64)) -> CallNode {
        let mut records = [
            stamp(1, TraceEvent::StubStart, p1.0, p1.1),
            stamp(2, TraceEvent::SkelStart, p2.0, p2.1),
            stamp(3, TraceEvent::SkelEnd, p3.0, p3.1),
            stamp(4, TraceEvent::StubEnd, p4.0, p4.1),
        ];
        CallNode {
            func: records[0].func,
            kind: CallKind::Sync,
            stub_start: Some(records[0].clone()),
            skel_start: Some(records[1].clone()),
            skel_end: Some(std::mem::replace(&mut records[2], stamp(0, TraceEvent::SkelEnd, 0, 0))),
            stub_end: Some(records[3].clone()),
            children: Vec::new(),
            complete: true,
        }
    }

    #[test]
    fn leaf_latency_is_p4_start_minus_p1_end() {
        // Probe 1 ends at t=10; probe 4 starts at t=110.
        let node = sync_node((5, 10), (20, 25), (90, 95), (110, 115));
        let lat = node_latency(&node).unwrap();
        assert_eq!(lat.latency_ns, 100);
        assert_eq!(lat.overhead_ns, 0, "no children, no compensation");
    }

    #[test]
    fn child_probe_overhead_is_subtracted() {
        let mut parent = sync_node((0, 10), (20, 25), (190, 195), (200, 210));
        // A child whose four probes each cost 5 ns.
        let child = sync_node((30, 35), (40, 45), (60, 65), (70, 75));
        parent.children.push(child);
        let lat = node_latency(&parent).unwrap();
        assert_eq!(lat.overhead_ns, 20);
        assert_eq!(lat.latency_ns, (200 - 10) - 20);
    }

    #[test]
    fn oneway_child_contributes_only_stub_probes() {
        let mut parent = sync_node((0, 10), (20, 25), (190, 195), (200, 210));
        let mut child = sync_node((30, 37), (40, 45), (60, 65), (70, 77));
        child.kind = CallKind::Oneway;
        parent.children.push(child);
        let lat = node_latency(&parent).unwrap();
        assert_eq!(lat.overhead_ns, 14, "only probes 1 and 4 (7 ns each)");
    }

    #[test]
    fn collocated_latency_uses_skeleton_window() {
        let mut node = sync_node((0, 10), (20, 25), (80, 85), (90, 95));
        node.kind = CallKind::Collocated;
        let lat = node_latency(&node).unwrap();
        assert_eq!(lat.latency_ns, 80 - 25);
    }

    #[test]
    fn grafted_oneway_uses_skeleton_window() {
        let mut node = sync_node((0, 10), (200, 210), (500, 505), (15, 20));
        node.kind = CallKind::Oneway;
        let lat = node_latency(&node).unwrap();
        assert_eq!(lat.latency_ns, 500 - 210);
    }

    #[test]
    fn ungrafted_oneway_falls_back_to_stub_window() {
        let mut node = sync_node((0, 10), (0, 0), (0, 0), (15, 20));
        node.kind = CallKind::Oneway;
        node.skel_start = None;
        node.skel_end = None;
        let lat = node_latency(&node).unwrap();
        assert_eq!(lat.latency_ns, 15 - 10);
    }

    #[test]
    fn missing_stamps_yield_none() {
        let mut node = sync_node((0, 10), (20, 25), (80, 85), (90, 95));
        node.stub_end.as_mut().unwrap().wall_start = None;
        assert!(node_latency(&node).is_none());
        let mut node2 = sync_node((0, 10), (20, 25), (80, 85), (90, 95));
        node2.stub_start = None;
        assert!(node_latency(&node2).is_none());
    }

    #[test]
    fn analysis_aggregates_statistics() {
        let mut trees = Vec::new();
        for (i, span) in [100u64, 200, 300, 400].iter().enumerate() {
            let node = sync_node((0, 10), (20, 25), (30, 35), (10 + span, 10 + span + 5));
            trees.push(CallTree { chain: Uuid(i as u128 + 1), roots: vec![node] });
        }
        let dscg = Dscg::from_trees(trees);
        let analysis = LatencyAnalysis::compute(&dscg);
        let stats = analysis.method(InterfaceId(0), MethodIndex(0)).unwrap();
        assert_eq!(stats.count, 4);
        assert_eq!(stats.min_ns, 100);
        assert_eq!(stats.max_ns, 400);
        assert_eq!(stats.mean_ns, 250.0);
        assert_eq!(stats.p50_ns, 200);
        assert_eq!(stats.p95_ns, 400);
        assert_eq!(stats.p99_ns, 400);
        assert!(analysis.method(InterfaceId(9), MethodIndex(0)).is_none());
    }

    #[test]
    fn percentile_edges() {
        let mk = |ns| NodeLatency { latency_ns: ns, overhead_ns: 0 };
        let one = vec![mk(7)];
        assert_eq!(percentile(&one, 50), 7);
        assert_eq!(percentile(&one, 95), 7);
        assert_eq!(percentile(&[], 50), 0);
    }
}

/// A logarithmic latency histogram: bucket `i` counts invocations with
/// `L(F)` in `[2^i, 2^(i+1))` nanoseconds. 64 buckets cover every
/// representable duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; 64], count: 0 }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency_ns: u64) {
        let bucket = 63 - latency_ns.max(1).leading_zeros() as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Count in the bucket covering `[2^i, 2^(i+1))` ns.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Adds `n` samples directly to bucket `i` (out-of-range indices are
    /// ignored) — the reconstruction path for histograms decoded from a
    /// spill segment, where only per-bucket counts survive. Equivalent to
    /// `n` calls to [`LatencyHistogram::record`] with any latency in the
    /// bucket's range.
    pub fn add_bucket_count(&mut self, i: usize, n: u64) {
        if let Some(bucket) = self.buckets.get_mut(i) {
            *bucket += n;
            self.count += n;
        }
    }

    /// The occupied buckets as `(index, count)` pairs, ascending — the
    /// sparse encoding a spill segment stores.
    pub fn occupied_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &n)| n > 0).map(|(i, &n)| (i, n))
    }

    /// Merges another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
    }

    /// An approximate quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket containing the q-th sample.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }

    /// Renders the occupied bucket range as an ASCII bar chart, one line per
    /// bucket, e.g. `  64µs..128µs | #####  12`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let (Some(first), Some(last)) = (
            self.buckets.iter().position(|&n| n > 0),
            self.buckets.iter().rposition(|&n| n > 0),
        ) else {
            return String::from("(empty histogram)\n");
        };
        let max = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        for i in first..=last {
            let lo = 1u64 << i;
            let hi = 1u64 << (i + 1).min(63);
            let bar = "#".repeat(((self.buckets[i] * 40).div_ceil(max)) as usize);
            writeln!(
                out,
                "{:>10}..{:<10} |{:<40} {}",
                fmt_ns(lo),
                fmt_ns(hi),
                bar,
                self.buckets[i]
            )
            .expect("string write");
        }
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.1}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{}µs", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// Per-method latency histograms over a whole DSCG, computed on the
/// configured worker pool.
pub fn histograms(
    dscg: &Dscg,
) -> BTreeMap<(InterfaceId, MethodIndex), LatencyHistogram> {
    histograms_with_threads(dscg, pool::configured_threads())
}

/// Per-method latency histograms using up to `threads` worker threads.
/// Bucket counts are order-insensitive sums, so any merge order yields the
/// serial result.
pub fn histograms_with_threads(
    dscg: &Dscg,
    threads: usize,
) -> BTreeMap<(InterfaceId, MethodIndex), LatencyHistogram> {
    let shard_maps = pool::par_map(&dscg.trees, threads, |tree| {
        let mut shard: BTreeMap<(InterfaceId, MethodIndex), LatencyHistogram> = BTreeMap::new();
        walk_nodes(&tree.roots, &mut |node, _| {
            if let Some(lat) = node_latency(node) {
                shard
                    .entry((node.func.interface, node.func.method))
                    .or_default()
                    .record(lat.latency_ns);
            }
        });
        shard
    });
    let mut out: BTreeMap<(InterfaceId, MethodIndex), LatencyHistogram> = BTreeMap::new();
    for map in shard_maps {
        for (key, hist) in map {
            out.entry(key).or_default().merge(&hist);
        }
    }
    out
}

#[cfg(test)]
mod histogram_tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        let mut h = LatencyHistogram::new();
        h.record(1);
        h.record(1); // bucket 0: [1, 2)
        h.record(3); // bucket 1: [2, 4)
        h.record(1024); // bucket 10
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(10), 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn zero_latency_lands_in_the_first_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.bucket(0), 1);
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record(ns);
        }
        assert!(h.quantile_ns(0.5) >= 200);
        assert!(h.quantile_ns(1.0) >= 100_000);
        assert!(h.quantile_ns(0.0) >= 100);
        assert_eq!(LatencyHistogram::new().quantile_ns(0.5), 0);
    }

    #[test]
    fn bucket_counts_reconstruct_an_identical_histogram() {
        let mut h = LatencyHistogram::new();
        for ns in [1u64, 3, 1024, 1024, 5_000_000] {
            h.record(ns);
        }
        let mut rebuilt = LatencyHistogram::new();
        for (i, n) in h.occupied_buckets() {
            rebuilt.add_bucket_count(i, n);
        }
        assert_eq!(rebuilt, h, "sparse bucket counts carry the full state");
        rebuilt.add_bucket_count(200, 5); // out of range: ignored
        assert_eq!(rebuilt, h);
    }

    #[test]
    fn render_shows_occupied_range_only() {
        let mut h = LatencyHistogram::new();
        h.record(1_500); // ~1µs bucket
        h.record(1_500);
        h.record(3_000_000); // ~2ms bucket
        let text = h.render();
        assert!(text.contains("µs"), "{text}");
        assert!(text.contains("ms"), "{text}");
        assert!(text.contains('#'));
        assert_eq!(LatencyHistogram::new().render(), "(empty histogram)\n");
    }
}
