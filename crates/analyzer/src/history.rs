//! Retained window history and multi-window SLO burn-rate alerting — the
//! "time-travel" layer of the live monitoring service.
//!
//! [`crate::live::LiveMonitor`] keeps exactly one window of state, which
//! answers *is the system slow now* but not *when did it start drifting* or
//! *which causal path regressed*. This module retains a bounded ring of
//! finalized windows:
//!
//! * [`WindowHistory`] — every closed tumbling window's per-series
//!   aggregates plus its folded-stack snapshot, capped both by window count
//!   and by an approximate byte budget, with evictions counted in the
//!   `causeway_live_history_evictions` metric.
//! * [`BurnRule`] / [`BurnState`] — multi-window SLO burn-rate alerts in
//!   the fast/slow-pair style: a window *breaches* when its metric crosses
//!   the threshold, and the alert fires only when the breach fraction over
//!   both the fast span (the problem is happening *now*) and the slow span
//!   (it has *persisted*) burns the SLO error budget faster than the rule's
//!   factor. A one-window spike that a single-threshold rule would catch
//!   never fires a burn rule; a sustained regression fires it exactly once.
//! * [`diff_folded`] — the folded-stack delta between two retained windows,
//!   which renders as a differential flamegraph: the causal path that
//!   regressed between window `a` and window `b` is the top positive line.

use crate::live::{AlertEvent, AlertRule, SeriesAgg, WindowSnapshot};
use causeway_core::metrics::{Counter, Gauge, MetricsRegistry};
use std::collections::{BTreeMap, VecDeque};

/// One finalized tumbling window as retained by the history store.
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    /// The window's per-series aggregates (shared with the live view).
    pub window: WindowSnapshot,
    /// Folded flamegraph stacks (`a;b.c` → self ns) completed *during* this
    /// window — a per-window delta, not the cumulative map.
    pub folded: BTreeMap<String, u64>,
}

impl HistoryEntry {
    /// Approximate heap footprint, for the byte cap. Counts the dominant
    /// payloads (histogram buckets per series, folded stack strings) plus a
    /// flat per-node allowance for map overhead.
    pub fn approx_bytes(&self) -> usize {
        const NODE: usize = 48; // BTreeMap bookkeeping allowance per entry
        let series = self.window.series.len()
            * (std::mem::size_of::<SeriesAgg>() + std::mem::size_of::<(u32, u16)>() + NODE);
        let folded: usize = self
            .folded
            .keys()
            .map(|stack| stack.len() + std::mem::size_of::<u64>() + NODE)
            .sum();
        std::mem::size_of::<HistoryEntry>() + series + folded
    }
}

/// A bounded ring of finalized windows, oldest first.
///
/// Two caps apply independently: at most `cap_windows` entries, and at most
/// `cap_bytes` of approximate retained heap. Whichever bites first evicts
/// from the oldest end; every eviction increments the
/// `causeway_live_history_evictions` counter so an operator can tell the
/// difference between "never happened" and "already aged out".
#[derive(Debug)]
pub struct WindowHistory {
    ring: VecDeque<HistoryEntry>,
    cap_windows: usize,
    cap_bytes: usize,
    bytes: usize,
    evictions: Counter,
    retained: Gauge,
    retained_bytes: Gauge,
}

impl WindowHistory {
    /// Creates an empty store capped at `cap_windows` entries and
    /// `cap_bytes` of approximate memory (both at least 1).
    pub fn new(cap_windows: usize, cap_bytes: usize) -> WindowHistory {
        let registry = MetricsRegistry::global();
        WindowHistory {
            ring: VecDeque::new(),
            cap_windows: cap_windows.max(1),
            cap_bytes: cap_bytes.max(1),
            bytes: 0,
            evictions: registry.counter(
                "causeway_live_history_evictions",
                "History windows evicted by the count or byte cap.",
            ),
            retained: registry.gauge(
                "causeway_live_history_windows",
                "Finalized windows currently retained by the history store.",
            ),
            retained_bytes: registry.gauge(
                "causeway_live_history_bytes",
                "Approximate heap retained by the window history store.",
            ),
        }
    }

    /// Appends a finalized window, evicting from the oldest end until both
    /// caps hold again.
    pub fn push(&mut self, entry: HistoryEntry) {
        self.bytes += entry.approx_bytes();
        self.ring.push_back(entry);
        while self.ring.len() > self.cap_windows
            || (self.bytes > self.cap_bytes && self.ring.len() > 1)
        {
            let evicted = self.ring.pop_front().expect("len checked");
            self.bytes = self.bytes.saturating_sub(evicted.approx_bytes());
            self.evictions.inc();
        }
        self.retained.set(self.ring.len() as i64);
        self.retained_bytes.set(self.bytes as i64);
    }

    /// The retained entry for tumbling window ordinal `index`, if it has
    /// closed and has not been evicted.
    pub fn get(&self, index: u64) -> Option<&HistoryEntry> {
        // Ordinals are contiguous within the ring; index from the back.
        let newest = self.ring.back()?.window.index;
        let offset = newest.checked_sub(index)?;
        if offset as usize >= self.ring.len() {
            return None;
        }
        self.ring.get(self.ring.len() - 1 - offset as usize)
    }

    /// The most recently closed window.
    pub fn latest(&self) -> Option<&HistoryEntry> {
        self.ring.back()
    }

    /// Retained entries, oldest first.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &HistoryEntry> + ExactSizeIterator {
        self.ring.iter()
    }

    /// Retained window count.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when no window has closed yet (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The configured window-count cap.
    pub fn cap_windows(&self) -> usize {
        self.cap_windows
    }

    /// The configured approximate byte cap.
    pub fn cap_bytes(&self) -> usize {
        self.cap_bytes
    }

    /// Approximate retained heap (always ≤ the byte cap after a push, save
    /// for a single over-budget entry which is retained alone).
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Windows evicted so far (count + byte cap combined).
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }
}

/// The folded-stack delta `b − a` between two windows, largest regression
/// first (ties broken by stack name). Stacks present in only one window
/// count with the other side as zero; exact zero deltas are dropped.
pub fn diff_folded(
    a: &BTreeMap<String, u64>,
    b: &BTreeMap<String, u64>,
) -> Vec<(String, i64)> {
    let mut deltas: BTreeMap<&str, i64> = BTreeMap::new();
    for (stack, &ns) in a {
        *deltas.entry(stack).or_insert(0) -= ns as i64;
    }
    for (stack, &ns) in b {
        *deltas.entry(stack).or_insert(0) += ns as i64;
    }
    let mut out: Vec<(String, i64)> = deltas
        .into_iter()
        .filter(|(_, delta)| *delta != 0)
        .map(|(stack, delta)| (stack.to_owned(), delta))
        .collect();
    out.sort_by(|x, y| y.1.cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
    out
}

/// A multi-window SLO burn-rate alert rule.
///
/// Grammar (parsed by [`crate::live::parse_burn_rule`]):
/// `burn=METRIC[:IFACE.METHOD]CMP VALUE;slo=PCT;fast=N;slow=M[;factor=F]`.
///
/// Semantics: the SLO error budget is `1 − slo/100` (as a fraction of
/// windows allowed to breach). The *burn rate* over a span of K windows is
/// `(breaching windows / K) / budget`. The alert fires when the burn rate
/// over **both** the fast and the slow span reaches `factor`, and resolves
/// when the fast span's burn rate drops back below it. The default factor,
/// `fast / (slow × budget)`, makes the conditions concrete: fire once the
/// slow span has accumulated at least a fast-span's worth of breaching
/// windows *and* at least one of them is recent; resolve once the fast
/// span is clean.
#[derive(Debug, Clone)]
pub struct BurnRule {
    /// The window-badness condition: metric, optional series scope,
    /// comparator and threshold (duration/hysteresis fields are unused).
    pub condition: AlertRule,
    /// The SLO objective in percent (e.g. `99.9`), strictly within (0, 100).
    pub slo_percent: f64,
    /// Fast span, in tumbling windows.
    pub fast: usize,
    /// Slow span, in tumbling windows (must be > `fast`).
    pub slow: usize,
    /// Burn-rate factor both spans must reach to fire.
    pub factor: f64,
}

impl BurnRule {
    /// The SLO error budget as a fraction of breaching windows.
    pub fn budget(&self) -> f64 {
        1.0 - self.slo_percent / 100.0
    }

    /// The default firing factor: a fast-span's worth of breaching windows
    /// within the slow span.
    pub fn default_factor(fast: usize, slow: usize, budget: f64) -> f64 {
        fast as f64 / (slow as f64 * budget)
    }

    /// Burn rate over the newest `span` retained windows. Windows not yet
    /// retained count as calm — the denominator is always the configured
    /// span, so a cold store under-alarms rather than over-alarms.
    pub fn burn_rate(&self, history: &WindowHistory, span: usize) -> f64 {
        let breaching = history
            .iter()
            .rev()
            .take(span)
            .filter(|e| self.condition.breaches(self.condition.evaluate(&e.window)))
            .count();
        let budget = self.budget();
        if budget <= 0.0 {
            return f64::INFINITY;
        }
        breaching as f64 / span as f64 / budget
    }
}

/// One burn rule plus its firing state and exported series.
#[derive(Debug)]
pub struct BurnState {
    rule: BurnRule,
    active: bool,
    active_gauge: Gauge,
    fast_gauge: Gauge,
    slow_gauge: Gauge,
    transitions: Counter,
}

impl BurnState {
    /// Registers the rule's exported series and starts calm.
    pub fn new(rule: BurnRule) -> BurnState {
        let registry = MetricsRegistry::global();
        let labels = [("alert", rule.condition.name.as_str())];
        let active_gauge = registry.gauge_with(
            "causeway_live_burn_active",
            "1 while the named burn-rate alert is firing.",
            &labels,
        );
        active_gauge.set(0);
        BurnState {
            active: false,
            active_gauge,
            fast_gauge: registry.gauge_with(
                "causeway_live_burn_fast_milli",
                "Fast-span SLO burn rate, in thousandths.",
                &labels,
            ),
            slow_gauge: registry.gauge_with(
                "causeway_live_burn_slow_milli",
                "Slow-span SLO burn rate, in thousandths.",
                &labels,
            ),
            transitions: registry.counter_with(
                "causeway_live_burn_transitions_total",
                "Burn-rate alert firing/resolving transitions.",
                &labels,
            ),
            rule,
        }
    }

    /// The rule being evaluated.
    pub fn rule(&self) -> &BurnRule {
        &self.rule
    }

    /// `true` while the excursion is unresolved.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Re-evaluates against the history store after a window closed (the
    /// just-closed window must already be pushed); returns the transition
    /// completed by this window, if any.
    pub fn step(&mut self, history: &WindowHistory) -> Option<AlertEvent> {
        let burn_fast = self.rule.burn_rate(history, self.rule.fast);
        let burn_slow = self.rule.burn_rate(history, self.rule.slow);
        let milli = |burn: f64| (burn * 1000.0).min(i64::MAX as f64) as i64;
        self.fast_gauge.set(milli(burn_fast));
        self.slow_gauge.set(milli(burn_slow));
        let window_index = history.latest().map(|e| e.window.index).unwrap_or(0);
        if !self.active && burn_fast >= self.rule.factor && burn_slow >= self.rule.factor {
            self.active = true;
            self.active_gauge.set(1);
            self.transitions.inc();
            return Some(AlertEvent {
                alert: self.rule.condition.name.clone(),
                fired: true,
                window_index,
                value: burn_slow,
                threshold: self.rule.factor,
            });
        }
        if self.active && burn_fast < self.rule.factor {
            self.active = false;
            self.active_gauge.set(0);
            self.transitions.inc();
            return Some(AlertEvent {
                alert: self.rule.condition.name.clone(),
                fired: false,
                window_index,
                value: burn_fast,
                threshold: self.rule.factor,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::{AlertCmp, AlertMetric};
    use std::collections::BTreeMap;

    fn snapshot(index: u64, p_latency_ns: u64, calls: u64) -> WindowSnapshot {
        let mut series = BTreeMap::new();
        let mut agg = SeriesAgg::default();
        for _ in 0..calls {
            agg.record(p_latency_ns);
        }
        series.insert(
            (causeway_core::ids::InterfaceId(0), causeway_core::ids::MethodIndex(0)),
            agg,
        );
        WindowSnapshot {
            index,
            span_ns: 1_000_000_000,
            series,
            completed_calls: calls,
            abnormalities: 0,
        }
    }

    fn entry(index: u64, latency_ns: u64) -> HistoryEntry {
        let mut folded = BTreeMap::new();
        folded.insert(format!("root;w{index}"), latency_ns);
        HistoryEntry { window: snapshot(index, latency_ns, 4), folded }
    }

    #[test]
    fn ring_caps_by_window_count_and_counts_evictions() {
        let mut history = WindowHistory::new(4, usize::MAX);
        let before = history.evictions();
        for i in 0..10u64 {
            history.push(entry(i, 1000));
        }
        assert_eq!(history.len(), 4);
        assert_eq!(history.evictions() - before, 6);
        assert!(history.get(5).is_none(), "evicted ordinal");
        assert_eq!(history.get(9).unwrap().window.index, 9);
        assert_eq!(history.get(6).unwrap().window.index, 6);
        assert!(history.get(10).is_none(), "not yet closed");
    }

    #[test]
    fn ring_caps_by_bytes() {
        let one = entry(0, 1000).approx_bytes();
        // Room for roughly three entries; the count cap would allow eight.
        let mut history = WindowHistory::new(8, one * 3 + one / 2);
        for i in 0..8u64 {
            history.push(entry(i, 1000));
        }
        assert!(history.len() < 8, "byte cap bites first: {}", history.len());
        assert!(history.approx_bytes() <= history.cap_bytes());
    }

    #[test]
    fn folded_diff_orders_regressions_first() {
        let mut a = BTreeMap::new();
        a.insert("root;fast".to_owned(), 100u64);
        a.insert("root;gone".to_owned(), 40u64);
        let mut b = BTreeMap::new();
        b.insert("root;fast".to_owned(), 5_000u64);
        b.insert("root;new".to_owned(), 70u64);
        let diff = diff_folded(&a, &b);
        assert_eq!(diff[0], ("root;fast".to_owned(), 4_900));
        assert_eq!(diff[1], ("root;new".to_owned(), 70));
        assert_eq!(diff[2], ("root;gone".to_owned(), -40));
    }

    fn burn_rule(fast: usize, slow: usize) -> BurnRule {
        let budget = 1.0 - 99.9 / 100.0;
        BurnRule {
            condition: AlertRule {
                name: "burn-test".to_owned(),
                metric: AlertMetric::P95,
                series: None,
                cmp: AlertCmp::Above,
                fire_threshold: 1_000_000.0,
                resolve_threshold: 1_000_000.0,
                for_windows: 1,
            },
            slo_percent: 99.9,
            fast,
            slow,
            factor: BurnRule::default_factor(fast, slow, budget),
        }
    }

    #[test]
    fn one_window_spike_never_fires_but_sustained_regression_does() {
        let mut history = WindowHistory::new(32, usize::MAX);
        let mut state = BurnState::new(burn_rule(3, 24));
        let mut transitions = Vec::new();
        // Calm, one-window spike, calm, sustained regression, recovery.
        let profile: Vec<u64> = [10_000; 4]
            .into_iter()
            .chain([5_000_000]) // spike: a single breaching window
            .chain([10_000; 5])
            .chain([5_000_000; 6]) // regression: six breaching windows
            .chain([10_000; 6])
            .collect();
        for (i, latency) in profile.iter().enumerate() {
            history.push(entry(i as u64, *latency));
            if let Some(event) = state.step(&history) {
                transitions.push(event);
            }
        }
        assert_eq!(transitions.len(), 2, "one fire + one resolve: {transitions:?}");
        assert!(transitions[0].fired);
        // Fires on the regression (ordinal 11), not on the spike (ordinal
        // 4): the spike alone never accumulates a fast-span's worth of bad
        // windows in the slow span, but its budget consumption still counts,
        // so the regression's second window completes the slow condition.
        assert_eq!(transitions[0].window_index, 11);
        assert!(!transitions[1].fired);
        // Resolves once the fast span (3 windows) is clean again.
        assert_eq!(transitions[1].window_index, 18);
        assert!(!state.active());
    }
}
