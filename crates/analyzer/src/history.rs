//! Retained window history and multi-window SLO burn-rate alerting — the
//! "time-travel" layer of the live monitoring service.
//!
//! [`crate::live::LiveMonitor`] keeps exactly one window of state, which
//! answers *is the system slow now* but not *when did it start drifting* or
//! *which causal path regressed*. This module retains a bounded ring of
//! finalized windows:
//!
//! * [`WindowHistory`] — every closed tumbling window's per-series
//!   aggregates plus its folded-stack snapshot, capped both by window count
//!   and by an approximate byte budget, with evictions counted in the
//!   `causeway_live_history_evictions` metric.
//! * [`BurnRule`] / [`BurnState`] — multi-window SLO burn-rate alerts in
//!   the fast/slow-pair style: a window *breaches* when its metric crosses
//!   the threshold, and the alert fires only when the breach fraction over
//!   both the fast span (the problem is happening *now*) and the slow span
//!   (it has *persisted*) burns the SLO error budget faster than the rule's
//!   factor. A one-window spike that a single-threshold rule would catch
//!   never fires a burn rule; a sustained regression fires it exactly once.
//! * [`diff_folded`] — the folded-stack delta between two retained windows,
//!   which renders as a differential flamegraph: the causal path that
//!   regressed between window `a` and window `b` is the top positive line.

use crate::incident::wall_clock_ms;
use crate::latency::LatencyHistogram;
use crate::live::{AlertEvent, AlertRule, SeriesAgg, WindowSnapshot};
use causeway_collector::segment::{next_frame, write_frame};
use causeway_core::ids::{InterfaceId, MethodIndex};
use causeway_core::metrics::{Counter, Gauge, MetricsRegistry};
use causeway_core::wire;
use std::borrow::Cow;
use std::collections::{BTreeMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// One finalized tumbling window as retained by the history store.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// The window's per-series aggregates (shared with the live view).
    pub window: WindowSnapshot,
    /// Folded flamegraph stacks (`a;b.c` → self ns) completed *during* this
    /// window — a per-window delta, not the cumulative map.
    pub folded: BTreeMap<String, u64>,
}

impl HistoryEntry {
    /// Approximate heap footprint, for the byte cap. Counts the dominant
    /// payloads (histogram buckets per series, folded stack strings) plus a
    /// flat per-node allowance for map overhead.
    pub fn approx_bytes(&self) -> usize {
        const NODE: usize = 48; // BTreeMap bookkeeping allowance per entry
        let series = self.window.series.len()
            * (std::mem::size_of::<SeriesAgg>() + std::mem::size_of::<(u32, u16)>() + NODE);
        let folded: usize = self
            .folded
            .keys()
            .map(|stack| stack.len() + std::mem::size_of::<u64>() + NODE)
            .sum();
        std::mem::size_of::<HistoryEntry>() + series + folded
    }
}

/// A bounded ring of finalized windows, oldest first.
///
/// Two caps apply independently: at most `cap_windows` entries, and at most
/// `cap_bytes` of approximate retained heap. Whichever bites first evicts
/// from the oldest end; every eviction increments the
/// `causeway_live_history_evictions` counter so an operator can tell the
/// difference between "never happened" and "already aged out".
#[derive(Debug)]
pub struct WindowHistory {
    ring: VecDeque<HistoryEntry>,
    cap_windows: usize,
    cap_bytes: usize,
    bytes: usize,
    spill: Option<HistorySpill>,
    evictions: Counter,
    spilled: Counter,
    spill_errors: Counter,
    retained: Gauge,
    retained_bytes: Gauge,
}

impl WindowHistory {
    /// Creates an empty store capped at `cap_windows` entries and
    /// `cap_bytes` of approximate memory (both at least 1).
    pub fn new(cap_windows: usize, cap_bytes: usize) -> WindowHistory {
        let registry = MetricsRegistry::global();
        WindowHistory {
            ring: VecDeque::new(),
            cap_windows: cap_windows.max(1),
            cap_bytes: cap_bytes.max(1),
            bytes: 0,
            spill: None,
            evictions: registry.counter(
                "causeway_live_history_evictions",
                "History windows evicted by the count or byte cap.",
            ),
            spilled: registry.counter(
                "causeway_live_history_spilled",
                "Evicted history windows appended to the spill segment.",
            ),
            spill_errors: registry.counter(
                "causeway_live_history_spill_errors",
                "Evicted history windows lost to spill write failures.",
            ),
            retained: registry.gauge(
                "causeway_live_history_windows",
                "Finalized windows currently retained by the history store.",
            ),
            retained_bytes: registry.gauge(
                "causeway_live_history_bytes",
                "Approximate heap retained by the window history store.",
            ),
        }
    }

    /// Attaches a disk spill segment at `path`: from now on every entry
    /// evicted by [`WindowHistory::push`] is appended there before it is
    /// dropped, and [`WindowHistory::lookup`] serves spilled windows back.
    /// An existing spill file is reopened — its index is rebuilt by
    /// scanning, and a torn tail (crashed writer) is truncated away.
    ///
    /// # Errors
    ///
    /// Propagates the I/O failure when the file cannot be created, scanned,
    /// or repositioned.
    pub fn enable_spill(&mut self, path: impl AsRef<Path>) -> io::Result<()> {
        self.spill = Some(HistorySpill::open(path)?);
        Ok(())
    }

    /// The attached spill segment, if any.
    pub fn spill(&self) -> Option<&HistorySpill> {
        self.spill.as_ref()
    }

    /// Appends a finalized window, evicting from the oldest end until both
    /// caps hold again. Evicted entries are appended to the spill segment
    /// when one is attached; a failed spill write counts in
    /// `causeway_live_history_spill_errors` and the entry is dropped.
    pub fn push(&mut self, entry: HistoryEntry) {
        self.bytes += entry.approx_bytes();
        self.ring.push_back(entry);
        while self.ring.len() > self.cap_windows
            || (self.bytes > self.cap_bytes && self.ring.len() > 1)
        {
            let evicted = self.ring.pop_front().expect("len checked");
            self.bytes = self.bytes.saturating_sub(evicted.approx_bytes());
            self.evictions.inc();
            if let Some(spill) = self.spill.as_mut() {
                match spill.append(&evicted) {
                    Ok(()) => self.spilled.inc(),
                    Err(_) => self.spill_errors.inc(),
                };
            }
        }
        self.retained.set(self.ring.len() as i64);
        self.retained_bytes.set(self.bytes as i64);
    }

    /// The retained entry for tumbling window ordinal `index`, if it has
    /// closed and has not been evicted.
    pub fn get(&self, index: u64) -> Option<&HistoryEntry> {
        // Ordinals are contiguous within the ring; index from the back.
        let newest = self.ring.back()?.window.index;
        let offset = newest.checked_sub(index)?;
        if offset as usize >= self.ring.len() {
            return None;
        }
        self.ring.get(self.ring.len() - 1 - offset as usize)
    }

    /// The entry for tumbling window ordinal `index`, looking past the ring
    /// into the spill segment: retained entries are borrowed, spilled ones
    /// are read back from disk and owned. `None` when the window never
    /// closed, was evicted before a spill was attached, or its spill frame
    /// cannot be read back intact.
    pub fn lookup(&self, index: u64) -> Option<Cow<'_, HistoryEntry>> {
        if let Some(entry) = self.get(index) {
            return Some(Cow::Borrowed(entry));
        }
        self.spill.as_ref()?.get(index).map(Cow::Owned)
    }

    /// The entries for ordinals `from..=to` (oldest first, at most `max`),
    /// served from the ring and the spill segment combined. Ordinals that
    /// resolve nowhere are skipped.
    ///
    /// The bounds are clamped to the ordinals the store has ever seen and
    /// the scan itself is capped at `max` ordinals — callers pass
    /// client-supplied bounds straight in (the `/history` endpoint), and an
    /// unclamped `from..=to` over a hostile span would spin for ~2^64
    /// iterations while the caller holds the monitor lock.
    pub fn range(&self, from: u64, to: u64, max: usize) -> Vec<HistoryEntry> {
        let oldest = [
            self.ring.front().map(|e| e.window.index),
            self.spill.as_ref().and_then(|s| s.min_index()),
        ];
        let newest = [
            self.ring.back().map(|e| e.window.index),
            self.spill.as_ref().and_then(|s| s.max_index()),
        ];
        let (Some(oldest), Some(newest)) = (
            oldest.into_iter().flatten().min(),
            newest.into_iter().flatten().max(),
        ) else {
            return Vec::new();
        };
        let from = from.max(oldest);
        let to = to.min(newest);
        if from > to || max == 0 {
            return Vec::new();
        }
        let to = to.min(from.saturating_add(max as u64 - 1));
        let mut out = Vec::new();
        for index in from..=to {
            if let Some(entry) = self.lookup(index) {
                out.push(entry.into_owned());
            }
        }
        out
    }

    /// The most recently closed window.
    pub fn latest(&self) -> Option<&HistoryEntry> {
        self.ring.back()
    }

    /// The newest ordinal still resolvable (ring or spill) that is at or
    /// before `ordinal` — how an incident finds its pre-breach baseline
    /// window even when the ideal candidate already aged out of the ring
    /// (or of both tiers, in which case the nearest older survivor wins).
    pub fn newest_at_or_before(&self, ordinal: u64) -> Option<u64> {
        let in_ring = self
            .ring
            .iter()
            .rev()
            .map(|e| e.window.index)
            .find(|i| *i <= ordinal);
        let in_spill = self
            .spill
            .as_ref()
            .and_then(|s| s.index.range(..=ordinal).next_back().map(|(i, _)| *i));
        in_ring.into_iter().chain(in_spill).max()
    }

    /// Retained entries, oldest first.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &HistoryEntry> + ExactSizeIterator {
        self.ring.iter()
    }

    /// Retained window count.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when no window has closed yet (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The configured window-count cap.
    pub fn cap_windows(&self) -> usize {
        self.cap_windows
    }

    /// The configured approximate byte cap.
    pub fn cap_bytes(&self) -> usize {
        self.cap_bytes
    }

    /// Approximate retained heap (always ≤ the byte cap after a push, save
    /// for a single over-budget entry which is retained alone).
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Windows evicted so far (count + byte cap combined).
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Evicted windows successfully appended to the spill segment.
    pub fn spilled(&self) -> u64 {
        self.spilled.get()
    }

    /// Evicted windows lost to spill write failures.
    pub fn spill_errors(&self) -> u64 {
        self.spill_errors.get()
    }
}

/// Magic prefix of a history spill segment file.
pub const SPILL_MAGIC: &[u8; 8] = b"CWHIST1\n";

/// An append-only disk segment of evicted [`HistoryEntry`] values — the
/// overflow tier under [`WindowHistory`]'s in-memory ring.
///
/// The file layout reuses the collector's segment framing
/// ([`causeway_collector::segment`]): an 8-byte magic, then one
/// length-prefixed CRC-checksummed frame per evicted window, each payload a
/// self-contained encoding of the entry (aggregates with sparse histogram
/// buckets, plus the folded-stack map). Appends flush eagerly so every
/// *completed* frame is readable; a torn tail from a crashed writer is
/// detected and truncated on reopen, exactly like run-log recovery.
///
/// Reads open the file afresh per lookup (an in-memory `ordinal →
/// (offset, len)` index makes each a single seek + bounded read), so
/// lookups work through `&self` while the writer stays open for appends.
#[derive(Debug)]
pub struct HistorySpill {
    path: PathBuf,
    out: BufWriter<File>,
    /// Window ordinal → (frame offset, full frame length incl. framing).
    index: BTreeMap<u64, (u64, u32)>,
    /// Offset one past the last complete frame (the append position).
    end: u64,
}

impl HistorySpill {
    /// Creates the spill file at `path`, or reopens an existing one:
    /// complete frames are indexed, a torn tail is truncated away, and new
    /// appends continue after the last complete frame.
    ///
    /// # Errors
    ///
    /// Refuses (`InvalidData`) a path holding non-empty data that is not a
    /// spill segment — a mistyped path must not destroy an unrelated file.
    /// Only missing, empty, or magic-prefixed files are (re)created.
    /// Otherwise propagates file create/read/seek/truncate failures.
    pub fn open(path: impl AsRef<Path>) -> io::Result<HistorySpill> {
        let path = path.as_ref().to_path_buf();
        let existing = match std::fs::read(&path) {
            Ok(bytes)
                if bytes.len() >= SPILL_MAGIC.len()
                    && bytes[..SPILL_MAGIC.len()] == SPILL_MAGIC[..] =>
            {
                Some(bytes)
            }
            // Empty files (and a torn magic from our own interrupted
            // create) are safe to rewrite from scratch.
            Ok(bytes) if SPILL_MAGIC.starts_with(&bytes) => None,
            Ok(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{} exists but is not a history spill segment; refusing to overwrite it",
                        path.display()
                    ),
                ));
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let mut index = BTreeMap::new();
        let (file, end) = match existing {
            Some(bytes) => {
                let mut at = SPILL_MAGIC.len();
                while let Some(frame) = next_frame(&bytes, at) {
                    if wire::crc32(frame.payload) != frame.crc {
                        break;
                    }
                    let Some(entry) = decode_entry(frame.payload) else {
                        break;
                    };
                    index.insert(entry.window.index, (at as u64, (frame.end - at) as u32));
                    at = frame.end;
                }
                let mut file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(at as u64)?; // drop the torn tail, if any
                file.seek(SeekFrom::End(0))?;
                (file, at as u64)
            }
            None => {
                let mut file = File::create(&path)?;
                file.write_all(SPILL_MAGIC)?;
                file.flush()?;
                (file, SPILL_MAGIC.len() as u64)
            }
        };
        Ok(HistorySpill { path, out: BufWriter::new(file), index, end })
    }

    /// Appends one evicted entry as a checksummed frame and flushes, so the
    /// frame is complete on disk before the in-memory copy is dropped.
    ///
    /// # Errors
    ///
    /// Propagates the write/flush failure; the index is only updated after
    /// a successful flush.
    pub fn append(&mut self, entry: &HistoryEntry) -> io::Result<()> {
        let payload = encode_entry(entry);
        write_frame(&mut self.out, &payload)?;
        self.out.flush()?;
        let frame_len = (payload.len() + 8) as u32;
        self.index.insert(entry.window.index, (self.end, frame_len));
        self.end += u64::from(frame_len);
        Ok(())
    }

    /// Reads one spilled window back, verifying its frame checksum. `None`
    /// when the ordinal was never spilled or the frame no longer reads back
    /// intact (file removed, truncated, or damaged since).
    pub fn get(&self, window: u64) -> Option<HistoryEntry> {
        let (offset, len) = *self.index.get(&window)?;
        let mut file = File::open(&self.path).ok()?;
        file.seek(SeekFrom::Start(offset)).ok()?;
        let mut buf = vec![0u8; len as usize];
        file.read_exact(&mut buf).ok()?;
        let frame = next_frame(&buf, 0)?;
        if wire::crc32(frame.payload) != frame.crc {
            return None;
        }
        decode_entry(frame.payload)
    }

    /// `true` when ordinal `window` has a spilled frame.
    pub fn contains(&self, window: u64) -> bool {
        self.index.contains_key(&window)
    }

    /// Spilled window count.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when nothing has spilled yet.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The oldest spilled ordinal.
    pub fn min_index(&self) -> Option<u64> {
        self.index.keys().next().copied()
    }

    /// The newest spilled ordinal.
    pub fn max_index(&self) -> Option<u64> {
        self.index.keys().next_back().copied()
    }

    /// Bytes in the spill file (magic + complete frames).
    pub fn bytes(&self) -> u64 {
        self.end
    }

    /// The spill file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// --- HistoryEntry wire codec (spill frame payloads) ---------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encodes one entry as a spill frame payload: window scalars, then each
/// series (key, calls, latency sum, sparse histogram buckets), then the
/// folded-stack map. All integers little-endian, strings UTF-8
/// length-prefixed — self-contained and byte-stable for a given entry.
fn encode_entry(entry: &HistoryEntry) -> Vec<u8> {
    let w = &entry.window;
    let mut buf = Vec::with_capacity(64 + w.series.len() * 64 + entry.folded.len() * 40);
    put_u64(&mut buf, w.index);
    put_u64(&mut buf, w.span_ns);
    put_u64(&mut buf, w.completed_calls);
    put_u64(&mut buf, w.abnormalities);
    put_u32(&mut buf, w.series.len() as u32);
    for ((iface, method), agg) in &w.series {
        put_u32(&mut buf, iface.0);
        put_u16(&mut buf, method.0);
        put_u64(&mut buf, agg.calls);
        put_u64(&mut buf, agg.latency_sum_ns);
        let occupied: Vec<(usize, u64)> = agg.hist.occupied_buckets().collect();
        buf.push(occupied.len() as u8); // at most 64 buckets
        for (i, n) in occupied {
            buf.push(i as u8);
            put_u64(&mut buf, n);
        }
    }
    put_u32(&mut buf, entry.folded.len() as u32);
    for (stack, self_ns) in &entry.folded {
        put_u32(&mut buf, stack.len() as u32);
        buf.extend_from_slice(stack.as_bytes());
        put_u64(&mut buf, *self_ns);
    }
    buf
}

/// Cursor over a spill frame payload; every accessor returns `None` past
/// the end, so a short or malformed payload decodes to `None`, never a
/// panic.
struct SpillReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> SpillReader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.at..self.at + n)?;
        self.at += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes(b.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

/// Decodes a spill frame payload written by [`encode_entry`]. `None` on
/// any structural mismatch (short payload, bad UTF-8, trailing bytes).
fn decode_entry(payload: &[u8]) -> Option<HistoryEntry> {
    let mut r = SpillReader { bytes: payload, at: 0 };
    let index = r.u64()?;
    let span_ns = r.u64()?;
    let completed_calls = r.u64()?;
    let abnormalities = r.u64()?;
    let series_len = r.u32()? as usize;
    let mut series = BTreeMap::new();
    for _ in 0..series_len {
        let iface = InterfaceId(r.u32()?);
        let method = MethodIndex(r.u16()?);
        let calls = r.u64()?;
        let latency_sum_ns = r.u64()?;
        let occupied = r.u8()? as usize;
        let mut hist = LatencyHistogram::new();
        for _ in 0..occupied {
            let bucket = r.u8()? as usize;
            let count = r.u64()?;
            if bucket >= 64 || count == 0 {
                return None;
            }
            hist.add_bucket_count(bucket, count);
        }
        series.insert((iface, method), SeriesAgg { calls, latency_sum_ns, hist });
    }
    let folded_len = r.u32()? as usize;
    let mut folded = BTreeMap::new();
    for _ in 0..folded_len {
        let len = r.u32()? as usize;
        let stack = std::str::from_utf8(r.take(len)?).ok()?.to_owned();
        let self_ns = r.u64()?;
        folded.insert(stack, self_ns);
    }
    if !r.done() {
        return None;
    }
    Some(HistoryEntry {
        window: WindowSnapshot { index, span_ns, series, completed_calls, abnormalities },
        folded,
    })
}

/// The folded-stack delta `b − a` between two windows, largest regression
/// first (ties broken by stack name). Stacks present in only one window
/// count with the other side as zero; exact zero deltas are dropped.
///
/// Self-time totals are `u64` nanoseconds, so the true delta spans
/// ±`u64::MAX` — wider than `i64`. Deltas are accumulated and *ordered* in
/// `i128` and only saturated to `i64` at the output boundary, so an extreme
/// regression sorts first as `i64::MAX` instead of wrapping negative.
pub fn diff_folded(
    a: &BTreeMap<String, u64>,
    b: &BTreeMap<String, u64>,
) -> Vec<(String, i64)> {
    let mut deltas: BTreeMap<&str, i128> = BTreeMap::new();
    for (stack, &ns) in a {
        *deltas.entry(stack).or_insert(0) -= ns as i128;
    }
    for (stack, &ns) in b {
        *deltas.entry(stack).or_insert(0) += ns as i128;
    }
    let mut wide: Vec<(&str, i128)> = deltas
        .into_iter()
        .filter(|(_, delta)| *delta != 0)
        .collect();
    wide.sort_by(|x, y| y.1.cmp(&x.1).then_with(|| x.0.cmp(y.0)));
    wide.into_iter()
        .map(|(stack, delta)| {
            let clamped = delta.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
            (stack.to_owned(), clamped)
        })
        .collect()
}

/// A multi-window SLO burn-rate alert rule.
///
/// Grammar (parsed by [`crate::live::parse_burn_rule`]):
/// `burn=METRIC[:IFACE.METHOD]CMP VALUE;slo=PCT;fast=N;slow=M[;factor=F]`.
///
/// Semantics: the SLO error budget is `1 − slo/100` (as a fraction of
/// windows allowed to breach). The *burn rate* over a span of K windows is
/// `(breaching windows / K) / budget`. The alert fires when the burn rate
/// over **both** the fast and the slow span reaches `factor`, and resolves
/// when the fast span's burn rate drops back below it. The default factor,
/// `fast / (slow × budget)`, makes the conditions concrete: fire once the
/// slow span has accumulated at least a fast-span's worth of breaching
/// windows *and* at least one of them is recent; resolve once the fast
/// span is clean.
#[derive(Debug, Clone)]
pub struct BurnRule {
    /// The window-badness condition: metric, optional series scope,
    /// comparator and threshold (duration/hysteresis fields are unused).
    pub condition: AlertRule,
    /// The SLO objective in percent (e.g. `99.9`), strictly within (0, 100).
    pub slo_percent: f64,
    /// Fast span, in tumbling windows.
    pub fast: usize,
    /// Slow span, in tumbling windows (must be > `fast`).
    pub slow: usize,
    /// Burn-rate factor both spans must reach to fire.
    pub factor: f64,
}

impl BurnRule {
    /// The SLO error budget as a fraction of breaching windows.
    pub fn budget(&self) -> f64 {
        1.0 - self.slo_percent / 100.0
    }

    /// The default firing factor: a fast-span's worth of breaching windows
    /// within the slow span.
    pub fn default_factor(fast: usize, slow: usize, budget: f64) -> f64 {
        fast as f64 / (slow as f64 * budget)
    }

    /// Burn rate over the newest `span` retained windows. Windows not yet
    /// retained count as calm — the denominator is always the configured
    /// span, so a cold store under-alarms rather than over-alarms.
    pub fn burn_rate(&self, history: &WindowHistory, span: usize) -> f64 {
        let breaching = history
            .iter()
            .rev()
            .take(span)
            .filter(|e| self.condition.breaches(self.condition.evaluate(&e.window)))
            .count();
        let budget = self.budget();
        if budget <= 0.0 {
            return f64::INFINITY;
        }
        breaching as f64 / span as f64 / budget
    }
}

/// One burn rule plus its firing state and exported series.
#[derive(Debug)]
pub struct BurnState {
    rule: BurnRule,
    active: bool,
    active_gauge: Gauge,
    fast_gauge: Gauge,
    slow_gauge: Gauge,
    transitions: Counter,
}

impl BurnState {
    /// Registers the rule's exported series and starts calm.
    pub fn new(rule: BurnRule) -> BurnState {
        let registry = MetricsRegistry::global();
        let labels = [("alert", rule.condition.name.as_str())];
        let active_gauge = registry.gauge_with(
            "causeway_live_burn_active",
            "1 while the named burn-rate alert is firing.",
            &labels,
        );
        active_gauge.set(0);
        BurnState {
            active: false,
            active_gauge,
            fast_gauge: registry.gauge_with(
                "causeway_live_burn_fast_milli",
                "Fast-span SLO burn rate, in thousandths.",
                &labels,
            ),
            slow_gauge: registry.gauge_with(
                "causeway_live_burn_slow_milli",
                "Slow-span SLO burn rate, in thousandths.",
                &labels,
            ),
            transitions: registry.counter_with(
                "causeway_live_burn_transitions_total",
                "Burn-rate alert firing/resolving transitions.",
                &labels,
            ),
            rule,
        }
    }

    /// The rule being evaluated.
    pub fn rule(&self) -> &BurnRule {
        &self.rule
    }

    /// `true` while the excursion is unresolved.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Re-evaluates against the history store after a window closed (the
    /// just-closed window must already be pushed); returns the transition
    /// completed by this window, if any.
    pub fn step(&mut self, history: &WindowHistory) -> Option<AlertEvent> {
        let burn_fast = self.rule.burn_rate(history, self.rule.fast);
        let burn_slow = self.rule.burn_rate(history, self.rule.slow);
        let milli = |burn: f64| (burn * 1000.0).min(i64::MAX as f64) as i64;
        self.fast_gauge.set(milli(burn_fast));
        self.slow_gauge.set(milli(burn_slow));
        let window_index = history.latest().map(|e| e.window.index).unwrap_or(0);
        if !self.active && burn_fast >= self.rule.factor && burn_slow >= self.rule.factor {
            self.active = true;
            self.active_gauge.set(1);
            self.transitions.inc();
            return Some(AlertEvent {
                alert: self.rule.condition.name.clone(),
                fired: true,
                window_index,
                at_ms: wall_clock_ms(),
                value: burn_slow,
                threshold: self.rule.factor,
                exemplars: Vec::new(),
            });
        }
        if self.active && burn_fast < self.rule.factor {
            self.active = false;
            self.active_gauge.set(0);
            self.transitions.inc();
            return Some(AlertEvent {
                alert: self.rule.condition.name.clone(),
                fired: false,
                window_index,
                at_ms: wall_clock_ms(),
                value: burn_fast,
                threshold: self.rule.factor,
                exemplars: Vec::new(),
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::{AlertCmp, AlertMetric};
    use std::collections::BTreeMap;

    fn snapshot(index: u64, p_latency_ns: u64, calls: u64) -> WindowSnapshot {
        let mut series = BTreeMap::new();
        let mut agg = SeriesAgg::default();
        for _ in 0..calls {
            agg.record(p_latency_ns);
        }
        series.insert(
            (causeway_core::ids::InterfaceId(0), causeway_core::ids::MethodIndex(0)),
            agg,
        );
        WindowSnapshot {
            index,
            span_ns: 1_000_000_000,
            series,
            completed_calls: calls,
            abnormalities: 0,
        }
    }

    fn entry(index: u64, latency_ns: u64) -> HistoryEntry {
        let mut folded = BTreeMap::new();
        folded.insert(format!("root;w{index}"), latency_ns);
        HistoryEntry { window: snapshot(index, latency_ns, 4), folded }
    }

    #[test]
    fn ring_caps_by_window_count_and_counts_evictions() {
        let mut history = WindowHistory::new(4, usize::MAX);
        let before = history.evictions();
        for i in 0..10u64 {
            history.push(entry(i, 1000));
        }
        assert_eq!(history.len(), 4);
        assert_eq!(history.evictions() - before, 6);
        assert!(history.get(5).is_none(), "evicted ordinal");
        assert_eq!(history.get(9).unwrap().window.index, 9);
        assert_eq!(history.get(6).unwrap().window.index, 6);
        assert!(history.get(10).is_none(), "not yet closed");
    }

    #[test]
    fn ring_caps_by_bytes() {
        let one = entry(0, 1000).approx_bytes();
        // Room for roughly three entries; the count cap would allow eight.
        let mut history = WindowHistory::new(8, one * 3 + one / 2);
        for i in 0..8u64 {
            history.push(entry(i, 1000));
        }
        assert!(history.len() < 8, "byte cap bites first: {}", history.len());
        assert!(history.approx_bytes() <= history.cap_bytes());
    }

    /// A unique temp path that cleans itself up when the test ends.
    struct TempSpill(std::path::PathBuf);

    impl TempSpill {
        fn new(tag: &str) -> TempSpill {
            TempSpill(std::env::temp_dir().join(format!(
                "causeway_history_spill_{tag}_{}.cwhist",
                std::process::id()
            )))
        }
    }

    impl Drop for TempSpill {
        fn drop(&mut self) {
            std::fs::remove_file(&self.0).ok();
        }
    }

    #[test]
    fn spill_entry_codec_round_trips() {
        let mut e = entry(42, 123_456);
        e.window.series.entry((causeway_core::ids::InterfaceId(3), causeway_core::ids::MethodIndex(1))).or_default().record(77);
        e.folded.insert("root;deep;frame".to_owned(), u64::MAX);
        let payload = encode_entry(&e);
        assert_eq!(decode_entry(&payload), Some(e));
        // Every strict prefix is structurally short — never a panic, never
        // a partially-decoded entry.
        for cut in 0..payload.len() {
            assert_eq!(decode_entry(&payload[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn eviction_spills_and_lookup_serves_past_the_ring() {
        let spill = TempSpill::new("evict");
        let mut history = WindowHistory::new(4, usize::MAX);
        history.enable_spill(&spill.0).unwrap();
        let spilled_before = history.spilled();
        for i in 0..10u64 {
            history.push(entry(i, 1000 + i));
        }
        assert_eq!(history.len(), 4, "ring still caps at 4");
        assert_eq!(history.spilled() - spilled_before, 6, "six evictions spilled");
        assert_eq!(history.spill().unwrap().len(), 6);
        assert_eq!(history.spill().unwrap().min_index(), Some(0));
        assert_eq!(history.spill().unwrap().max_index(), Some(5));
        // Evicted ordinals come back from disk, identical to what went in.
        for i in 0..6u64 {
            assert!(history.get(i).is_none(), "ordinal {i} left the ring");
            let restored = history.lookup(i).expect("served from spill");
            assert_eq!(*restored, entry(i, 1000 + i), "ordinal {i}");
        }
        // Ring ordinals are still served without touching the disk.
        assert!(matches!(history.lookup(9), Some(Cow::Borrowed(_))));
        assert!(history.lookup(10).is_none(), "never closed");
        // Range queries stitch both tiers, oldest first.
        let range = history.range(0, 9, 100);
        assert_eq!(range.len(), 10);
        for (i, e) in range.iter().enumerate() {
            assert_eq!(e.window.index, i as u64);
        }
        assert_eq!(history.range(0, 9, 3).len(), 3, "max caps the fetch");
    }

    #[test]
    fn range_clamps_hostile_bounds_to_known_ordinals() {
        // An empty store answers instantly whatever the bounds.
        let empty = WindowHistory::new(4, usize::MAX);
        assert!(empty.range(0, u64::MAX, 100).is_empty());
        let spill = TempSpill::new("hostile_range");
        let mut history = WindowHistory::new(4, usize::MAX);
        history.enable_spill(&spill.0).unwrap();
        for i in 0..10u64 {
            history.push(entry(i, 1000 + i));
        }
        // The full-u64 span a client can request must finish promptly (it
        // previously iterated every ordinal in from..=to) and still serve
        // the real windows, oldest first and capped at `max`.
        let all = history.range(0, u64::MAX, 100);
        assert_eq!(all.len(), 10);
        let capped = history.range(0, u64::MAX, 5);
        assert_eq!(capped.len(), 5);
        assert_eq!(capped[0].window.index, 0);
        assert_eq!(capped[4].window.index, 4);
        // Bounds entirely outside the known ordinals resolve to nothing.
        assert!(history.range(10, u64::MAX, 100).is_empty());
        assert!(history.range(u64::MAX, 0, 100).is_empty());
    }

    #[test]
    fn range_serves_spill_only_stores_after_a_restart() {
        let spill = TempSpill::new("restart_range");
        {
            let mut s = HistorySpill::open(&spill.0).unwrap();
            for i in 3..7u64 {
                s.append(&entry(i, 4000 + i)).unwrap();
            }
        }
        // A fresh store (empty ring) reattached to the old spill file must
        // still serve the spilled ordinals through range().
        let mut history = WindowHistory::new(4, usize::MAX);
        history.enable_spill(&spill.0).unwrap();
        assert!(history.is_empty());
        let served = history.range(0, u64::MAX, 100);
        assert_eq!(served.len(), 4);
        assert_eq!(served[0].window.index, 3);
        assert_eq!(served[3].window.index, 6);
    }

    #[test]
    fn spill_open_refuses_to_overwrite_foreign_files() {
        let spill = TempSpill::new("foreign");
        std::fs::write(&spill.0, b"important unrelated data").unwrap();
        let err = HistorySpill::open(&spill.0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(
            std::fs::read(&spill.0).unwrap(),
            b"important unrelated data",
            "the foreign file is untouched"
        );
        // Empty files are fair game — they carry nothing to destroy.
        std::fs::write(&spill.0, b"").unwrap();
        let mut s = HistorySpill::open(&spill.0).unwrap();
        s.append(&entry(0, 1)).unwrap();
        assert_eq!(s.get(0), Some(entry(0, 1)));
    }

    #[test]
    fn spill_reopen_rebuilds_index_and_truncates_torn_tail() {
        let spill = TempSpill::new("reopen");
        {
            let mut s = HistorySpill::open(&spill.0).unwrap();
            for i in 0..5u64 {
                s.append(&entry(i, 2000 + i)).unwrap();
            }
        }
        // A crashed writer leaves a torn frame at the tail.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&spill.0).unwrap();
            f.write_all(&[0x55, 0xAA, 0x00, 0x99, 0x12]).unwrap();
        }
        let torn_len = std::fs::metadata(&spill.0).unwrap().len();
        let reopened = HistorySpill::open(&spill.0).unwrap();
        assert_eq!(reopened.len(), 5, "all complete frames survive");
        assert_eq!(reopened.get(3), Some(entry(3, 2003)));
        assert_eq!(reopened.bytes(), torn_len - 5, "torn tail truncated");
        assert_eq!(std::fs::metadata(&spill.0).unwrap().len(), reopened.bytes());
        // And the reopened writer appends cleanly after the repair.
        let mut reopened = reopened;
        reopened.append(&entry(5, 2005)).unwrap();
        assert_eq!(reopened.get(5), Some(entry(5, 2005)));
    }

    #[test]
    fn folded_diff_orders_regressions_first() {
        let mut a = BTreeMap::new();
        a.insert("root;fast".to_owned(), 100u64);
        a.insert("root;gone".to_owned(), 40u64);
        let mut b = BTreeMap::new();
        b.insert("root;fast".to_owned(), 5_000u64);
        b.insert("root;new".to_owned(), 70u64);
        let diff = diff_folded(&a, &b);
        assert_eq!(diff[0], ("root;fast".to_owned(), 4_900));
        assert_eq!(diff[1], ("root;new".to_owned(), 70));
        assert_eq!(diff[2], ("root;gone".to_owned(), -40));
    }

    #[test]
    fn folded_diff_saturates_instead_of_wrapping_at_the_i64_boundary() {
        // A u64::MAX-sized regression does not fit in i64; it must sort
        // first and clamp to i64::MAX, not wrap to -1.
        let mut a = BTreeMap::new();
        a.insert("root;huge".to_owned(), 0u64);
        a.insert("root;drop".to_owned(), u64::MAX);
        let mut b = BTreeMap::new();
        b.insert("root;huge".to_owned(), u64::MAX);
        b.insert("root;small".to_owned(), 3u64);
        let diff = diff_folded(&a, &b);
        assert_eq!(diff[0], ("root;huge".to_owned(), i64::MAX));
        assert_eq!(diff[1], ("root;small".to_owned(), 3));
        assert_eq!(diff[2], ("root;drop".to_owned(), i64::MIN));
        // Equal huge values cancel exactly — no residue from clamping.
        assert!(diff_folded(&b, &b).is_empty());
    }

    fn burn_rule(fast: usize, slow: usize) -> BurnRule {
        let budget = 1.0 - 99.9 / 100.0;
        BurnRule {
            condition: AlertRule {
                name: "burn-test".to_owned(),
                metric: AlertMetric::P95,
                series: None,
                cmp: AlertCmp::Above,
                fire_threshold: 1_000_000.0,
                resolve_threshold: 1_000_000.0,
                for_windows: 1,
                escalate: None,
                deescalate: None,
            },
            slo_percent: 99.9,
            fast,
            slow,
            factor: BurnRule::default_factor(fast, slow, budget),
        }
    }

    #[test]
    fn one_window_spike_never_fires_but_sustained_regression_does() {
        let mut history = WindowHistory::new(32, usize::MAX);
        let mut state = BurnState::new(burn_rule(3, 24));
        let mut transitions = Vec::new();
        // Calm, one-window spike, calm, sustained regression, recovery.
        let profile: Vec<u64> = [10_000; 4]
            .into_iter()
            .chain([5_000_000]) // spike: a single breaching window
            .chain([10_000; 5])
            .chain([5_000_000; 6]) // regression: six breaching windows
            .chain([10_000; 6])
            .collect();
        for (i, latency) in profile.iter().enumerate() {
            history.push(entry(i as u64, *latency));
            if let Some(event) = state.step(&history) {
                transitions.push(event);
            }
        }
        assert_eq!(transitions.len(), 2, "one fire + one resolve: {transitions:?}");
        assert!(transitions[0].fired);
        // Fires on the regression (ordinal 11), not on the spike (ordinal
        // 4): the spike alone never accumulates a fast-span's worth of bad
        // windows in the slow span, but its budget consumption still counts,
        // so the regression's second window completes the slow condition.
        assert_eq!(transitions[0].window_index, 11);
        assert!(!transitions[1].fired);
        // Resolves once the fast span (3 windows) is clean again.
        assert_eq!(transitions[1].window_index, 18);
        assert!(!state.active());
    }
}
