//! On-line causality analysis — the paper's future-work direction "to apply
//! the global causality capturing technique from the on-line perspective
//! for application-level system management".
//!
//! [`OnlineAnalyzer`] consumes probe records *as they are produced* (in any
//! arrival order — records of one chain are re-sequenced by their event
//! numbers) and emits management events the moment they are knowable:
//! a call completed (with its compensated latency), a chain went idle, an
//! abnormal transition appeared. Unlike the off-line [`crate::dscg::Dscg`]
//! pass, no quiescence is required — which is precisely what an adaptive
//! runtime manager needs.

use causeway_core::event::{CallKind, TraceEvent};
use causeway_core::metrics::{Counter, Gauge, MetricsRegistry};
use causeway_core::pool;
use causeway_core::record::{FunctionKey, ProbeRecord};
use causeway_core::sink::{Chunk, LogStore};
use causeway_core::uuid::Uuid;
use std::collections::{BTreeMap, HashMap};
use std::sync::OnceLock;
use std::time::Duration;

/// Self-observability handles for on-line analysis, aggregated across every
/// analyzer in the process (an analyzer instance is not a stable series
/// identity — monitors create them freely).
struct OnlineMetrics {
    records: Counter,
    completed: Counter,
    abnormalities: Counter,
    open_chains: Gauge,
    buffered: Gauge,
    lag: Gauge,
}

fn online_metrics() -> &'static OnlineMetrics {
    static METRICS: OnceLock<OnlineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = MetricsRegistry::global();
        OnlineMetrics {
            records: r.counter(
                "causeway_online_records_total",
                "probe records processed by on-line analyzers",
            ),
            completed: r.counter(
                "causeway_online_calls_completed_total",
                "invocations the on-line analyzers saw complete",
            ),
            abnormalities: r.counter(
                "causeway_online_abnormalities_total",
                "abnormal Figure-4 transitions reported on-line",
            ),
            open_chains: r.gauge(
                "causeway_online_open_chains",
                "causal chains with open invocations or buffered records",
            ),
            buffered: r.gauge(
                "causeway_online_resequence_buffered",
                "records buffered waiting for out-of-order predecessors",
            ),
            lag: r.gauge(
                "causeway_online_consumption_lag_records",
                "records still in the polled store after the last poll",
            ),
        }
    })
}

/// Forwards an event to the caller's sink, counting the countable ones.
fn emit(sink: &mut impl FnMut(OnlineEvent), event: OnlineEvent) {
    match &event {
        OnlineEvent::CallCompleted { .. } => online_metrics().completed.add(1),
        OnlineEvent::Abnormality { .. } => online_metrics().abnormalities.add(1),
        OnlineEvent::ChainIdle { .. } => {}
    }
    sink(event);
}

/// A point-in-time description of one chain with unfinished work, as
/// reported by [`OnlineAnalyzer::open_chain_summaries`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenChainSummary {
    /// The chain's Function UUID.
    pub chain: Uuid,
    /// Open (not yet completed) invocations on the Figure-4 stack.
    pub open_calls: usize,
    /// The innermost open invocation, when any.
    pub innermost: Option<FunctionKey>,
    /// Records buffered waiting for out-of-order predecessors.
    pub buffered_records: usize,
    /// Invocations completed on this chain so far.
    pub completed_calls: usize,
    /// Highest contiguous event number processed.
    pub processed_seq: u64,
}

/// A management event emitted by the on-line analyzer.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineEvent {
    /// An invocation finished (its final probe was processed). `latency_ns`
    /// is the paper's `L(F)` — probe-overhead compensated — when wall
    /// stamps are present.
    CallCompleted {
        /// The chain the call belongs to.
        chain: Uuid,
        /// What was invoked.
        func: FunctionKey,
        /// How it was invoked (sync, one-way, collocated, …).
        kind: CallKind,
        /// Nesting depth within the chain (0 = top level).
        depth: usize,
        /// Compensated end-to-end latency, when measurable.
        latency_ns: Option<u64>,
    },
    /// A chain has no open invocations and no buffered records — e.g. a
    /// transaction boundary.
    ChainIdle {
        /// The chain.
        chain: Uuid,
        /// Invocations completed on it so far.
        completed_calls: usize,
    },
    /// Adjacent records followed none of the legal Figure-4 transitions.
    Abnormality {
        /// The chain.
        chain: Uuid,
        /// Event number of the offending record.
        at_seq: u64,
        /// Description.
        message: String,
    },
}

#[derive(Debug)]
struct OpenCall {
    func: FunctionKey,
    kind: CallKind,
    stub_start: Option<ProbeRecord>,
    skel_start: Option<ProbeRecord>,
    skel_end: Option<ProbeRecord>,
    /// Probe spans of completed children, for `O_F` compensation.
    child_overhead_ns: u64,
}

#[derive(Debug, Default)]
struct ChainState {
    /// The highest event number processed so far (dense numbering: the next
    /// record to process is `processed + 1`).
    processed: u64,
    /// Out-of-order arrivals waiting for their predecessors.
    pending: BTreeMap<u64, ProbeRecord>,
    stack: Vec<OpenCall>,
    completed_calls: usize,
}

/// Incremental, order-tolerant causality analyzer.
///
/// # Example
///
/// ```
/// use causeway_analyzer::online::{OnlineAnalyzer, OnlineEvent};
/// let mut analyzer = OnlineAnalyzer::new();
/// let mut events = Vec::new();
/// // records arrive from the wire...
/// # let records: Vec<causeway_core::record::ProbeRecord> = Vec::new();
/// for record in records {
///     analyzer.ingest(record, &mut |e| events.push(e));
/// }
/// ```
#[derive(Debug, Default)]
pub struct OnlineAnalyzer {
    chains: HashMap<Uuid, ChainState>,
}

impl OnlineAnalyzer {
    /// Creates an empty analyzer.
    pub fn new() -> OnlineAnalyzer {
        OnlineAnalyzer::default()
    }

    /// Chains with unfinished work (open invocations or buffered records).
    pub fn open_chains(&self) -> usize {
        self.chains
            .values()
            .filter(|c| !c.stack.is_empty() || !c.pending.is_empty())
            .count()
    }

    /// Records buffered waiting for out-of-order predecessors.
    pub fn buffered_records(&self) -> usize {
        self.chains.values().map(|c| c.pending.len()).sum()
    }

    /// A point-in-time description of every chain with unfinished work, for
    /// live status endpoints. Sorted by chain UUID for stable output.
    pub fn open_chain_summaries(&self) -> Vec<OpenChainSummary> {
        let mut out: Vec<OpenChainSummary> = self
            .chains
            .iter()
            .filter(|(_, c)| !c.stack.is_empty() || !c.pending.is_empty())
            .map(|(&chain, c)| OpenChainSummary {
                chain,
                open_calls: c.stack.len(),
                innermost: c.stack.last().map(|o| o.func),
                buffered_records: c.pending.len(),
                completed_calls: c.completed_calls,
                processed_seq: c.processed,
            })
            .collect();
        out.sort_by_key(|s| s.chain);
        out
    }

    /// Drops all state for a chain, returning `true` if it existed.
    ///
    /// Long-running consumers call this after a [`OnlineEvent::ChainIdle`]
    /// so completed transactions do not accumulate forever. Forgetting a
    /// chain mid-flight is safe but lossy: later records for it start a
    /// fresh state and will be reported as a sequence gap.
    pub fn forget_chain(&mut self, chain: Uuid) -> bool {
        self.chains.remove(&chain).is_some()
    }

    /// Publishes this analyzer's instantaneous state (open chains,
    /// re-sequencing buffer depth) to the process-global metrics registry.
    ///
    /// Called automatically by the batch consumption paths
    /// ([`Self::poll_store`], [`Self::follow_store`], [`Self::drain_store`],
    /// [`Self::finish`]); both queries walk every chain, so the per-record
    /// [`Self::ingest`] path deliberately does not.
    pub fn publish_metrics(&self) {
        let m = online_metrics();
        m.open_chains.set(self.open_chains() as i64);
        m.buffered.set(self.buffered_records() as i64);
    }

    /// Feeds one record; `sink` receives any events it triggers.
    pub fn ingest(&mut self, record: ProbeRecord, sink: &mut impl FnMut(OnlineEvent)) {
        online_metrics().records.add(1);
        let chain = record.uuid;
        let state = self.chains.entry(chain).or_default();
        state.pending.insert(record.seq, record);
        // Drain the contiguous prefix.
        while let Some(record) = {
            let next = state.processed + 1;
            state.pending.remove(&next)
        } {
            state.processed = record.seq;
            Self::apply(chain, state, record, sink);
        }
        if state.stack.is_empty() && state.pending.is_empty() && state.completed_calls > 0 {
            emit(sink, OnlineEvent::ChainIdle { chain, completed_calls: state.completed_calls });
        }
    }

    /// Feeds every record of a sealed chunk, in the producing thread's
    /// push order.
    pub fn ingest_chunk(&mut self, chunk: Chunk, sink: &mut impl FnMut(OnlineEvent)) {
        for record in chunk.records {
            self.ingest(record, sink);
        }
    }

    /// Feeds a batch of records, processing distinct chains in parallel on
    /// [`pool::configured_threads`] workers.
    pub fn ingest_batch(&mut self, records: Vec<ProbeRecord>, sink: &mut impl FnMut(OnlineEvent)) {
        self.ingest_batch_with_threads(records, pool::configured_threads(), sink);
    }

    /// Like [`Self::ingest_batch`] with an explicit worker count.
    ///
    /// The batch is sharded by chain (Function UUID) — a chain's records are
    /// applied by exactly one worker, against that chain's carried-over
    /// state — and events reach `sink` grouped by chain in the batch's
    /// first-appearance order, so the output is identical at any thread
    /// count. Within one chain the event stream matches per-record
    /// [`Self::ingest`] calls, except that [`OnlineEvent::ChainIdle`] is
    /// evaluated once per chain at the end of the batch instead of after
    /// every record.
    pub fn ingest_batch_with_threads(
        &mut self,
        records: Vec<ProbeRecord>,
        threads: usize,
        sink: &mut impl FnMut(OnlineEvent),
    ) {
        online_metrics().records.add(records.len() as u64);
        // Shard by chain in first-appearance order.
        let mut shard_of: HashMap<Uuid, usize> = HashMap::new();
        let mut shards: Vec<(Uuid, Vec<ProbeRecord>)> = Vec::new();
        for record in records {
            let idx = *shard_of.entry(record.uuid).or_insert_with(|| {
                shards.push((record.uuid, Vec::new()));
                shards.len() - 1
            });
            shards[idx].1.push(record);
        }
        // Move each touched chain's state out to its worker.
        let work: Vec<(Uuid, ChainState, Vec<ProbeRecord>)> = shards
            .into_iter()
            .map(|(uuid, recs)| (uuid, self.chains.remove(&uuid).unwrap_or_default(), recs))
            .collect();
        let done = pool::par_map_vec(work, threads, |(chain, mut state, recs)| {
            let mut events = Vec::new();
            for record in recs {
                state.pending.insert(record.seq, record);
                // Drain the contiguous prefix, as `ingest` does.
                while let Some(record) = {
                    let next = state.processed + 1;
                    state.pending.remove(&next)
                } {
                    state.processed = record.seq;
                    Self::apply(chain, &mut state, record, &mut |e| events.push(e));
                }
            }
            if state.stack.is_empty() && state.pending.is_empty() && state.completed_calls > 0 {
                events
                    .push(OnlineEvent::ChainIdle { chain, completed_calls: state.completed_calls });
            }
            (chain, state, events)
        });
        for (chain, state, events) in done {
            self.chains.insert(chain, state);
            for event in events {
                sink(event);
            }
        }
    }

    /// Consumes every chunk a live store has sealed so far, without
    /// blocking. Returns the number of records ingested. Safe while
    /// producer threads keep pushing — this is the on-line consumption
    /// path: no quiescence, no post-hoc [`causeway_core::runlog::RunLog`].
    pub fn poll_store(&mut self, store: &LogStore, sink: &mut impl FnMut(OnlineEvent)) -> usize {
        let mut ingested = 0;
        while let Some(chunk) = store.try_recv_chunk() {
            ingested += chunk.len();
            self.ingest_chunk(chunk, sink);
        }
        online_metrics().lag.set(store.len() as i64);
        self.publish_metrics();
        ingested
    }

    /// Waits up to `timeout` for a producer to seal a chunk, then consumes
    /// it and everything else already available. Returns the number of
    /// records ingested (0 on timeout) — the pump loop primitive for a
    /// dedicated analysis thread.
    pub fn follow_store(
        &mut self,
        store: &LogStore,
        timeout: Duration,
        sink: &mut impl FnMut(OnlineEvent),
    ) -> usize {
        match store.recv_chunk_timeout(timeout) {
            Some(chunk) => {
                let mut ingested = chunk.len();
                self.ingest_chunk(chunk, sink);
                ingested += self.poll_store(store, sink);
                ingested
            }
            None => 0,
        }
    }

    /// End-of-stream sweep: asks producers to flush their open chunks and
    /// consumes what is already sealed. Call once producers are quiescent
    /// (then the store is left empty), and follow with [`Self::finish`].
    pub fn drain_store(&mut self, store: &LogStore, sink: &mut impl FnMut(OnlineEvent)) -> usize {
        store.request_flush();
        store.flush_current_thread();
        self.poll_store(store, sink)
    }

    /// Forces out everything still buffered (end of run): gaps are reported
    /// as abnormalities, open invocations as incomplete.
    pub fn finish(&mut self, sink: &mut impl FnMut(OnlineEvent)) {
        let mut chains: Vec<Uuid> = self.chains.keys().copied().collect();
        chains.sort();
        for chain in chains {
            let mut state = self.chains.remove(&chain).expect("key listed");
            while let Some((&seq, _)) = state.pending.iter().next() {
                if seq != state.processed + 1 {
                    emit(sink, OnlineEvent::Abnormality {
                        chain,
                        at_seq: seq,
                        message: format!(
                            "gap in event numbers: expected {}, have {seq}",
                            state.processed + 1
                        ),
                    });
                }
                let record = state.pending.remove(&seq).expect("key just read");
                state.processed = seq;
                Self::apply(chain, &mut state, record, sink);
            }
            for open in state.stack.drain(..).rev() {
                emit(sink, OnlineEvent::Abnormality {
                    chain,
                    at_seq: state.processed,
                    message: format!("invocation {} never completed", open.func),
                });
            }
        }
        self.publish_metrics();
    }

    /// The incremental Figure-4 state machine (mirrors the off-line parser
    /// in [`crate::dscg`]).
    fn apply(
        chain: Uuid,
        state: &mut ChainState,
        record: ProbeRecord,
        sink: &mut impl FnMut(OnlineEvent),
    ) {
        let top_matches = state
            .stack
            .last()
            .map(|open| open.func == record.func)
            .unwrap_or(false);
        match record.event {
            TraceEvent::StubStart => {
                state.stack.push(OpenCall {
                    func: record.func,
                    kind: record.kind,
                    stub_start: Some(record),
                    skel_start: None,
                    skel_end: None,
                    child_overhead_ns: 0,
                });
            }
            TraceEvent::SkelStart => {
                if top_matches
                    && state.stack.last().map(|o| o.skel_start.is_none()).unwrap_or(false)
                {
                    state.stack.last_mut().expect("matched").skel_start = Some(record);
                } else if state.stack.is_empty() && record.kind == CallKind::Oneway {
                    state.stack.push(OpenCall {
                        func: record.func,
                        kind: record.kind,
                        stub_start: None,
                        skel_start: Some(record),
                        skel_end: None,
                        child_overhead_ns: 0,
                    });
                } else {
                    emit(sink, OnlineEvent::Abnormality {
                        chain,
                        at_seq: record.seq,
                        message: format!("unexpected skel_start for {}", record.func),
                    });
                }
            }
            TraceEvent::SkelEnd => {
                if top_matches
                    && state.stack.last().map(|o| o.skel_start.is_some()).unwrap_or(false)
                {
                    let is_oneway_root = {
                        let open = state.stack.last().expect("matched");
                        open.kind == CallKind::Oneway && open.stub_start.is_none()
                    };
                    state.stack.last_mut().expect("matched").skel_end = Some(record);
                    if is_oneway_root {
                        Self::complete_top(chain, state, sink);
                    }
                } else {
                    emit(sink, OnlineEvent::Abnormality {
                        chain,
                        at_seq: record.seq,
                        message: format!("unexpected skel_end for {}", record.func),
                    });
                }
            }
            TraceEvent::StubEnd => {
                let legal = top_matches && {
                    let open = state.stack.last().expect("matched");
                    match open.kind {
                        CallKind::Oneway => open.stub_start.is_some() && open.skel_end.is_none(),
                        _ => open.skel_end.is_some(),
                    }
                };
                if legal {
                    let depth = state.stack.len() - 1;
                    let open = state.stack.last().expect("matched");
                    let latency = compensated_latency(open, &record);
                    let func = open.func;
                    let kind = open.kind;
                    // The one-way stub side only confirms the *send*; the
                    // call completes on its child chain (skeleton side), so
                    // emitting here would double-count the invocation.
                    let is_oneway_send = open.kind == CallKind::Oneway && open.skel_end.is_none();
                    // Charge this call's caller-side probe spans to the
                    // parent's overhead accumulator.
                    let caller_spans = caller_side_spans(open, &record);
                    state.stack.pop();
                    if let Some(parent) = state.stack.last_mut() {
                        parent.child_overhead_ns += caller_spans;
                    }
                    if !is_oneway_send {
                        state.completed_calls += 1;
                        emit(
                            sink,
                            OnlineEvent::CallCompleted { chain, func, kind, depth, latency_ns: latency },
                        );
                    }
                } else {
                    emit(sink, OnlineEvent::Abnormality {
                        chain,
                        at_seq: record.seq,
                        message: format!("stub_end out of order for {}", record.func),
                    });
                    // Restart heuristic: drop the confused frame.
                    if top_matches {
                        state.stack.pop();
                    }
                }
            }
        }
    }

    fn complete_top(chain: Uuid, state: &mut ChainState, sink: &mut impl FnMut(OnlineEvent)) {
        let open = state.stack.pop().expect("caller checked");
        let depth = state.stack.len();
        // One-way skeleton side: latency from the skel window.
        let latency = match (&open.skel_start, &open.skel_end) {
            (Some(start), Some(end)) => match (start.wall_end, end.wall_start) {
                (Some(s), Some(e)) => Some(e.saturating_sub(s).saturating_sub(open.child_overhead_ns)),
                _ => None,
            },
            _ => None,
        };
        state.completed_calls += 1;
        emit(sink, OnlineEvent::CallCompleted {
            chain,
            func: open.func,
            kind: open.kind,
            depth,
            latency_ns: latency,
        });
    }
}

/// `L(F)` for a closing synchronous/one-way-stub-side call.
fn compensated_latency(open: &OpenCall, stub_end: &ProbeRecord) -> Option<u64> {
    let window = match open.kind {
        CallKind::Collocated | CallKind::CustomMarshal => {
            let end = open.skel_end.as_ref()?.wall_start?;
            let start = open.skel_start.as_ref()?.wall_end?;
            end.saturating_sub(start)
        }
        _ => {
            let end = stub_end.wall_start?;
            let start = open.stub_start.as_ref()?.wall_end?;
            end.saturating_sub(start)
        }
    };
    Some(window.saturating_sub(open.child_overhead_ns))
}

/// The probe spans of a completed call that sat inside its caller's window.
fn caller_side_spans(open: &OpenCall, stub_end: &ProbeRecord) -> u64 {
    let mut spans = 0u64;
    let records: [&Option<ProbeRecord>; 3] = [&open.stub_start, &open.skel_start, &open.skel_end];
    for record in records.into_iter().flatten() {
        // One-way children only occupy the caller with their stub probes.
        if open.kind == CallKind::Oneway && record.event.is_skel_side() {
            continue;
        }
        spans += record.wall_span().unwrap_or(0);
    }
    spans += stub_end.wall_span().unwrap_or(0);
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use causeway_core::ids::*;
    use causeway_core::record::CallSite;

    fn rec(
        uuid: u128,
        seq: u64,
        event: TraceEvent,
        kind: CallKind,
        object: u64,
        wall: (u64, u64),
    ) -> ProbeRecord {
        ProbeRecord {
            uuid: Uuid(uuid),
            seq,
            event,
            kind,
            site: CallSite {
                node: NodeId(0),
                process: ProcessId(0),
                thread: LogicalThreadId(0),
            },
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(object)),
            wall_start: Some(wall.0),
            wall_end: Some(wall.1),
            cpu_start: None,
            cpu_end: None,
            oneway_child: None,
            oneway_parent: None,
        }
    }

    fn sync_call(uuid: u128, base_seq: u64, object: u64, t0: u64) -> Vec<ProbeRecord> {
        vec![
            rec(uuid, base_seq, TraceEvent::StubStart, CallKind::Sync, object, (t0, t0 + 5)),
            rec(uuid, base_seq + 1, TraceEvent::SkelStart, CallKind::Sync, object, (t0 + 10, t0 + 12)),
            rec(uuid, base_seq + 2, TraceEvent::SkelEnd, CallKind::Sync, object, (t0 + 90, t0 + 92)),
            rec(uuid, base_seq + 3, TraceEvent::StubEnd, CallKind::Sync, object, (t0 + 100, t0 + 103)),
        ]
    }

    fn collect(records: Vec<ProbeRecord>) -> (Vec<OnlineEvent>, OnlineAnalyzer) {
        let mut analyzer = OnlineAnalyzer::new();
        let mut events = Vec::new();
        for record in records {
            analyzer.ingest(record, &mut |e| events.push(e));
        }
        (events, analyzer)
    }

    #[test]
    fn in_order_call_completes_with_latency() {
        let (events, analyzer) = collect(sync_call(1, 1, 7, 0));
        assert_eq!(analyzer.open_chains(), 0);
        assert_eq!(
            events,
            vec![
                OnlineEvent::CallCompleted {
                    chain: Uuid(1),
                    func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(7)),
                    kind: CallKind::Sync,
                    depth: 0,
                    latency_ns: Some(95), // 100 − 5, no children
                },
                OnlineEvent::ChainIdle { chain: Uuid(1), completed_calls: 1 },
            ]
        );
    }

    #[test]
    fn out_of_order_arrival_is_resequenced() {
        let mut records = sync_call(1, 1, 7, 0);
        records.swap(1, 3); // skeleton events arrive late (different process)
        records.swap(0, 2);
        let (events, analyzer) = collect(records);
        assert_eq!(analyzer.buffered_records(), 0);
        assert!(matches!(events[0], OnlineEvent::CallCompleted { latency_ns: Some(95), .. }));
    }

    #[test]
    fn nested_calls_report_depth_and_compensated_latency() {
        // Parent window [5, 500]; child probes cost 5+2+2+3 = 12.
        let mut records = vec![
            rec(1, 1, TraceEvent::StubStart, CallKind::Sync, 1, (0, 5)),
            rec(1, 2, TraceEvent::SkelStart, CallKind::Sync, 1, (10, 12)),
        ];
        records.extend(sync_call(1, 3, 2, 100)); // child at seqs 3..6
        records.push(rec(1, 7, TraceEvent::SkelEnd, CallKind::Sync, 1, (450, 452)));
        records.push(rec(1, 8, TraceEvent::StubEnd, CallKind::Sync, 1, (500, 503)));
        let (events, _) = collect(records);
        let completed: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                OnlineEvent::CallCompleted { func, depth, latency_ns, .. } => {
                    Some((func.object.0, *depth, *latency_ns))
                }
                _ => None,
            })
            .collect();
        // Child completes first (depth 1), then the parent (depth 0) with
        // the child's probe spans (5+2+2+3 = 12) compensated away.
        assert_eq!(completed, vec![(2, 1, Some(95)), (1, 0, Some(500 - 5 - 12))]);
    }

    #[test]
    fn oneway_skeleton_side_completes_at_skel_end() {
        let records = vec![
            rec(2, 1, TraceEvent::SkelStart, CallKind::Oneway, 9, (10, 12)),
            rec(2, 2, TraceEvent::SkelEnd, CallKind::Oneway, 9, (50, 52)),
        ];
        let (events, _) = collect(records);
        assert!(matches!(
            events[0],
            OnlineEvent::CallCompleted { latency_ns: Some(38), depth: 0, .. }
        ));
    }

    #[test]
    fn abnormal_transitions_are_reported_live() {
        let records = vec![
            rec(1, 1, TraceEvent::SkelEnd, CallKind::Sync, 1, (0, 1)),
            rec(1, 2, TraceEvent::StubStart, CallKind::Sync, 1, (2, 3)),
            rec(1, 3, TraceEvent::StubEnd, CallKind::Sync, 1, (4, 5)),
        ];
        let (events, _) = collect(records);
        let abnormal = events
            .iter()
            .filter(|e| matches!(e, OnlineEvent::Abnormality { .. }))
            .count();
        assert_eq!(abnormal, 2, "stray skel_end + stub_end without skeleton");
    }

    #[test]
    fn finish_reports_gaps_and_incomplete_calls() {
        let mut analyzer = OnlineAnalyzer::new();
        let mut events = Vec::new();
        // Seq 2 missing forever; seq 3 buffered.
        analyzer.ingest(
            rec(1, 1, TraceEvent::StubStart, CallKind::Sync, 1, (0, 5)),
            &mut |e| events.push(e),
        );
        analyzer.ingest(
            rec(1, 3, TraceEvent::SkelEnd, CallKind::Sync, 1, (90, 92)),
            &mut |e| events.push(e),
        );
        assert_eq!(analyzer.buffered_records(), 1);
        assert_eq!(analyzer.open_chains(), 1);
        analyzer.finish(&mut |e| events.push(e));
        let gap = events.iter().any(
            |e| matches!(e, OnlineEvent::Abnormality { message, .. } if message.contains("gap")),
        );
        let incomplete = events.iter().any(
            |e| matches!(e, OnlineEvent::Abnormality { message, .. } if message.contains("never completed")),
        );
        assert!(gap, "{events:?}");
        assert!(incomplete, "{events:?}");
        assert_eq!(analyzer.open_chains(), 0);
    }

    #[test]
    fn live_chunk_stream_from_a_monitor_is_complete() {
        use causeway_core::monitor::{Monitor, ProbeMode};
        use causeway_core::sink::CHUNK_CAPACITY;

        const CALLS: usize = 300; // 4 records/call ≫ one chunk

        let monitor = Monitor::builder(ProcessId(0), NodeId(0))
            .mode(ProbeMode::CausalityOnly)
            .build();
        let store = monitor.store().clone();
        let func = FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(1));
        let producer = std::thread::spawn(move || {
            for _ in 0..CALLS {
                monitor.begin_root();
                let out = monitor.stub_start(func, CallKind::Sync);
                monitor.skel_start(func, CallKind::Sync, out.wire_ftl, None);
                let reply = monitor.skel_end(func, CallKind::Sync);
                monitor.stub_end(func, CallKind::Sync, Some(reply));
            }
        });

        // Consume chunks while the producer runs — no quiescence, no
        // post-hoc RunLog.
        let mut analyzer = OnlineAnalyzer::new();
        let mut events = Vec::new();
        let mut ingested = 0;
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while ingested < CALLS * 4 && std::time::Instant::now() < deadline {
            ingested +=
                analyzer.follow_store(&store, Duration::from_millis(50), &mut |e| events.push(e));
        }
        producer.join().unwrap();
        ingested += analyzer.drain_store(&store, &mut |e| events.push(e));
        analyzer.finish(&mut |e| events.push(e));

        // Compile-time sanity: the workload spans several chunks.
        const _: () = assert!(CALLS * 4 > CHUNK_CAPACITY);
        assert_eq!(ingested, CALLS * 4, "every record reached the analyzer");
        let completed = events
            .iter()
            .filter(|e| matches!(e, OnlineEvent::CallCompleted { .. }))
            .count();
        assert_eq!(completed, CALLS);
        assert!(
            !events.iter().any(|e| matches!(e, OnlineEvent::Abnormality { .. })),
            "clean run has no abnormalities"
        );
    }

    #[test]
    fn batch_ingest_matches_per_record_ingest() {
        // Chain-grouped input: the serial per-record event order equals the
        // batch path's chain-grouped order, so the streams compare exactly.
        let mut records = sync_call(1, 1, 1, 0);
        records.extend(sync_call(2, 1, 2, 1000));
        records.extend(sync_call(3, 1, 3, 2000));
        // An abnormal chain, to compare abnormality events too.
        records.push(rec(4, 1, TraceEvent::SkelEnd, CallKind::Sync, 4, (0, 1)));
        let (serial_events, _) = collect(records.clone());
        for threads in [1, 2, 4] {
            let mut analyzer = OnlineAnalyzer::new();
            let mut events = Vec::new();
            analyzer.ingest_batch_with_threads(records.clone(), threads, &mut |e| events.push(e));
            assert_eq!(events, serial_events, "threads={threads}");
            assert_eq!(analyzer.open_chains(), 0);
        }
    }

    #[test]
    fn batch_ingest_preserves_chain_state_across_batches() {
        let records = sync_call(1, 1, 7, 0);
        let mut analyzer = OnlineAnalyzer::new();
        let mut events = Vec::new();
        analyzer.ingest_batch_with_threads(records[..2].to_vec(), 2, &mut |e| events.push(e));
        assert!(events.is_empty(), "call still open after half the records");
        assert_eq!(analyzer.open_chains(), 1);
        analyzer.ingest_batch_with_threads(records[2..].to_vec(), 2, &mut |e| events.push(e));
        assert_eq!(
            events,
            vec![
                OnlineEvent::CallCompleted {
                    chain: Uuid(1),
                    func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(7)),
                    kind: CallKind::Sync,
                    depth: 0,
                    latency_ns: Some(95),
                },
                OnlineEvent::ChainIdle { chain: Uuid(1), completed_calls: 1 },
            ]
        );
        assert_eq!(analyzer.open_chains(), 0);
    }

    #[test]
    fn interleaved_chains_stay_independent() {
        let mut records = sync_call(1, 1, 1, 0);
        let other = sync_call(2, 1, 2, 1000);
        // Interleave the two chains' records.
        for (i, r) in other.into_iter().enumerate() {
            records.insert(i * 2 + 1, r);
        }
        let (events, _) = collect(records);
        let completed: Vec<u128> = events
            .iter()
            .filter_map(|e| match e {
                OnlineEvent::CallCompleted { chain, .. } => Some(chain.0),
                _ => None,
            })
            .collect();
        assert_eq!(completed.len(), 2);
        assert!(completed.contains(&1) && completed.contains(&2));
    }
}
