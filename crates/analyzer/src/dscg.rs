//! Dynamic System Call Graph reconstruction.
//!
//! For each unique Function UUID the analyzer sorts the chain's events by
//! ascending event number and parses them with the state machine of the
//! paper's Figure 4. A synchronous invocation contributes the pattern
//! `F.stub_start … F.skel_start … (children) … F.skel_end … F.stub_end`;
//! a one-way invocation contributes `F.stub_start F.stub_end` on the parent
//! chain and `F.skel_start … (children) … F.skel_end` at the head of a fresh
//! child chain, which is grafted back under its fork site.
//!
//! When adjacent records follow none of the legal transitions, the analyzer
//! "indicates the failure and restarts from the next log record" — each such
//! failure is reported as an [`Abnormality`].

use causeway_collector::db::MonitoringDb;
use causeway_core::event::{CallKind, TraceEvent};
use causeway_core::pool;
use causeway_core::record::{FunctionKey, ProbeRecord};
use causeway_core::uuid::Uuid;
use std::collections::HashMap;

/// One reconstructed invocation in the call graph.
///
/// `Clone`, `PartialEq` and `Drop` are hand-written iteratively: the derived
/// (or compiler-generated) versions recurse once per tree level and overflow
/// the stack on paper-scale chain depths.
#[derive(Debug)]
pub struct CallNode {
    /// What was invoked.
    pub func: FunctionKey,
    /// How it was invoked.
    pub kind: CallKind,
    /// Probe-1 record (client side), when observed.
    pub stub_start: Option<ProbeRecord>,
    /// Probe-2 record (server side), when observed.
    pub skel_start: Option<ProbeRecord>,
    /// Probe-3 record (server side), when observed.
    pub skel_end: Option<ProbeRecord>,
    /// Probe-4 record (client side), when observed.
    pub stub_end: Option<ProbeRecord>,
    /// Child invocations in call order (one-way children included after
    /// grafting).
    pub children: Vec<CallNode>,
    /// `false` when the parser had to force-close this invocation (missing
    /// events — e.g. a crashed process's lost log).
    pub complete: bool,
}

impl CallNode {
    fn new(func: FunctionKey, kind: CallKind) -> CallNode {
        CallNode {
            func,
            kind,
            stub_start: None,
            skel_start: None,
            skel_end: None,
            stub_end: None,
            children: Vec::new(),
            complete: false,
        }
    }

    /// Total number of nodes in this subtree (including self).
    pub fn size(&self) -> usize {
        let mut count = 0;
        let mut stack = vec![self];
        while let Some(node) = stack.pop() {
            count += 1;
            stack.extend(node.children.iter());
        }
        count
    }

    /// Depth of this subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        let mut max = 0;
        let mut stack = vec![(self, 1usize)];
        while let Some((node, depth)) = stack.pop() {
            max = max.max(depth);
            stack.extend(node.children.iter().map(|c| (c, depth + 1)));
        }
        max
    }

    /// Depth-first pre-order traversal.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a CallNode, usize)) {
        walk_nodes(std::slice::from_ref(self), f);
    }
}

/// Which side of a node's subtree a [`walk_pre_post`] visit is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visit {
    /// Before the node's children.
    Enter,
    /// After all of the node's children.
    Exit,
}

/// Iterative depth-first pre-order traversal over sibling roots.
///
/// The callback sees each node with its depth (roots are depth 0) in exactly
/// the order the old per-level recursion produced, but with an explicit work
/// stack — deep chains cost heap, not call-stack frames.
pub fn walk_nodes<'a>(roots: &'a [CallNode], f: &mut impl FnMut(&'a CallNode, usize)) {
    let mut stack: Vec<(&'a CallNode, usize)> = roots.iter().rev().map(|r| (r, 0)).collect();
    while let Some((node, depth)) = stack.pop() {
        f(node, depth);
        for child in node.children.iter().rev() {
            stack.push((child, depth + 1));
        }
    }
}

/// Iterative depth-first traversal delivering both [`Visit::Enter`] (before a
/// node's children) and [`Visit::Exit`] (after all of them).
///
/// This is the one traversal shape every recursive analyzer pass shares —
/// CPU roll-up, CCSG aggregation, XML rendering, replay-spec derivation —
/// expressed without per-level stack frames. Roots are depth 0.
pub fn walk_pre_post<'a>(roots: &'a [CallNode], f: &mut impl FnMut(&'a CallNode, usize, Visit)) {
    let mut stack: Vec<(&'a CallNode, usize, Visit)> =
        roots.iter().rev().map(|r| (r, 0, Visit::Enter)).collect();
    while let Some((node, depth, visit)) = stack.pop() {
        match visit {
            Visit::Enter => {
                f(node, depth, Visit::Enter);
                stack.push((node, depth, Visit::Exit));
                for child in node.children.iter().rev() {
                    stack.push((child, depth + 1, Visit::Enter));
                }
            }
            Visit::Exit => f(node, depth, Visit::Exit),
        }
    }
}

impl Clone for CallNode {
    fn clone(&self) -> CallNode {
        fn shallow(node: &CallNode) -> CallNode {
            CallNode {
                func: node.func,
                kind: node.kind,
                stub_start: node.stub_start.clone(),
                skel_start: node.skel_start.clone(),
                skel_end: node.skel_end.clone(),
                stub_end: node.stub_end.clone(),
                children: Vec::with_capacity(node.children.len()),
                complete: node.complete,
            }
        }
        // Two-phase build: on Enter push a childless copy, on Exit pop it
        // into its parent (or out as the finished root).
        let mut building: Vec<CallNode> = Vec::new();
        let mut done: Option<CallNode> = None;
        walk_pre_post(std::slice::from_ref(self), &mut |node, _, visit| match visit {
            Visit::Enter => building.push(shallow(node)),
            Visit::Exit => {
                let finished = building.pop().expect("Enter pushed a copy");
                match building.last_mut() {
                    Some(parent) => parent.children.push(finished),
                    None => done = Some(finished),
                }
            }
        });
        done.expect("root Exit ran")
    }
}

impl PartialEq for CallNode {
    fn eq(&self, other: &CallNode) -> bool {
        let mut stack = vec![(self, other)];
        while let Some((a, b)) = stack.pop() {
            if a.func != b.func
                || a.kind != b.kind
                || a.complete != b.complete
                || a.stub_start != b.stub_start
                || a.skel_start != b.skel_start
                || a.skel_end != b.skel_end
                || a.stub_end != b.stub_end
                || a.children.len() != b.children.len()
            {
                return false;
            }
            stack.extend(a.children.iter().zip(b.children.iter()));
        }
        true
    }
}

impl Eq for CallNode {}

impl Drop for CallNode {
    fn drop(&mut self) {
        // Flatten the subtree into a scratch list first, so every node
        // reaches the compiler-generated drop glue with empty children.
        if self.children.is_empty() {
            return;
        }
        let mut scratch = std::mem::take(&mut self.children);
        let mut next = 0;
        while next < scratch.len() {
            let grandchildren = std::mem::take(&mut scratch[next].children);
            scratch.extend(grandchildren);
            next += 1;
        }
    }
}

/// One causal chain unfolded into a tree (the paper's `T_i`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallTree {
    /// The chain's Function UUID.
    pub chain: Uuid,
    /// Top-level sibling invocations of the chain, in call order.
    pub roots: Vec<CallNode>,
}

impl CallTree {
    /// Total nodes across all roots.
    pub fn size(&self) -> usize {
        self.roots.iter().map(CallNode::size).sum()
    }
}

/// A reconstruction failure: adjacent records followed none of the legal
/// Figure-4 transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Abnormality {
    /// The chain on which the failure occurred.
    pub chain: Uuid,
    /// The event number of the offending record (`None` for end-of-stream
    /// failures such as never-closed invocations).
    pub at_seq: Option<u64>,
    /// Human-readable description.
    pub message: String,
}

/// The Dynamic System Call Graph: the grouping of every chain's tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dscg {
    /// Root trees in chain-first-appearance order. One-way child chains are
    /// grafted under their fork sites and do not appear here separately.
    pub trees: Vec<CallTree>,
    /// All reconstruction failures encountered.
    pub abnormalities: Vec<Abnormality>,
}

impl Dscg {
    /// Wraps already-reconstructed trees in a graph with no abnormalities —
    /// the shape every synthetic-tree test and exporter fixture needs.
    pub fn from_trees(trees: Vec<CallTree>) -> Dscg {
        Dscg { trees, abnormalities: Vec::new() }
    }

    /// Reconstructs the DSCG from a monitoring database on the configured
    /// worker pool (see [`causeway_core::pool::configured_threads`]).
    pub fn build(db: &MonitoringDb) -> Dscg {
        Self::build_with_threads(db, pool::configured_threads())
    }

    /// Reconstructs the DSCG on the caller's thread only — the reference
    /// the parallel build is checked against.
    pub fn build_serial(db: &MonitoringDb) -> Dscg {
        Self::build_with_threads(db, 1)
    }

    /// Reconstructs the DSCG using up to `threads` worker threads.
    ///
    /// Chains are sharded by Function UUID — causal identity — so every
    /// chain parses independently; per-chain trees and abnormality lists
    /// then merge back in the existing chain-first-appearance order, which
    /// makes the output bit-identical at any thread count. The grafting of
    /// one-way child chains is a cross-chain fix-up and stays serial (it is
    /// O(nodes moved), a small fraction of parse cost).
    pub fn build_with_threads(db: &MonitoringDb, threads: usize) -> Dscg {
        let uuids = db.unique_uuids();
        // Parse every chain independently on the pool; each shard returns
        // its tree plus the abnormalities it alone observed.
        let shards = pool::par_map(uuids, threads, |&uuid| {
            let mut local = Vec::new();
            let chain = parse_chain(uuid, &db.events_for(uuid), &mut local);
            (chain, local)
        });
        let mut abnormalities = Vec::new();
        let mut parsed: HashMap<Uuid, ParsedChain> = HashMap::with_capacity(shards.len());
        for (&uuid, (chain, local)) in uuids.iter().zip(shards) {
            abnormalities.extend(local);
            parsed.insert(uuid, chain);
        }

        // Graft one-way child chains under their fork sites. A chain is a
        // child when some stub-start record pointed at it, or when its own
        // head carried a parent marker.
        let mut child_chains: HashMap<Uuid, Uuid> = HashMap::new(); // child -> parent
        for record in db.records() {
            if let Some(child) = record.oneway_child {
                child_chains.insert(child, record.uuid);
            }
        }
        for (&uuid, chain) in &parsed {
            if let Some((parent, _)) = chain.oneway_parent {
                child_chains.entry(uuid).or_insert(parent);
            }
        }

        // Extract child chains from the map so they can be moved into their
        // parents. Chains forming cycles (corruption) degrade to roots.
        let mut children_by_id: HashMap<Uuid, ParsedChain> = HashMap::new();
        for &child in child_chains.keys() {
            if let Some(chain) = parsed.remove(&child) {
                children_by_id.insert(child, chain);
            }
        }

        // Graft, deepest-first: repeatedly attach child chains whose parent
        // is already rooted or is itself a pending child.
        let mut trees: Vec<CallTree> = Vec::new();
        let mut order: Vec<Uuid> = db
            .unique_uuids()
            .iter()
            .copied()
            .filter(|u| parsed.contains_key(u))
            .collect();

        // Build final trees: graft child chains into parsed chains with an
        // explicit work stack (deep trees must not recurse). Each popped
        // node is grafted if it is a fork site, then its children — the
        // freshly grafted subtree included — are pushed, so nested one-way
        // chains attach transitively exactly as the old recursion did.
        fn graft_into(
            roots: &mut [CallNode],
            children_by_id: &mut HashMap<Uuid, ParsedChain>,
            abnormalities: &mut Vec<Abnormality>,
        ) {
            let mut stack: Vec<&mut CallNode> = roots.iter_mut().collect();
            while let Some(node) = stack.pop() {
                if node.kind == CallKind::Oneway {
                    if let Some(child_id) = node.stub_start.as_ref().and_then(|r| r.oneway_child) {
                        if let Some(mut chain) = children_by_id.remove(&child_id) {
                            match chain.roots.len() {
                                0 => {
                                    // The message never arrived (lost one-way):
                                    // nothing to graft; the node stays skel-less.
                                }
                                1 => {
                                    let mut root = chain.roots.pop().expect("len checked");
                                    node.skel_start = root.skel_start.take();
                                    node.skel_end = root.skel_end.take();
                                    node.children = std::mem::take(&mut root.children);
                                    node.complete = node.complete && root.complete;
                                }
                                n => {
                                    abnormalities.push(Abnormality {
                                        chain: child_id,
                                        at_seq: None,
                                        message: format!(
                                            "one-way child chain has {n} roots, expected 1"
                                        ),
                                    });
                                    // Keep them all as children of the fork node.
                                    node.children.append(&mut chain.roots);
                                }
                            }
                        }
                    }
                }
                stack.extend(node.children.iter_mut());
            }
        }

        for uuid in order.drain(..) {
            let mut chain = parsed.remove(&uuid).expect("filtered to parsed chains");
            graft_into(&mut chain.roots, &mut children_by_id, &mut abnormalities);
            trees.push(CallTree { chain: uuid, roots: std::mem::take(&mut chain.roots) });
        }

        // Orphaned child chains (their fork record was lost): surface them
        // as their own trees plus an abnormality.
        let mut orphans: Vec<Uuid> = children_by_id.keys().copied().collect();
        orphans.sort();
        for uuid in orphans {
            let chain = children_by_id.remove(&uuid).expect("key just listed");
            abnormalities.push(Abnormality {
                chain: uuid,
                at_seq: None,
                message: "one-way child chain without a reachable fork site".into(),
            });
            trees.push(CallTree { chain: uuid, roots: chain.roots });
        }

        Dscg { trees, abnormalities }
    }

    /// Total invocations across all trees.
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(CallTree::size).sum()
    }

    /// Depth-first pre-order traversal over every tree.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a CallNode, usize)) {
        for tree in &self.trees {
            for root in &tree.roots {
                root.walk(f);
            }
        }
    }
}

struct ParsedChain {
    roots: Vec<CallNode>,
    /// Parent marker when this chain began life as a one-way callee.
    oneway_parent: Option<(Uuid, u64)>,
}

/// The Figure-4 state machine over one chain's seq-sorted events.
fn parse_chain(
    chain: Uuid,
    events: &[&ProbeRecord],
    abnormalities: &mut Vec<Abnormality>,
) -> ParsedChain {
    let mut roots: Vec<CallNode> = Vec::new();
    // Stack of open invocations; `usize` indexes into a scratch arena to
    // avoid fighting the borrow checker with nested `&mut`.
    let mut arena: Vec<CallNode> = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    let mut oneway_parent = None;

    fn close(
        arena: &mut [CallNode],
        stack: &mut Vec<usize>,
        roots: &mut Vec<CallNode>,
        complete: bool,
    ) {
        let idx = stack.pop().expect("caller checks non-empty");
        let placeholder = CallNode::new(
            FunctionKey::new(
                causeway_core::ids::InterfaceId(u32::MAX),
                causeway_core::ids::MethodIndex(u16::MAX),
                causeway_core::ids::ObjectId(u64::MAX),
            ),
            CallKind::Sync,
        );
        let mut node = std::mem::replace(&mut arena[idx], placeholder);
        node.complete = complete;
        match stack.last() {
            Some(&parent) => arena[parent].children.push(node),
            None => roots.push(node),
        }
    }

    let mut abnormal = |seq: u64, message: String| {
        abnormalities.push(Abnormality { chain, at_seq: Some(seq), message });
    };

    for record in events {
        let top_matches = |arena: &Vec<CallNode>, stack: &Vec<usize>| {
            stack
                .last()
                .map(|&i| arena[i].func == record.func)
                .unwrap_or(false)
        };
        match record.event {
            TraceEvent::StubStart => {
                let mut node = CallNode::new(record.func, record.kind);
                node.stub_start = Some((*record).clone());
                arena.push(node);
                stack.push(arena.len() - 1);
            }
            TraceEvent::SkelStart => {
                if top_matches(&arena, &stack)
                    && arena[*stack.last().expect("matched")].skel_start.is_none()
                    && arena[*stack.last().expect("matched")].stub_start.is_some()
                {
                    let idx = *stack.last().expect("matched");
                    arena[idx].skel_start = Some((*record).clone());
                } else if stack.is_empty() && record.kind == CallKind::Oneway {
                    // Head of a one-way child chain.
                    let mut node = CallNode::new(record.func, record.kind);
                    node.skel_start = Some((*record).clone());
                    if oneway_parent.is_none() {
                        oneway_parent = record.oneway_parent;
                    }
                    arena.push(node);
                    stack.push(arena.len() - 1);
                } else {
                    abnormal(
                        record.seq,
                        format!("unexpected skel_start for {}", record.func),
                    );
                }
            }
            TraceEvent::SkelEnd => {
                if top_matches(&arena, &stack) {
                    let idx = *stack.last().expect("matched");
                    if arena[idx].skel_start.is_some() && arena[idx].skel_end.is_none() {
                        arena[idx].skel_end = Some((*record).clone());
                        // One-way skeleton side completes here (no stub_end
                        // will arrive on this chain).
                        if arena[idx].kind == CallKind::Oneway && arena[idx].stub_start.is_none() {
                            close(&mut arena, &mut stack, &mut roots, true);
                        }
                    } else {
                        abnormal(
                            record.seq,
                            format!("skel_end without open skeleton for {}", record.func),
                        );
                    }
                } else {
                    abnormal(record.seq, format!("unexpected skel_end for {}", record.func));
                }
            }
            TraceEvent::StubEnd => {
                if top_matches(&arena, &stack) {
                    let idx = *stack.last().expect("matched");
                    let node = &mut arena[idx];
                    let legal = match node.kind {
                        // One-way stub side: stub_start then stub_end, no
                        // skeleton events on this chain.
                        CallKind::Oneway => node.stub_start.is_some() && node.skel_end.is_none(),
                        // Synchronous / collocated: the skeleton must have
                        // closed first.
                        _ => node.skel_end.is_some(),
                    };
                    if legal && node.stub_end.is_none() {
                        node.stub_end = Some((*record).clone());
                        close(&mut arena, &mut stack, &mut roots, true);
                    } else {
                        abnormal(
                            record.seq,
                            format!("stub_end out of order for {}", record.func),
                        );
                        // Restart heuristic: force-close the confused frame
                        // so subsequent records can re-synchronize.
                        close(&mut arena, &mut stack, &mut roots, false);
                    }
                } else {
                    abnormal(record.seq, format!("unexpected stub_end for {}", record.func));
                }
            }
        }
    }

    // Anything left open never completed (lost records / crash).
    while !stack.is_empty() {
        let idx = *stack.last().expect("non-empty");
        abnormalities.push(Abnormality {
            chain,
            at_seq: None,
            message: format!("invocation {} never completed", arena[idx].func),
        });
        close(&mut arena, &mut stack, &mut roots, false);
    }

    ParsedChain { roots, oneway_parent }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causeway_core::deploy::Deployment;
    use causeway_core::ids::*;
    use causeway_core::names::VocabSnapshot;
    use causeway_core::record::CallSite;
    use causeway_core::runlog::RunLog;

    fn func(object: u64) -> FunctionKey {
        FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(object))
    }

    fn rec(uuid: u128, seq: u64, event: TraceEvent, kind: CallKind, object: u64) -> ProbeRecord {
        ProbeRecord {
            uuid: Uuid(uuid),
            seq,
            event,
            kind,
            site: CallSite {
                node: NodeId(0),
                process: ProcessId(0),
                thread: LogicalThreadId(0),
            },
            func: func(object),
            wall_start: None,
            wall_end: None,
            cpu_start: None,
            cpu_end: None,
            oneway_child: None,
            oneway_parent: None,
        }
    }

    fn build(records: Vec<ProbeRecord>) -> Dscg {
        let db = MonitoringDb::from_run(RunLog::new(
            records,
            VocabSnapshot::default(),
            Deployment::new(),
        ));
        Dscg::build(&db)
    }

    /// `main { F(); G(); }` — the sibling pattern of Table 1.
    #[test]
    fn sibling_pattern_reconstructs_two_roots() {
        let mut records = Vec::new();
        let mut seq = 0;
        for object in [1u64, 2] {
            for event in TraceEvent::ALL {
                seq += 1;
                records.push(rec(7, seq, event, CallKind::Sync, object));
            }
        }
        let dscg = build(records);
        assert!(dscg.abnormalities.is_empty());
        assert_eq!(dscg.trees.len(), 1);
        let tree = &dscg.trees[0];
        assert_eq!(tree.roots.len(), 2, "F and G are siblings");
        assert_eq!(tree.roots[0].func, func(1));
        assert_eq!(tree.roots[1].func, func(2));
        assert!(tree.roots.iter().all(|r| r.children.is_empty() && r.complete));
    }

    /// `F { G { H } }` — the parent/child pattern of Table 1.
    #[test]
    fn nested_pattern_reconstructs_parent_child() {
        let records = vec![
            rec(7, 1, TraceEvent::StubStart, CallKind::Sync, 1),
            rec(7, 2, TraceEvent::SkelStart, CallKind::Sync, 1),
            rec(7, 3, TraceEvent::StubStart, CallKind::Sync, 2),
            rec(7, 4, TraceEvent::SkelStart, CallKind::Sync, 2),
            rec(7, 5, TraceEvent::StubStart, CallKind::Sync, 3),
            rec(7, 6, TraceEvent::SkelStart, CallKind::Sync, 3),
            rec(7, 7, TraceEvent::SkelEnd, CallKind::Sync, 3),
            rec(7, 8, TraceEvent::StubEnd, CallKind::Sync, 3),
            rec(7, 9, TraceEvent::SkelEnd, CallKind::Sync, 2),
            rec(7, 10, TraceEvent::StubEnd, CallKind::Sync, 2),
            rec(7, 11, TraceEvent::SkelEnd, CallKind::Sync, 1),
            rec(7, 12, TraceEvent::StubEnd, CallKind::Sync, 1),
        ];
        let dscg = build(records);
        assert!(dscg.abnormalities.is_empty());
        assert_eq!(dscg.trees.len(), 1);
        let f = &dscg.trees[0].roots[0];
        assert_eq!(f.func, func(1));
        assert_eq!(f.children.len(), 1);
        let g = &f.children[0];
        assert_eq!(g.func, func(2));
        assert_eq!(g.children.len(), 1);
        assert_eq!(g.children[0].func, func(3));
        assert_eq!(f.size(), 3);
        assert_eq!(f.depth(), 3);
        assert_eq!(dscg.total_nodes(), 3);
    }

    #[test]
    fn oneway_child_chain_grafts_under_fork_site() {
        let mut fork = rec(1, 1, TraceEvent::StubStart, CallKind::Oneway, 5);
        fork.oneway_child = Some(Uuid(2));
        let mut child_head = rec(2, 1, TraceEvent::SkelStart, CallKind::Oneway, 5);
        child_head.oneway_parent = Some((Uuid(1), 1));
        let records = vec![
            fork,
            rec(1, 2, TraceEvent::StubEnd, CallKind::Oneway, 5),
            child_head,
            // The one-way implementation makes a nested sync call.
            rec(2, 2, TraceEvent::StubStart, CallKind::Sync, 6),
            rec(2, 3, TraceEvent::SkelStart, CallKind::Sync, 6),
            rec(2, 4, TraceEvent::SkelEnd, CallKind::Sync, 6),
            rec(2, 5, TraceEvent::StubEnd, CallKind::Sync, 6),
            rec(2, 6, TraceEvent::SkelEnd, CallKind::Oneway, 5),
        ];
        let dscg = build(records);
        assert!(dscg.abnormalities.is_empty(), "{:?}", dscg.abnormalities);
        assert_eq!(dscg.trees.len(), 1, "child chain was grafted, not rooted");
        let root = &dscg.trees[0].roots[0];
        assert_eq!(root.func, func(5));
        assert!(root.stub_start.is_some() && root.stub_end.is_some());
        assert!(root.skel_start.is_some() && root.skel_end.is_some());
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].func, func(6));
    }

    #[test]
    fn orphan_child_chain_becomes_root_with_abnormality() {
        let mut head = rec(2, 1, TraceEvent::SkelStart, CallKind::Oneway, 5);
        head.oneway_parent = Some((Uuid(1), 1)); // parent chain never logged
        let records = vec![head, rec(2, 2, TraceEvent::SkelEnd, CallKind::Oneway, 5)];
        let dscg = build(records);
        assert_eq!(dscg.trees.len(), 1);
        assert_eq!(dscg.abnormalities.len(), 1);
        assert!(dscg.abnormalities[0].message.contains("fork site"));
    }

    #[test]
    fn missing_skeleton_events_are_abnormal_but_recovered() {
        // A lost request: stub_start then stub_end with nothing in between
        // (the failure shape `Client::invoke` produces on timeouts).
        let records = vec![
            rec(1, 1, TraceEvent::StubStart, CallKind::Sync, 1),
            rec(1, 2, TraceEvent::StubEnd, CallKind::Sync, 1),
            // A healthy sibling afterwards.
            rec(1, 3, TraceEvent::StubStart, CallKind::Sync, 2),
            rec(1, 4, TraceEvent::SkelStart, CallKind::Sync, 2),
            rec(1, 5, TraceEvent::SkelEnd, CallKind::Sync, 2),
            rec(1, 6, TraceEvent::StubEnd, CallKind::Sync, 2),
        ];
        let dscg = build(records);
        assert_eq!(dscg.abnormalities.len(), 1);
        let tree = &dscg.trees[0];
        assert_eq!(tree.roots.len(), 2, "parser re-synchronized after the failure");
        assert!(!tree.roots[0].complete);
        assert!(tree.roots[1].complete);
    }

    #[test]
    fn truncated_chain_reports_incomplete_invocation() {
        let records = vec![
            rec(1, 1, TraceEvent::StubStart, CallKind::Sync, 1),
            rec(1, 2, TraceEvent::SkelStart, CallKind::Sync, 1),
            // skel_end / stub_end lost in a crash.
        ];
        let dscg = build(records);
        assert_eq!(dscg.abnormalities.len(), 1);
        assert!(dscg.abnormalities[0].message.contains("never completed"));
        assert_eq!(dscg.trees[0].roots.len(), 1);
        assert!(!dscg.trees[0].roots[0].complete);
    }

    #[test]
    fn stray_skel_events_are_flagged() {
        let records = vec![
            rec(1, 1, TraceEvent::SkelEnd, CallKind::Sync, 1),
            rec(1, 2, TraceEvent::SkelStart, CallKind::Sync, 1),
        ];
        let dscg = build(records);
        assert_eq!(dscg.abnormalities.len(), 2);
        assert!(dscg.trees[0].roots.is_empty());
    }

    #[test]
    fn collocated_pattern_parses_like_sync() {
        let records: Vec<ProbeRecord> = TraceEvent::ALL
            .iter()
            .enumerate()
            .map(|(i, &event)| rec(3, (i + 1) as u64, event, CallKind::Collocated, 9))
            .collect();
        let dscg = build(records);
        assert!(dscg.abnormalities.is_empty());
        assert_eq!(dscg.trees[0].roots[0].kind, CallKind::Collocated);
    }

    #[test]
    fn empty_db_builds_empty_dscg() {
        let dscg = build(vec![]);
        assert!(dscg.trees.is_empty());
        assert_eq!(dscg.total_nodes(), 0);
    }
}
