//! The CPU Consumption Summarization Graph (Figure 6).
//!
//! Phase 3 of the CPU characterization: synthesize the per-invocation
//! self/descendant CPU with the DSCG into an aggregated graph. Nodes with
//! the same (object, function) under the same aggregated parent are merged;
//! each CCSG node reports the object identifier, invocation count, the
//! included function instances, and the summed self and descendant CPU —
//! the exact fields visible in the paper's XML viewer snapshot.

use crate::cpu::{CpuVector, self_cpu_of};
use crate::dscg::{CallNode, Dscg};
use causeway_core::deploy::Deployment;
use causeway_core::pool;
use causeway_core::record::FunctionKey;
use std::collections::BTreeMap;

/// One aggregated node of the CCSG.
///
/// `Clone` and `Drop` are hand-written iteratively — an aggregated chain is
/// as deep as the deepest call chain it summarizes, and the derived /
/// compiler-generated versions would recurse once per level.
#[derive(Debug)]
pub struct CcsgNode {
    /// The aggregated (interface, method, object).
    pub func: FunctionKey,
    /// `InvocationTimes`: how many DSCG nodes were merged here.
    pub invocation_times: usize,
    /// `IncludedFunctionInstances`: the chain-local identities of the merged
    /// instances, as (chain seq of stub-start or skel-start) markers.
    pub included_instances: Vec<u64>,
    /// Summed `SelfCPUConsumption`.
    pub self_cpu: CpuVector,
    /// Summed `DescendentCPUConsumption`.
    pub descendant_cpu: CpuVector,
    /// Aggregated children, keyed by their (interface, method, object).
    pub children: Vec<CcsgNode>,
}

impl CcsgNode {
    /// Total nodes in this aggregated subtree.
    pub fn size(&self) -> usize {
        let mut count = 0;
        let mut stack = vec![self];
        while let Some(node) = stack.pop() {
            count += 1;
            stack.extend(node.children.iter());
        }
        count
    }
}

impl Clone for CcsgNode {
    fn clone(&self) -> CcsgNode {
        enum Step<'a> {
            Enter(&'a CcsgNode),
            Exit,
        }
        fn shallow(node: &CcsgNode) -> CcsgNode {
            CcsgNode {
                func: node.func,
                invocation_times: node.invocation_times,
                included_instances: node.included_instances.clone(),
                self_cpu: node.self_cpu.clone(),
                descendant_cpu: node.descendant_cpu.clone(),
                children: Vec::with_capacity(node.children.len()),
            }
        }
        // Two-phase build: Enter pushes a childless copy, Exit pops it into
        // its parent (or out as the finished root).
        let mut building: Vec<CcsgNode> = Vec::new();
        let mut done: Option<CcsgNode> = None;
        let mut stack = vec![Step::Enter(self)];
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(node) => {
                    building.push(shallow(node));
                    stack.push(Step::Exit);
                    for child in node.children.iter().rev() {
                        stack.push(Step::Enter(child));
                    }
                }
                Step::Exit => {
                    let finished = building.pop().expect("Enter pushed a copy");
                    match building.last_mut() {
                        Some(parent) => parent.children.push(finished),
                        None => done = Some(finished),
                    }
                }
            }
        }
        done.expect("root Exit ran")
    }
}

impl Drop for CcsgNode {
    fn drop(&mut self) {
        // Flatten the subtree so every node drops with empty children (see
        // `Drop for CallNode`).
        if self.children.is_empty() {
            return;
        }
        let mut scratch = std::mem::take(&mut self.children);
        let mut next = 0;
        while next < scratch.len() {
            let grandchildren = std::mem::take(&mut scratch[next].children);
            scratch.extend(grandchildren);
            next += 1;
        }
    }
}

/// The CPU Consumption Summarization Graph.
#[derive(Debug, Clone, Default)]
pub struct Ccsg {
    /// Aggregated top-level invocations.
    pub roots: Vec<CcsgNode>,
    /// System-wide self-CPU total by processor type.
    pub system_total: CpuVector,
}

impl Ccsg {
    /// Builds the CCSG from a DSCG and the deployment's CPU-type map on the
    /// configured worker pool.
    pub fn build(dscg: &Dscg, deployment: &Deployment) -> Ccsg {
        Self::build_with_threads(dscg, deployment, pool::configured_threads())
    }

    /// Builds the CCSG using up to `threads` worker threads.
    ///
    /// Each tree aggregates into its own partial scaffold on the pool; the
    /// partials then merge in tree order, so every aggregated node's
    /// instance list accumulates in exactly the serial absorb order and the
    /// output is bit-identical at any thread count.
    pub fn build_with_threads(dscg: &Dscg, deployment: &Deployment, threads: usize) -> Ccsg {
        let shards = pool::par_map(&dscg.trees, threads, |tree| {
            let mut partial = Aggregate::default();
            partial.absorb_tree(&tree.roots, deployment);
            partial
        });
        let mut builder = Aggregate::default();
        for shard in shards {
            builder.merge(shard);
        }
        let mut system_total = CpuVector::new();
        let roots = builder.finish(&mut system_total);
        Ccsg { roots, system_total }
    }

    /// Total aggregated nodes.
    pub fn size(&self) -> usize {
        self.roots.iter().map(CcsgNode::size).sum()
    }
}

/// Aggregation scaffold: merges call nodes by function key level by level.
///
/// Entries live in a flat arena indexed by `usize` — parent/child structure
/// is index maps, not owned nesting — so absorbing, merging, finishing and
/// dropping the scaffold never recurse, regardless of chain depth.
#[derive(Debug, Default)]
struct Aggregate {
    entries: Vec<AggregateEntry>,
    roots: BTreeMap<FunctionKey, usize>,
}

#[derive(Debug, Default)]
struct AggregateEntry {
    invocation_times: usize,
    included_instances: Vec<u64>,
    self_cpu: CpuVector,
    children: BTreeMap<FunctionKey, usize>,
}

impl Aggregate {
    /// The arena index for `func` under `parent` (`None` = top level),
    /// allocating a fresh entry on first sight.
    fn entry_index(&mut self, parent: Option<usize>, func: FunctionKey) -> usize {
        let existing = match parent {
            Some(p) => self.entries[p].children.get(&func).copied(),
            None => self.roots.get(&func).copied(),
        };
        if let Some(index) = existing {
            return index;
        }
        let index = self.entries.len();
        self.entries.push(AggregateEntry::default());
        match parent {
            Some(p) => self.entries[p].children.insert(func, index),
            None => self.roots.insert(func, index),
        };
        index
    }

    /// Absorbs one tree's invocations, pre-order, with an explicit stack.
    fn absorb_tree(&mut self, roots: &[CallNode], deployment: &Deployment) {
        enum Step<'a> {
            Enter(&'a CallNode),
            Exit,
        }
        let mut steps: Vec<Step> = roots.iter().rev().map(Step::Enter).collect();
        // The aggregate entry each open DSCG node merged into.
        let mut path: Vec<usize> = Vec::new();
        while let Some(step) = steps.pop() {
            match step {
                Step::Enter(node) => {
                    let index = self.entry_index(path.last().copied(), node.func);
                    let entry = &mut self.entries[index];
                    entry.invocation_times += 1;
                    let instance_marker = node
                        .stub_start
                        .as_ref()
                        .or(node.skel_start.as_ref())
                        .map(|r| r.seq)
                        .unwrap_or(0);
                    entry.included_instances.push(instance_marker);
                    entry.self_cpu.add_vector(&self_cpu_of(node, deployment));
                    path.push(index);
                    steps.push(Step::Exit);
                    for child in node.children.iter().rev() {
                        steps.push(Step::Enter(child));
                    }
                }
                Step::Exit => {
                    path.pop();
                }
            }
        }
    }

    /// Merges another scaffold into this one. Each (path, function) entry
    /// merges independently; the caller merges shards in tree order so
    /// instance lists concatenate in the serial absorb order.
    fn merge(&mut self, mut other: Aggregate) {
        let mut stack: Vec<(FunctionKey, usize, Option<usize>)> = other
            .roots
            .iter()
            .map(|(&func, &index)| (func, index, None))
            .collect();
        while let Some((func, other_index, parent)) = stack.pop() {
            let entry = std::mem::take(&mut other.entries[other_index]);
            let self_index = self.entry_index(parent, func);
            let target = &mut self.entries[self_index];
            target.invocation_times += entry.invocation_times;
            target.included_instances.extend(entry.included_instances);
            target.self_cpu.add_vector(&entry.self_cpu);
            for (&child_func, &child_index) in &entry.children {
                stack.push((child_func, child_index, Some(self_index)));
            }
        }
    }

    /// Converts the scaffold into CCSG nodes, computing descendant CPU
    /// bottom-up and accumulating the system-wide self-CPU total — one
    /// iterative two-phase pass (no recursion).
    fn finish(mut self, system_total: &mut CpuVector) -> Vec<CcsgNode> {
        enum Step {
            Enter(FunctionKey, usize),
            Exit,
        }
        let mut result: Vec<CcsgNode> = Vec::new();
        let mut building: Vec<CcsgNode> = Vec::new();
        let mut stack: Vec<Step> = self
            .roots
            .iter()
            .rev()
            .map(|(&func, &index)| Step::Enter(func, index))
            .collect();
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(func, index) => {
                    let entry = std::mem::take(&mut self.entries[index]);
                    system_total.add_vector(&entry.self_cpu);
                    stack.push(Step::Exit);
                    for (&child_func, &child_index) in entry.children.iter().rev() {
                        stack.push(Step::Enter(child_func, child_index));
                    }
                    building.push(CcsgNode {
                        func,
                        invocation_times: entry.invocation_times,
                        included_instances: entry.included_instances,
                        self_cpu: entry.self_cpu,
                        descendant_cpu: CpuVector::new(),
                        children: Vec::with_capacity(entry.children.len()),
                    });
                }
                Step::Exit => {
                    let mut node = building.pop().expect("Enter pushed a node");
                    let mut descendant = CpuVector::new();
                    for child in &node.children {
                        descendant.add_vector(&child.self_cpu);
                        descendant.add_vector(&child.descendant_cpu);
                    }
                    node.descendant_cpu = descendant;
                    match building.last_mut() {
                        Some(parent) => parent.children.push(node),
                        None => result.push(node),
                    }
                }
            }
        }
        result
    }
}

/// Formats nanoseconds in the paper's `[second, microsecond]` style.
pub fn format_sec_usec(ns: u64) -> String {
    let seconds = ns / 1_000_000_000;
    let micros = (ns % 1_000_000_000) / 1_000;
    format!("[{seconds} second, {micros} microsecond]")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dscg::CallTree;
    use causeway_core::event::{CallKind, TraceEvent};
    use causeway_core::ids::*;
    use causeway_core::record::{CallSite, ProbeRecord};
    use causeway_core::uuid::Uuid;

    fn stamped(event: TraceEvent, cpu: (u64, u64)) -> ProbeRecord {
        ProbeRecord {
            uuid: Uuid(1),
            seq: 1,
            event,
            kind: CallKind::Sync,
            site: CallSite {
                node: NodeId(0),
                process: ProcessId(0),
                thread: LogicalThreadId(0),
            },
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(0)),
            wall_start: None,
            wall_end: None,
            cpu_start: Some(cpu.0),
            cpu_end: Some(cpu.1),
            oneway_child: None,
            oneway_parent: None,
        }
    }

    fn leaf(object: u64, self_ns: u64) -> CallNode {
        let mut node = CallNode {
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(object)),
            kind: CallKind::Sync,
            stub_start: Some(stamped(TraceEvent::StubStart, (0, 0))),
            skel_start: Some(stamped(TraceEvent::SkelStart, (0, 100))),
            skel_end: Some(stamped(TraceEvent::SkelEnd, (100 + self_ns, 100 + self_ns))),
            stub_end: Some(stamped(TraceEvent::StubEnd, (0, 0))),
            children: Vec::new(),
            complete: true,
        };
        node.stub_start.as_mut().unwrap().func = node.func;
        node
    }

    fn deployment() -> Deployment {
        let mut d = Deployment::new();
        let n = d.add_node("box", CpuTypeId(0));
        d.add_process("p", n);
        d
    }

    #[test]
    fn repeated_invocations_merge_into_one_ccsg_node() {
        let trees = vec![
            CallTree { chain: Uuid(1), roots: vec![leaf(7, 50), leaf(7, 70)] },
            CallTree { chain: Uuid(2), roots: vec![leaf(7, 30)] },
        ];
        let dscg = Dscg::from_trees(trees);
        let ccsg = Ccsg::build(&dscg, &deployment());
        assert_eq!(ccsg.roots.len(), 1);
        let node = &ccsg.roots[0];
        assert_eq!(node.invocation_times, 3);
        assert_eq!(node.included_instances.len(), 3);
        assert_eq!(node.self_cpu.get(CpuTypeId(0)), 150);
        assert!(node.descendant_cpu.is_zero());
        assert_eq!(ccsg.system_total.total(), 150);
    }

    #[test]
    fn hierarchy_is_preserved_and_descendants_summed() {
        let mut parent = leaf(1, 100);
        parent.children.push(leaf(2, 40));
        parent.children.push(leaf(2, 60));
        let dscg = Dscg::from_trees(vec![CallTree { chain: Uuid(1), roots: vec![parent] }]);
        let ccsg = Ccsg::build(&dscg, &deployment());
        assert_eq!(ccsg.roots.len(), 1);
        let root = &ccsg.roots[0];
        assert_eq!(root.children.len(), 1, "both child instances merged");
        assert_eq!(root.children[0].invocation_times, 2);
        assert_eq!(root.children[0].self_cpu.get(CpuTypeId(0)), 100);
        assert_eq!(root.descendant_cpu.get(CpuTypeId(0)), 100);
        assert_eq!(ccsg.size(), 2);
    }

    #[test]
    fn distinct_objects_stay_distinct() {
        let trees = vec![CallTree { chain: Uuid(1), roots: vec![leaf(1, 10), leaf(2, 20)] }];
        let dscg = Dscg::from_trees(trees);
        let ccsg = Ccsg::build(&dscg, &deployment());
        assert_eq!(ccsg.roots.len(), 2);
    }

    #[test]
    fn sec_usec_formatting_matches_figure_6() {
        assert_eq!(format_sec_usec(0), "[0 second, 0 microsecond]");
        assert_eq!(format_sec_usec(1_500_000), "[0 second, 1500 microsecond]");
        assert_eq!(
            format_sec_usec(2_000_456_000),
            "[2 second, 456 microsecond]"
        );
    }
}
