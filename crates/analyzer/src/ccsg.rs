//! The CPU Consumption Summarization Graph (Figure 6).
//!
//! Phase 3 of the CPU characterization: synthesize the per-invocation
//! self/descendant CPU with the DSCG into an aggregated graph. Nodes with
//! the same (object, function) under the same aggregated parent are merged;
//! each CCSG node reports the object identifier, invocation count, the
//! included function instances, and the summed self and descendant CPU —
//! the exact fields visible in the paper's XML viewer snapshot.

use crate::cpu::{CpuVector, self_cpu_of};
use crate::dscg::{CallNode, Dscg};
use causeway_core::deploy::Deployment;
use causeway_core::record::FunctionKey;
use std::collections::BTreeMap;

/// One aggregated node of the CCSG.
#[derive(Debug, Clone)]
pub struct CcsgNode {
    /// The aggregated (interface, method, object).
    pub func: FunctionKey,
    /// `InvocationTimes`: how many DSCG nodes were merged here.
    pub invocation_times: usize,
    /// `IncludedFunctionInstances`: the chain-local identities of the merged
    /// instances, as (chain seq of stub-start or skel-start) markers.
    pub included_instances: Vec<u64>,
    /// Summed `SelfCPUConsumption`.
    pub self_cpu: CpuVector,
    /// Summed `DescendentCPUConsumption`.
    pub descendant_cpu: CpuVector,
    /// Aggregated children, keyed by their (interface, method, object).
    pub children: Vec<CcsgNode>,
}

impl CcsgNode {
    /// Total nodes in this aggregated subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(CcsgNode::size).sum::<usize>()
    }
}

/// The CPU Consumption Summarization Graph.
#[derive(Debug, Clone, Default)]
pub struct Ccsg {
    /// Aggregated top-level invocations.
    pub roots: Vec<CcsgNode>,
    /// System-wide self-CPU total by processor type.
    pub system_total: CpuVector,
}

impl Ccsg {
    /// Builds the CCSG from a DSCG and the deployment's CPU-type map.
    pub fn build(dscg: &Dscg, deployment: &Deployment) -> Ccsg {
        let mut builder = Aggregate::default();
        for tree in &dscg.trees {
            for root in &tree.roots {
                builder.absorb(root, deployment);
            }
        }
        let mut system_total = CpuVector::new();
        let roots = builder.finish(&mut system_total);
        Ccsg { roots, system_total }
    }

    /// Total aggregated nodes.
    pub fn size(&self) -> usize {
        self.roots.iter().map(CcsgNode::size).sum()
    }
}

/// Aggregation scaffold: merges call nodes by function key level by level.
#[derive(Debug, Default)]
struct Aggregate {
    by_func: BTreeMap<FunctionKey, AggregateEntry>,
}

#[derive(Debug, Default)]
struct AggregateEntry {
    invocation_times: usize,
    included_instances: Vec<u64>,
    self_cpu: CpuVector,
    children: Aggregate,
}

impl Aggregate {
    fn absorb(&mut self, node: &CallNode, deployment: &Deployment) {
        let entry = self.by_func.entry(node.func).or_default();
        entry.invocation_times += 1;
        let instance_marker = node
            .stub_start
            .as_ref()
            .or(node.skel_start.as_ref())
            .map(|r| r.seq)
            .unwrap_or(0);
        entry.included_instances.push(instance_marker);
        entry.self_cpu.add_vector(&self_cpu_of(node, deployment));
        for child in &node.children {
            entry.children.absorb(child, deployment);
        }
    }

    /// Converts the scaffold into CCSG nodes, computing descendant CPU
    /// bottom-up and accumulating the system-wide self-CPU total.
    fn finish(self, system_total: &mut CpuVector) -> Vec<CcsgNode> {
        self.by_func
            .into_iter()
            .map(|(func, entry)| {
                system_total.add_vector(&entry.self_cpu);
                let children = entry.children.finish(system_total);
                let mut descendant = CpuVector::new();
                for child in &children {
                    descendant.add_vector(&child.self_cpu);
                    descendant.add_vector(&child.descendant_cpu);
                }
                CcsgNode {
                    func,
                    invocation_times: entry.invocation_times,
                    included_instances: entry.included_instances,
                    self_cpu: entry.self_cpu,
                    descendant_cpu: descendant,
                    children,
                }
            })
            .collect()
    }
}

/// Formats nanoseconds in the paper's `[second, microsecond]` style.
pub fn format_sec_usec(ns: u64) -> String {
    let seconds = ns / 1_000_000_000;
    let micros = (ns % 1_000_000_000) / 1_000;
    format!("[{seconds} second, {micros} microsecond]")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dscg::CallTree;
    use causeway_core::event::{CallKind, TraceEvent};
    use causeway_core::ids::*;
    use causeway_core::record::{CallSite, ProbeRecord};
    use causeway_core::uuid::Uuid;

    fn stamped(event: TraceEvent, cpu: (u64, u64)) -> ProbeRecord {
        ProbeRecord {
            uuid: Uuid(1),
            seq: 1,
            event,
            kind: CallKind::Sync,
            site: CallSite {
                node: NodeId(0),
                process: ProcessId(0),
                thread: LogicalThreadId(0),
            },
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(0)),
            wall_start: None,
            wall_end: None,
            cpu_start: Some(cpu.0),
            cpu_end: Some(cpu.1),
            oneway_child: None,
            oneway_parent: None,
        }
    }

    fn leaf(object: u64, self_ns: u64) -> CallNode {
        let mut node = CallNode {
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(object)),
            kind: CallKind::Sync,
            stub_start: Some(stamped(TraceEvent::StubStart, (0, 0))),
            skel_start: Some(stamped(TraceEvent::SkelStart, (0, 100))),
            skel_end: Some(stamped(TraceEvent::SkelEnd, (100 + self_ns, 100 + self_ns))),
            stub_end: Some(stamped(TraceEvent::StubEnd, (0, 0))),
            children: Vec::new(),
            complete: true,
        };
        node.stub_start.as_mut().unwrap().func = node.func;
        node
    }

    fn deployment() -> Deployment {
        let mut d = Deployment::new();
        let n = d.add_node("box", CpuTypeId(0));
        d.add_process("p", n);
        d
    }

    #[test]
    fn repeated_invocations_merge_into_one_ccsg_node() {
        let trees = vec![
            CallTree { chain: Uuid(1), roots: vec![leaf(7, 50), leaf(7, 70)] },
            CallTree { chain: Uuid(2), roots: vec![leaf(7, 30)] },
        ];
        let dscg = Dscg { trees, abnormalities: vec![] };
        let ccsg = Ccsg::build(&dscg, &deployment());
        assert_eq!(ccsg.roots.len(), 1);
        let node = &ccsg.roots[0];
        assert_eq!(node.invocation_times, 3);
        assert_eq!(node.included_instances.len(), 3);
        assert_eq!(node.self_cpu.get(CpuTypeId(0)), 150);
        assert!(node.descendant_cpu.is_zero());
        assert_eq!(ccsg.system_total.total(), 150);
    }

    #[test]
    fn hierarchy_is_preserved_and_descendants_summed() {
        let mut parent = leaf(1, 100);
        parent.children.push(leaf(2, 40));
        parent.children.push(leaf(2, 60));
        let dscg = Dscg {
            trees: vec![CallTree { chain: Uuid(1), roots: vec![parent] }],
            abnormalities: vec![],
        };
        let ccsg = Ccsg::build(&dscg, &deployment());
        assert_eq!(ccsg.roots.len(), 1);
        let root = &ccsg.roots[0];
        assert_eq!(root.children.len(), 1, "both child instances merged");
        assert_eq!(root.children[0].invocation_times, 2);
        assert_eq!(root.children[0].self_cpu.get(CpuTypeId(0)), 100);
        assert_eq!(root.descendant_cpu.get(CpuTypeId(0)), 100);
        assert_eq!(ccsg.size(), 2);
    }

    #[test]
    fn distinct_objects_stay_distinct() {
        let trees = vec![CallTree { chain: Uuid(1), roots: vec![leaf(1, 10), leaf(2, 20)] }];
        let dscg = Dscg { trees, abnormalities: vec![] };
        let ccsg = Ccsg::build(&dscg, &deployment());
        assert_eq!(ccsg.roots.len(), 2);
    }

    #[test]
    fn sec_usec_formatting_matches_figure_6() {
        assert_eq!(format_sec_usec(0), "[0 second, 0 microsecond]");
        assert_eq!(format_sec_usec(1_500_000), "[0 second, 1500 microsecond]");
        assert_eq!(
            format_sec_usec(2_000_456_000),
            "[2 second, 456 microsecond]"
        );
    }
}
