//! Chrome `trace_event` export: open any captured run in Perfetto.
//!
//! Bespoke renderers (see [`crate::render`]) answer the paper's own
//! questions, but the ecosystem already has excellent trace UIs. This
//! module converts a [`MonitoringDb`] — any collection of probe records
//! with wall stamps — into the Chrome trace-event JSON format, which loads
//! directly in [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`:
//!
//! * every reconstructed invocation becomes a **client slice** (`stub_start
//!   → stub_end`, category `stub`) on the calling thread's track and a
//!   **server slice** (`skel_start → skel_end`, category `skel`) on the
//!   dispatching thread's track — tracks are (process, logical thread)
//!   pairs, exactly the paper's scattered-log coordinates;
//! * every invocation also opens an **async span** (`b`/`e`, category
//!   `invocation`) covering its full client-visible window, so nesting
//!   survives even across thread hops;
//! * the causal edges the FTL carried — request (`stub_start → skel_start`)
//!   and reply (`skel_end → stub_end`) whenever the two sides ran on
//!   different tracks, which includes grafted one-way children — become
//!   **flow arrows** (`s`/`f`);
//! * reconstruction [`Abnormality`] reports become **instant events** at
//!   the offending record's stamp;
//! * process names from the deployment become `process_name` metadata.
//!
//! Records without wall stamps (probe mode [`ProbeMode::CausalityOnly`] or
//! [`ProbeMode::Cpu`]) carry no time axis, so invocations whose endpoints
//! are unstamped contribute no slices — capture with `Latency` or `Both`
//! to get a useful trace.
//!
//! [`ProbeMode::CausalityOnly`]: causeway_core::monitor::ProbeMode
//! [`ProbeMode::Cpu`]: causeway_core::monitor::ProbeMode

use crate::dscg::{CallNode, Dscg};
use causeway_collector::db::MonitoringDb;
use causeway_collector::json::Json;
use causeway_core::event::CallKind;
use causeway_core::names::VocabSnapshot;
use causeway_core::record::ProbeRecord;

/// Microsecond timestamp (the trace-event unit) from a nanosecond stamp.
/// Sub-microsecond precision is kept as a fraction, which the format
/// allows.
fn us(ns: u64) -> Json {
    Json::Num(ns as f64 / 1000.0)
}

/// The common envelope of one trace event.
fn event(name: &str, ph: &str, cat: &str, ts_ns: u64, site: &ProbeRecord) -> Vec<(&'static str, Json)> {
    vec![
        ("name", Json::Str(name.to_owned())),
        ("ph", Json::Str(ph.to_owned())),
        ("cat", Json::Str(cat.to_owned())),
        ("ts", us(ts_ns)),
        ("pid", Json::Num(site.site.process.0 as f64)),
        ("tid", Json::Num(site.site.thread.0 as f64)),
    ]
}

struct Exporter<'a> {
    vocab: &'a VocabSnapshot,
    events: Vec<Json>,
    /// Monotonic id shared by an invocation's async span and flow arrows.
    next_id: u64,
}

impl Exporter<'_> {
    fn push(&mut self, fields: Vec<(&'static str, Json)>) {
        self.events.push(Json::obj(fields));
    }

    /// Emits the events of a whole subtree, pre-order, with an explicit
    /// stack — the per-node recursion this replaces overflowed on deep
    /// chains.
    fn node(&mut self, root: &CallNode) {
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            self.emit_invocation(node);
            for child in node.children.iter().rev() {
                stack.push(child);
            }
        }
    }

    /// Emits the events of one invocation (no descent).
    fn emit_invocation(&mut self, node: &CallNode) {
        let name = self.vocab.qualified_function(&node.func);
        let id = self.next_id;
        self.next_id += 1;

        // Client slice: the caller-observed window.
        if let (Some(start), Some(end)) = (&node.stub_start, &node.stub_end) {
            if let (Some(ts), Some(te)) = (start.wall_start, end.wall_end) {
                let mut fields = event(&name, "X", "stub", ts, start);
                fields.push(("dur", us(te.saturating_sub(ts))));
                fields.push(("args", node_args(node)));
                self.push(fields);
            }
        }
        // Server slice: the dispatch window.
        if let (Some(start), Some(end)) = (&node.skel_start, &node.skel_end) {
            if let (Some(ts), Some(te)) = (start.wall_start, end.wall_end) {
                let mut fields = event(&name, "X", "skel", ts, start);
                fields.push(("dur", us(te.saturating_sub(ts))));
                fields.push(("args", node_args(node)));
                self.push(fields);
            }
        }

        // Async span over the full client-visible window (server window for
        // grafted one-way children, which have no client side).
        let (span_open, span_close) = match (&node.stub_start, &node.stub_end) {
            (Some(open), Some(close)) => (Some(open), Some(close)),
            _ => (node.skel_start.as_ref(), node.skel_end.as_ref()),
        };
        if let (Some(open), Some(close)) = (span_open, span_close) {
            if let (Some(ts), Some(te)) = (open.wall_start, close.wall_end) {
                let mut fields = event(&name, "b", "invocation", ts, open);
                fields.push(("id", Json::Str(format!("{id}"))));
                self.push(fields);
                let mut fields = event(&name, "e", "invocation", te, close);
                fields.push(("id", Json::Str(format!("{id}"))));
                self.push(fields);
            }
        }

        // Flow arrows for the causal edges that crossed tracks. The request
        // edge exists for synchronous and one-way calls alike (the FTL on
        // the wire); the reply edge only when a reply actually flowed.
        self.flow(&name, id, "request", node.stub_start.as_ref(), node.skel_start.as_ref());
        if node.kind != CallKind::Oneway {
            self.flow(&name, id, "reply", node.skel_end.as_ref(), node.stub_end.as_ref());
        }
    }

    /// One flow arrow (`s` at the source probe, `f` at the destination
    /// probe), emitted only when both sides are stamped and the edge really
    /// crossed tracks — same-track edges are visible as nesting already.
    fn flow(
        &mut self,
        name: &str,
        id: u64,
        edge: &str,
        from: Option<&ProbeRecord>,
        to: Option<&ProbeRecord>,
    ) {
        let (Some(from), Some(to)) = (from, to) else { return };
        if from.site.process == to.site.process && from.site.thread == to.site.thread {
            return;
        }
        let (Some(ts_from), Some(ts_to)) = (from.wall_end, to.wall_start) else { return };
        let flow_name = format!("{edge} {name}");
        let mut fields = event(&flow_name, "s", "causality", ts_from, from);
        fields.push(("id", Json::Str(format!("{edge}-{id}"))));
        self.push(fields);
        let mut fields = event(&flow_name, "f", "causality", ts_to, to);
        fields.push(("id", Json::Str(format!("{edge}-{id}"))));
        fields.push(("bp", Json::Str("e".to_owned())));
        self.push(fields);
    }
}

/// Per-slice argument payload shown in the UI's detail pane.
fn node_args(node: &CallNode) -> Json {
    Json::obj([
        ("kind", Json::Str(format!("{:?}", node.kind))),
        ("chain", Json::Str(chain_of(node))),
        ("complete", Json::Bool(node.complete)),
    ])
}

/// The chain uuid of a node's first stamped record, for the detail pane.
fn chain_of(node: &CallNode) -> String {
    [&node.stub_start, &node.skel_start, &node.skel_end, &node.stub_end]
        .into_iter()
        .flatten()
        .next()
        .map(|r| r.uuid.to_string())
        .unwrap_or_default()
}

/// Converts a monitoring database into Chrome trace-event JSON.
///
/// The output is deterministic for a given database (object keys are
/// sorted, events follow the DSCG's stable traversal order), which is what
/// the golden-file test relies on.
pub fn export(db: &MonitoringDb) -> String {
    let dscg = Dscg::build(db);
    let vocab = db.vocab();
    let mut exporter = Exporter { vocab, events: Vec::new(), next_id: 0 };

    // Process-name metadata first, so the UI labels tracks properly.
    for (pid, process) in db.deployment().processes.iter().enumerate() {
        let node_name = db
            .deployment()
            .nodes
            .get(process.node.0 as usize)
            .map(|n| n.name.as_str())
            .unwrap_or("?");
        exporter.push(vec![
            ("name", Json::Str("process_name".to_owned())),
            ("ph", Json::Str("M".to_owned())),
            ("pid", Json::Num(pid as f64)),
            (
                "args",
                Json::obj([("name", Json::Str(format!("{} @ {}", process.name, node_name)))]),
            ),
        ]);
    }

    for tree in &dscg.trees {
        for root in &tree.roots {
            exporter.node(root);
        }
    }

    // Abnormalities as instant events at the offending record's stamp.
    for abnormality in &dscg.abnormalities {
        let record = abnormality.at_seq.and_then(|seq| {
            db.events_for(abnormality.chain).into_iter().find(|r| r.seq == seq).cloned()
        });
        let Some(record) = record else { continue };
        let Some(ts) = record.wall_start else { continue };
        let mut fields = event(&abnormality.message, "i", "abnormality", ts, &record);
        fields.push(("s", Json::Str("p".to_owned())));
        exporter.push(fields);
    }

    let trace = Json::obj([
        ("traceEvents", Json::Arr(exporter.events)),
        ("displayTimeUnit", Json::Str("ms".to_owned())),
        ("otherData", Json::obj([("exporter", Json::Str("causeway_analyze trace".to_owned()))])),
    ]);
    format!("{trace}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use causeway_collector::db::DbBuilder;
    use causeway_collector::json;
    use causeway_core::deploy::Deployment;
    use causeway_core::event::TraceEvent;
    use causeway_core::ids::*;
    use causeway_core::names::SystemVocab;
    use causeway_core::record::{CallSite, FunctionKey, ProbeRecord};
    use causeway_core::uuid::Uuid;

    fn rec(
        seq: u64,
        event: TraceEvent,
        process: u16,
        thread: u32,
        wall: (u64, u64),
    ) -> ProbeRecord {
        ProbeRecord {
            uuid: Uuid(42),
            seq,
            event,
            kind: CallKind::Sync,
            site: CallSite {
                node: NodeId(0),
                process: ProcessId(process),
                thread: LogicalThreadId(thread),
            },
            func: FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(0)),
            wall_start: Some(wall.0),
            wall_end: Some(wall.1),
            cpu_start: None,
            cpu_end: None,
            oneway_child: None,
            oneway_parent: None,
        }
    }

    fn tiny_db() -> MonitoringDb {
        let vocab = SystemVocab::new();
        let iface = vocab.intern_interface("Printer", &["print"]);
        let comp = vocab.intern_component("PrinterComponent");
        vocab.register_object("printer#0", iface, comp, ProcessId(1));
        let mut deployment = Deployment::new();
        let cpu = vocab.intern_cpu_type("TestCpu");
        let node = deployment.add_node("box", cpu);
        deployment.add_process("client", node);
        deployment.add_process("server", node);
        let mut builder = DbBuilder::new();
        builder.ingest_records([
            rec(1, TraceEvent::StubStart, 0, 0, (1_000, 2_000)),
            rec(2, TraceEvent::SkelStart, 1, 0, (5_000, 6_000)),
            rec(3, TraceEvent::SkelEnd, 1, 0, (20_000, 21_000)),
            rec(4, TraceEvent::StubEnd, 0, 0, (25_000, 26_000)),
        ]);
        builder.finish(vocab.snapshot(), deployment)
    }

    #[test]
    fn export_is_valid_json_with_expected_phases() {
        let text = export(&tiny_db());
        let parsed = json::parse(&text).expect("exporter emits valid JSON");
        let events = parsed.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        // 2 process_name metadata, client+server slices, async b/e, and
        // 2 flow arrows per crossing edge × 2 edges.
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "b").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "e").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "s").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "f").count(), 2);
    }

    #[test]
    fn slices_carry_microsecond_timestamps() {
        let text = export(&tiny_db());
        let parsed = json::parse(&text).unwrap();
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        let client_slice = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(Json::as_str) == Some("X")
                    && e.get("cat").and_then(Json::as_str) == Some("stub")
            })
            .expect("client slice");
        assert_eq!(client_slice.get("ts").and_then(Json::as_u64), Some(1)); // 1000 ns
        assert_eq!(client_slice.get("dur").and_then(Json::as_u64), Some(25)); // 26000−1000 ns
        assert_eq!(client_slice.get("pid").and_then(Json::as_u64), Some(0));
        let name = client_slice.get("name").and_then(Json::as_str).unwrap();
        assert!(name.contains("print"), "{name}");
    }

    #[test]
    fn unstamped_records_produce_no_slices() {
        let vocab = SystemVocab::new();
        vocab.intern_interface("I", &["m"]);
        let mut deployment = Deployment::new();
        let node = deployment.add_node("box", vocab.intern_cpu_type("T"));
        deployment.add_process("p", node);
        let mut builder = DbBuilder::new();
        let mut records = [
            rec(1, TraceEvent::StubStart, 0, 0, (0, 0)),
            rec(2, TraceEvent::SkelStart, 0, 0, (0, 0)),
            rec(3, TraceEvent::SkelEnd, 0, 0, (0, 0)),
            rec(4, TraceEvent::StubEnd, 0, 0, (0, 0)),
        ];
        for record in &mut records {
            record.wall_start = None;
            record.wall_end = None;
        }
        builder.ingest_records(records);
        let db = builder.finish(vocab.snapshot(), deployment);
        let parsed = json::parse(&export(&db)).unwrap();
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(
            events
                .iter()
                .all(|e| e.get("ph").and_then(Json::as_str) == Some("M")),
            "causality-only records have no time axis"
        );
    }
}
