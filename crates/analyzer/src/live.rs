//! Live monitoring: windowed streaming characterization, abnormality
//! alerting, and an embedded HTTP status/scrape endpoint.
//!
//! The paper's tooling is post-hoc: harvest after quiescence, then
//! characterize. This module keeps the same Figure-4 reconstruction (via
//! [`OnlineAnalyzer`]) but folds its event stream into *windows* so a
//! long-running system can be characterized while it serves traffic:
//!
//! * [`LiveMonitor`] — ingests probe records, maintains **tumbling** and
//!   **sliding** windows of per-(interface, method) latency (log2 streaming
//!   histograms with p50/p95/p99), call rate, busy share and abnormality
//!   rate, accumulates folded flamegraph stacks, and retains the last
//!   window's raw records for Chrome-trace export. Ingestion is **sharded
//!   by chain UUID**: each shard owns its analyzer, slice aggregates and
//!   folded-stack maps behind its own lock, records route lock-free by
//!   `uuid % shards`, and shard state merges into the window machinery at
//!   window close — output is bit-identical to a serial monitor at any
//!   shard count, because the cross-chain, order-sensitive effects are
//!   replayed under one small control lock in the batch's chain
//!   first-appearance order (the exact order a serial analyzer emits).
//! * [`AlertRule`] / [`AlertEvent`] — declarative threshold alerts with
//!   duration (`for=N` windows) and hysteresis (separate fire/resolve
//!   thresholds); firing and resolving transitions are recorded as
//!   structured events and exposed as gauges.
//! * [`crate::history::WindowHistory`] — every finalized tumbling window's
//!   aggregates and folded-stack snapshot are retained in a bounded ring,
//!   so an operator can ask *when* a regression started (`/history`), diff
//!   two windows' flamegraphs (`/flamegraph/diff?a=..&b=..`), and evaluate
//!   multi-window SLO **burn-rate** rules (`burn=p95>400us;slo=99.9;fast=3;
//!   slow=24`) that fire on sustained budget burn but ignore one-window
//!   spikes.
//! * [`crate::incident`] — when an alert transitions to firing the monitor
//!   registers an **incident** and auto-populates its add-only causal
//!   hypothesis graph from retained evidence (flamegraph-diff regressions
//!   vs a pre-breach baseline window, abnormal chains with DSCG renders,
//!   hottest stacks); automatic passes and operators eliminate hypotheses
//!   via tombstones with provenance, and `/incidents` serves the
//!   query-time surviving-cause set.
//! * [`serve`] — mounts the monitor behind [`causeway_core::httpd`]:
//!   `/metrics`, `/healthz`, `/chains`, `/latency`, `/flamegraph`,
//!   `/flamegraph/diff`, `/history`, `/dscg`, `/trace`, `/alerts`,
//!   `/incidents` (+ `POST /incidents/eliminate`) — and runs a background
//!   ticker thread so windows rotate on idle systems.
//!
//! Lock discipline: the control lock may be taken alone or **before** shard
//! locks (taken one at a time); a thread holding a shard lock never takes
//! the control lock or another shard lock. Every internal lock site
//! recovers from poisoning (a panicking handler or ingest thread must not
//! take window rotation down with it), logging once per process.
//!
//! Time is explicit: every mutating entry point has an `_at(now_ns)` variant
//! so tests are deterministic; the plain variants stamp with a monotonic
//! clock started at construction.

use crate::chrome_trace;
use crate::exemplar::{self, ExemplarConfig, ExemplarStore};
use crate::history::{diff_folded, BurnRule, BurnState, HistoryEntry, WindowHistory};
use crate::incident::{self, HypothesisKind, Incident, IncidentStore};
use crate::latency::LatencyHistogram;
use crate::online::{OnlineAnalyzer, OnlineEvent, OpenChainSummary};
use crate::render::{self, CompletedCall};
use causeway_collector::db::MonitoringDb;
use causeway_collector::json::{self, Json};
use causeway_core::deploy::Deployment;
use causeway_core::httpd::{Handler, HttpServer, Request, Response};
use causeway_core::ids::{InterfaceId, MethodIndex};
use causeway_core::metrics::{Counter, Gauge, MetricsRegistry};
use causeway_core::monitor::{ProbeDirective, ProbeMode, ProbePolicy};
use causeway_core::names::VocabSnapshot;
use causeway_core::record::ProbeRecord;
use causeway_core::runlog::RunLog;
use causeway_core::uuid::Uuid;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A per-operation series key: the characterization unit of the paper's
/// Table 2.
pub type SeriesKey = (InterfaceId, MethodIndex);

/// Static configuration of a [`LiveMonitor`].
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Tumbling window length. Alerts are evaluated once per window.
    pub window: Duration,
    /// Sliding resolution: the window is divided into this many slices; the
    /// sliding view merges the most recent `slices` of them.
    pub slices: usize,
    /// Maximum raw probe records retained per window for `/trace` export.
    pub trace_capacity: usize,
    /// Maximum buffered flamegraph completion events per open chain.
    pub chain_event_capacity: usize,
    /// Maximum retained alert transition events.
    pub alert_log_capacity: usize,
    /// Finalized tumbling windows retained by the history store (ring size
    /// for `/history`, `/flamegraph?window=`, burn-rate rules).
    pub history_windows: usize,
    /// Approximate byte cap on the history store; whichever of the two
    /// caps bites first evicts the oldest window.
    pub history_max_bytes: usize,
    /// Maximum distinct stacks in the cumulative folded flamegraph map
    /// (and in each window's snapshot); beyond it the smallest-valued
    /// stack is evicted and counted.
    pub stack_capacity: usize,
    /// Spill segment path for windows evicted from the history ring; when
    /// set, `/history?from=..&to=..` and `/flamegraph?window=k` keep
    /// working past the ring. `None` (the default) drops evictions.
    pub history_spill: Option<std::path::PathBuf>,
    /// Automatic incident forensics (see [`crate::incident`]).
    pub incidents: IncidentConfig,
    /// The adaptive probe control plane (alert-driven escalation of
    /// per-interface probe modes; see [`AdaptiveConfig`]).
    pub adaptive: AdaptiveConfig,
    /// Ingestion shards: records route by `uuid % shards`, so a chain's
    /// records always land on one shard. Clamped to at least 1. Output is
    /// shard-count independent; more shards reduce ingest lock contention.
    pub shards: usize,
    /// Tail-based exemplar capture: per-series reservoirs of the chains
    /// behind the percentiles and alerts (see [`crate::exemplar`]).
    pub exemplars: ExemplarConfig,
}

/// Configuration of automatic incident forensics: how the hypothesis graph
/// is populated when an alert fires, and how the retained ring is bounded.
#[derive(Debug, Clone)]
pub struct IncidentConfig {
    /// Register an incident whenever an alert transitions to firing.
    pub enabled: bool,
    /// Retained incidents (oldest evicted beyond this).
    pub capacity: usize,
    /// Top flamegraph-diff regressions (breach vs baseline window)
    /// nominated as hypotheses.
    pub top_regressions: usize,
    /// Hottest breach-window folded stacks nominated as hypotheses.
    pub top_stacks: usize,
    /// Most recent abnormal chains nominated as hypotheses.
    pub max_abnormal: usize,
    /// The stack-floor pass eliminates hot-stack hypotheses below this
    /// fraction of the breach window's total self time (the heaviest hot
    /// stack is always spared, so the set never empties itself).
    pub stack_share_floor: f64,
}

impl Default for IncidentConfig {
    fn default() -> Self {
        IncidentConfig {
            enabled: true,
            capacity: 64,
            top_regressions: 8,
            top_stacks: 5,
            max_abnormal: 8,
            stack_share_floor: 0.02,
        }
    }
}

/// Configuration of the adaptive probe control plane.
///
/// The monitored system's shared [`ProbePolicy`] is the actuator surface:
/// when a series-targeting alert or burn rule fires, the live monitor
/// escalates that interface's probes to `escalate_mode` (or the rule's own
/// `escalate=` suffix), and de-escalates when the rule resolves. Operators
/// can override any interface over `POST /probes`, bounded by a TTL. With
/// `policy` left `None` the control plane is inert: rules still alert, but
/// nothing is actuated.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// The probe policy shared with the monitored system's dispatch
    /// substrates (e.g. `System::probe_policy()`); `None` disables
    /// actuation.
    pub policy: Option<ProbePolicy>,
    /// The mode a firing series-targeting rule escalates its interface to,
    /// unless the rule carries an explicit `escalate=` suffix.
    pub escalate_mode: ProbeMode,
    /// Default lifetime of an operator override posted without `ttl_ms`.
    pub operator_ttl: Duration,
    /// Retained probe-mode transitions (the `/probes` log ring).
    pub log_capacity: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            policy: None,
            escalate_mode: ProbeMode::Both,
            operator_ttl: Duration::from_secs(300),
            log_capacity: 256,
        }
    }
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            window: Duration::from_secs(5),
            slices: 5,
            trace_capacity: 100_000,
            chain_event_capacity: 100_000,
            alert_log_capacity: 1024,
            history_windows: 64,
            history_max_bytes: 8 << 20,
            stack_capacity: 65_536,
            history_spill: None,
            incidents: IncidentConfig::default(),
            adaptive: AdaptiveConfig::default(),
            shards: 4,
            exemplars: ExemplarConfig::default(),
        }
    }
}

/// Streaming aggregates for one (interface, method) within one window or
/// slice.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesAgg {
    /// Completed invocations.
    pub calls: u64,
    /// Sum of compensated latencies, ns.
    pub latency_sum_ns: u64,
    /// Log2 latency histogram (bucket upper bounds answer quantiles).
    pub hist: LatencyHistogram,
}

impl SeriesAgg {
    pub(crate) fn record(&mut self, latency_ns: u64) {
        self.calls += 1;
        self.latency_sum_ns += latency_ns;
        self.hist.record(latency_ns);
    }

    fn merge(&mut self, other: &SeriesAgg) {
        self.calls += other.calls;
        self.latency_sum_ns += other.latency_sum_ns;
        self.hist.merge(&other.hist);
    }
}

/// One time slice's aggregates (a window is `slices` consecutive slices).
#[derive(Debug, Clone, Default)]
struct Slice {
    series: BTreeMap<SeriesKey, SeriesAgg>,
    completed_calls: u64,
    abnormalities: u64,
}

/// A finalized (or synthesized sliding) window of characterization data.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Tumbling window ordinal (slice index of its first slice divided by
    /// the slice count); `u64::MAX` marks a synthesized sliding view.
    pub index: u64,
    /// Window span covered, ns.
    pub span_ns: u64,
    /// Per-operation aggregates.
    pub series: BTreeMap<SeriesKey, SeriesAgg>,
    /// Invocations completed across all series.
    pub completed_calls: u64,
    /// Figure-4 reconstruction failures observed.
    pub abnormalities: u64,
}

impl WindowSnapshot {
    /// The q-quantile (`q` in `[0,1]`) for one series, as the containing
    /// log2 bucket's upper bound; `None` when the series has no samples.
    pub fn quantile_ns(&self, key: SeriesKey, q: f64) -> Option<u64> {
        let agg = self.series.get(&key)?;
        (agg.calls > 0).then(|| agg.hist.quantile_ns(q))
    }

    /// Completed calls per second for one series (or all, with `None`).
    pub fn call_rate_hz(&self, key: Option<SeriesKey>) -> f64 {
        if self.span_ns == 0 {
            return 0.0;
        }
        let calls = match key {
            Some(key) => self.series.get(&key).map_or(0, |a| a.calls),
            None => self.completed_calls,
        };
        calls as f64 * 1e9 / self.span_ns as f64
    }

    /// Abnormalities per second over the window.
    pub fn abnormality_rate_hz(&self) -> f64 {
        if self.span_ns == 0 {
            return 0.0;
        }
        self.abnormalities as f64 * 1e9 / self.span_ns as f64
    }

    /// Fraction of the window one series spent inside invocations (its
    /// latency sum over the window span) — the live proxy for the paper's
    /// per-function CPU share.
    pub fn busy_share(&self, key: SeriesKey) -> f64 {
        if self.span_ns == 0 {
            return 0.0;
        }
        self.series.get(&key).map_or(0.0, |a| a.latency_sum_ns as f64 / self.span_ns as f64)
    }
}

/// Which windowed series an [`AlertRule`] watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertMetric {
    /// Median latency, ns.
    P50,
    /// 95th-percentile latency, ns.
    P95,
    /// 99th-percentile latency, ns.
    P99,
    /// Completed calls per second.
    CallRate,
    /// Abnormalities per second (always system-wide).
    AbnormalityRate,
}

/// Alert comparison direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertCmp {
    /// Fire when the value exceeds the threshold.
    Above,
    /// Fire when the value drops below the threshold.
    Below,
}

/// A declarative alert: threshold + duration + hysteresis over one windowed
/// series.
#[derive(Debug, Clone)]
pub struct AlertRule {
    /// Display name, e.g. `p95:Pps::Stage.rasterize>800us`.
    pub name: String,
    /// The windowed value watched.
    pub metric: AlertMetric,
    /// Restrict to one operation; `None` watches the system-wide aggregate.
    pub series: Option<SeriesKey>,
    /// Fire direction.
    pub cmp: AlertCmp,
    /// Breaching this value (in `cmp`'s direction) starts/extends firing.
    pub fire_threshold: f64,
    /// Only values back past this (hysteresis band) count toward resolving.
    pub resolve_threshold: f64,
    /// Consecutive breaching windows required to fire, and consecutive calm
    /// windows required to resolve.
    pub for_windows: u32,
    /// Probe mode the watched interface is escalated to while this rule
    /// fires, overriding the control plane's default escalate mode. Only
    /// meaningful on series-targeting rules with an adaptive policy.
    pub escalate: Option<ProbeMode>,
    /// Standing probe mode the watched interface is left at after this rule
    /// resolves (instead of returning to the policy's base mode).
    pub deescalate: Option<ProbeMode>,
}

impl AlertRule {
    pub(crate) fn breaches(&self, value: f64) -> bool {
        match self.cmp {
            AlertCmp::Above => value > self.fire_threshold,
            AlertCmp::Below => value < self.fire_threshold,
        }
    }

    fn calms(&self, value: f64) -> bool {
        match self.cmp {
            AlertCmp::Above => value <= self.resolve_threshold,
            AlertCmp::Below => value >= self.resolve_threshold,
        }
    }

    pub(crate) fn evaluate(&self, window: &WindowSnapshot) -> f64 {
        match self.metric {
            AlertMetric::P50 | AlertMetric::P95 | AlertMetric::P99 => {
                let q = match self.metric {
                    AlertMetric::P50 => 0.50,
                    AlertMetric::P95 => 0.95,
                    _ => 0.99,
                };
                match self.series {
                    Some(key) => window.quantile_ns(key, q).unwrap_or(0) as f64,
                    None => {
                        // System-wide: merge every series' histogram.
                        let mut all = SeriesAgg::default();
                        for agg in window.series.values() {
                            all.merge(agg);
                        }
                        if all.calls == 0 { 0.0 } else { all.hist.quantile_ns(q) as f64 }
                    }
                }
            }
            AlertMetric::CallRate => window.call_rate_hz(self.series),
            AlertMetric::AbnormalityRate => window.abnormality_rate_hz(),
        }
    }
}

/// A structured record of one alert transition.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// The rule's name.
    pub alert: String,
    /// `true` on firing, `false` on resolving.
    pub fired: bool,
    /// Tumbling window ordinal at which the transition happened.
    pub window_index: u64,
    /// Wall-clock stamp (epoch milliseconds) of the transition — incident
    /// timelines correlate with external logs through this.
    pub at_ms: u64,
    /// The windowed value that completed the transition.
    pub value: f64,
    /// The threshold it was compared against.
    pub threshold: f64,
    /// Chain uuids of retained exemplars that explain the breach (the
    /// breach window's slowest chains of the rule's series), resolvable at
    /// `/exemplars?id=`. Empty on resolves and when nothing was retained.
    pub exemplars: Vec<Uuid>,
}

/// One rule plus its hysteresis state machine and exported series.
#[derive(Debug)]
struct AlertState {
    rule: AlertRule,
    active: bool,
    pending_fire: u32,
    pending_resolve: u32,
    gauge: Gauge,
    transitions: Counter,
}

impl AlertState {
    fn new(rule: AlertRule) -> AlertState {
        let registry = MetricsRegistry::global();
        let gauge = registry.gauge_with(
            "causeway_live_alert_active",
            "1 while the named alert is firing.",
            &[("alert", &rule.name)],
        );
        gauge.set(0);
        let transitions = registry.counter_with(
            "causeway_live_alert_transitions_total",
            "Alert firing/resolving transitions.",
            &[("alert", &rule.name)],
        );
        AlertState { rule, active: false, pending_fire: 0, pending_resolve: 0, gauge, transitions }
    }

    /// Advances the state machine by one finalized window; returns the
    /// transition completed by this window, if any.
    fn step(&mut self, window: &WindowSnapshot) -> Option<AlertEvent> {
        let value = self.rule.evaluate(window);
        if !self.active {
            if self.rule.breaches(value) {
                self.pending_fire += 1;
                if self.pending_fire >= self.rule.for_windows {
                    self.active = true;
                    self.pending_fire = 0;
                    self.gauge.set(1);
                    self.transitions.inc();
                    return Some(AlertEvent {
                        alert: self.rule.name.clone(),
                        fired: true,
                        window_index: window.index,
                        at_ms: incident::wall_clock_ms(),
                        value,
                        threshold: self.rule.fire_threshold,
                        exemplars: Vec::new(),
                    });
                }
            } else {
                self.pending_fire = 0;
            }
        } else if self.rule.calms(value) {
            self.pending_resolve += 1;
            if self.pending_resolve >= self.rule.for_windows {
                self.active = false;
                self.pending_resolve = 0;
                self.gauge.set(0);
                self.transitions.inc();
                return Some(AlertEvent {
                    alert: self.rule.name.clone(),
                    fired: false,
                    window_index: window.index,
                    at_ms: incident::wall_clock_ms(),
                    value,
                    threshold: self.rule.resolve_threshold,
                    exemplars: Vec::new(),
                });
            }
        } else {
            // Inside the hysteresis band (or re-breaching): hold.
            self.pending_resolve = 0;
        }
        None
    }
}

/// Parses an alert rule spec.
///
/// Grammar: `METRIC[:IFACE.METHOD]CMP VALUE[;for=N][;resolve=VALUE]`
/// `[;escalate=MODE][;deescalate=MODE]` with `METRIC` ∈
/// `p50|p95|p99|rate|abnormal`, `CMP` ∈ `>` `<`, latency values suffixed
/// `ns|us|ms|s` (rates are plain numbers per second), and `MODE` a
/// [`ProbeMode`] name. `escalate=`/`deescalate=` require a series target
/// (the escalated unit is the series' interface).
/// Example: `p95:Pps::Stage.rasterize>800us;for=2;resolve=400us`.
pub fn parse_rule(spec: &str, vocab: &VocabSnapshot) -> Result<AlertRule, String> {
    let mut parts = spec.split(';');
    let head = parts.next().ok_or("empty rule")?.trim();
    let mut for_windows = 1u32;
    let mut resolve_spec: Option<&str> = None;
    let mut escalate = None;
    let mut deescalate = None;
    for opt in parts {
        let opt = opt.trim();
        if let Some(n) = opt.strip_prefix("for=") {
            for_windows =
                n.parse().map_err(|_| format!("bad for= count {n:?} in rule {spec:?}"))?;
            if for_windows == 0 {
                return Err(format!("for=0 is meaningless in rule {spec:?}"));
            }
        } else if let Some(v) = opt.strip_prefix("resolve=") {
            resolve_spec = Some(v);
        } else if let Some(v) = opt.strip_prefix("escalate=") {
            escalate = Some(parse_probe_mode(v, spec)?);
        } else if let Some(v) = opt.strip_prefix("deescalate=") {
            deescalate = Some(parse_probe_mode(v, spec)?);
        } else if !opt.is_empty() {
            return Err(format!("unknown option {opt:?} in rule {spec:?}"));
        }
    }

    let condition = parse_condition(head, spec, vocab)?;
    let resolve_threshold = match resolve_spec {
        Some(v) => parse_value(v, condition.latency)
            .ok_or_else(|| format!("bad resolve threshold {v:?} in rule {spec:?}"))?,
        None => condition.threshold,
    };
    let band_ok = match condition.cmp {
        AlertCmp::Above => resolve_threshold <= condition.threshold,
        AlertCmp::Below => resolve_threshold >= condition.threshold,
    };
    if !band_ok {
        return Err(format!("resolve threshold must be on the calm side in rule {spec:?}"));
    }
    if (escalate.is_some() || deescalate.is_some()) && condition.series.is_none() {
        return Err(format!(
            "escalate=/deescalate= need a series target (METRIC:IFACE.METHOD) in rule {spec:?}"
        ));
    }

    Ok(AlertRule {
        name: spec.trim().to_owned(),
        metric: condition.metric,
        series: condition.series,
        cmp: condition.cmp,
        fire_threshold: condition.threshold,
        resolve_threshold,
        for_windows,
        escalate,
        deescalate,
    })
}

fn parse_probe_mode(v: &str, spec: &str) -> Result<ProbeMode, String> {
    v.parse::<ProbeMode>().map_err(|e| format!("{e} in rule {spec:?}"))
}

/// A parsed `METRIC[:IFACE.METHOD]CMP VALUE` head, shared by threshold and
/// burn-rate rules.
struct Condition {
    metric: AlertMetric,
    series: Option<SeriesKey>,
    cmp: AlertCmp,
    threshold: f64,
    latency: bool,
}

fn parse_condition(head: &str, spec: &str, vocab: &VocabSnapshot) -> Result<Condition, String> {
    let cmp_at = head
        .find(['>', '<'])
        .ok_or_else(|| format!("rule {spec:?} has no > or < comparison"))?;
    let cmp = if head.as_bytes()[cmp_at] == b'>' { AlertCmp::Above } else { AlertCmp::Below };
    let (target, value_spec) = (head[..cmp_at].trim(), head[cmp_at + 1..].trim());

    let (metric_name, series_name) = match target.split_once(':') {
        Some((m, s)) => (m.trim(), Some(s.trim())),
        None => (target, None),
    };
    let metric = match metric_name {
        "p50" => AlertMetric::P50,
        "p95" => AlertMetric::P95,
        "p99" => AlertMetric::P99,
        "rate" => AlertMetric::CallRate,
        "abnormal" => AlertMetric::AbnormalityRate,
        other => return Err(format!("unknown metric {other:?} in rule {spec:?}")),
    };
    let series = match series_name {
        None | Some("") => None,
        Some(name) => Some(
            resolve_series(vocab, name)
                .ok_or_else(|| format!("unknown operation {name:?} in rule {spec:?}"))?,
        ),
    };
    if series.is_some() && metric == AlertMetric::AbnormalityRate {
        return Err(format!("abnormal is system-wide; drop the series in rule {spec:?}"));
    }

    let latency = matches!(metric, AlertMetric::P50 | AlertMetric::P95 | AlertMetric::P99);
    let threshold = parse_value(value_spec, latency)
        .ok_or_else(|| format!("bad threshold {value_spec:?} in rule {spec:?}"))?;
    Ok(Condition { metric, series, cmp, threshold, latency })
}

/// Parses a multi-window SLO burn-rate rule spec.
///
/// Grammar: `burn=METRIC[:IFACE.METHOD]CMP VALUE;slo=PCT;fast=N;slow=M`
/// `[;factor=F][;escalate=MODE][;deescalate=MODE]` — the head condition
/// decides whether one window breaches
/// (same syntax as [`parse_rule`]), `slo=` is the objective in percent
/// (error budget `1 − slo/100`, `0 < slo < 100`), and `fast=`/`slow=` are
/// the window spans of the burn-rate pair (`fast < slow`). The alert fires
/// when the burn rate over *both* spans reaches `factor` (default
/// `fast/(slow×budget)`: a fast-span's worth of breaching windows within
/// the slow span) and resolves when the fast span's burn rate drops below
/// it. Example: `burn=p95>400us;slo=99.9;fast=3;slow=24`.
pub fn parse_burn_rule(spec: &str, vocab: &VocabSnapshot) -> Result<BurnRule, String> {
    let body = spec
        .trim()
        .strip_prefix("burn=")
        .ok_or_else(|| format!("burn rule {spec:?} must start with burn="))?;
    let mut parts = body.split(';');
    let head = parts.next().ok_or("empty burn rule")?.trim();
    let (mut slo, mut fast, mut slow, mut factor) = (None, None, None, None);
    let mut escalate = None;
    let mut deescalate = None;
    for opt in parts {
        let opt = opt.trim();
        let parse_num = |v: &str, what: &str| -> Result<f64, String> {
            v.parse::<f64>().map_err(|_| format!("bad {what} {v:?} in rule {spec:?}"))
        };
        if let Some(v) = opt.strip_prefix("slo=") {
            slo = Some(parse_num(v, "slo=")?);
        } else if let Some(v) = opt.strip_prefix("fast=") {
            fast = Some(parse_num(v, "fast=")? as usize);
        } else if let Some(v) = opt.strip_prefix("slow=") {
            slow = Some(parse_num(v, "slow=")? as usize);
        } else if let Some(v) = opt.strip_prefix("factor=") {
            factor = Some(parse_num(v, "factor=")?);
        } else if let Some(v) = opt.strip_prefix("escalate=") {
            escalate = Some(parse_probe_mode(v, spec)?);
        } else if let Some(v) = opt.strip_prefix("deescalate=") {
            deescalate = Some(parse_probe_mode(v, spec)?);
        } else if !opt.is_empty() {
            return Err(format!("unknown option {opt:?} in burn rule {spec:?}"));
        }
    }
    let slo_percent = slo.ok_or_else(|| format!("burn rule {spec:?} needs slo="))?;
    if !(0.0 < slo_percent && slo_percent < 100.0) {
        return Err(format!("slo= must be in (0, 100) in rule {spec:?}"));
    }
    let fast = fast.ok_or_else(|| format!("burn rule {spec:?} needs fast="))?;
    let slow = slow.ok_or_else(|| format!("burn rule {spec:?} needs slow="))?;
    if fast == 0 || slow <= fast {
        return Err(format!("need 0 < fast < slow in burn rule {spec:?}"));
    }
    let condition = parse_condition(head, spec, vocab)?;
    let budget = 1.0 - slo_percent / 100.0;
    let factor = factor.unwrap_or_else(|| BurnRule::default_factor(fast, slow, budget));
    if factor <= 0.0 {
        return Err(format!("factor= must be positive in burn rule {spec:?}"));
    }
    if (escalate.is_some() || deescalate.is_some()) && condition.series.is_none() {
        return Err(format!(
            "escalate=/deescalate= need a series target (METRIC:IFACE.METHOD) in rule {spec:?}"
        ));
    }
    Ok(BurnRule {
        condition: AlertRule {
            name: spec.trim().to_owned(),
            metric: condition.metric,
            series: condition.series,
            cmp: condition.cmp,
            fire_threshold: condition.threshold,
            resolve_threshold: condition.threshold,
            for_windows: 1,
            escalate,
            deescalate,
        },
        slo_percent,
        fast,
        slow,
        factor,
    })
}

/// Resolves `Iface::Name.method` against a vocabulary snapshot.
///
/// Positions are range-checked into their id types rather than truncated:
/// a vocabulary larger than the id space must fail resolution, not silently
/// alias an unrelated series.
pub fn resolve_series(vocab: &VocabSnapshot, name: &str) -> Option<SeriesKey> {
    let (iface_name, method_name) = name.rsplit_once('.')?;
    let iface = vocab
        .interfaces
        .iter()
        .position(|e| e.name == iface_name)
        .and_then(|i| u32::try_from(i).ok())
        .map(InterfaceId)?;
    let method = vocab.interfaces[iface.0 as usize]
        .methods
        .iter()
        .position(|m| m == method_name)
        .and_then(|i| u16::try_from(i).ok())
        .map(MethodIndex)?;
    Some((iface, method))
}

fn parse_value(spec: &str, latency: bool) -> Option<f64> {
    let spec = spec.trim();
    if latency {
        let (num, scale) = if let Some(n) = spec.strip_suffix("ns") {
            (n, 1.0)
        } else if let Some(n) = spec.strip_suffix("us") {
            (n, 1e3)
        } else if let Some(n) = spec.strip_suffix("ms") {
            (n, 1e6)
        } else if let Some(n) = spec.strip_suffix('s') {
            (n, 1e9)
        } else {
            (spec, 1.0)
        };
        num.trim().parse::<f64>().ok().map(|v| v * scale)
    } else {
        spec.parse::<f64>().ok()
    }
}
/// Per-chain buffered completions for flamegraph folding and streaming
/// DSCG renders, in the analyzer's post-order emission order.
type ChainCompletions = Vec<CompletedCall>;

/// Most recent abnormal chains retained as incident evidence.
const RECENT_ABNORMAL_CAP: usize = 256;

/// Distinct abnormal chains remembered per window for the re-check pass.
const WINDOW_ABNORMAL_CAP: usize = 64;

/// Exemplar references attached per alert firing and per `/latency`
/// percentile bucket.
const EXEMPLAR_REFS_MAX: usize = 4;

/// The shard a chain's records always land on: the stable `uuid mod N`
/// shard function the offline pipeline (PR 3) routes by, so a chain's
/// records are processed by exactly one shard in arrival order.
fn shard_of(chain: Uuid, shards: usize) -> usize {
    (chain.0 % shards as u128) as usize
}

/// Locks an internal monitor mutex, recovering from poisoning: a panicking
/// handler or ingest thread must not take window rotation or the status
/// endpoints down with it. Logged once per process.
fn lock_recover<'a, T>(mutex: &'a Mutex<T>, what: &str) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            static WARNED: AtomicBool = AtomicBool::new(false);
            if !WARNED.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "causeway-live: {what} lock poisoned by a panic; \
                     continuing with inner state"
                );
            }
            poisoned.into_inner()
        }
    }
}

/// One ingestion shard: the chains with `uuid % shards == index`, their
/// Figure-4 reconstruction state, slice aggregates, and flamegraph folding
/// — everything a chain's records touch that needs no cross-chain order.
#[derive(Debug)]
struct Shard {
    analyzer: OnlineAnalyzer,
    /// This shard's per-slice aggregates, keyed by absolute slice index.
    /// Finalization prunes slices older than the window just closed.
    slices: BTreeMap<u64, Slice>,
    /// Slice indices below this were already folded into a finalized
    /// window; a completion racing a window close lands here instead.
    floor: u64,
    chain_events: HashMap<Uuid, ChainCompletions>,
    /// Cumulative folded flamegraph stacks (shard's share; capped).
    folded: BTreeMap<String, u64>,
    /// Stacks folded during the current tumbling window only (the
    /// per-window delta merged into the history store at window close).
    window_folded: BTreeMap<String, u64>,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            analyzer: OnlineAnalyzer::new(),
            slices: BTreeMap::new(),
            floor: 0,
            chain_events: HashMap::new(),
            folded: BTreeMap::new(),
            window_folded: BTreeMap::new(),
        }
    }
}

/// One probe-mode change actuated by the control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeTransition {
    /// Wall-clock stamp (epoch milliseconds).
    pub at_ms: u64,
    /// Tumbling window ordinal at which the transition was actuated
    /// (`u64::MAX` before the first window closes, e.g. operator posts).
    pub window_index: u64,
    /// The interface whose probes changed mode.
    pub interface: InterfaceId,
    /// Effective mode before the transition.
    pub from: ProbeMode,
    /// Effective mode after the transition.
    pub to: ProbeMode,
    /// Who actuated it: `"alert"`, `"operator"`, or `"ttl"`.
    pub reason: &'static str,
    /// The driving rule name or operator annotation.
    pub detail: String,
}

/// Control-plane bookkeeping behind the control lock: who holds which
/// interface at which mode, standing floors, operator overrides, and the
/// transition log. The actuated state itself lives in the shared
/// [`ProbePolicy`] the dispatch substrates read.
#[derive(Debug, Default)]
struct ProbeCtl {
    /// Alert-driven holds: firing rule name → (interface, held mode).
    holds: BTreeMap<String, (InterfaceId, ProbeMode)>,
    /// Standing post-resolve modes from `deescalate=` suffixes.
    floors: BTreeMap<InterfaceId, ProbeMode>,
    /// Operator overrides: interface → (mode, expiry epoch ms).
    operator: BTreeMap<InterfaceId, (ProbeMode, u64)>,
    /// Recent transitions, oldest first, capped at the adaptive log
    /// capacity.
    log: VecDeque<ProbeTransition>,
    /// Per-interface `causeway_probe_mode{iface,mode}` gauges (one per
    /// mode; the active one reads 1), created on first transition.
    mode_gauges: HashMap<InterfaceId, [Gauge; 4]>,
}

/// What a rule's transition means for the probe control plane, captured
/// before stepping the rule (stepping borrows the rule state mutably).
#[derive(Debug, Clone, Copy)]
struct ProbeIntent {
    series: Option<SeriesKey>,
    escalate: Option<ProbeMode>,
    deescalate: Option<ProbeMode>,
}

impl ProbeIntent {
    fn of(rule: &AlertRule) -> ProbeIntent {
        ProbeIntent { series: rule.series, escalate: rule.escalate, deescalate: rule.deescalate }
    }
}

/// The order-sensitive, cross-chain state: window machinery, alerting,
/// history, incidents and the exporters' retained evidence. One small lock
/// guards it; the expensive per-record work happens under shard locks.
#[derive(Debug)]
struct Control {
    /// Absolute index of the accumulating slice, once time has started.
    current: Option<u64>,
    /// Closed slice positions still inside the sliding window, capped at
    /// the slices-per-window count (empty positions count, matching the
    /// serial monitor's closed-slice ring).
    closed_len: u64,
    /// Raw records of the current tumbling window (capped) for `/trace`.
    window_records: Vec<ProbeRecord>,
    window_records_dropped: u64,
    last_window_records: Vec<ProbeRecord>,
    last_window: Option<WindowSnapshot>,
    alerts: Vec<AlertState>,
    alert_log: VecDeque<AlertEvent>,
    history: WindowHistory,
    /// Why the configured history spill could not be attached, if it
    /// couldn't — surfaced in `/history` so a durable-mode operator sees
    /// the monitor silently fell back to ring-only retention.
    spill_error: Option<String>,
    burns: Vec<BurnState>,
    /// Recently completed chains' completion events, oldest first; total
    /// buffered completions bounded by `cfg.trace_capacity`.
    recent_chains: VecDeque<(Uuid, ChainCompletions)>,
    recent_chain_calls: usize,
    /// Cumulative per-series call counts — the `/latency` index view.
    known_series: BTreeMap<SeriesKey, u64>,
    total_completed: u64,
    total_abnormalities: u64,
    window_gauges: HashMap<SeriesKey, [Gauge; 5]>,
    /// The add-only causal hypothesis graphs (see [`crate::incident`]).
    incidents: IncidentStore,
    /// Chains that tripped an abnormality in the current window — the
    /// re-check pass must not tombstone a chain that misbehaved again.
    window_abnormal: Vec<Uuid>,
    /// Recent abnormal chains with their messages, oldest first, bounded at
    /// [`RECENT_ABNORMAL_CAP`] — the abnormal-chain evidence pool.
    recent_abnormal: VecDeque<(Uuid, String)>,
    /// Adaptive probe control-plane bookkeeping (see [`ProbeCtl`]).
    probe_ctl: ProbeCtl,
    /// Tail-biased exemplar reservoirs: the chains behind the percentiles
    /// (see [`crate::exemplar`]). Fed in the rank-ordered replay phase, so
    /// its state is bit-identical at any shard count.
    exemplars: ExemplarStore,
}

/// A cross-chain, order-sensitive side effect of one analyzer event,
/// collected per chain group under the shard lock and replayed under the
/// control lock in batch first-appearance order — the exact order a serial
/// analyzer would have emitted it.
enum Effect {
    /// A completed invocation: totals and the `/latency` index.
    Completed { key: SeriesKey },
    /// A Figure-4 reconstruction failure: totals and the evidence pools.
    Abnormal { chain: Uuid, message: String },
}

/// One chain's contiguous event group from a shard's ingest, tagged with
/// the chain's first-appearance rank in the original batch.
struct ChainGroup {
    chain: Uuid,
    rank: usize,
    effects: Vec<Effect>,
    /// The chain's buffered completions when it went idle this batch.
    idle: Option<ChainCompletions>,
    /// Exemplar candidate computed under the shard lock when the chain
    /// went idle: the root call's series and compensated latency. The
    /// admission decision itself happens in the replay phase.
    candidate: Option<(SeriesKey, u64)>,
}

/// The exemplar selection input for one completed chain: the slowest root
/// (depth-0) call's series and latency. Chain-local, so it is computed
/// under the shard lock; `None` for chains with no completed root.
fn exemplar_candidate(completions: &[CompletedCall]) -> Option<(SeriesKey, u64)> {
    completions
        .iter()
        .filter(|call| call.depth == 0)
        .max_by_key(|call| call.latency_ns)
        .map(|call| ((call.func.interface, call.func.method), call.latency_ns))
}

/// The live monitoring service core: windowed characterization over the
/// on-line analyzer, plus alerting and exporters. All methods take
/// `&self` — ingestion shards by chain UUID behind per-shard locks, and
/// the window/alert/incident machinery sits behind one control lock.
/// Share via `Arc` and hand to [`serve`] for the HTTP endpoints.
#[derive(Debug)]
pub struct LiveMonitor {
    cfg: LiveConfig,
    vocab: VocabSnapshot,
    deployment: Deployment,
    started: Instant,
    slice_ns: u64,
    shards: Vec<Mutex<Shard>>,
    control: Mutex<Control>,
    stack_evictions: Counter,
    /// Incidents evicted at open before their hypothesis graph could be
    /// populated (capacity 0, or a tiny ring racing the open).
    incident_dropped: Counter,
    /// Process-global analyzer gauges, republished as sums over shards
    /// after each ingest (per-shard `publish_metrics` would clobber the
    /// global value with one shard's partial count).
    online_open: Gauge,
    online_buffered: Gauge,
    /// `causeway_probe_transitions_total{reason=alert|operator|ttl}`.
    probe_transitions: [Counter; 3],
}

/// Index into [`LiveMonitor::probe_transitions`] for a transition reason.
fn reason_index(reason: &str) -> usize {
    match reason {
        "alert" => 0,
        "operator" => 1,
        _ => 2,
    }
}

impl LiveMonitor {
    /// Creates a monitor. The vocabulary and deployment snapshots label the
    /// JSON/flamegraph/trace exports (take them from the live system's
    /// `SystemVocab::snapshot()` / `deployment()`).
    pub fn new(cfg: LiveConfig, vocab: VocabSnapshot, deployment: Deployment) -> LiveMonitor {
        let slice_ns =
            (cfg.window.as_nanos() as u64 / cfg.slices.max(1) as u64).max(1);
        let mut history = WindowHistory::new(cfg.history_windows, cfg.history_max_bytes);
        let spill_error = cfg.history_spill.as_ref().and_then(|path| {
            history.enable_spill(path).err().map(|e| format!("{}: {e}", path.display()))
        });
        let registry = MetricsRegistry::global();
        let stack_evictions = registry.counter(
            "causeway_live_stack_evictions",
            "Folded stacks evicted from the capped flamegraph maps.",
        );
        let incident_dropped = registry.counter(
            "causeway_incident_dropped_total",
            "Incidents evicted before their hypothesis graph could be populated.",
        );
        // Same names + help as the analyzer's own registrations: the
        // registry hands back the same instruments, which the monitor sets
        // to the summed values across shards.
        let online_open = registry.gauge(
            "causeway_online_open_chains",
            "causal chains with open invocations or buffered records",
        );
        let online_buffered = registry.gauge(
            "causeway_online_resequence_buffered",
            "records buffered waiting for out-of-order predecessors",
        );
        let probe_transitions = ["alert", "operator", "ttl"].map(|reason| {
            registry.counter_with(
                "causeway_probe_transitions_total",
                "Probe-mode transitions actuated by the adaptive control plane.",
                &[("reason", reason)],
            )
        });
        let incidents = IncidentStore::new(cfg.incidents.capacity);
        let exemplars = ExemplarStore::new(cfg.exemplars.clone());
        let shards = (0..cfg.shards.max(1)).map(|_| Mutex::new(Shard::new())).collect();
        LiveMonitor {
            cfg,
            vocab,
            deployment,
            started: Instant::now(),
            slice_ns,
            shards,
            control: Mutex::new(Control {
                current: None,
                closed_len: 0,
                window_records: Vec::new(),
                window_records_dropped: 0,
                last_window_records: Vec::new(),
                last_window: None,
                alerts: Vec::new(),
                alert_log: VecDeque::new(),
                history,
                spill_error,
                burns: Vec::new(),
                recent_chains: VecDeque::new(),
                recent_chain_calls: 0,
                known_series: BTreeMap::new(),
                total_completed: 0,
                total_abnormalities: 0,
                window_gauges: HashMap::new(),
                incidents,
                window_abnormal: Vec::new(),
                recent_abnormal: VecDeque::new(),
                probe_ctl: ProbeCtl::default(),
                exemplars,
            }),
            stack_evictions,
            incident_dropped,
            online_open,
            online_buffered,
            probe_transitions,
        }
    }

    fn control_lock(&self) -> MutexGuard<'_, Control> {
        lock_recover(&self.control, "control")
    }

    fn shard_lock(&self, index: usize) -> MutexGuard<'_, Shard> {
        lock_recover(&self.shards[index], "shard")
    }

    /// Nanoseconds since this monitor was created (the default time base).
    pub fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// The vocabulary snapshot the exports are labelled with.
    pub fn vocab(&self) -> &VocabSnapshot {
        &self.vocab
    }

    /// The number of ingestion shards (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Registers an alert rule.
    pub fn add_rule(&self, rule: AlertRule) {
        self.control_lock().alerts.push(AlertState::new(rule));
    }

    /// Parses and registers an alert rule spec (see [`parse_rule`]). A spec
    /// starting `burn=` registers a burn-rate rule instead.
    pub fn add_rule_spec(&self, spec: &str) -> Result<(), String> {
        if spec.trim_start().starts_with("burn=") {
            return self.add_burn_rule_spec(spec);
        }
        let rule = parse_rule(spec, &self.vocab)?;
        self.add_rule(rule);
        Ok(())
    }

    /// Registers a multi-window SLO burn-rate rule.
    pub fn add_burn_rule(&self, rule: BurnRule) {
        self.control_lock().burns.push(BurnState::new(rule));
    }

    /// Parses and registers a burn-rate rule spec (see [`parse_burn_rule`]).
    pub fn add_burn_rule_spec(&self, spec: &str) -> Result<(), String> {
        let rule = parse_burn_rule(spec, &self.vocab)?;
        self.add_burn_rule(rule);
        Ok(())
    }

    /// The interface display name used by `/probes` and the probe gauges.
    fn iface_name(&self, iface: InterfaceId) -> String {
        self.vocab
            .interfaces
            .get(iface.0 as usize)
            .map(|e| e.name.clone())
            .unwrap_or_else(|| format!("iface-{}", iface.0))
    }

    /// The mode the control state wants for `iface`: an unexpired operator
    /// override wins outright; otherwise the most observant of the firing
    /// rules' holds and the standing floor; `None` means base.
    fn probe_target(ctl: &ProbeCtl, iface: InterfaceId, now_ms: u64) -> Option<ProbeMode> {
        if let Some((mode, expiry)) = ctl.operator.get(&iface) {
            if *expiry > now_ms {
                return Some(*mode);
            }
        }
        let mut best = ctl.floors.get(&iface).copied();
        for (held, mode) in ctl.holds.values() {
            if *held == iface && best.is_none_or(|b| mode.rank() > b.rank()) {
                best = Some(*mode);
            }
        }
        best
    }

    /// Re-derives `iface`'s override from the control state and applies it
    /// to the shared policy. When the effective mode changes, counts the
    /// transition, updates the per-interface mode gauges, appends to the
    /// transition log, and returns the transition for incident noting.
    /// No-op without an adaptive policy.
    fn actuate_probe(
        &self,
        c: &mut Control,
        iface: InterfaceId,
        window_index: u64,
        reason: &'static str,
        detail: String,
        at_ms: u64,
    ) -> Option<ProbeTransition> {
        let policy = self.cfg.adaptive.policy.as_ref()?;
        let from = policy.effective(iface);
        match Self::probe_target(&c.probe_ctl, iface, at_ms) {
            Some(mode) => policy.apply(ProbeDirective { interface: iface, mode }),
            None => policy.clear(iface),
        }
        let to = policy.effective(iface);
        if from == to {
            return None;
        }
        self.probe_transitions[reason_index(reason)].inc();
        let name = self.iface_name(iface);
        let gauges = c.probe_ctl.mode_gauges.entry(iface).or_insert_with(|| {
            let registry = MetricsRegistry::global();
            ProbeMode::ALL.map(|mode| {
                registry.gauge_with(
                    "causeway_probe_mode",
                    "1 while the labelled interface's probes run at the labelled mode.",
                    &[("iface", &name), ("mode", mode.name())],
                )
            })
        });
        for mode in ProbeMode::ALL {
            gauges[mode.rank() as usize].set(i64::from(mode == to));
        }
        let transition = ProbeTransition {
            at_ms,
            window_index,
            interface: iface,
            from,
            to,
            reason,
            detail,
        };
        c.probe_ctl.log.push_back(transition.clone());
        while c.probe_ctl.log.len() > self.cfg.adaptive.log_capacity.max(1) {
            c.probe_ctl.log.pop_front();
        }
        Some(transition)
    }

    /// Drops operator overrides whose TTL has lapsed and de-escalates the
    /// interfaces they pinned (reason `"ttl"`).
    fn expire_operators_locked(&self, c: &mut Control, window_index: u64, now_ms: u64) {
        if self.cfg.adaptive.policy.is_none() {
            return;
        }
        let expired: Vec<InterfaceId> = c
            .probe_ctl
            .operator
            .iter()
            .filter(|(_, (_, expiry))| *expiry <= now_ms)
            .map(|(iface, _)| *iface)
            .collect();
        for iface in expired {
            c.probe_ctl.operator.remove(&iface);
            self.actuate_probe(
                c,
                iface,
                window_index,
                "ttl",
                "operator override expired".to_owned(),
                now_ms,
            );
        }
    }

    /// Notes a probe transition on retained incidents opened by `alert`.
    fn note_transition(c: &mut Control, ids: &[u64], t: &ProbeTransition, name: &str) {
        for id in ids {
            if let Some(incident) = c.incidents.get_mut(*id) {
                incident.note(
                    t.window_index,
                    format!("probe {name}: {} → {} ({}: {})", t.from, t.to, t.reason, t.detail),
                    t.at_ms,
                );
            }
        }
    }

    /// The retained-window history store, behind the control lock. Drop the
    /// returned guard before calling other monitor methods — holding it
    /// across them deadlocks.
    pub fn history(&self) -> HistoryRef<'_> {
        HistoryRef { guard: self.control_lock() }
    }

    /// Ingests a batch of probe records stamped with the monitor's clock.
    pub fn ingest_batch(&self, records: Vec<ProbeRecord>) {
        self.ingest_batch_at(records, self.now_ns());
    }

    /// Ingests a batch of probe records at an explicit time.
    ///
    /// Three phases. A short control-locked phase advances window time and
    /// retains raw records for `/trace`. Then records route lock-free by
    /// `uuid % shards` (a chain's records always land on one shard, in
    /// order) and each touched shard runs the Figure-4 reconstruction and
    /// absorbs slice aggregates under its own lock — concurrent batches
    /// only contend when they share a shard. Finally the cross-chain,
    /// order-sensitive effects are replayed under the control lock in the
    /// batch's chain first-appearance order — exactly the order a serial
    /// analyzer emits its event groups, which is what makes sharded output
    /// bit-identical to the serial monitor.
    pub fn ingest_batch_at(&self, records: Vec<ProbeRecord>, now_ns: u64) {
        let target = {
            let mut c = self.control_lock();
            self.roll_locked(&mut c, now_ns);
            for record in &records {
                if c.window_records.len() < self.cfg.trace_capacity {
                    c.window_records.push(record.clone());
                } else {
                    c.window_records_dropped += 1;
                }
            }
            c.current.expect("roll_locked sets current")
        };

        let n = self.shards.len();
        let mut rank_of: HashMap<Uuid, usize> = HashMap::new();
        let mut parts: Vec<Vec<ProbeRecord>> = (0..n).map(|_| Vec::new()).collect();
        for record in records {
            let next = rank_of.len();
            rank_of.entry(record.uuid).or_insert(next);
            parts[shard_of(record.uuid, n)].push(record);
        }

        let mut groups: Vec<ChainGroup> = Vec::new();
        for (index, batch) in parts.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            // Shard guards drop before the control lock below: a thread
            // holding a shard never waits on control (see module docs).
            let mut shard = self.shard_lock(index);
            let mut events = Vec::new();
            shard.analyzer.ingest_batch_with_threads(batch, 1, &mut |e| events.push(e));
            self.absorb_shard(&mut shard, target, events, &rank_of, &mut groups);
        }
        groups.sort_by_key(|g| g.rank);

        {
            let mut c = self.control_lock();
            let spw = self.cfg.slices.max(1) as u64;
            let window_index = c.current.map_or(0, |slice| slice / spw);
            for mut group in groups {
                let mut abnormal_now = false;
                for effect in group.effects.drain(..) {
                    match effect {
                        Effect::Completed { key } => {
                            c.total_completed += 1;
                            *c.known_series.entry(key).or_insert(0) += 1;
                        }
                        Effect::Abnormal { chain, message } => {
                            abnormal_now = true;
                            c.total_abnormalities += 1;
                            if !c.window_abnormal.contains(&chain)
                                && c.window_abnormal.len() < WINDOW_ABNORMAL_CAP
                            {
                                c.window_abnormal.push(chain);
                            }
                            c.recent_abnormal.push_back((chain, message));
                            while c.recent_abnormal.len() > RECENT_ABNORMAL_CAP {
                                c.recent_abnormal.pop_front();
                            }
                        }
                    }
                }
                if let Some(completions) = group.idle {
                    // Exemplar *admission* (reservoir publication) rides
                    // the rank-ordered replay: same order as a serial
                    // monitor, so the store is shard-count independent. A
                    // chain that misbehaved in an earlier batch still
                    // counts as abnormal via the retained evidence pool.
                    if let Some((series, latency_ns)) = group.candidate {
                        let abnormal = abnormal_now
                            || c.recent_abnormal.iter().any(|(chain, _)| *chain == group.chain);
                        c.exemplars.offer(
                            series,
                            group.chain,
                            latency_ns,
                            window_index,
                            abnormal,
                            &completions,
                        );
                    }
                    self.retain_chain(&mut c, group.chain, completions);
                }
            }
        }
        self.publish_online_gauges();
    }

    /// Advances window time with no new records (idle periods must still
    /// finalize windows so alerts can resolve).
    pub fn tick(&self) {
        self.tick_at(self.now_ns());
    }

    /// Advances window time to an explicit instant.
    pub fn tick_at(&self, now_ns: u64) {
        let mut c = self.control_lock();
        self.roll_locked(&mut c, now_ns);
    }

    /// Absorbs one shard's event stream: slice aggregates, flamegraph
    /// folding and chain buffers mutate the shard in place (chain-local,
    /// order-insensitive across chains); the cross-chain effects are
    /// collected per chain group for rank-ordered replay under the control
    /// lock. The analyzer emits each chain's events as one contiguous
    /// group, so groups are cut on chain change.
    fn absorb_shard(
        &self,
        shard: &mut Shard,
        target: u64,
        events: Vec<OnlineEvent>,
        rank_of: &HashMap<Uuid, usize>,
        groups: &mut Vec<ChainGroup>,
    ) {
        // A completion racing a concurrent window close lands in the first
        // still-open slice rather than mutating a finalized window.
        let apply_at = target.max(shard.floor);
        let mut open: Option<ChainGroup> = None;
        for event in events {
            let chain = match &event {
                OnlineEvent::CallCompleted { chain, .. }
                | OnlineEvent::Abnormality { chain, .. }
                | OnlineEvent::ChainIdle { chain, .. } => *chain,
            };
            if open.as_ref().map(|g| g.chain) != Some(chain) {
                if let Some(done) = open.take() {
                    groups.push(done);
                }
                let rank = rank_of.get(&chain).copied().unwrap_or(usize::MAX);
                open = Some(ChainGroup {
                    chain,
                    rank,
                    effects: Vec::new(),
                    idle: None,
                    candidate: None,
                });
            }
            let group = open.as_mut().expect("group just opened");
            match event {
                OnlineEvent::CallCompleted { chain, func, kind, depth, latency_ns } => {
                    let latency = latency_ns.unwrap_or(0);
                    let key = (func.interface, func.method);
                    let slice = shard.slices.entry(apply_at).or_default();
                    slice.series.entry(key).or_default().record(latency);
                    slice.completed_calls += 1;
                    let pending = shard.chain_events.entry(chain).or_default();
                    if pending.len() < self.cfg.chain_event_capacity {
                        pending.push(CompletedCall { func, kind, depth, latency_ns: latency });
                    }
                    group.effects.push(Effect::Completed { key });
                }
                OnlineEvent::Abnormality { chain, at_seq, message } => {
                    shard.slices.entry(apply_at).or_default().abnormalities += 1;
                    group.effects.push(Effect::Abnormal {
                        chain,
                        message: format!("seq {at_seq}: {message}"),
                    });
                }
                OnlineEvent::ChainIdle { chain, .. } => {
                    // Completed transactions must not accumulate analyzer
                    // state forever in a long-running service.
                    shard.analyzer.forget_chain(chain);
                    if let Some(completions) = shard.chain_events.remove(&chain) {
                        self.fold_completions(shard, &completions);
                        // Exemplar *selection* happens here, under the
                        // shard lock: the chain's root series and latency
                        // are chain-local facts. Admission is deferred to
                        // the rank-ordered replay so the reservoirs stay
                        // bit-identical at any shard count.
                        group.candidate = exemplar_candidate(&completions);
                        group.idle = Some(completions);
                    }
                }
            }
        }
        if let Some(done) = open.take() {
            groups.push(done);
        }
    }

    /// Folds one completed chain's call forest into the shard's cumulative
    /// and per-window flamegraph maps (both capped at `cfg.stack_capacity`
    /// per shard).
    fn fold_completions(&self, shard: &mut Shard, completions: &[CompletedCall]) {
        let forest = render::completion_forest(completions);
        // Iterative pre-order walk, threading the folded path down.
        let mut lines: Vec<(String, u64)> = Vec::new();
        let mut work: Vec<(&render::CompletionNode, String)> = forest
            .iter()
            .map(|root| {
                let frame = format!(
                    "{}.{}",
                    self.vocab.interface_name(root.call.func.interface),
                    self.vocab.method_name(root.call.func.interface, root.call.func.method)
                );
                (root, frame)
            })
            .collect();
        while let Some((node, path)) = work.pop() {
            let child_ns: u64 = node.children.iter().map(|c| c.call.latency_ns).sum();
            let self_ns = node.call.latency_ns.saturating_sub(child_ns);
            for child in &node.children {
                let frame = format!(
                    "{};{}.{}",
                    path,
                    self.vocab.interface_name(child.call.func.interface),
                    self.vocab.method_name(child.call.func.interface, child.call.func.method)
                );
                work.push((child, frame));
            }
            lines.push((path, self_ns));
        }
        let cap = self.cfg.stack_capacity.max(1);
        for (path, self_ns) in lines {
            fold_into(&mut shard.window_folded, cap, &self.stack_evictions, path.clone(), self_ns);
            fold_into(&mut shard.folded, cap, &self.stack_evictions, path, self_ns);
        }
    }

    /// Retains a completed chain's events for `/dscg`, evicting the oldest
    /// chains once the buffered completions exceed `cfg.trace_capacity`.
    fn retain_chain(&self, c: &mut Control, chain: Uuid, completions: ChainCompletions) {
        c.recent_chain_calls += completions.len();
        c.recent_chains.push_back((chain, completions));
        while c.recent_chains.len() > 1 && c.recent_chain_calls > self.cfg.trace_capacity {
            let (_, dropped) = c.recent_chains.pop_front().expect("len checked");
            c.recent_chain_calls -= dropped.len();
        }
    }

    /// Advances the slice/window machinery to cover `now_ns`.
    fn roll_locked(&self, c: &mut Control, now_ns: u64) {
        let target = now_ns / self.slice_ns;
        let spw = self.cfg.slices.max(1) as u64;
        let Some(mut index) = c.current else {
            c.current = Some(target);
            return;
        };
        if target <= index {
            return; // time within the current slice (or stale stamp)
        }
        // After a very long idle gap, every skipped window is empty and the
        // alert machinery converges within `for_windows` of them — evaluate
        // a bounded number and jump.
        let max_catchup = spw * 64;
        if target - index > max_catchup {
            let resume = target - max_catchup;
            c.closed_len = 0;
            c.current = Some(resume);
            index = resume;
            for shard in &self.shards {
                let mut shard = lock_recover(shard, "shard");
                shard.slices.clear();
                shard.floor = resume;
            }
        }
        while index < target {
            index += 1;
            c.current = Some(index);
            c.closed_len = (c.closed_len + 1).min(spw);
            if index % spw == 0 {
                self.finalize_window_locked(c, index / spw - 1);
            }
        }
    }

    /// Merges every shard's slices in `[lo, hi]` into a snapshot (the
    /// sliding view). Sum-merges over ordered maps commute, so the result
    /// is independent of shard count.
    fn sliding_locked(&self, c: &Control) -> WindowSnapshot {
        let mut snap = WindowSnapshot {
            index: u64::MAX,
            span_ns: 0,
            series: BTreeMap::new(),
            completed_calls: 0,
            abnormalities: 0,
        };
        let Some(current) = c.current else {
            return snap;
        };
        let lo = current.saturating_sub(c.closed_len);
        for shard in &self.shards {
            let shard = lock_recover(shard, "shard");
            for slice in shard.slices.range(lo..=current).map(|(_, s)| s) {
                merge_slice(&mut snap, slice);
            }
        }
        snap.span_ns = (c.closed_len + 1) * self.slice_ns;
        snap
    }

    /// Closes tumbling window `window_index`: merges every shard's slices
    /// and per-window folded stacks, then runs the serial window machinery
    /// (gauges, alerts, history, burn rates, incidents) on the merged
    /// snapshot under the control lock.
    fn finalize_window_locked(&self, c: &mut Control, window_index: u64) {
        let spw = self.cfg.slices.max(1) as u64;
        let end = (window_index + 1) * spw;
        let start = end - spw;
        let mut snap = WindowSnapshot {
            index: window_index,
            span_ns: spw * self.slice_ns,
            series: BTreeMap::new(),
            completed_calls: 0,
            abnormalities: 0,
        };
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for shard in &self.shards {
            let mut shard = lock_recover(shard, "shard");
            for slice in shard.slices.range(start..end).map(|(_, s)| s) {
                merge_slice(&mut snap, slice);
            }
            // Slices older than this window can no longer appear in any
            // view; the just-closed window's slices stay for the sliding
            // view until the next finalization.
            shard.slices = shard.slices.split_off(&start);
            shard.floor = end;
            for (stack, self_ns) in std::mem::take(&mut shard.window_folded) {
                *folded.entry(stack).or_insert(0) += self_ns;
            }
        }

        self.export_window_gauges(c, &snap);
        // Each event carries the rule's natural baseline lookback (in
        // windows): `for=N` for threshold rules, the fast span for burns —
        // the incident layer resolves its pre-breach comparison window from
        // it.
        let mut events: Vec<(AlertEvent, u64, ProbeIntent)> = Vec::new();
        for alert in &mut c.alerts {
            let lookback = u64::from(alert.rule.for_windows);
            let intent = ProbeIntent::of(&alert.rule);
            if let Some(event) = alert.step(&snap) {
                events.push((event, lookback, intent));
            }
        }

        // Retain the closed window (aggregates + this window's folded-stack
        // delta), then evaluate burn-rate rules against the updated history.
        c.history.push(HistoryEntry { window: snap.clone(), folded });
        for burn in &mut c.burns {
            let lookback = burn.rule().fast as u64;
            let intent = ProbeIntent::of(&burn.rule().condition);
            if let Some(event) = burn.step(&c.history) {
                events.push((event, lookback, intent));
            }
        }

        // Pin breach exemplars on every firing: the breach window's
        // slowest retained chains of the rule's series (store-wide when
        // the rule has no series target). `/alerts` surfaces the uuids and
        // `/exemplars?id=` resolves each to the concrete chain.
        for (event, _, intent) in events.iter_mut() {
            if event.fired {
                event.exemplars =
                    c.exemplars.breaching(intent.series, event.window_index, EXEMPLAR_REFS_MAX);
                // The published uuids must outlive later, faster traffic:
                // an operator following the alert hours in may still ask.
                for chain in &event.exemplars {
                    c.exemplars.pin(*chain);
                }
            }
        }

        // Incident forensics: firings register and auto-populate an
        // incident (the breach window is already in the history, so its
        // evidence resolves); resolves close the matching open incidents.
        let window_abnormal = std::mem::take(&mut c.window_abnormal);
        let mut incident_of: Vec<Vec<u64>> = vec![Vec::new(); events.len()];
        if self.cfg.incidents.enabled {
            for (i, (event, lookback, _)) in events.iter().enumerate() {
                if event.fired {
                    incident_of[i].extend(self.open_incident(c, event, *lookback));
                } else {
                    // Remember which incidents this resolve closes, so a
                    // de-escalation actuated by it lands on their timelines.
                    incident_of[i] = c
                        .incidents
                        .iter()
                        .filter(|inc| inc.is_open() && inc.alert == event.alert)
                        .map(|inc| inc.id)
                        .collect();
                    c.incidents.resolve_for_alert(
                        &event.alert,
                        event.window_index,
                        event.at_ms,
                    );
                }
            }
            self.recheck_abnormal(c, &window_abnormal, window_index);
        }

        // The probe actuator: series-targeting transitions escalate their
        // interface while firing and release the hold on resolve; `ttl`
        // sweeps expired operator overrides every window close.
        if self.cfg.adaptive.policy.is_some() {
            for (i, (event, _, intent)) in events.iter().enumerate() {
                let Some((iface, _)) = intent.series else { continue };
                let transition = if event.fired {
                    let mode = intent.escalate.unwrap_or(self.cfg.adaptive.escalate_mode);
                    c.probe_ctl.holds.insert(event.alert.clone(), (iface, mode));
                    self.actuate_probe(
                        c,
                        iface,
                        window_index,
                        "alert",
                        format!("fired: {}", event.alert),
                        event.at_ms,
                    )
                } else {
                    c.probe_ctl.holds.remove(&event.alert);
                    if let Some(floor) = intent.deescalate {
                        c.probe_ctl.floors.insert(iface, floor);
                    }
                    self.actuate_probe(
                        c,
                        iface,
                        window_index,
                        "alert",
                        format!("resolved: {}", event.alert),
                        event.at_ms,
                    )
                };
                if let Some(t) = transition {
                    let name = self.iface_name(iface);
                    Self::note_transition(c, &incident_of[i], &t, &name);
                }
            }
            self.expire_operators_locked(c, window_index, incident::wall_clock_ms());
        }

        for (event, _, _) in events {
            c.alert_log.push_back(event);
            while c.alert_log.len() > self.cfg.alert_log_capacity {
                c.alert_log.pop_front();
            }
        }

        c.last_window_records = std::mem::take(&mut c.window_records);
        c.window_records_dropped = 0;
        c.last_window = Some(snap);
    }
    /// Registers an incident for a just-fired alert, populates its add-only
    /// hypothesis graph from retained evidence, and runs the automatic
    /// elimination passes that are decidable at open time. Returns the
    /// incident id, or `None` when the ring dropped it before evidence
    /// could land.
    fn open_incident(
        &self,
        c: &mut Control,
        event: &AlertEvent,
        lookback_windows: u64,
    ) -> Option<u64> {
        let cfg = self.cfg.incidents.clone();
        let breach = event.window_index;
        let at_ms = event.at_ms;
        // The baseline is the newest still-resolvable window from *before*
        // the sustained breach: `lookback` windows back, or the nearest
        // older survivor (ring or spill) when that exact ordinal aged out.
        let baseline = breach
            .checked_sub(lookback_windows)
            .and_then(|candidate| c.history.newest_at_or_before(candidate));
        let breach_entry = c.history.lookup(breach).map(|e| e.into_owned());
        let baseline_entry =
            baseline.and_then(|b| c.history.lookup(b).map(|e| e.into_owned()));
        let id = c.incidents.open(&event.alert, breach, baseline, at_ms);
        // A capacity-0 ring (or a tiny one whose eviction races this open)
        // can drop the incident before any evidence lands. Skip gracefully
        // and count it — the window-close path must never panic on it.
        if c.incidents.get(id).is_none() {
            self.incident_dropped.inc();
            c.incidents.refresh_gauges();
            return None;
        }

        // Evidence 1: top flamegraph-diff regressions, breach vs baseline.
        let mut regressions: Vec<(u64, String, i64)> = Vec::new();
        if let (Some(bl), Some(be)) = (&baseline_entry, &breach_entry) {
            let diff = diff_folded(&bl.folded, &be.folded);
            let entry = c.incidents.get_mut(id)?;
            for (stack, delta) in
                diff.into_iter().filter(|(_, d)| *d > 0).take(cfg.top_regressions)
            {
                let hyp = entry.add_hypothesis(
                    HypothesisKind::FlamegraphRegression,
                    stack.clone(),
                    format!(
                        "self time {delta:+}ns in breach window {breach} vs baseline window {}",
                        bl.window.index
                    ),
                    delta as u64,
                    breach,
                    at_ms,
                );
                regressions.push((hyp, stack, delta));
            }
        }

        // Evidence 2: recently abnormal chains, with their DSCG renders
        // when the completed-chain ring still holds them.
        let mut picked: Vec<(Uuid, String)> = Vec::new();
        for (chain, message) in c.recent_abnormal.iter().rev() {
            if picked.iter().any(|(c, _)| c == chain) {
                continue;
            }
            picked.push((*chain, message.clone()));
            if picked.len() >= cfg.max_abnormal {
                break;
            }
        }
        for (chain, message) in picked {
            let mut detail = message;
            // The trace ring first; the exemplar store keeps abnormal
            // chains long after FIFO churn, so fall back to it and mark
            // the hypothesis with its resolvable exemplar reference.
            if let Some((_, completions)) =
                c.recent_chains.iter().rev().find(|(c, _)| *c == chain)
            {
                detail.push('\n');
                detail.push_str(&render::completed_chain_ascii(chain, completions, &self.vocab));
            } else if let Some(e) = c.exemplars.get(chain) {
                detail.push('\n');
                detail.push_str(&render::completed_chain_ascii(chain, &e.completions, &self.vocab));
            }
            if c.exemplars.get(chain).is_some() {
                detail.push_str(&format!("\nexemplar {chain}"));
            }
            let Some(entry) = c.incidents.get_mut(id) else { break };
            entry.add_hypothesis(
                HypothesisKind::AbnormalChain,
                chain.to_string(),
                detail,
                0,
                breach,
                at_ms,
            );
        }

        // Evidence 3: hottest folded stacks of the breach window itself.
        let mut hot: Vec<(String, u64)> = breach_entry
            .as_ref()
            .map(|be| be.folded.iter().map(|(s, ns)| (s.clone(), *ns)).collect())
            .unwrap_or_default();
        hot.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let total_self_ns: u64 = hot.iter().map(|(_, ns)| ns).sum();
        let mut hot_ids: Vec<(u64, u64)> = Vec::new();
        if let Some(entry) = c.incidents.get_mut(id) {
            for (stack, self_ns) in hot.into_iter().take(cfg.top_stacks) {
                let share = if total_self_ns == 0 {
                    0.0
                } else {
                    self_ns as f64 / total_self_ns as f64
                };
                let hyp = entry.add_hypothesis(
                    HypothesisKind::HotStack,
                    stack,
                    format!(
                        "{self_ns}ns self time in breach window {breach} ({:.1}% of window self time)",
                        share * 100.0
                    ),
                    self_ns,
                    breach,
                    at_ms,
                );
                hot_ids.push((hyp, self_ns));
            }
            let populated = entry.hypotheses().len();
            entry.note(
                breach,
                format!("auto-populated {populated} hypotheses from retained evidence"),
                at_ms,
            );
            if !event.exemplars.is_empty() {
                let uuids: Vec<String> =
                    event.exemplars.iter().map(|u| u.to_string()).collect();
                entry.note(
                    breach,
                    format!("breach exemplars: {}", uuids.join(", ")),
                    at_ms,
                );
            }
        }
        c.incidents.refresh_gauges();

        // Pass 1 (baseline-presence): a "regression" whose stack already
        // spent comparable self time in the baseline window grew, it did
        // not appear — rule it out as the novel cause.
        if let Some(bl) = &baseline_entry {
            for (hyp, stack, delta) in &regressions {
                let baseline_ns = bl.folded.get(stack).copied().unwrap_or(0);
                if baseline_ns > 0 && (*delta as u64) < baseline_ns {
                    let _ = c.incidents.eliminate(
                        id,
                        *hyp,
                        incident::PASS_BASELINE,
                        &format!(
                            "regression also present in baseline window {}: {baseline_ns}ns \
                             there vs a {delta:+}ns delta",
                            bl.window.index
                        ),
                    );
                }
            }
        }

        // Pass 2 (stack-floor): hot stacks below the share floor are
        // background noise — except the heaviest one, which always survives
        // so the hot-stack evidence can never eliminate itself entirely.
        if total_self_ns > 0 {
            let heaviest = hot_ids.iter().map(|(_, ns)| *ns).max().unwrap_or(0);
            let mut spared = false;
            for (hyp, self_ns) in &hot_ids {
                if *self_ns == heaviest && !spared {
                    spared = true;
                    continue;
                }
                let share = *self_ns as f64 / total_self_ns as f64;
                if share < cfg.stack_share_floor {
                    let _ = c.incidents.eliminate(
                        id,
                        *hyp,
                        incident::PASS_STACK_FLOOR,
                        &format!(
                            "stack share {:.2}% of breach-window self time is below the \
                             {:.2}% floor",
                            share * 100.0,
                            cfg.stack_share_floor * 100.0
                        ),
                    );
                }
            }
        }
        Some(id)
    }

    /// The re-check elimination pass, run at every window close: a live
    /// abnormal-chain hypothesis whose chain has no open work left and
    /// produced no new abnormality this window completed normally after
    /// all — tombstone it. Hypotheses added this very window are spared
    /// (their evidence has not had a full window to re-prove itself).
    fn recheck_abnormal(&self, c: &mut Control, window_abnormal: &[Uuid], window_index: u64) {
        let mut targets: Vec<(u64, u64, Uuid)> = Vec::new();
        for entry in c.incidents.iter() {
            if !entry.is_open() {
                continue;
            }
            for h in entry.hypotheses() {
                if h.kind == HypothesisKind::AbnormalChain
                    && !entry.is_eliminated(h.id)
                    && h.added_window < window_index
                {
                    if let Ok(chain) = h.subject.parse::<Uuid>() {
                        targets.push((entry.id, h.id, chain));
                    }
                }
            }
        }
        if targets.is_empty() {
            return;
        }
        let mut open: Vec<Uuid> = Vec::new();
        for shard in &self.shards {
            let shard = lock_recover(shard, "shard");
            open.extend(shard.analyzer.open_chain_summaries().iter().map(|s| s.chain));
        }
        for (incident_id, hypothesis, chain) in targets {
            if open.contains(&chain) || window_abnormal.contains(&chain) {
                continue;
            }
            let _ = c.incidents.eliminate(
                incident_id,
                hypothesis,
                incident::PASS_CHAIN_RECHECK,
                &format!(
                    "chain completed normally on re-check at window {window_index} \
                     (no open work, no new abnormality)"
                ),
            );
        }
    }

    fn export_window_gauges(&self, c: &mut Control, snap: &WindowSnapshot) {
        let registry = MetricsRegistry::global();
        for (key, agg) in &snap.series {
            let gauges = c.window_gauges.entry(*key).or_insert_with(|| {
                let iface = self.vocab.interface_name(key.0).to_owned();
                let method = self.vocab.method_name(key.0, key.1).to_owned();
                let labels = [("iface", iface.as_str()), ("method", method.as_str())];
                [
                    registry.gauge_with(
                        "causeway_live_window_p50_ns",
                        "Median latency over the last tumbling window.",
                        &labels,
                    ),
                    registry.gauge_with(
                        "causeway_live_window_p95_ns",
                        "95th-percentile latency over the last tumbling window.",
                        &labels,
                    ),
                    registry.gauge_with(
                        "causeway_live_window_p99_ns",
                        "99th-percentile latency over the last tumbling window.",
                        &labels,
                    ),
                    registry.gauge_with(
                        "causeway_live_window_calls",
                        "Invocations completed in the last tumbling window.",
                        &labels,
                    ),
                    registry.gauge_with(
                        "causeway_live_window_busy_ns",
                        "Summed invocation latency over the last tumbling window.",
                        &labels,
                    ),
                ]
            });
            gauges[0].set(agg.hist.quantile_ns(0.50) as i64);
            gauges[1].set(agg.hist.quantile_ns(0.95) as i64);
            gauges[2].set(agg.hist.quantile_ns(0.99) as i64);
            gauges[3].set(agg.calls as i64);
            gauges[4].set(agg.latency_sum_ns as i64);
        }
        // Series absent from this window drop to zero rather than freezing
        // at their last value.
        for (key, gauges) in &c.window_gauges {
            if !snap.series.contains_key(key) {
                for gauge in gauges {
                    gauge.set(0);
                }
            }
        }
        registry
            .gauge_with(
                "causeway_live_window_abnormalities",
                "Reconstruction failures in the last tumbling window.",
                &[],
            )
            .set(snap.abnormalities as i64);
        registry
            .gauge_with(
                "causeway_live_window_completed_calls",
                "Invocations completed in the last tumbling window.",
                &[],
            )
            .set(snap.completed_calls as i64);
    }

    /// The sliding view: the most recent `cfg.slices` slices including the
    /// accumulating one, merged across shards. At slice granularity this
    /// trails the tumbling window by at most one slice.
    pub fn sliding(&self) -> WindowSnapshot {
        let c = self.control_lock();
        self.sliding_locked(&c)
    }

    /// The last finalized tumbling window, if one has completed.
    pub fn last_window(&self) -> Option<WindowSnapshot> {
        self.control_lock().last_window.clone()
    }

    /// Names of currently firing alerts (threshold and burn-rate).
    pub fn active_alerts(&self) -> Vec<String> {
        let c = self.control_lock();
        Self::active_alerts_locked(&c)
    }

    fn active_alerts_locked(c: &Control) -> Vec<String> {
        c.alerts
            .iter()
            .filter(|a| a.active)
            .map(|a| a.rule.name.clone())
            .chain(
                c.burns
                    .iter()
                    .filter(|b| b.active())
                    .map(|b| b.rule().condition.name.clone()),
            )
            .collect()
    }

    /// All retained alert transitions, oldest first.
    pub fn alert_log(&self) -> Vec<AlertEvent> {
        self.control_lock().alert_log.iter().cloned().collect()
    }

    /// Invocations completed since construction.
    pub fn total_completed(&self) -> u64 {
        self.control_lock().total_completed
    }

    /// Abnormalities observed since construction.
    pub fn total_abnormalities(&self) -> u64 {
        self.control_lock().total_abnormalities
    }

    /// Summed (open chains, buffered records) across every shard's analyzer.
    fn analyzer_totals(&self) -> (usize, usize) {
        let mut open = 0;
        let mut buffered = 0;
        for shard in &self.shards {
            let shard = lock_recover(shard, "shard");
            open += shard.analyzer.open_chains();
            buffered += shard.analyzer.buffered_records();
        }
        (open, buffered)
    }

    /// Republishes the process-global analyzer gauges as sums over shards.
    fn publish_online_gauges(&self) {
        let (open, buffered) = self.analyzer_totals();
        self.online_open.set(open as i64);
        self.online_buffered.set(buffered as i64);
    }

    /// Chains with unfinished work, merged across shards and sorted by
    /// chain id for shard-count-independent output.
    pub fn open_chain_summaries(&self) -> Vec<OpenChainSummary> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let shard = lock_recover(shard, "shard");
            all.extend(shard.analyzer.open_chain_summaries());
        }
        all.sort_by_key(|s| s.chain);
        all
    }

    /// Every shard's cumulative folded stacks sum-merged into one map.
    fn merged_folded(&self) -> BTreeMap<String, u64> {
        let mut merged = BTreeMap::new();
        for shard in &self.shards {
            let shard = lock_recover(shard, "shard");
            for (stack, self_ns) in &shard.folded {
                *merged.entry(stack.clone()).or_insert(0) += self_ns;
            }
        }
        merged
    }

    /// Cumulative folded flamegraph stacks (`a;b;c self_ns` per line,
    /// inferno-compatible), sorted by stack for deterministic output.
    pub fn folded_stacks(&self) -> String {
        render_folded(&self.merged_folded())
    }

    /// The `/flamegraph[?window=k]` body: cumulative folded stacks, or one
    /// window's stacks when scoped — served from the history ring, or read
    /// back from the spill segment for ordinals that already aged out.
    pub fn flamegraph(&self, window: Option<u64>) -> Result<String, String> {
        match window {
            None => Ok(self.folded_stacks()),
            Some(index) => {
                let c = self.control_lock();
                let entry = c
                    .history
                    .lookup(index)
                    .ok_or_else(|| format!("window {index} is not retained"))?;
                Ok(render_folded(&entry.folded))
            }
        }
    }

    /// The `/flamegraph/diff?a=..&b=..` body: the folded-stack delta
    /// `b − a` between two windows (ring or spill), largest regression
    /// first (`stack +delta` / `stack -delta` per line).
    pub fn flamegraph_diff(&self, a: u64, b: u64) -> Result<String, String> {
        let c = self.control_lock();
        let wa =
            c.history.lookup(a).ok_or_else(|| format!("window {a} is not retained"))?;
        let wb =
            c.history.lookup(b).ok_or_else(|| format!("window {b} is not retained"))?;
        let mut out = String::new();
        for (stack, delta) in diff_folded(&wa.folded, &wb.folded) {
            out.push_str(&format!("{stack} {delta:+}\n"));
        }
        Ok(out)
    }

    /// The `/history[?from=..&to=..]` JSON body: store bounds, per-window
    /// summaries (oldest first), and burn-rule states. Without a range the
    /// summaries cover the in-memory ring; with one they cover the
    /// requested ordinals, reaching into the spill segment for windows that
    /// already aged out (at most [`HISTORY_RANGE_MAX`] per request).
    pub fn history_json(&self, from: Option<u64>, to: Option<u64>) -> Json {
        let c = self.control_lock();
        let windows: Vec<Json> = if from.is_some() || to.is_some() {
            // Both bounds consult the spill as well as the ring: after a
            // restart the ring starts empty while the spill still holds
            // windows, and a ring-only `newest` of 0 would hide them.
            let newest = c
                .history
                .latest()
                .map(|e| e.window.index)
                .max(c.history.spill().and_then(|s| s.max_index()))
                .unwrap_or(0);
            let oldest = c
                .history
                .spill()
                .and_then(|s| s.min_index())
                .or_else(|| c.history.iter().next().map(|e| e.window.index))
                .unwrap_or(0);
            c.history
                .range(from.unwrap_or(oldest), to.unwrap_or(newest), HISTORY_RANGE_MAX)
                .iter()
                .map(window_summary_json)
                .collect()
        } else {
            c.history.iter().map(window_summary_json).collect()
        };
        let burns = c
            .burns
            .iter()
            .map(|b| {
                Json::obj([
                    ("rule", Json::Str(b.rule().condition.name.clone())),
                    ("active", Json::Bool(b.active())),
                    ("slo_percent", Json::Num(b.rule().slo_percent)),
                    ("fast_windows", Json::Num(b.rule().fast as f64)),
                    ("slow_windows", Json::Num(b.rule().slow as f64)),
                    ("factor", Json::Num(b.rule().factor)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("retained_windows", Json::Num(c.history.len() as f64)),
            ("cap_windows", Json::Num(c.history.cap_windows() as f64)),
            ("cap_bytes", Json::Num(c.history.cap_bytes() as f64)),
            ("approx_bytes", Json::Num(c.history.approx_bytes() as f64)),
            ("evictions", Json::Num(c.history.evictions() as f64)),
        ];
        if let Some(spill) = c.history.spill() {
            fields.push(("spilled_windows", Json::Num(spill.len() as f64)));
            fields.push(("spill_bytes", Json::Num(spill.bytes() as f64)));
            fields.push((
                "spill_oldest",
                spill.min_index().map_or(Json::Null, |i| Json::Num(i as f64)),
            ));
            fields.push((
                "spill_errors",
                Json::Num(c.history.spill_errors() as f64),
            ));
        }
        if let Some(error) = &c.spill_error {
            fields.push(("spill_error", Json::Str(error.clone())));
        }
        fields.push(("windows", Json::Arr(windows)));
        fields.push(("burn_rules", Json::Arr(burns)));
        Json::obj(fields)
    }

    /// The `/dscg` JSON index: recently completed chains available for
    /// rendering, oldest first.
    pub fn recent_chains_json(&self) -> Json {
        let c = self.control_lock();
        let chains = c
            .recent_chains
            .iter()
            .map(|(chain, completions)| {
                Json::obj([
                    ("chain", Json::Str(chain.to_string())),
                    ("completed_calls", Json::Num(completions.len() as f64)),
                ])
            })
            .collect();
        Json::obj([("recent_chains", Json::Arr(chains))])
    }

    /// The `/dscg?chain=<uuid>[&format=dot]` body: an incremental DSCG
    /// render of one recently completed chain. The FIFO trace ring is
    /// consulted first; a chain volume already churned out of it still
    /// renders when the exemplar store holds it — eviction by sheer
    /// traffic must not sever the link from an exemplar reference to its
    /// render.
    pub fn dscg_render(&self, chain: &str, format: Option<&str>) -> Result<String, String> {
        let uuid: Uuid =
            chain.parse().map_err(|_| format!("bad chain uuid {chain:?}"))?;
        let c = self.control_lock();
        let completions = c
            .recent_chains
            .iter()
            .rev()
            .find(|(c, _)| *c == uuid)
            .map(|(_, completions)| completions)
            .or_else(|| c.exemplars.get(uuid).map(|e| &e.completions))
            .ok_or_else(|| format!("chain {chain} is not retained"))?;
        Ok(match format {
            Some("dot") => render::completed_chain_dot(uuid, completions, &self.vocab),
            _ => render::completed_chain_ascii(uuid, completions, &self.vocab),
        })
    }

    /// Chrome trace-event JSON of the last finalized window's raw records
    /// (falls back to the accumulating window before the first boundary).
    pub fn trace_json(&self) -> String {
        let records = {
            let c = self.control_lock();
            if c.last_window_records.is_empty() {
                c.window_records.clone()
            } else {
                c.last_window_records.clone()
            }
        };
        let run = RunLog::new(records, self.vocab.clone(), self.deployment.clone());
        chrome_trace::export(&MonitoringDb::from_run(run))
    }

    /// The `/latency` JSON body. With an `iface` filter: that interface's
    /// per-series windowed statistics. Without one: the index of every
    /// series seen since start (name + cumulative call count), so the
    /// endpoint tells an operator what to ask for instead of replying with
    /// an empty body on an idle window.
    pub fn latency_json(&self, iface: Option<&str>, method: Option<&str>) -> Json {
        let c = self.control_lock();
        let Some(iface) = iface else {
            return self.known_series_json_locked(&c);
        };
        let window = self.sliding_locked(&c);
        let mut series = Vec::new();
        for (key, agg) in &window.series {
            let iface_name = self.vocab.interface_name(key.0);
            let method_name = self.vocab.method_name(key.0, key.1);
            if iface != iface_name {
                continue;
            }
            if method.is_some_and(|want| want != method_name) {
                continue;
            }
            let p95 = agg.hist.quantile_ns(0.95);
            let p99 = agg.hist.quantile_ns(0.99);
            // OpenMetrics-style exemplar references on the tail buckets:
            // the retained chains at or above this window's p95, labelled
            // with the tightest bucket they still clear. The histogram
            // quantile reports its log2 bucket's *upper* bound, so members
            // of that bucket sit anywhere at or above half of it — use the
            // bucket's lower bound as the inclusive floor.
            let refs: Vec<Json> = c
                .exemplars
                .refs_at_least(*key, p95 / 2, EXEMPLAR_REFS_MAX)
                .into_iter()
                .map(|e| {
                    Json::obj([
                        ("chain", Json::Str(e.chain.to_string())),
                        ("latency_ns", Json::Num(e.latency_ns as f64)),
                        ("window_index", Json::Num(e.window_index as f64)),
                        ("verdict", Json::Str(e.verdict.name().to_owned())),
                        (
                            "bucket",
                            Json::Str(
                                if e.latency_ns >= p99 / 2 { "p99" } else { "p95" }.to_owned(),
                            ),
                        ),
                    ])
                })
                .collect();
            series.push(Json::obj([
                ("iface", Json::Str(iface_name.to_owned())),
                ("method", Json::Str(method_name.to_owned())),
                ("calls", Json::Num(agg.calls as f64)),
                ("call_rate_hz", Json::Num(window.call_rate_hz(Some(*key)))),
                (
                    "mean_ns",
                    Json::Num(if agg.calls == 0 {
                        0.0
                    } else {
                        agg.latency_sum_ns as f64 / agg.calls as f64
                    }),
                ),
                ("p50_ns", Json::Num(agg.hist.quantile_ns(0.50) as f64)),
                ("p95_ns", Json::Num(p95 as f64)),
                ("p99_ns", Json::Num(p99 as f64)),
                ("busy_share", Json::Num(window.busy_share(*key))),
                ("exemplars", Json::Arr(refs)),
            ]));
        }
        Json::obj([
            ("window_ns", Json::Num(window.span_ns as f64)),
            ("completed_calls", Json::Num(window.completed_calls as f64)),
            ("abnormality_rate_hz", Json::Num(window.abnormality_rate_hz())),
            ("series", Json::Arr(series)),
        ])
    }

    /// Every series seen since start with its cumulative call count — the
    /// unfiltered `/latency` body.
    fn known_series_json_locked(&self, c: &Control) -> Json {
        let series = c
            .known_series
            .iter()
            .map(|(key, calls)| {
                Json::obj([
                    ("iface", Json::Str(self.vocab.interface_name(key.0).to_owned())),
                    ("method", Json::Str(self.vocab.method_name(key.0, key.1).to_owned())),
                    ("calls", Json::Num(*calls as f64)),
                ])
            })
            .collect();
        Json::obj([("known_series", Json::Arr(series))])
    }

    /// The `/healthz` JSON body and HTTP status: 200 while no alert fires,
    /// 503 with the firing names otherwise. Besides liveness counters the
    /// body reports time-travel health — current window ordinal, history
    /// evictions, and spill error state — so a scraper can tell when the
    /// evidence an incident would need has started to rot.
    pub fn health_json(&self) -> (u16, Json) {
        let c = self.control_lock();
        let active = Self::active_alerts_locked(&c);
        let status = if active.is_empty() { 200 } else { 503 };
        let open_incidents = c.incidents.iter().filter(|i| i.is_open()).count();
        let (open_chains, buffered) = self.analyzer_totals();
        let body = Json::obj([
            (
                "status",
                Json::Str(if active.is_empty() { "ok" } else { "degraded" }.to_owned()),
            ),
            // What build and topology is serving: a scraper (or a human
            // mid-incident) can tell a fresh restart from a long-lived
            // monitor and a serial from a sharded deployment.
            ("uptime_ms", Json::Num(self.started.elapsed().as_millis() as f64)),
            ("version", Json::Str(env!("CARGO_PKG_VERSION").to_owned())),
            ("shards", Json::Num(self.shards.len() as f64)),
            ("active_alerts", Json::Arr(active.into_iter().map(Json::Str).collect())),
            ("open_chains", Json::Num(open_chains as f64)),
            ("buffered_records", Json::Num(buffered as f64)),
            ("completed_calls", Json::Num(c.total_completed as f64)),
            ("abnormalities", Json::Num(c.total_abnormalities as f64)),
            (
                "window_index",
                c.last_window
                    .as_ref()
                    .map_or(Json::Null, |w| Json::Num(w.index as f64)),
            ),
            ("history_evictions", Json::Num(c.history.evictions() as f64)),
            ("spill_errors", Json::Num(c.history.spill_errors() as f64)),
            (
                "spill_error",
                c.spill_error.as_ref().map_or(Json::Null, |e| Json::Str(e.clone())),
            ),
            ("open_incidents", Json::Num(open_incidents as f64)),
            (
                "escalated_interfaces",
                Json::Num(
                    self.cfg
                        .adaptive
                        .policy
                        .as_ref()
                        .map_or(0, |p| p.overrides().len()) as f64,
                ),
            ),
        ]);
        (status, body)
    }

    /// The `GET /alerts` JSON body: the bounded alert-transition log,
    /// oldest first.
    pub fn alerts_json(&self) -> Json {
        let c = self.control_lock();
        let alerts = c
            .alert_log
            .iter()
            .map(|e| {
                Json::obj([
                    ("alert", Json::Str(e.alert.clone())),
                    ("fired", Json::Bool(e.fired)),
                    ("window_index", Json::Num(e.window_index as f64)),
                    ("at_ms", Json::Num(e.at_ms as f64)),
                    ("value", Json::Num(e.value)),
                    ("threshold", Json::Num(e.threshold)),
                    (
                        "exemplars",
                        Json::Arr(
                            e.exemplars
                                .iter()
                                .map(|u| Json::Str(u.to_string()))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj([("alerts", Json::Arr(alerts))])
    }

    /// One exemplar's summary object (shared by the index and detail
    /// bodies).
    fn exemplar_summary_json(&self, e: &crate::exemplar::Exemplar) -> Json {
        Json::obj([
            ("id", Json::Num(e.id as f64)),
            ("chain", Json::Str(e.chain.to_string())),
            ("iface", Json::Str(self.vocab.interface_name(e.series.0).to_owned())),
            ("method", Json::Str(self.vocab.method_name(e.series.0, e.series.1).to_owned())),
            ("latency_ns", Json::Num(e.latency_ns as f64)),
            ("window_index", Json::Num(e.window_index as f64)),
            ("verdict", Json::Str(e.verdict.name().to_owned())),
            ("completed_calls", Json::Num(e.completions.len() as f64)),
        ])
    }

    /// The `GET /exemplars` index body: store totals plus every retained
    /// series' exemplars, slowest first. With `series=Iface::Name.method`,
    /// only that series. `Err` carries the HTTP status + message.
    pub fn exemplars_json(&self, series: Option<&str>) -> Result<Json, (u16, String)> {
        let want = match series {
            Some(name) => Some(
                resolve_series(&self.vocab, name)
                    .ok_or((404, format!("unknown series {name:?} (want Iface::Name.method)")))?,
            ),
            None => None,
        };
        let c = self.control_lock();
        let store = &c.exemplars;
        let series_objs: Vec<Json> = store
            .series_keys()
            .into_iter()
            .filter(|key| want.is_none_or(|w| w == *key))
            .map(|key| {
                let exemplars: Vec<Json> = store
                    .series_sorted(key)
                    .into_iter()
                    .map(|e| self.exemplar_summary_json(e))
                    .collect();
                Json::obj([
                    ("iface", Json::Str(self.vocab.interface_name(key.0).to_owned())),
                    ("method", Json::Str(self.vocab.method_name(key.0, key.1).to_owned())),
                    ("count", Json::Num(exemplars.len() as f64)),
                    ("exemplars", Json::Arr(exemplars)),
                ])
            })
            .collect();
        let cfg = store.config();
        let mut fields = vec![
            ("enabled", Json::Bool(cfg.enabled)),
            ("per_series", Json::Num(cfg.per_series as f64)),
            ("sample_per_series", Json::Num(cfg.sample_per_series as f64)),
            ("max_total", Json::Num(cfg.max_total as f64)),
            ("max_bytes", Json::Num(cfg.max_bytes as f64)),
            ("count", Json::Num(store.len() as f64)),
            ("approx_bytes", Json::Num(store.approx_bytes() as f64)),
            ("admitted", Json::Num(store.admitted() as f64)),
            ("evicted", Json::Num(store.evicted() as f64)),
            ("rejected", Json::Num(store.rejected() as f64)),
        ];
        if let Some(error) = store.spill_error() {
            fields.push(("spill_error", Json::Str(error.to_owned())));
        }
        fields.push(("series", Json::Arr(series_objs)));
        Ok(Json::obj(fields))
    }

    /// The `GET /exemplars?id=<chain-uuid>` detail body: the summary plus
    /// the full DSCG ascii and dot renders and a single-chain Chrome-trace
    /// slice view. `Err` carries the HTTP status + message.
    pub fn exemplar_detail_json(&self, id: &str) -> Result<Json, (u16, String)> {
        let uuid: Uuid =
            id.parse().map_err(|_| (400, format!("bad exemplar uuid {id:?}")))?;
        let c = self.control_lock();
        let e = c
            .exemplars
            .get(uuid)
            .ok_or((404, format!("exemplar {id} is not retained")))?;
        let mut body = self.exemplar_summary_json(e);
        if let Json::Obj(map) = &mut body {
            map.insert(
                "ascii".to_owned(),
                Json::Str(render::completed_chain_ascii(uuid, &e.completions, &self.vocab)),
            );
            map.insert(
                "dot".to_owned(),
                Json::Str(render::completed_chain_dot(uuid, &e.completions, &self.vocab)),
            );
            map.insert(
                "chrome_trace".to_owned(),
                exemplar::chrome_slice_json(e, &self.vocab),
            );
        }
        Ok(body)
    }

    /// The `GET /probes` JSON body: the control plane's base mode, every
    /// vocabulary interface's effective mode with the source of authority
    /// (`base`, `alert`, `floor`, or `operator` with its expiry), and the
    /// bounded transition log, oldest first. Expired operator TTLs are
    /// swept before rendering, so a lapsed override never shows as live.
    pub fn probes_json(&self) -> Json {
        let mut c = self.control_lock();
        let now_ms = incident::wall_clock_ms();
        let window_index = c.last_window.as_ref().map_or(u64::MAX, |w| w.index);
        self.expire_operators_locked(&mut c, window_index, now_ms);

        let policy = self.cfg.adaptive.policy.as_ref();
        let interfaces: Vec<Json> = self
            .vocab
            .interfaces
            .iter()
            .enumerate()
            .map(|(i, entry)| {
                let iface = InterfaceId(i as u32);
                let mode = policy.map_or(Json::Null, |p| Json::Str(p.effective(iface).to_string()));
                let operator = c.probe_ctl.operator.get(&iface);
                let source = if operator.is_some() {
                    "operator"
                } else if c.probe_ctl.holds.values().any(|(held, _)| *held == iface) {
                    "alert"
                } else if c.probe_ctl.floors.contains_key(&iface) {
                    "floor"
                } else {
                    "base"
                };
                Json::obj([
                    ("iface", Json::Str(entry.name.clone())),
                    ("id", Json::Num(i as f64)),
                    ("mode", mode),
                    ("source", Json::Str(source.to_owned())),
                    (
                        "expires_at_ms",
                        operator.map_or(Json::Null, |(_, expiry)| Json::Num(*expiry as f64)),
                    ),
                ])
            })
            .collect();
        let transitions: Vec<Json> = c
            .probe_ctl
            .log
            .iter()
            .map(|t| {
                Json::obj([
                    ("at_ms", Json::Num(t.at_ms as f64)),
                    (
                        "window_index",
                        if t.window_index == u64::MAX {
                            Json::Null
                        } else {
                            Json::Num(t.window_index as f64)
                        },
                    ),
                    ("iface", Json::Str(self.iface_name(t.interface))),
                    ("from", Json::Str(t.from.to_string())),
                    ("to", Json::Str(t.to.to_string())),
                    ("reason", Json::Str(t.reason.to_owned())),
                    ("detail", Json::Str(t.detail.clone())),
                ])
            })
            .collect();
        Json::obj([
            ("adaptive", Json::Bool(policy.is_some())),
            ("base", policy.map_or(Json::Null, |p| Json::Str(p.base().to_string()))),
            (
                "escalated_interfaces",
                Json::Num(policy.map_or(0, |p| p.overrides().len()) as f64),
            ),
            ("interfaces", Json::Arr(interfaces)),
            ("transitions", Json::Arr(transitions)),
        ])
    }

    /// Applies an operator probe override from a `POST /probes` body:
    /// `{"iface": "Name"|id, "mode": "both"|…|"base", "ttl_ms"?: N}`.
    /// `"base"` clears the operator override and any standing floor (live
    /// alert holds keep their escalation until they resolve). Returns the
    /// acknowledgement body, or the HTTP status + message to reject with
    /// (400 malformed, 404 unknown interface, 409 control plane disabled).
    pub fn probe_override_json(&self, body: &[u8]) -> Result<Json, (u16, String)> {
        let policy = self.cfg.adaptive.policy.as_ref().ok_or((
            409,
            "adaptive probe control is disabled (no shared policy)".to_owned(),
        ))?;
        let text = std::str::from_utf8(body)
            .map_err(|_| (400, "body must be UTF-8 JSON".to_owned()))?;
        let parsed = json::parse(text).map_err(|e| (400, format!("bad JSON body: {e}")))?;

        let iface = match parsed.get("iface") {
            Some(Json::Str(name)) => self
                .vocab
                .interfaces
                .iter()
                .position(|e| &e.name == name)
                .map(|i| InterfaceId(i as u32))
                .ok_or((404, format!("unknown interface {name:?}")))?,
            Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => InterfaceId(*n as u32),
            _ => return Err((400, "\"iface\" must be an interface name or id".to_owned())),
        };
        let mode_spec = match parsed.get("mode") {
            Some(Json::Str(m)) => m.clone(),
            _ => return Err((400, "\"mode\" must be a probe mode name or \"base\"".to_owned())),
        };
        let ttl_ms = match parsed.get("ttl_ms") {
            None => self.cfg.adaptive.operator_ttl.as_millis() as u64,
            Some(Json::Num(n)) if *n > 0.0 && n.fract() == 0.0 => *n as u64,
            _ => return Err((400, "\"ttl_ms\" must be a positive integer".to_owned())),
        };

        let mut c = self.control_lock();
        let now_ms = incident::wall_clock_ms();
        let window_index = c.last_window.as_ref().map_or(u64::MAX, |w| w.index);
        let expires = if mode_spec.eq_ignore_ascii_case("base") {
            c.probe_ctl.operator.remove(&iface);
            c.probe_ctl.floors.remove(&iface);
            self.actuate_probe(
                &mut c,
                iface,
                window_index,
                "operator",
                "operator cleared to base".to_owned(),
                now_ms,
            );
            None
        } else {
            let mode = mode_spec
                .parse::<ProbeMode>()
                .map_err(|e| (400, e.to_string()))?;
            let expiry = now_ms.saturating_add(ttl_ms);
            c.probe_ctl.operator.insert(iface, (mode, expiry));
            self.actuate_probe(
                &mut c,
                iface,
                window_index,
                "operator",
                format!("operator override to {mode} (ttl {ttl_ms}ms)"),
                now_ms,
            );
            Some(expiry)
        };
        Ok(Json::obj([
            ("iface", Json::Str(self.iface_name(iface))),
            ("id", Json::Num(iface.0 as f64)),
            ("mode", Json::Str(policy.effective(iface).to_string())),
            ("expires_at_ms", expires.map_or(Json::Null, |e| Json::Num(e as f64))),
        ]))
    }

    /// The retained incidents, behind the control lock. Drop the returned
    /// guard before calling other monitor methods — holding it across them
    /// deadlocks.
    pub fn incidents(&self) -> IncidentsRef<'_> {
        IncidentsRef { guard: self.control_lock() }
    }

    /// The `GET /incidents` index body.
    pub fn incidents_json(&self) -> Json {
        self.control_lock().incidents.index_json()
    }

    /// The `GET /incidents?id=N` detail body: full add-only graph
    /// (hypotheses + tombstones + timeline) and the query-time surviving
    /// set. `None` when the incident is unknown or already evicted.
    pub fn incident_json(&self, id: u64) -> Option<Json> {
        self.control_lock().incidents.get(id).map(Incident::detail_json)
    }

    /// Applies an operator tombstone from a `POST /incidents/eliminate`
    /// body: `{"incident": N, "hypothesis": M, "pass"?: "...",
    /// "reason"?: "..."}`. Returns the acknowledgement body, or the HTTP
    /// status + message to reject with (400 malformed, 404 unknown target).
    pub fn eliminate_json(&self, body: &[u8]) -> Result<Json, (u16, String)> {
        let text = std::str::from_utf8(body)
            .map_err(|_| (400, "body must be UTF-8 JSON".to_owned()))?;
        let parsed =
            json::parse(text).map_err(|e| (400, format!("bad JSON body: {e}")))?;
        let number = |key: &str| -> Result<u64, (u16, String)> {
            match parsed.get(key) {
                Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
                _ => Err((400, format!("{key:?} must be a non-negative integer"))),
            }
        };
        let incident_id = number("incident")?;
        let hypothesis = number("hypothesis")?;
        let pass = match parsed.get("pass") {
            None => incident::PASS_OPERATOR.to_owned(),
            Some(Json::Str(p))
                if !p.is_empty()
                    && p.len() <= incident::MAX_PASS_LEN
                    && p.bytes().all(|b| {
                        b.is_ascii_alphanumeric() || b == b'-' || b == b'_'
                    }) =>
            {
                p.clone()
            }
            Some(_) => {
                return Err((
                    400,
                    "\"pass\" must be a short [A-Za-z0-9_-] name".to_owned(),
                ))
            }
        };
        let reason = match parsed.get("reason") {
            None => "eliminated by operator".to_owned(),
            Some(Json::Str(r)) => r.clone(),
            Some(_) => return Err((400, "\"reason\" must be a string".to_owned())),
        };
        let surviving = self
            .control_lock()
            .incidents
            .eliminate(incident_id, hypothesis, &pass, &reason)
            .map_err(|e| (404, e.to_string()))?;
        Ok(Json::obj([
            ("incident", Json::Num(incident_id as f64)),
            ("hypothesis", Json::Num(hypothesis as f64)),
            ("pass", Json::Str(pass)),
            ("surviving", Json::Num(surviving as f64)),
        ]))
    }

    /// The `/chains` JSON body: every chain with unfinished work.
    pub fn chains_json(&self) -> Json {
        let chains = self
            .open_chain_summaries()
            .into_iter()
            .map(|s| {
                Json::obj([
                    ("chain", Json::Str(s.chain.to_string())),
                    ("open_calls", Json::Num(s.open_calls as f64)),
                    (
                        "innermost",
                        match s.innermost {
                            Some(func) => Json::Str(self.vocab.qualified_function(&func)),
                            None => Json::Null,
                        },
                    ),
                    ("buffered_records", Json::Num(s.buffered_records as f64)),
                    ("completed_calls", Json::Num(s.completed_calls as f64)),
                    ("processed_seq", Json::Num(s.processed_seq as f64)),
                ])
            })
            .collect();
        Json::obj([("open_chains", Json::Arr(chains))])
    }
}

/// A borrowed view of the monitor's [`WindowHistory`], holding the control
/// lock. Drop it before calling other [`LiveMonitor`] methods — holding it
/// across them deadlocks.
pub struct HistoryRef<'a> {
    guard: MutexGuard<'a, Control>,
}

impl std::ops::Deref for HistoryRef<'_> {
    type Target = WindowHistory;
    fn deref(&self) -> &WindowHistory {
        &self.guard.history
    }
}

/// A borrowed view of the monitor's [`IncidentStore`], holding the control
/// lock. Drop it before calling other [`LiveMonitor`] methods — holding it
/// across them deadlocks.
pub struct IncidentsRef<'a> {
    guard: MutexGuard<'a, Control>,
}

impl std::ops::Deref for IncidentsRef<'_> {
    type Target = IncidentStore;
    fn deref(&self) -> &IncidentStore {
        &self.guard.incidents
    }
}

impl std::ops::DerefMut for IncidentsRef<'_> {
    fn deref_mut(&mut self) -> &mut IncidentStore {
        &mut self.guard.incidents
    }
}


/// Most window summaries one `/history?from=..&to=..` request will fetch
/// (each spilled ordinal costs a disk read).
pub const HISTORY_RANGE_MAX: usize = 4096;

/// One window's `/history` summary line.
fn window_summary_json(entry: &HistoryEntry) -> Json {
    let w = &entry.window;
    let mut all = SeriesAgg::default();
    for agg in w.series.values() {
        all.merge(agg);
    }
    let p95 = if all.calls == 0 { 0.0 } else { all.hist.quantile_ns(0.95) as f64 };
    Json::obj([
        ("index", Json::Num(w.index as f64)),
        ("span_ns", Json::Num(w.span_ns as f64)),
        ("completed_calls", Json::Num(w.completed_calls as f64)),
        ("abnormalities", Json::Num(w.abnormalities as f64)),
        ("call_rate_hz", Json::Num(w.call_rate_hz(None))),
        ("p95_ns", Json::Num(p95)),
        ("series", Json::Num(w.series.len() as f64)),
        ("stacks", Json::Num(entry.folded.len() as f64)),
    ])
}

/// Renders a folded-stack map as `a;b;c self_ns` lines (inferno format),
/// sorted by stack for deterministic output.
fn render_folded(folded: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (stack, self_ns) in folded {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&self_ns.to_string());
        out.push('\n');
    }
    out
}

/// Adds `self_ns` to `path`'s folded-stack total, keeping the map at most
/// `cap` entries by evicting the smallest-valued stack (counted) when a
/// *new* stack would otherwise push it over.
fn fold_into(
    map: &mut BTreeMap<String, u64>,
    cap: usize,
    evictions: &Counter,
    path: String,
    self_ns: u64,
) {
    if let Some(total) = map.get_mut(&path) {
        *total += self_ns;
        return;
    }
    if map.len() >= cap {
        // Evicting the coldest stack loses the least flamegraph area; the
        // O(n) scan only runs once the cap is hit and a new stack appears.
        if let Some(coldest) =
            map.iter().min_by_key(|(_, ns)| **ns).map(|(stack, _)| stack.clone())
        {
            map.remove(&coldest);
            evictions.inc();
        }
    }
    map.insert(path, self_ns);
}

fn merge_slice(snap: &mut WindowSnapshot, slice: &Slice) {
    for (key, agg) in &slice.series {
        snap.series.entry(*key).or_default().merge(agg);
    }
    snap.completed_calls += slice.completed_calls;
    snap.abnormalities += slice.abnormalities;
}
/// A running live monitoring service: the embedded HTTP server plus the
/// background ticker thread that rotates windows on idle systems (so
/// alerts resolve and history accrues without any scrape traffic).
///
/// Dropping the service (or calling [`LiveService::shutdown`]) stops the
/// ticker, joins it, and stops accepting connections.
#[derive(Debug)]
pub struct LiveService {
    server: HttpServer,
    stop: Arc<AtomicBool>,
    ticker: Option<std::thread::JoinHandle<()>>,
}

impl LiveService {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Requests served since bind (see [`HttpServer::requests_served`]).
    pub fn requests_served(&self) -> u64 {
        self.server.requests_served()
    }

    /// Stops the ticker thread and the HTTP server.
    pub fn shutdown(self) {
        // Drop does the work; this name keeps call sites explicit.
    }
}

impl Drop for LiveService {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.ticker.take() {
            let _ = handle.join();
        }
        // `self.server` drops afterwards and stops accepting.
    }
}

/// Mounts a shared [`LiveMonitor`] behind the embedded HTTP server and
/// starts the window ticker thread.
///
/// Routes: `/metrics` (Prometheus exposition of the process-global
/// registry), `/healthz` (alert-aware, 503 while any alert fires),
/// `/chains`, `/latency[?iface=..&method=..]` (series index without a
/// filter), `/flamegraph[?window=k]`, `/flamegraph/diff?a=..&b=..`,
/// `/history`, `/dscg[?chain=..&format=dot]`, `/trace` (Chrome trace of
/// the last window), `/alerts` (the transition log), `/exemplars`
/// (tail-biased exemplar index, `?series=..` to filter, `?id=<chain>` for
/// DSCG + Chrome-trace detail), `/incidents` (index, or `?id=N` for the
/// full hypothesis graph) and
/// `POST /incidents/eliminate` (operator tombstones). The ticker advances
/// window time a few times per slice, so idle systems keep rotating
/// windows without relying on scrape traffic.
pub fn serve(monitor: Arc<LiveMonitor>, addr: &str) -> std::io::Result<LiveService> {
    let on = |monitor: &Arc<LiveMonitor>,
              f: fn(&LiveMonitor, &Request) -> Response|
     -> Handler {
        let monitor = Arc::clone(monitor);
        Box::new(move |req: &Request| f(&monitor, req))
    };
    let routes: Vec<(String, Handler)> = vec![
        (
            "/metrics".to_owned(),
            on(&monitor, |_, _| {
                Response::text(200, MetricsRegistry::global().render_prometheus())
            }),
        ),
        (
            "/healthz".to_owned(),
            on(&monitor, |m, _| {
                let (status, body) = m.health_json();
                Response::json(status, body.to_string())
            }),
        ),
        (
            "/chains".to_owned(),
            on(&monitor, |m, _| Response::json(200, m.chains_json().to_string())),
        ),
        (
            "/latency".to_owned(),
            on(&monitor, |m, req| {
                let body =
                    m.latency_json(req.query_param("iface"), req.query_param("method"));
                Response::json(200, body.to_string())
            }),
        ),
        (
            "/flamegraph".to_owned(),
            on(&monitor, |m, req| {
                let window = match req.query_param("window") {
                    Some(raw) => match raw.parse::<u64>() {
                        Ok(index) => Some(index),
                        Err(_) => {
                            return Response::text(400, "window must be an ordinal\n")
                        }
                    },
                    None => None,
                };
                match m.flamegraph(window) {
                    Ok(body) => Response::text(200, body),
                    Err(err) => Response::text(404, err + "\n"),
                }
            }),
        ),
        (
            "/flamegraph/diff".to_owned(),
            on(&monitor, |m, req| {
                let ordinal =
                    |key| req.query_param(key).and_then(|raw: &str| raw.parse::<u64>().ok());
                match (ordinal("a"), ordinal("b")) {
                    (Some(a), Some(b)) => match m.flamegraph_diff(a, b) {
                        Ok(body) => Response::text(200, body),
                        Err(err) => Response::text(404, err + "\n"),
                    },
                    _ => Response::text(400, "need a=<window>&b=<window>\n"),
                }
            }),
        ),
        (
            "/history".to_owned(),
            on(&monitor, |m, req| {
                let ordinal = |key: &str| -> Result<Option<u64>, ()> {
                    match req.query_param(key) {
                        Some(raw) => raw.parse::<u64>().map(Some).map_err(|_| ()),
                        None => Ok(None),
                    }
                };
                match (ordinal("from"), ordinal("to")) {
                    (Ok(from), Ok(to)) => {
                        Response::json(200, m.history_json(from, to).to_string())
                    }
                    _ => Response::text(400, "from/to must be window ordinals\n"),
                }
            }),
        ),
        (
            "/dscg".to_owned(),
            on(&monitor, |m, req| match req.query_param("chain") {
                Some(chain) => match m.dscg_render(chain, req.query_param("format")) {
                    Ok(body) => Response::text(200, body),
                    Err(err) => Response::text(404, err + "\n"),
                },
                None => Response::json(200, m.recent_chains_json().to_string()),
            }),
        ),
        (
            "/trace".to_owned(),
            on(&monitor, |m, _| Response::json(200, m.trace_json())),
        ),
        (
            "/alerts".to_owned(),
            on(&monitor, |m, _| Response::json(200, m.alerts_json().to_string())),
        ),
        (
            "/incidents".to_owned(),
            on(&monitor, |m, req| match req.query_param("id") {
                None => Response::json(200, m.incidents_json().to_string()),
                Some(raw) => match raw.parse::<u64>() {
                    Ok(id) => match m.incident_json(id) {
                        Some(body) => Response::json(200, body.to_string()),
                        None => Response::text(404, format!("incident {id} is not retained\n")),
                    },
                    Err(_) => Response::text(400, "id must be an incident number\n"),
                },
            }),
        ),
        (
            "/exemplars".to_owned(),
            on(&monitor, |m, req| {
                let body = match req.query_param("id") {
                    Some(id) => m.exemplar_detail_json(id),
                    None => m.exemplars_json(req.query_param("series")),
                };
                match body {
                    Ok(json) => Response::json(200, json.to_string()),
                    Err((status, why)) => Response::text(status, why + "\n"),
                }
            }),
        ),
        (
            "/probes".to_owned(),
            on(&monitor, |m, req| {
                if req.method == "POST" {
                    return match m.probe_override_json(&req.body) {
                        Ok(body) => Response::json(200, body.to_string()),
                        Err((status, why)) => Response::text(status, why + "\n"),
                    };
                }
                Response::json(200, m.probes_json().to_string())
            }),
        ),
        (
            "/incidents/eliminate".to_owned(),
            on(&monitor, |m, req| {
                if req.method != "POST" {
                    return Response::text(405, "POST a JSON tombstone here\n");
                }
                match m.eliminate_json(&req.body) {
                    Ok(body) => Response::json(200, body.to_string()),
                    Err((status, why)) => Response::text(status, why + "\n"),
                }
            }),
        ),
    ];
    let server = HttpServer::bind(addr, routes)?;

    // Tick a few times per slice (clamped to a sane wall-clock range) so
    // windows close promptly even with zero traffic and zero scrapes.
    let tick_every = Duration::from_nanos(monitor.slice_ns / 4)
        .clamp(Duration::from_millis(5), Duration::from_millis(250));
    let stop = Arc::new(AtomicBool::new(false));
    let ticker_stop = Arc::clone(&stop);
    let ticker_monitor = Arc::clone(&monitor);
    let ticker = std::thread::Builder::new()
        .name("causeway-live-ticker".to_owned())
        .spawn(move || {
            while !ticker_stop.load(Ordering::Acquire) {
                std::thread::sleep(tick_every);
                ticker_monitor.tick();
            }
        })?;
    Ok(LiveService { server, stop, ticker: Some(ticker) })
}
#[cfg(test)]
mod tests {
    use super::*;
    use causeway_core::event::{CallKind, TraceEvent};
    use causeway_core::ids::{LogicalThreadId, NodeId, ObjectId, ProcessId};
    use causeway_core::names::{ComponentId, InterfaceEntry, ObjectEntry};
    use causeway_core::record::{CallSite, FunctionKey};

    const SLICE_NS: u64 = 200_000_000; // 5 slices of a 1s window
    const WINDOW_NS: u64 = 1_000_000_000;

    fn test_config() -> LiveConfig {
        LiveConfig { window: Duration::from_nanos(WINDOW_NS), slices: 5, ..LiveConfig::default() }
    }

    fn test_vocab() -> VocabSnapshot {
        VocabSnapshot {
            interfaces: vec![
                InterfaceEntry {
                    name: "Test::Alpha".to_owned(),
                    methods: vec!["run".to_owned(), "poll".to_owned()],
                },
                InterfaceEntry { name: "Test::Beta".to_owned(), methods: vec!["go".to_owned()] },
            ],
            components: vec![],
            cpu_types: vec![],
            objects: vec![(
                ObjectId(7),
                ObjectEntry {
                    label: "alpha-7".to_owned(),
                    interface: InterfaceId(0),
                    component: ComponentId(0),
                    process: ProcessId(0),
                },
            )],
        }
    }

    fn monitor() -> LiveMonitor {
        LiveMonitor::new(test_config(), test_vocab(), Deployment::default())
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        chain: u128,
        seq: u64,
        event: TraceEvent,
        iface: u32,
        method: u16,
        object: u64,
        start: u64,
        end: u64,
    ) -> ProbeRecord {
        ProbeRecord {
            uuid: Uuid(chain),
            seq,
            event,
            kind: CallKind::Sync,
            site: CallSite { node: NodeId(0), process: ProcessId(0), thread: LogicalThreadId(0) },
            func: FunctionKey::new(InterfaceId(iface), MethodIndex(method), ObjectId(object)),
            wall_start: Some(start),
            wall_end: Some(end),
            cpu_start: None,
            cpu_end: None,
            oneway_child: None,
            oneway_parent: None,
        }
    }

    /// A complete synchronous root call on `chain`: the compensated latency
    /// is `stub_end.wall_start − stub_start.wall_end` (no children, so no
    /// overhead subtraction) = `latency_ns + 4` with this 1ns-probe
    /// geometry — see [`compensated`].
    fn sync_call(chain: u128, iface: u32, method: u16, latency_ns: u64) -> Vec<ProbeRecord> {
        let t0 = 0;
        let send_end = t0 + 1;
        let skel_start = (send_end + 1, send_end + 2);
        let skel_end_start = skel_start.1 + latency_ns;
        let skel_end = (skel_end_start, skel_end_start + 1);
        let reply_start = skel_end.1 + 1;
        vec![
            record(chain, 1, TraceEvent::StubStart, iface, method, 7, t0, send_end),
            record(chain, 2, TraceEvent::SkelStart, iface, method, 7, skel_start.0, skel_start.1),
            record(chain, 3, TraceEvent::SkelEnd, iface, method, 7, skel_end.0, skel_end.1),
            record(chain, 4, TraceEvent::StubEnd, iface, method, 7, reply_start, reply_start + 1),
        ]
    }

    /// The compensated latency `sync_call` produces:
    /// `stub_end.wall_start − stub_start.wall_end` with the gaps the helper
    /// lays out (1ns hop each side of the skeleton window).
    fn compensated(latency_ns: u64) -> u64 {
        latency_ns + 4
    }

    #[test]
    fn windows_rotate_and_capture_series() {
        let m = monitor();
        m.ingest_batch_at(sync_call(1, 0, 0, 1000), 10);
        assert!(m.last_window().is_none(), "window not yet complete");
        let sliding = m.sliding();
        let key = (InterfaceId(0), MethodIndex(0));
        assert_eq!(sliding.series[&key].calls, 1);

        // Crossing the window boundary finalizes a tumbling snapshot.
        m.tick_at(WINDOW_NS + 1);
        let window = m.last_window().expect("finalized");
        assert_eq!(window.index, 0);
        assert_eq!(window.completed_calls, 1);
        assert_eq!(window.span_ns, WINDOW_NS);
        let q = window.quantile_ns(key, 0.5).unwrap();
        let exact = compensated(1000);
        assert!(q >= exact && q <= exact.next_power_of_two().max(2 * exact));
    }

    #[test]
    fn sliding_equals_tumbling_for_aligned_batches() {
        // Everything lands in window 0's slices; at the boundary, the
        // sliding view (before any new slice opens) must equal the tumbling
        // snapshot series-for-series.
        let m = monitor();
        for (i, latency) in [1_000u64, 50_000, 2_000_000, 900].into_iter().enumerate() {
            let at = i as u64 * SLICE_NS + 5; // one batch per slice
            m.ingest_batch_at(sync_call(i as u128 + 1, 0, 0, latency), at);
        }
        m.tick_at(WINDOW_NS); // close slice 4, finalize window 0
        let tumbling = m.last_window().expect("finalized").clone();
        let sliding = m.sliding();
        assert_eq!(sliding.completed_calls, tumbling.completed_calls);
        assert_eq!(sliding.series.len(), tumbling.series.len());
        for (key, agg) in &tumbling.series {
            let s = &sliding.series[key];
            assert_eq!(s.calls, agg.calls);
            assert_eq!(s.latency_sum_ns, agg.latency_sum_ns);
            assert_eq!(s.hist, agg.hist, "histograms must match bucket-for-bucket");
        }
    }

    #[test]
    fn hysteresis_fires_once_and_resolves_once_per_excursion() {
        let m = monitor();
        m.add_rule(AlertRule {
            name: "p50-high".to_owned(),
            metric: AlertMetric::P50,
            series: Some((InterfaceId(0), MethodIndex(0))),
            cmp: AlertCmp::Above,
            fire_threshold: 1_000_000.0,  // 1ms
            resolve_threshold: 100_000.0, // 0.1ms
            for_windows: 2,
            escalate: None,
            deescalate: None,
        });

        // An oscillating series that hops between the fire threshold's far
        // side and the hysteresis band every window: slow, slow, band, slow,
        // band, then calm, calm. Without hysteresis + for=2 this would flap.
        let per_window_latency = [
            5_000_000u64, // W0 breach (pending 1)
            5_000_000,    // W1 breach → FIRES
            400_000,      // W2 inside band: stays active, no resolve progress
            5_000_000,    // W3 breach again: still active, no second fire
            400_000,      // W4 band: active
            1_000,        // W5 calm (pending 1)
            1_000,        // W6 calm → RESOLVES
        ];
        for (w, latency) in per_window_latency.into_iter().enumerate() {
            let at = w as u64 * WINDOW_NS + 5;
            m.ingest_batch_at(sync_call(w as u128 + 1, 0, 0, latency), at);
        }
        m.tick_at(8 * WINDOW_NS); // finalize W7 (empty) too

        let log: Vec<AlertEvent> = m.alert_log();
        assert_eq!(log.len(), 2, "exactly one fire + one resolve, got {log:?}");
        assert!(log[0].fired && log[0].window_index == 1, "fired at W1: {:?}", log[0]);
        assert!(!log[1].fired && log[1].window_index == 6, "resolved at W6: {:?}", log[1]);
        assert!(m.active_alerts().is_empty());
    }

    #[test]
    fn alert_gauge_tracks_active_state() {
        let m = monitor();
        m.add_rule(AlertRule {
            name: "gauge-probe".to_owned(),
            metric: AlertMetric::CallRate,
            series: None,
            cmp: AlertCmp::Above,
            fire_threshold: 0.5,
            resolve_threshold: 0.5,
            for_windows: 1,
            escalate: None,
            deescalate: None,
        });
        for w in 0..3u64 {
            m.ingest_batch_at(sync_call(w as u128 + 1, 0, 0, 1000), w * WINDOW_NS + 5);
        }
        m.tick_at(3 * WINDOW_NS);
        assert_eq!(m.active_alerts(), vec!["gauge-probe".to_owned()]);
        let exposition = MetricsRegistry::global().render_prometheus();
        assert!(
            exposition.contains("causeway_live_alert_active{alert=\"gauge-probe\"} 1"),
            "gauge missing from exposition"
        );
        let (status, _) = m.health_json();
        assert_eq!(status, 503);
    }

    #[test]
    fn rule_parser_round_trips() {
        let vocab = test_vocab();
        let rule = parse_rule("p95:Test::Alpha.run>800us;for=2;resolve=400us", &vocab).unwrap();
        assert_eq!(rule.metric, AlertMetric::P95);
        assert_eq!(rule.series, Some((InterfaceId(0), MethodIndex(0))));
        assert_eq!(rule.cmp, AlertCmp::Above);
        assert_eq!(rule.fire_threshold, 800_000.0);
        assert_eq!(rule.resolve_threshold, 400_000.0);
        assert_eq!(rule.for_windows, 2);

        let rate = parse_rule("rate<0.5;for=3", &vocab).unwrap();
        assert_eq!(rate.metric, AlertMetric::CallRate);
        assert_eq!(rate.series, None);
        assert_eq!(rate.cmp, AlertCmp::Below);
        assert_eq!(rate.fire_threshold, 0.5);

        assert!(parse_rule("p95:Nope::Missing.run>1ms", &vocab).is_err());
        assert!(parse_rule("p95>1ms;resolve=2ms", &vocab).is_err(), "inverted band");
        assert!(parse_rule("bogus>1", &vocab).is_err());
        assert!(parse_rule("p95=1ms", &vocab).is_err(), "no comparison");
    }

    #[test]
    fn burn_rule_parser_round_trips() {
        let vocab = test_vocab();
        let rule =
            parse_burn_rule("burn=p95:Test::Alpha.run>400us;slo=99.9;fast=3;slow=24", &vocab)
                .unwrap();
        assert_eq!(rule.condition.metric, AlertMetric::P95);
        assert_eq!(rule.condition.series, Some((InterfaceId(0), MethodIndex(0))));
        assert_eq!(rule.condition.fire_threshold, 400_000.0);
        assert_eq!(rule.slo_percent, 99.9);
        assert_eq!((rule.fast, rule.slow), (3, 24));
        let expected = BurnRule::default_factor(3, 24, 1.0 - 99.9 / 100.0);
        assert!((rule.factor - expected).abs() < 1e-9, "{} vs {expected}", rule.factor);

        let explicit =
            parse_burn_rule("burn=rate<0.5;slo=99;fast=2;slow=10;factor=3", &vocab).unwrap();
        assert_eq!(explicit.factor, 3.0);
        assert_eq!(explicit.condition.cmp, AlertCmp::Below);

        assert!(parse_burn_rule("p95>1ms;slo=99;fast=1;slow=2", &vocab).is_err(), "no burn=");
        assert!(parse_burn_rule("burn=p95>1ms;fast=3;slow=24", &vocab).is_err(), "no slo=");
        assert!(parse_burn_rule("burn=p95>1ms;slo=101;fast=3;slow=24", &vocab).is_err());
        assert!(parse_burn_rule("burn=p95>1ms;slo=99.9;fast=5;slow=5", &vocab).is_err());
        assert!(parse_burn_rule("burn=p95>1ms;slo=99.9;fast=3;slow=24;x=1", &vocab).is_err());
    }

    #[test]
    fn latency_without_iface_lists_known_series() {
        let m = monitor();
        m.ingest_batch_at(sync_call(1, 0, 0, 1000), 10);
        m.ingest_batch_at(sync_call(2, 1, 0, 1000), 20);
        // Roll far ahead: windowed data ages out, but the index must not.
        m.tick_at(10 * WINDOW_NS);
        let json = m.latency_json(None, None);
        let series = json.get("known_series").and_then(Json::as_arr).expect("index");
        assert_eq!(series.len(), 2, "{json}");
        assert_eq!(series[0].get("iface").and_then(Json::as_str), Some("Test::Alpha"));
        assert_eq!(series[0].get("calls").and_then(Json::as_u64), Some(1));
        assert_eq!(series[1].get("iface").and_then(Json::as_str), Some("Test::Beta"));
    }

    #[test]
    fn history_scopes_flamegraphs_and_diffs_windows() {
        let m = monitor();
        m.ingest_batch_at(sync_call(1, 0, 0, 1_000), 10); // window 0
        m.ingest_batch_at(sync_call(2, 1, 0, 50_000), WINDOW_NS + 10); // window 1
        m.tick_at(2 * WINDOW_NS);
        assert_eq!(m.history().len(), 2);

        let w0 = m.flamegraph(Some(0)).unwrap();
        assert!(w0.contains("Test::Alpha.run "), "{w0}");
        assert!(!w0.contains("Test::Beta.go"), "window 0 must not see window 1: {w0}");
        let cumulative = m.flamegraph(None).unwrap();
        assert!(cumulative.contains("Test::Alpha.run ") && cumulative.contains("Test::Beta.go "));

        let diff = m.flamegraph_diff(0, 1).unwrap();
        let first = diff.lines().next().expect("non-empty diff");
        assert!(first.starts_with("Test::Beta.go +"), "top positive delta first: {diff}");
        assert!(diff.contains("Test::Alpha.run -"), "vanished stack goes negative: {diff}");

        assert!(m.flamegraph(Some(7)).unwrap_err().contains("not retained"));
        assert!(m.flamegraph_diff(0, 7).is_err());
    }

    #[test]
    fn history_json_reports_bounds_and_burn_rules() {
        let m = monitor();
        m.add_rule_spec("burn=p95>400us;slo=99.9;fast=3;slow=24").expect("burn spec routed");
        m.ingest_batch_at(sync_call(1, 0, 0, 1_000), 10);
        m.tick_at(WINDOW_NS);
        let json = m.history_json(None, None);
        assert_eq!(json.get("retained_windows").and_then(Json::as_u64), Some(1));
        assert_eq!(
            json.get("cap_windows").and_then(Json::as_u64),
            Some(LiveConfig::default().history_windows as u64)
        );
        let windows = json.get("windows").and_then(Json::as_arr).expect("windows");
        assert_eq!(windows[0].get("index").and_then(Json::as_u64), Some(0));
        assert_eq!(windows[0].get("completed_calls").and_then(Json::as_u64), Some(1));
        let burns = json.get("burn_rules").and_then(Json::as_arr).expect("burn rules");
        assert_eq!(burns.len(), 1);
        assert_eq!(burns[0].get("active").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn history_json_range_serves_spill_after_restart() {
        let path = std::env::temp_dir().join(format!(
            "causeway_live_spill_restart_{}.cwhist",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let config = LiveConfig {
            window: Duration::from_nanos(WINDOW_NS),
            slices: 5,
            history_windows: 1,
            history_spill: Some(path.clone()),
            ..LiveConfig::default()
        };
        {
            let m = LiveMonitor::new(config.clone(), test_vocab(), Deployment::default());
            for w in 0..3u64 {
                m.ingest_batch_at(sync_call(w as u128 + 1, 0, 0, 1_000), w * WINDOW_NS + 5);
            }
            m.tick_at(3 * WINDOW_NS);
            assert_eq!(m.history().len(), 1, "ring caps at one window");
            assert_eq!(m.history().spill().expect("spill attached").len(), 2);
        }
        // A restarted monitor reattaches the spill with an empty ring; a
        // range request with `to` omitted must resolve `newest` from the
        // spill, not default to 0, so the spilled windows come back.
        let m = LiveMonitor::new(config, test_vocab(), Deployment::default());
        assert!(m.history().is_empty(), "fresh ring after restart");
        let json = m.history_json(Some(0), None);
        let windows = json.get("windows").and_then(Json::as_arr).expect("windows");
        assert_eq!(windows.len(), 2, "{json}");
        assert_eq!(windows[0].get("index").and_then(Json::as_u64), Some(0));
        assert_eq!(windows[1].get("index").and_then(Json::as_u64), Some(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dscg_serves_recently_completed_chains() {
        let m = monitor();
        m.ingest_batch_at(sync_call(0xabc, 0, 0, 1000), 10);
        let listing = m.recent_chains_json();
        let chains = listing.get("recent_chains").and_then(Json::as_arr).expect("list");
        assert_eq!(chains.len(), 1);
        let id = chains[0].get("chain").and_then(Json::as_str).expect("uuid").to_owned();
        let ascii = m.dscg_render(&id, None).unwrap();
        assert!(ascii.contains("Test::Alpha.run@alpha-7 [sync]"), "{ascii}");
        let dot = m.dscg_render(&id, Some("dot")).unwrap();
        assert!(dot.starts_with("digraph"), "{dot}");
        assert!(m.dscg_render("not-a-uuid", None).is_err());
        assert!(m.dscg_render(&Uuid(999).to_string(), None).is_err());
    }

    #[test]
    fn folded_stack_maps_are_bounded() {
        // One shard: the per-shard stack caps must bind for three distinct
        // stacks to race a two-entry map.
        let cfg = LiveConfig { stack_capacity: 2, shards: 1, ..test_config() };
        let m = LiveMonitor::new(cfg, test_vocab(), Deployment::default());
        let before = MetricsRegistry::global()
            .counter_value("causeway_live_stack_evictions")
            .unwrap_or(0);
        // Three distinct stacks against a two-entry cap.
        m.ingest_batch_at(sync_call(1, 0, 0, 1000), 10);
        m.ingest_batch_at(sync_call(2, 0, 1, 2000), 20);
        m.ingest_batch_at(sync_call(3, 1, 0, 3000), 30);
        for index in 0..m.shards.len() {
            let shard = m.shard_lock(index);
            assert!(shard.folded.len() <= 2, "cumulative map capped: {:?}", shard.folded);
            assert!(shard.window_folded.len() <= 2, "window map capped");
        }
        let after = MetricsRegistry::global()
            .counter_value("causeway_live_stack_evictions")
            .unwrap_or(0);
        assert!(after > before, "evictions counted: {before} -> {after}");
    }

    #[test]
    fn folded_stacks_attribute_self_time() {
        let m = monitor();
        // A parent (Alpha.run) wrapping one child (Beta.go): nested sync
        // calls on one chain. Parent seq 1..2, child seq 3..6, parent 7..8.
        let t = |n: u64| n * 10;
        let records = vec![
            record(1, 1, TraceEvent::StubStart, 0, 0, 7, t(0), t(0) + 1),
            record(1, 2, TraceEvent::SkelStart, 0, 0, 7, t(1), t(1) + 1),
            record(1, 3, TraceEvent::StubStart, 1, 0, 7, t(2), t(2) + 1),
            record(1, 4, TraceEvent::SkelStart, 1, 0, 7, t(3), t(3) + 1),
            record(1, 5, TraceEvent::SkelEnd, 1, 0, 7, t(4), t(4) + 1),
            record(1, 6, TraceEvent::StubEnd, 1, 0, 7, t(5), t(5) + 1),
            record(1, 7, TraceEvent::SkelEnd, 0, 0, 7, t(6), t(6) + 1),
            record(1, 8, TraceEvent::StubEnd, 0, 0, 7, t(7), t(7) + 1),
        ];
        m.ingest_batch_at(records, 10);
        let folded = m.folded_stacks();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2, "parent and child frames: {folded:?}");
        assert!(lines[0].starts_with("Test::Alpha.run "), "root first: {folded:?}");
        assert!(
            lines[1].starts_with("Test::Alpha.run;Test::Beta.go "),
            "child nested under parent: {folded:?}"
        );
        // Self time is parent latency minus child latency — strictly less
        // than the parent's total.
        let parent_self: u64 = lines[0].rsplit(' ').next().unwrap().parse().unwrap();
        let child_self: u64 = lines[1].rsplit(' ').next().unwrap().parse().unwrap();
        assert!(parent_self > 0 && child_self > 0);
        assert!(parent_self < parent_self + child_self);
    }

    #[test]
    fn idle_chains_are_forgotten() {
        let m = monitor();
        m.ingest_batch_at(sync_call(1, 0, 0, 1000), 10);
        assert_eq!(m.open_chain_summaries().len(), 0);
        let mut shard = m.shard_lock(shard_of(Uuid(1), m.shards.len()));
        assert_eq!(shard.analyzer.open_chains(), 0);
        // The chain's per-chain analyzer state is gone entirely (not just
        // filtered out of the summaries).
        assert!(!shard.analyzer.forget_chain(Uuid(1)), "state already dropped");
    }

    #[test]
    fn long_idle_gap_fast_forwards_and_resolves_alerts() {
        let m = monitor();
        m.add_rule(AlertRule {
            name: "stuck".to_owned(),
            metric: AlertMetric::CallRate,
            series: None,
            cmp: AlertCmp::Above,
            fire_threshold: 0.5,
            resolve_threshold: 0.5,
            for_windows: 1,
            escalate: None,
            deescalate: None,
        });
        m.ingest_batch_at(sync_call(1, 0, 0, 1000), 5);
        m.tick_at(WINDOW_NS + 1);
        assert_eq!(m.active_alerts().len(), 1);
        // A week of idleness later, the alert has resolved and the monitor
        // did not iterate hundreds of millions of slices to learn that.
        m.tick_at(7 * 24 * 3600 * WINDOW_NS);
        assert!(m.active_alerts().is_empty());
    }

    #[test]
    fn http_endpoints_serve_live_state() {
        let m = Arc::new(monitor());
        m.ingest_batch_at(sync_call(1, 0, 0, 50_000), 10);
        let server = serve(Arc::clone(&m), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let get = |path: &str| -> (u16, String) {
            use std::io::{Read, Write};
            let mut conn = std::net::TcpStream::connect(addr).expect("connect");
            write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
                .expect("send");
            let mut raw = String::new();
            conn.read_to_string(&mut raw).expect("read");
            let status: u16 =
                raw.split_whitespace().nth(1).expect("status").parse().expect("numeric");
            let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
            (status, body)
        };

        let (status, metrics) = get("/metrics");
        assert_eq!(status, 200);
        assert!(metrics.contains("causeway_online_open_chains"));

        let (status, health) = get("/healthz");
        assert_eq!(status, 200);
        let health = causeway_collector::json::parse(&health).expect("valid JSON");
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));

        let (status, latency) = get("/latency?iface=Test%3A%3AAlpha");
        assert_eq!(status, 200);
        let latency = causeway_collector::json::parse(&latency).expect("valid JSON");
        let series = latency.get("series").and_then(Json::as_arr).expect("series array");
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].get("method").and_then(Json::as_str), Some("run"));

        let (status, chains) = get("/chains");
        assert_eq!(status, 200);
        assert!(causeway_collector::json::parse(&chains).is_ok());

        let (status, folded) = get("/flamegraph");
        assert_eq!(status, 200);
        assert!(folded.contains("Test::Alpha.run "));

        let (status, trace) = get("/trace");
        assert_eq!(status, 200);
        assert!(causeway_collector::json::parse(&trace).is_ok());

        let (status, history) = get("/history");
        assert_eq!(status, 200);
        let history = causeway_collector::json::parse(&history).expect("valid JSON");
        assert!(history.get("retained_windows").is_some());

        let (status, dscg) = get("/dscg");
        assert_eq!(status, 200);
        let dscg = causeway_collector::json::parse(&dscg).expect("valid JSON");
        let chains =
            dscg.get("recent_chains").and_then(Json::as_arr).expect("chain list");
        assert_eq!(chains.len(), 1);
        let chain = chains[0].get("chain").and_then(Json::as_str).expect("uuid");
        let (status, tree) = get(&format!("/dscg?chain={chain}"));
        assert_eq!(status, 200);
        assert!(tree.contains("Test::Alpha.run"), "{tree}");

        // Window-scoped views 404 cleanly before any window has closed…
        let (status, _) = get("/flamegraph?window=0");
        assert_eq!(status, 404);
        let (status, _) = get("/flamegraph/diff?a=0&b=1");
        assert_eq!(status, 404);
        // …and malformed ordinals are a 400, not a panic.
        let (status, _) = get("/flamegraph?window=abc");
        assert_eq!(status, 400);
        let (status, _) = get("/flamegraph/diff?a=0");
        assert_eq!(status, 400);

        let (status, _) = get("/nope");
        assert_eq!(status, 404);
        server.shutdown();
    }

    /// Raw-socket GET against a [`LiveService`] (shared by the HTTP tests).
    fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
        use std::io::{Read, Write};
        let mut conn = std::net::TcpStream::connect(addr).expect("connect");
        write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .expect("send");
        let mut raw = String::new();
        conn.read_to_string(&mut raw).expect("read");
        let status: u16 =
            raw.split_whitespace().nth(1).expect("status").parse().expect("numeric");
        let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
        (status, body)
    }

    /// The object keys of a [`Json::Obj`], for shape-stability assertions.
    fn json_keys(value: &Json) -> Vec<&str> {
        match value {
            Json::Obj(map) => map.keys().map(String::as_str).collect(),
            other => panic!("expected an object, got {other:?}"),
        }
    }

    /// Satellite regression: the completed-chain ring is strict FIFO, so a
    /// burst of fast traffic used to evict the one slow chain an operator
    /// would actually ask about. With the exemplar store as a `/dscg`
    /// fallback the slow chain keeps rendering after arbitrary churn.
    #[test]
    fn exemplar_outlives_trace_ring_churn() {
        let cfg = LiveConfig { trace_capacity: 4, ..test_config() };
        let m = LiveMonitor::new(cfg, test_vocab(), Deployment::default());
        let slow = Uuid(1).to_string();
        m.ingest_batch_at(sync_call(1, 0, 0, 9_000_000), 10);
        assert!(m.dscg_render(&slow, None).is_ok(), "present while in the ring");
        // 32 fast completions churn the 4-slot FIFO ring eight times over.
        for i in 0..32u64 {
            m.ingest_batch_at(sync_call(100 + u128::from(i), 0, 1, 1_000), 20 + i);
        }
        let recent = m.recent_chains_json().to_string();
        assert!(!recent.contains(&slow), "FIFO ring churned past the slow chain");
        let tree = m.dscg_render(&slow, None).expect("served from the exemplar store");
        assert!(tree.contains("Test::Alpha.run"), "{tree}");
        // Chains in neither the ring nor the store still 404.
        assert!(m.dscg_render(&Uuid(9_999).to_string(), None).is_err());
    }

    #[test]
    fn fired_alerts_carry_breach_exemplars_that_resolve_to_renders() {
        let m = monitor();
        m.add_rule(AlertRule {
            name: "p95-high".to_owned(),
            metric: AlertMetric::P95,
            series: Some((InterfaceId(0), MethodIndex(0))),
            cmp: AlertCmp::Above,
            fire_threshold: 1_000_000.0,
            resolve_threshold: 100_000.0,
            for_windows: 2,
            escalate: None,
            deescalate: None,
        });
        let mut chain = 1u128;
        for w in 0..2u64 {
            m.ingest_batch_at(sync_call(chain, 0, 0, 10_000), w * WINDOW_NS + 5);
            chain += 1;
        }
        for w in 2..4u64 {
            m.ingest_batch_at(sync_call(chain, 0, 0, 5_000_000), w * WINDOW_NS + 5);
            chain += 1;
        }
        m.tick_at(4 * WINDOW_NS);
        let log = m.alert_log();
        let fired = log.iter().find(|e| e.fired).expect("alert fired");
        assert!(!fired.exemplars.is_empty(), "firing transitions carry exemplar refs");
        // Every referenced uuid resolves to a full detail render naming the
        // breaching operation.
        for uuid in &fired.exemplars {
            let detail = m.exemplar_detail_json(&uuid.to_string()).expect("resolves");
            let ascii = detail.get("ascii").and_then(Json::as_str).expect("ascii render");
            assert!(ascii.contains("Test::Alpha.run"), "{ascii}");
            let trace = detail.get("chrome_trace").expect("chrome trace");
            assert!(!trace.get("traceEvents").and_then(Json::as_arr).unwrap().is_empty());
        }
        // Resolve transitions stay unadorned.
        drop(log);
        for w in 4..6u64 {
            m.ingest_batch_at(sync_call(chain, 0, 0, 10_000), w * WINDOW_NS + 5);
            chain += 1;
        }
        m.tick_at(7 * WINDOW_NS);
        let log = m.alert_log();
        let resolved = log.iter().find(|e| !e.fired).expect("alert resolved");
        assert!(resolved.exemplars.is_empty());
    }

    /// Scraper-facing JSON contracts: the exact key sets of `/healthz`,
    /// `/latency` series objects (with exemplar refs), and `/exemplars`
    /// must not silently drift.
    #[test]
    fn scraper_json_shapes_are_stable() {
        let m = Arc::new(monitor());
        m.ingest_batch_at(sync_call(1, 0, 0, 5_000_000), 10);
        let server = serve(Arc::clone(&m), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let (status, health) = http_get(addr, "/healthz");
        assert_eq!(status, 200);
        let health = causeway_collector::json::parse(&health).expect("valid JSON");
        assert_eq!(
            json_keys(&health),
            [
                "abnormalities",
                "active_alerts",
                "buffered_records",
                "completed_calls",
                "escalated_interfaces",
                "history_evictions",
                "open_chains",
                "open_incidents",
                "shards",
                "spill_error",
                "spill_errors",
                "status",
                "uptime_ms",
                "version",
                "window_index",
            ]
        );
        assert_eq!(
            health.get("shards").and_then(Json::as_u64),
            Some(test_config().shards as u64)
        );
        assert_eq!(
            health.get("version").and_then(Json::as_str),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(health.get("uptime_ms").and_then(Json::as_u64).is_some());

        let (status, latency) = http_get(addr, "/latency?iface=Test%3A%3AAlpha");
        assert_eq!(status, 200);
        let latency = causeway_collector::json::parse(&latency).expect("valid JSON");
        let series = latency.get("series").and_then(Json::as_arr).expect("series");
        assert_eq!(
            json_keys(&series[0]),
            [
                "busy_share",
                "call_rate_hz",
                "calls",
                "exemplars",
                "iface",
                "mean_ns",
                "method",
                "p50_ns",
                "p95_ns",
                "p99_ns",
            ]
        );
        let refs = series[0].get("exemplars").and_then(Json::as_arr).expect("refs");
        assert!(!refs.is_empty(), "slow call must surface an exemplar ref");
        assert_eq!(
            json_keys(&refs[0]),
            ["bucket", "chain", "latency_ns", "verdict", "window_index"]
        );

        let (status, index) = http_get(addr, "/exemplars");
        assert_eq!(status, 200);
        let index = causeway_collector::json::parse(&index).expect("valid JSON");
        assert_eq!(
            json_keys(&index),
            [
                "admitted",
                "approx_bytes",
                "count",
                "enabled",
                "evicted",
                "max_bytes",
                "max_total",
                "per_series",
                "rejected",
                "sample_per_series",
                "series",
            ]
        );
        let per_series = index.get("series").and_then(Json::as_arr).expect("series");
        assert_eq!(json_keys(&per_series[0]), ["count", "exemplars", "iface", "method"]);
        let summary = &per_series[0].get("exemplars").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(
            json_keys(summary),
            [
                "chain",
                "completed_calls",
                "id",
                "iface",
                "latency_ns",
                "method",
                "verdict",
                "window_index",
            ]
        );
        let chain = summary.get("chain").and_then(Json::as_str).expect("uuid");

        let (status, detail) = http_get(addr, &format!("/exemplars?id={chain}"));
        assert_eq!(status, 200);
        let detail = causeway_collector::json::parse(&detail).expect("valid JSON");
        assert_eq!(
            json_keys(&detail),
            [
                "ascii",
                "chain",
                "chrome_trace",
                "completed_calls",
                "dot",
                "id",
                "iface",
                "latency_ns",
                "method",
                "verdict",
                "window_index",
            ]
        );
        assert!(detail.get("dot").and_then(Json::as_str).unwrap().contains("digraph"));

        // Error paths: filtered index, bad uuid, unknown uuid.
        let (status, _) = http_get(addr, "/exemplars?series=Test%3A%3AAlpha.run");
        assert_eq!(status, 200);
        let (status, _) = http_get(addr, "/exemplars?series=No%3A%3ASuch.thing");
        assert_eq!(status, 404);
        let (status, _) = http_get(addr, "/exemplars?id=not-a-uuid");
        assert_eq!(status, 400);
        let (status, _) = http_get(addr, &format!("/exemplars?id={}", Uuid(0xdead)));
        assert_eq!(status, 404);
        server.shutdown();
    }

    /// The acceptance path, end to end over HTTP: a sustained regression
    /// fires an alert whose exemplar uuid resolves at `/exemplars?id=` to a
    /// DSCG render containing the injected operation — even after the FIFO
    /// trace ring has churned far past `trace_capacity`.
    #[test]
    fn alert_exemplar_resolves_over_http_after_ring_churn() {
        let cfg = LiveConfig { trace_capacity: 4, ..test_config() };
        let m = Arc::new(LiveMonitor::new(cfg, test_vocab(), Deployment::default()));
        m.add_rule(AlertRule {
            name: "p95-high".to_owned(),
            metric: AlertMetric::P95,
            series: Some((InterfaceId(0), MethodIndex(0))),
            cmp: AlertCmp::Above,
            fire_threshold: 1_000_000.0,
            resolve_threshold: 100_000.0,
            for_windows: 2,
            escalate: None,
            deescalate: None,
        });
        let mut chain = 1u128;
        for w in 0..4u64 {
            let slow = if w < 2 { 10_000 } else { 5_000_000 };
            m.ingest_batch_at(sync_call(chain, 0, 0, slow), w * WINDOW_NS + 5);
            chain += 1;
            // Fast decoy traffic churns the 4-slot FIFO ring every window.
            for i in 0..8u64 {
                m.ingest_batch_at(
                    sync_call(1000 + chain + u128::from(i), 0, 1, 1_000),
                    w * WINDOW_NS + 10 + i,
                );
            }
            chain += 8;
        }
        m.tick_at(4 * WINDOW_NS);
        // The alert has fired and published its exemplar uuids. Keep the
        // regression sustained with *even slower* chains — without the
        // alert-time pin these would displace the published exemplars from
        // the fastest-first reservoir and break the uuid the operator saw.
        for w in 4..7u64 {
            for i in 0..4u64 {
                m.ingest_batch_at(
                    sync_call(chain, 0, 0, 6_000_000 + i * 100_000),
                    w * WINDOW_NS + 5 + i,
                );
                chain += 1;
            }
        }
        m.tick_at(7 * WINDOW_NS);

        let server = serve(Arc::clone(&m), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let (status, alerts) = http_get(addr, "/alerts");
        assert_eq!(status, 200);
        let alerts = causeway_collector::json::parse(&alerts).expect("valid JSON");
        let fired = alerts
            .get("alerts")
            .and_then(Json::as_arr)
            .expect("log")
            .iter()
            .find(|e| e.get("fired").and_then(Json::as_bool) == Some(true))
            .expect("alert fired")
            .clone();
        let refs = fired.get("exemplars").and_then(Json::as_arr).expect("refs");
        let uuid = refs[0].as_str().expect("uuid string");
        // The breaching chain is long gone from the FIFO ring…
        let (_, recent) = http_get(addr, "/dscg");
        assert!(!recent.contains(uuid), "ring must have churned: {recent}");
        // …but the alert's exemplar still resolves to a full DSCG render
        // naming the regressed operation.
        let (status, detail) = http_get(addr, &format!("/exemplars?id={uuid}"));
        assert_eq!(status, 200);
        let detail = causeway_collector::json::parse(&detail).expect("valid JSON");
        let ascii = detail.get("ascii").and_then(Json::as_str).expect("render");
        assert!(ascii.contains("Test::Alpha.run"), "{ascii}");
        server.shutdown();
    }

    #[test]
    fn alert_firing_opens_incident_with_evidence_and_passes() {
        let mut m = monitor();
        m.add_rule(AlertRule {
            name: "p95-high".to_owned(),
            metric: AlertMetric::P95,
            series: Some((InterfaceId(0), MethodIndex(0))),
            cmp: AlertCmp::Above,
            fire_threshold: 1_000_000.0, // 1ms
            resolve_threshold: 1_000_000.0,
            for_windows: 2,
            escalate: None,
            deescalate: None,
        });

        // W0/W1 baseline: both methods quick. W2/W3 breach: `run` regresses
        // 500×, `poll` drifts from 10µs to 12µs — a decoy regression that
        // was already present in the baseline.
        let mut chain = 1u128;
        let mut drive = |window: u64, run_ns: u64, poll_ns: u64, m: &mut LiveMonitor| {
            let at = window * WINDOW_NS + 5;
            m.ingest_batch_at(sync_call(chain, 0, 0, run_ns), at);
            m.ingest_batch_at(sync_call(chain + 1, 0, 1, poll_ns), at + 10);
            chain += 2;
        };
        for w in 0..2 {
            drive(w, 10_000, 10_000, &mut m);
        }
        for w in 2..4 {
            drive(w, 5_000_000, 12_000, &mut m);
        }
        m.tick_at(4 * WINDOW_NS); // finalize W3: for=2 satisfied, fires

        let log = m.alert_log();
        let fires: Vec<&AlertEvent> = log.iter().filter(|e| e.fired).collect();
        assert_eq!(fires.len(), 1, "exactly one firing transition");
        assert!(fires[0].at_ms > 0, "wall-clock stamp present");

        // `incidents()` holds the control lock: scope the guard so the
        // drives below can ingest again.
        let incident_id = {
        let incidents = m.incidents();
        assert_eq!(incidents.len(), 1);
        let incident = incidents.iter().next().expect("registered");
        assert!(incident.is_open());
        assert_eq!(incident.breach_window, 3);
        // for=2 lookback from W3 → baseline W1, before the excursion.
        assert_eq!(incident.baseline_window, Some(1));

        // The true regression survives as the heaviest flamegraph-diff
        // hypothesis; the decoy is tombstoned by the baseline-presence pass
        // with provenance, yet still present in the add-only graph.
        let surviving = incident.surviving();
        assert!(
            surviving.iter().any(|h| {
                h.kind == HypothesisKind::FlamegraphRegression
                    && h.subject.contains("Test::Alpha.run")
            }),
            "true cause must survive: {surviving:?}"
        );
        let decoy = incident
            .hypotheses()
            .iter()
            .find(|h| {
                h.kind == HypothesisKind::FlamegraphRegression
                    && h.subject.contains("Test::Alpha.poll")
            })
            .expect("decoy hypothesis stays in the graph");
        assert!(incident.is_eliminated(decoy.id), "decoy tombstoned");
        let tombstone = incident
            .tombstones()
            .iter()
            .find(|t| t.hypothesis == decoy.id)
            .expect("tombstone recorded");
        assert_eq!(tombstone.pass, incident::PASS_BASELINE);
        assert!(tombstone.evidence.contains("baseline window 1"), "{tombstone:?}");
        assert!(tombstone.at_ms > 0, "tombstones carry wall-clock provenance");

        incident.id
        };

        // The alert calming resolves the incident (for=2 calm windows).
        for w in 4..6 {
            drive(w, 10_000, 10_000, &mut m);
        }
        m.tick_at(7 * WINDOW_NS);
        let incidents = m.incidents();
        let incident = incidents.get(incident_id).expect("still retained");
        assert!(!incident.is_open(), "resolved with the alert");
        assert_eq!(incident.resolved_window, Some(5));
    }

    #[test]
    fn incident_http_surface_and_error_paths() {
        let m = Arc::new(monitor());
        m.ingest_batch_at(sync_call(1, 0, 0, 50_000), 10);
        let incident_id = {
            let mut incidents = m.incidents();
            let id = incidents.open("test-alert", 3, Some(1), 123);
            let entry = incidents.get_mut(id).unwrap();
            entry.add_hypothesis(
                HypothesisKind::FlamegraphRegression,
                "Test::Alpha.run".to_owned(),
                "self time +5000000ns".to_owned(),
                5_000_000,
                3,
                123,
            );
            entry.add_hypothesis(
                HypothesisKind::HotStack,
                "Test::Alpha.poll".to_owned(),
                "12000ns self time".to_owned(),
                12_000,
                3,
                123,
            );
            id
        };
        let server = serve(Arc::clone(&m), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let roundtrip = |request: String| -> (u16, String) {
            use std::io::{Read, Write};
            let mut conn = std::net::TcpStream::connect(addr).expect("connect");
            conn.write_all(request.as_bytes()).expect("send");
            let mut raw = String::new();
            conn.read_to_string(&mut raw).expect("read");
            let status: u16 =
                raw.split_whitespace().nth(1).expect("status").parse().expect("numeric");
            let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
            (status, body)
        };
        let get = |path: &str| {
            roundtrip(format!(
                "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
            ))
        };
        let post = |path: &str, body: &str| {
            roundtrip(format!(
                "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{body}",
                body.len()
            ))
        };

        // The index and detail bodies.
        let (status, index) = get("/incidents");
        assert_eq!(status, 200);
        let index = causeway_collector::json::parse(&index).expect("valid JSON");
        assert_eq!(index.get("incidents").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        let (status, detail) = get(&format!("/incidents?id={incident_id}"));
        assert_eq!(status, 200);
        let detail = causeway_collector::json::parse(&detail).expect("valid JSON");
        assert_eq!(
            detail.get("surviving").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );

        // An operator tombstone shrinks the surviving set but not the graph.
        let (status, ack) = post(
            "/incidents/eliminate",
            &format!(
                "{{\"incident\": {incident_id}, \"hypothesis\": 1, \
                 \"reason\": \"known-benign poll path\"}}"
            ),
        );
        assert_eq!(status, 200, "{ack}");
        let (_, detail) = get(&format!("/incidents?id={incident_id}"));
        let detail = causeway_collector::json::parse(&detail).expect("valid JSON");
        assert_eq!(
            detail.get("surviving").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(
            detail.get("hypotheses").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2),
            "add-only: the graph never shrinks"
        );
        let tombstones = detail.get("tombstones").and_then(Json::as_arr).expect("array");
        assert_eq!(tombstones.len(), 1);
        assert_eq!(tombstones[0].get("pass").and_then(Json::as_str), Some("operator"));

        // Error paths stay bounded: garbage uuid, missing diff ordinal,
        // unknown incident, malformed id, bad POST targets and bodies.
        let (status, _) = get("/dscg?chain=not-a-uuid");
        assert_eq!(status, 404);
        let (status, _) = get("/flamegraph/diff?a=0");
        assert_eq!(status, 400, "one missing ordinal");
        let (status, _) = get("/incidents?id=999");
        assert_eq!(status, 404);
        let (status, _) = get("/incidents?id=abc");
        assert_eq!(status, 400);
        let (status, _) = get("/incidents/eliminate");
        assert_eq!(status, 405, "tombstones arrive by POST only");
        let (status, _) = post("/incidents/eliminate", "{\"incident\": 0}");
        assert_eq!(status, 400, "missing hypothesis id");
        let (status, _) = post("/incidents/eliminate", "not json");
        assert_eq!(status, 400);
        let (status, _) = post(
            "/incidents/eliminate",
            &format!("{{\"incident\": {incident_id}, \"hypothesis\": 99}}"),
        );
        assert_eq!(status, 404, "unknown hypothesis");

        // An oversized declared body is rejected up front with 413.
        let (status, _) = roundtrip(format!(
            "POST /incidents/eliminate HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n",
            causeway_core::httpd::MAX_BODY_BYTES + 1
        ));
        assert_eq!(status, 413);
        server.shutdown();
    }

    #[test]
    fn ticker_rotates_windows_on_an_idle_system() {
        // Tight real-time windows: with zero traffic and zero scrapes, the
        // background ticker alone must finalize windows into the history.
        let cfg = LiveConfig {
            window: Duration::from_millis(50),
            slices: 2,
            ..LiveConfig::default()
        };
        let m = Arc::new(LiveMonitor::new(cfg, test_vocab(), Deployment::default()));
        let server = serve(Arc::clone(&m), "127.0.0.1:0").expect("bind");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if m.history().len() >= 2 {
                break;
            }
            assert!(Instant::now() < deadline, "ticker never closed a window");
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown();
    }

    fn p95_rule(name: &str) -> AlertRule {
        AlertRule {
            name: name.to_owned(),
            metric: AlertMetric::P95,
            series: Some((InterfaceId(0), MethodIndex(0))),
            cmp: AlertCmp::Above,
            fire_threshold: 1.0,
            resolve_threshold: 1.0,
            for_windows: 1,
            escalate: None,
            deescalate: None,
        }
    }

    #[test]
    fn incident_ring_capacity_zero_skips_gracefully() {
        // Regression: `open_incident` used `expect("just opened")` and
        // panicked the window-close path when the ring evicted the incident
        // at open. Capacity 0 must skip gracefully and count the drop.
        let mut cfg = test_config();
        cfg.incidents.capacity = 0;
        let m = LiveMonitor::new(cfg, test_vocab(), Deployment::default());
        m.add_rule(p95_rule("p95-high"));
        let before = MetricsRegistry::global()
            .counter_value("causeway_incident_dropped_total")
            .unwrap_or(0);
        m.ingest_batch_at(sync_call(1, 0, 0, 50_000), 5);
        m.tick_at(WINDOW_NS); // finalize W0: fires, incident open is dropped
        let after = MetricsRegistry::global()
            .counter_value("causeway_incident_dropped_total")
            .unwrap_or(0);
        assert!(after > before, "drop counted: {before} -> {after}");
        assert!(m.alert_log().iter().any(|e| e.fired), "alert still fired");
        assert_eq!(m.incidents().len(), 0, "nothing retained at capacity 0");
    }

    #[test]
    fn incident_ring_capacity_one_retains_latest() {
        // Two rules firing in the same window against a one-slot ring: the
        // second open evicts the first incident, the just-opened one
        // survives with its evidence, and nothing panics.
        let mut cfg = test_config();
        cfg.incidents.capacity = 1;
        let m = LiveMonitor::new(cfg, test_vocab(), Deployment::default());
        m.add_rule(p95_rule("first"));
        m.add_rule(p95_rule("second"));
        m.ingest_batch_at(sync_call(1, 0, 0, 50_000), 5);
        m.tick_at(WINDOW_NS); // finalize W0: both fire
        let log = m.alert_log();
        assert_eq!(log.iter().filter(|e| e.fired).count(), 2, "{log:?}");
        let incidents = m.incidents();
        assert_eq!(incidents.len(), 1);
        let retained = incidents.iter().next().expect("one retained");
        assert_eq!(retained.alert, "second", "latest open survives");
        assert!(!retained.hypotheses().is_empty(), "evidence populated");
    }

    // ---- adaptive probe control plane ----

    fn adaptive_monitor(base: ProbeMode) -> (LiveMonitor, ProbePolicy) {
        let policy = ProbePolicy::new(base);
        let mut cfg = test_config();
        cfg.adaptive.policy = Some(policy.clone());
        (LiveMonitor::new(cfg, test_vocab(), Deployment::default()), policy)
    }

    /// Flattens the `/probes` transition log to (iface, from, to, reason).
    fn transitions_of(m: &LiveMonitor) -> Vec<(String, String, String, String)> {
        let body = m.probes_json();
        let Some(Json::Arr(items)) = body.get("transitions") else {
            panic!("no transitions array in {body:?}");
        };
        items
            .iter()
            .map(|t| {
                let s = |k: &str| match t.get(k) {
                    Some(Json::Str(v)) => v.clone(),
                    other => panic!("transition field {k}: {other:?}"),
                };
                (s("iface"), s("from"), s("to"), s("reason"))
            })
            .collect()
    }

    #[test]
    fn rule_parser_accepts_probe_escalation_suffixes() {
        let vocab = test_vocab();
        let rule = parse_rule(
            "p95:Test::Alpha.run>800us;escalate=both;deescalate=latency",
            &vocab,
        )
        .unwrap();
        assert_eq!(rule.escalate, Some(ProbeMode::Both));
        assert_eq!(rule.deescalate, Some(ProbeMode::Latency));

        let burn = parse_burn_rule(
            "burn=p95:Test::Alpha.run>400us;slo=99;fast=2;slow=12;escalate=cpu",
            &vocab,
        )
        .unwrap();
        assert_eq!(burn.condition.escalate, Some(ProbeMode::Cpu));
        assert_eq!(burn.condition.deescalate, None);

        // The interface to actuate comes from the series target, so a
        // series-less rule cannot carry escalation.
        assert!(parse_rule("rate<0.5;escalate=both", &vocab).is_err());
        assert!(parse_burn_rule("burn=err>0.01;slo=99;fast=2;slow=12;deescalate=cpu", &vocab)
            .is_err());
        assert!(parse_rule("p95:Test::Alpha.run>1ms;escalate=warp", &vocab).is_err());
    }

    #[test]
    fn firing_rule_escalates_only_its_interface_and_resolve_restores_base() {
        let (m, policy) = adaptive_monitor(ProbeMode::CausalityOnly);
        m.add_rule(AlertRule {
            name: "p95-high".to_owned(),
            metric: AlertMetric::P95,
            series: Some((InterfaceId(0), MethodIndex(0))),
            cmp: AlertCmp::Above,
            fire_threshold: 1_000_000.0,  // 1ms
            resolve_threshold: 100_000.0, // 0.1ms
            for_windows: 1,
            escalate: None, // falls back to AdaptiveConfig::escalate_mode (Both)
            deescalate: None,
        });
        assert_eq!(policy.effective(InterfaceId(0)), ProbeMode::CausalityOnly);

        // W0 breaches: the rule fires at window close and the hot
        // interface escalates. The unrelated interface must not move.
        m.ingest_batch_at(sync_call(1, 0, 0, 5_000_000), 5);
        m.tick_at(WINDOW_NS);
        assert_eq!(policy.effective(InterfaceId(0)), ProbeMode::Both);
        assert_eq!(policy.effective(InterfaceId(1)), ProbeMode::CausalityOnly);

        // W1 is calm: the rule resolves and the escalation is withdrawn.
        m.ingest_batch_at(sync_call(2, 0, 0, 1_000), WINDOW_NS + 5);
        m.tick_at(2 * WINDOW_NS);
        assert_eq!(policy.effective(InterfaceId(0)), ProbeMode::CausalityOnly);
        assert!(policy.overrides().is_empty(), "no standing overrides");

        let log = transitions_of(&m);
        assert_eq!(
            log,
            vec![
                (
                    "Test::Alpha".to_owned(),
                    "causality-only".to_owned(),
                    "both".to_owned(),
                    "alert".to_owned()
                ),
                (
                    "Test::Alpha".to_owned(),
                    "both".to_owned(),
                    "causality-only".to_owned(),
                    "alert".to_owned()
                ),
            ],
            "escalate then de-escalate, both alert-driven"
        );
    }

    #[test]
    fn deescalate_suffix_leaves_standing_floor() {
        let (m, policy) = adaptive_monitor(ProbeMode::CausalityOnly);
        m.add_rule_spec("p95:Test::Alpha.run>1ms;resolve=100us;escalate=both;deescalate=latency")
            .unwrap();

        m.ingest_batch_at(sync_call(1, 0, 0, 5_000_000), 5);
        m.tick_at(WINDOW_NS); // fires
        assert_eq!(policy.effective(InterfaceId(0)), ProbeMode::Both);

        m.ingest_batch_at(sync_call(2, 0, 0, 1_000), WINDOW_NS + 5);
        m.tick_at(2 * WINDOW_NS); // resolves
        assert_eq!(
            policy.effective(InterfaceId(0)),
            ProbeMode::Latency,
            "resolve lands on the deescalate= floor, not base"
        );

        let body = m.probes_json();
        let Some(Json::Arr(ifaces)) = body.get("interfaces") else {
            panic!("no interfaces in {body:?}");
        };
        let alpha = ifaces
            .iter()
            .find(|e| matches!(e.get("iface"), Some(Json::Str(n)) if n == "Test::Alpha"))
            .expect("Test::Alpha listed");
        assert!(
            matches!(alpha.get("source"), Some(Json::Str(s)) if s == "floor"),
            "{alpha:?}"
        );
    }

    #[test]
    fn operator_override_outranks_alert_hold_and_expires_by_ttl() {
        let (m, policy) = adaptive_monitor(ProbeMode::CausalityOnly);
        m.add_rule(p95_rule("hold"));
        m.ingest_batch_at(sync_call(1, 0, 0, 5_000_000), 5);
        m.tick_at(WINDOW_NS); // fires: hold escalates iface 0 to Both
        assert_eq!(policy.effective(InterfaceId(0)), ProbeMode::Both);

        // An operator pins the interface below the alert hold.
        let ack = m
            .probe_override_json(br#"{"iface": "Test::Alpha", "mode": "latency", "ttl_ms": 1}"#)
            .expect("override accepted");
        assert!(matches!(ack.get("mode"), Some(Json::Str(s)) if s == "latency"), "{ack:?}");
        assert_eq!(policy.effective(InterfaceId(0)), ProbeMode::Latency);

        // Once the TTL lapses, the next sweep (here: a /probes read)
        // re-derives the target from the still-live alert hold.
        std::thread::sleep(Duration::from_millis(5));
        let log = transitions_of(&m);
        assert_eq!(policy.effective(InterfaceId(0)), ProbeMode::Both);
        let reasons: Vec<&str> = log.iter().map(|(_, _, _, r)| r.as_str()).collect();
        assert_eq!(reasons, vec!["alert", "operator", "ttl"], "{log:?}");
        assert_eq!(log[2].1, "latency");
        assert_eq!(log[2].2, "both", "ttl expiry falls back to the hold");
    }

    #[test]
    fn operator_base_post_clears_override_and_floor() {
        let (m, policy) = adaptive_monitor(ProbeMode::CausalityOnly);
        m.probe_override_json(br#"{"iface": 1, "mode": "cpu"}"#).expect("override accepted");
        assert_eq!(policy.effective(InterfaceId(1)), ProbeMode::Cpu);
        let ack = m
            .probe_override_json(br#"{"iface": "Test::Beta", "mode": "base"}"#)
            .expect("clear accepted");
        assert!(matches!(ack.get("mode"), Some(Json::Str(s)) if s == "causality-only"), "{ack:?}");
        assert!(matches!(ack.get("expires_at_ms"), Some(Json::Null)), "{ack:?}");
        assert_eq!(policy.effective(InterfaceId(1)), ProbeMode::CausalityOnly);
        assert!(policy.overrides().is_empty());
    }

    #[test]
    fn probe_override_rejects_bad_requests() {
        let (m, _policy) = adaptive_monitor(ProbeMode::CausalityOnly);
        let status = |body: &[u8]| m.probe_override_json(body).unwrap_err().0;
        assert_eq!(status(b"not json"), 400);
        assert_eq!(status(br#"{"iface": "Nope::Missing", "mode": "cpu"}"#), 404);
        assert_eq!(status(br#"{"iface": "Test::Alpha", "mode": "warp"}"#), 400);
        assert_eq!(status(br#"{"iface": "Test::Alpha", "mode": "cpu", "ttl_ms": -3}"#), 400);

        // Without a shared policy the whole control plane is inert.
        let inert = monitor();
        assert_eq!(
            inert
                .probe_override_json(br#"{"iface": "Test::Alpha", "mode": "cpu"}"#)
                .unwrap_err()
                .0,
            409
        );
        let body = inert.probes_json();
        assert!(matches!(body.get("adaptive"), Some(Json::Bool(false))), "{body:?}");
    }

    #[test]
    fn probe_transitions_are_noted_on_incident_timelines() {
        let (m, _policy) = adaptive_monitor(ProbeMode::CausalityOnly);
        m.add_rule(p95_rule("noted"));
        m.ingest_batch_at(sync_call(1, 0, 0, 5_000_000), 5);
        m.tick_at(WINDOW_NS); // fires + escalates
        let incidents = m.incidents();
        let incident = incidents.iter().next().expect("incident opened");
        let noted = incident
            .timeline()
            .iter()
            .any(|n| n.what.contains("probe Test::Alpha") && n.what.contains("both"));
        assert!(noted, "timeline: {:?}", incident.timeline());
    }
}
