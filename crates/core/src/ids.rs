//! Small, copyable identifier newtypes used throughout the framework.
//!
//! Identifiers convey meaning through distinct types rather than bare
//! integers (C-NEWTYPE): a [`ProcessId`] can never be confused with a
//! [`NodeId`] even though both wrap a `u16`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a *processor* (a machine / board) in the deployment.
///
/// Each node carries a CPU type (see [`crate::deploy::NodeInfo`]); the
/// analyzer reports descendant CPU consumption as a vector with one slot per
/// distinct CPU type (`<C1, C2, … CM>` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u16);

/// Identifies an operating-system *process* in the deployment.
///
/// In this reproduction a "process" is a runtime domain with its own object
/// registry, server engine and transport inbox; crossing a process boundary
/// always involves genuine byte-level marshalling (see `causeway-orb`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub u16);

/// Identifies a thread *within a process*.
///
/// Logical thread identifiers are assigned densely (0, 1, 2, …) by the
/// process's [`crate::sink::LogStore`] the first time a thread records a
/// probe, which mirrors how the paper reports "the code base is partitioned
/// into 32 threads".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LogicalThreadId(pub u32);

/// Identifies a component *object instance* (the paper's `ObjectID`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// Identifies an *interface* (an IDL `interface` declaration) by its interned
/// name in the [`crate::names::SystemVocab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InterfaceId(pub u32);

/// Identifies a method *within* an interface by its declaration index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MethodIndex(pub u16);

/// Identifies a processor *type* (e.g. `"HPUX"`, `"WindowsNT"`, `"VxWorks"`)
/// by its interned name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CpuTypeId(pub u16);

macro_rules! impl_display {
    ($($ty:ident => $prefix:literal),* $(,)?) => {
        $(impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        })*
    };
}

impl_display! {
    NodeId => "node",
    ProcessId => "proc",
    LogicalThreadId => "thr",
    ObjectId => "obj",
    InterfaceId => "if",
    MethodIndex => "m",
    CpuTypeId => "cpu",
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms_are_prefixed() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(ProcessId(1).to_string(), "proc1");
        assert_eq!(LogicalThreadId(12).to_string(), "thr12");
        assert_eq!(ObjectId(42).to_string(), "obj42");
        assert_eq!(InterfaceId(7).to_string(), "if7");
        assert_eq!(MethodIndex(2).to_string(), "m2");
        assert_eq!(CpuTypeId(0).to_string(), "cpu0");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(ObjectId(1));
        set.insert(ObjectId(2));
        set.insert(ObjectId(1));
        assert_eq!(set.len(), 2);
        assert!(NodeId(1) < NodeId(2));
    }
}
