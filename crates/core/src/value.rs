//! The argument data model for component invocations.
//!
//! IDL method parameters and results are represented as dynamically typed
//! [`Value`]s, which the stubs genuinely marshal to bytes (see [`crate::wire`])
//! whenever an invocation crosses a process boundary. This keeps the
//! reproduction honest: the FTL must ride the message, because nothing else
//! survives the byte boundary.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dynamically typed IDL value.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// The absence of a value (a `void` result).
    #[default]
    Void,
    /// `boolean`.
    Bool(bool),
    /// `long` (32-bit).
    I32(i32),
    /// `long long` (64-bit).
    I64(i64),
    /// `double`.
    F64(f64),
    /// `string`.
    Str(String),
    /// `sequence<octet>` — opaque payloads (e.g. a page raster).
    Blob(Vec<u8>),
    /// `sequence<T>` — a homogeneous or heterogeneous list.
    Seq(Vec<Value>),
    /// `struct` — named fields in declaration order.
    Struct(Vec<(String, Value)>),
}

impl Value {
    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Void => "void",
            Value::Bool(_) => "boolean",
            Value::I32(_) => "long",
            Value::I64(_) => "long long",
            Value::F64(_) => "double",
            Value::Str(_) => "string",
            Value::Blob(_) => "blob",
            Value::Seq(_) => "sequence",
            Value::Struct(_) => "struct",
        }
    }

    /// Borrows as `bool` when the value is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrows as `i32` when the value is an `I32`.
    pub fn as_i32(&self) -> Option<i32> {
        match self {
            Value::I32(v) => Some(*v),
            _ => None,
        }
    }

    /// Borrows as `i64` when the value is an `I64` (or widens an `I32`).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::I32(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// Borrows as `f64` when the value is an `F64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Borrows as `&str` when the value is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows as `&[u8]` when the value is a `Blob`.
    pub fn as_blob(&self) -> Option<&[u8]> {
        match self {
            Value::Blob(b) => Some(b),
            _ => None,
        }
    }

    /// Borrows as `&[Value]` when the value is a `Seq`.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a struct field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Struct(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// An estimate of the marshalled size in bytes, used by workload
    /// generators to size payloads.
    pub fn wire_size_hint(&self) -> usize {
        match self {
            Value::Void => 1,
            Value::Bool(_) => 2,
            Value::I32(_) => 5,
            Value::I64(_) | Value::F64(_) => 9,
            Value::Str(s) => 5 + s.len(),
            Value::Blob(b) => 5 + b.len(),
            Value::Seq(items) => 5 + items.iter().map(Value::wire_size_hint).sum::<usize>(),
            Value::Struct(fields) => {
                5 + fields
                    .iter()
                    .map(|(n, v)| 5 + n.len() + v.wire_size_hint())
                    .sum::<usize>()
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Void => f.write_str("void"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Blob(b) => write!(f, "blob[{}]", b.len()),
            Value::Seq(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Struct(fields) => {
                f.write_str("{")?;
                for (i, (n, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{n}: {v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I32(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Value {
        Value::Blob(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Seq(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(7i32).as_i32(), Some(7));
        assert_eq!(Value::from(7i32).as_i64(), Some(7), "i32 widens");
        assert_eq!(Value::from(9i64).as_i64(), Some(9));
        assert_eq!(Value::from(1.5f64).as_f64(), Some(1.5));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(vec![1u8, 2]).as_blob(), Some(&[1u8, 2][..]));
        assert_eq!(Value::from("hi").as_i32(), None);
    }

    #[test]
    fn struct_field_lookup() {
        let v = Value::Struct(vec![
            ("pages".into(), Value::I32(12)),
            ("title".into(), Value::from("doc")),
        ]);
        assert_eq!(v.field("pages"), Some(&Value::I32(12)));
        assert_eq!(v.field("missing"), None);
        assert_eq!(Value::Void.field("x"), None);
    }

    #[test]
    fn display_is_debuggable() {
        let v = Value::Seq(vec![Value::I32(1), Value::from("a")]);
        assert_eq!(v.to_string(), "[1, \"a\"]");
        assert_eq!(Value::Blob(vec![0; 16]).to_string(), "blob[16]");
        let s = Value::Struct(vec![("k".into(), Value::Bool(false))]);
        assert_eq!(s.to_string(), "{k: false}");
    }

    #[test]
    fn size_hint_tracks_content() {
        assert!(Value::Blob(vec![0; 1000]).wire_size_hint() >= 1000);
        assert!(Value::from("hello").wire_size_hint() >= 5);
        let nested = Value::Seq(vec![Value::Blob(vec![0; 100]); 3]);
        assert!(nested.wire_size_hint() >= 300);
    }

    #[test]
    fn type_names_are_stable() {
        assert_eq!(Value::Void.type_name(), "void");
        assert_eq!(Value::I64(0).type_name(), "long long");
        assert_eq!(Value::Struct(vec![]).type_name(), "struct");
    }
}
