//! # causeway-core
//!
//! Core mechanism of the Causeway monitoring framework — a reproduction of
//! *"Monitoring and Characterization of Component-Based Systems with Global
//! Causality Capture"* (Jun Li, ICDCS 2003).
//!
//! This crate contains everything that is shared between the runtime
//! substrates (the CORBA-like ORB in `causeway-orb`, the COM-like runtime in
//! `causeway-com`) and the off-line tooling (`causeway-collector`,
//! `causeway-analyzer`):
//!
//! * [`uuid::Uuid`] — the *Function Universally Unique Identifier* that names
//!   a causal chain.
//! * [`ftl::FunctionTxLog`] — the Function-Transportable Log (Figure 3 of the
//!   paper): the Function UUID plus an event sequence number. This is the
//!   only payload that travels the *virtual tunnel*; probes update it in
//!   place, so it stays O(1) regardless of chain length.
//! * [`event::TraceEvent`] / [`event::CallKind`] — the four tracing events
//!   (stub start, skeleton start, skeleton end, stub end) and the invocation
//!   flavors (synchronous, one-way, collocated, custom-marshalled).
//! * [`tss`] — the thread-specific storage that bridges the tunnel from a
//!   function implementation into its child calls and across sibling calls.
//! * [`monitor::Monitor`] — the four probes of Figure 1, which record
//!   [`record::ProbeRecord`]s into per-thread [`sink::LogStore`] buffers.
//! * [`clock`] — pluggable wall and per-thread CPU clocks, including a
//!   deterministic [`clock::ManualClock`] for tests and a
//!   [`clock::VirtualCpuClock`] that substitutes for the HP-UX 11 per-thread
//!   CPU counters the paper relied on (see `DESIGN.md` §2).
//! * [`value::Value`] / [`wire`] — the argument data model and the CDR-like
//!   marshalling used by the stubs and skeletons.
//! * [`names::SystemVocab`] / [`deploy`] — interned names for interfaces,
//!   methods, components and objects, and the deployment model (nodes with
//!   CPU types, processes, logical threads).
//!
//! # Example
//!
//! Drive the probes by hand, exactly as an instrumented stub/skeleton pair
//! would, and observe the records that reach the log store:
//!
//! ```
//! use causeway_core::prelude::*;
//! # fn main() {
//! let monitor = Monitor::builder(ProcessId(0), NodeId(0))
//!     .mode(ProbeMode::Latency)
//!     .build();
//!
//! let func = FunctionKey::new(InterfaceId(0), MethodIndex(0), ObjectId(7));
//! // Client side (probe 1), wire transfer, server side (probes 2 and 3),
//! // back on the client (probe 4):
//! let out = monitor.stub_start(func, CallKind::Sync);
//! monitor.skel_start(func, CallKind::Sync, out.wire_ftl, None);
//! let reply_ftl = monitor.skel_end(func, CallKind::Sync);
//! monitor.stub_end(func, CallKind::Sync, Some(reply_ftl));
//!
//! let records = monitor.store().drain();
//! assert_eq!(records.len(), 4);
//! assert!(records.iter().all(|r| r.uuid == records[0].uuid));
//! # }
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod deploy;
pub mod error;
pub mod event;
pub mod ftl;
pub mod httpd;
pub mod ids;
pub mod manual;
pub mod metrics;
pub mod monitor;
pub mod names;
pub mod pool;
pub mod record;
pub mod runlog;
pub mod sink;
pub mod tss;
pub mod uuid;
pub mod value;
pub mod wire;

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::clock::{
        CpuClock, ManualClock, ManualCpuClock, SystemClock, VirtualCpuClock, WallClock,
    };
    pub use crate::deploy::{Deployment, NodeInfo, ProcessInfo};
    pub use crate::error::CoreError;
    pub use crate::event::{CallKind, TraceEvent};
    pub use crate::ftl::FunctionTxLog;
    pub use crate::ids::{
        CpuTypeId, InterfaceId, LogicalThreadId, MethodIndex, NodeId, ObjectId, ProcessId,
    };
    pub use crate::manual::ManualProbe;
    pub use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
    pub use crate::monitor::{
        Monitor, MonitorBuilder, ProbeDirective, ProbeMode, ProbePolicy, StubStartOutcome,
    };
    pub use crate::names::{ComponentId, SystemVocab, VocabSnapshot};
    pub use crate::record::{CallSite, FunctionKey, ProbeRecord};
    pub use crate::runlog::RunLog;
    pub use crate::sink::LogStore;
    pub use crate::uuid::Uuid;
    pub use crate::value::Value;
}
